// Ablation: the fault-recovery knobs this implementation adds on top of the
// paper (which assumes fault-tolerant messaging, cf. ML94).
//
//   * update_refresh_period — every k-th local trace resends all outref
//     distances. Sweep k: smaller k recovers faster from lost updates but
//     costs more steady-state messages.
//   * source_lease_ttl — sources not refreshed within the TTL are dropped,
//     recovering from *lost removal* updates; the sweep shows the recovery
//     and the steady overhead of keeping leases alive.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace dgc;

// A cycle ripens while its sites are partitioned from each other (updates
// lost); after healing, how many rounds until collection? Refresh period is
// the lever.
void BM_RefreshPeriod_RecoveryAfterPartition(benchmark::State& state) {
  const std::uint64_t period = static_cast<std::uint64_t>(state.range(0));
  std::size_t recovery_rounds = 0;
  std::uint64_t steady_msgs_per_round = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.update_refresh_period = period;
    System system(3, config);
    const auto cycle = workload::BuildCycle(
        system, {.sites = 3, .objects_per_site = 1});
    // Live cross-site references so the steady-state refresh cost below has
    // real outrefs to resend.
    for (SiteId s = 0; s < 3; ++s) {
      const ObjectId keeper = system.NewObject(s, 1);
      system.SetPersistentRoot(keeper);
      system.Wire(keeper, 0, system.NewObject((s + 1) % 3, 0));
    }
    // Partition every cycle link; distances freeze at their initial values
    // while each site keeps reporting into the void.
    system.network().SetLinkDown(0, 1, true);
    system.network().SetLinkDown(1, 2, true);
    system.network().SetLinkDown(0, 2, true);
    system.RunRounds(6);
    system.network().SetLinkDown(0, 1, false);
    system.network().SetLinkDown(1, 2, false);
    system.network().SetLinkDown(0, 2, false);
    recovery_rounds = dgc::bench::RoundsUntilCollected(system, cycle, 80);

    // Steady-state cost: garbage-free world, count update messages/round.
    system.network().ResetStats();
    system.RunRounds(8);
    steady_msgs_per_round =
        system.network().stats().count_of<UpdateMsg>() / 8;
  }
  state.counters["refresh_period"] = static_cast<double>(period);
  state.counters["recovery_rounds"] = static_cast<double>(recovery_rounds);
  state.counters["steady_update_msgs_per_round"] =
      static_cast<double>(steady_msgs_per_round);
}
BENCHMARK(BM_RefreshPeriod_RecoveryAfterPartition)
    ->Arg(0)   // disabled: never recovers (hits the round cap)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16);

// Lost removal: a phantom source keeps an object alive until the lease
// expires. Sweep the TTL.
void BM_SourceLease_LostRemovalRecovery(benchmark::State& state) {
  const SimTime ttl = state.range(0);
  std::size_t rounds_until_freed = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.source_lease_ttl = ttl;
    config.update_refresh_period = 0;  // nothing else heals it
    System system(2, config);
    const ObjectId orphan = system.NewObject(1, 0);
    // Phantom source entry, as if the removal update had been lost.
    system.site(1).tables().AddInrefSource(orphan, 0, 1, /*now=*/0);
    rounds_until_freed = 100;
    for (std::size_t round = 1; round <= 100; ++round) {
      system.AdvanceTime(100);  // one "round" of wall-clock per trace round
      system.RunRound();
      if (!system.ObjectExists(orphan)) {
        rounds_until_freed = round;
        break;
      }
    }
  }
  state.counters["lease_ttl"] = static_cast<double>(ttl);
  state.counters["rounds_until_freed"] =
      static_cast<double>(rounds_until_freed);
}
BENCHMARK(BM_SourceLease_LostRemovalRecovery)
    ->Arg(0)  // disabled: leaked forever (cap)
    ->Arg(50)
    ->Arg(500)
    ->Arg(5000);

}  // namespace

BENCHMARK_MAIN();
