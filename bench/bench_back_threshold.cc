// Experiment §4.3: when to start a back trace.
//
// The back threshold D2 = D + L trades abortive traces against collection
// delay. Sweeps L on a world containing a garbage ring plus live decoy
// suspects (live loops beyond the suspicion threshold):
//   * small L: traces fire early, hit still-clean iorefs, abort Live;
//   * adequate L: first trace usually confirms garbage;
//   * the per-visit threshold increment makes live suspects go quiet.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace dgc;

void BuildLiveDecoyLoop(System& system, SiteId a, SiteId b, int depth) {
  // root@a -> (depth remote hops) -> loop {x@a <-> y@b}.
  const ObjectId root = system.NewObject(a, 1);
  system.SetPersistentRoot(root);
  ObjectId previous = root;
  for (int i = 0; i < depth; ++i) {
    const ObjectId hop = system.NewObject(i % 2 == 0 ? b : a, 1);
    system.Wire(previous, 0, hop);
    previous = hop;
  }
  const ObjectId x = system.NewObject(a, 1);
  const ObjectId y = system.NewObject(b, 1);
  system.Wire(previous, 0, x);
  system.Wire(x, 0, y);
  system.Wire(y, 0, x);
}

void BM_BackThreshold_Sweep(benchmark::State& state) {
  const Distance cycle_length_estimate = static_cast<Distance>(state.range(0));
  std::uint64_t live_aborts = 0;
  std::uint64_t garbage_confirms = 0;
  std::uint64_t traces = 0;
  std::size_t rounds_to_collect = 0;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 2;
    config.estimated_cycle_length = cycle_length_estimate;  // D2 = 2 + L
    config.back_threshold_increment = 2;
    System system(4, config);
    const auto cycle = workload::BuildCycle(
        system, {.sites = 4, .objects_per_site = 1});
    BuildLiveDecoyLoop(system, 0, 1, /*depth=*/4);
    BuildLiveDecoyLoop(system, 2, 3, /*depth=*/5);
    rounds_to_collect = dgc::bench::RoundsUntilCollected(system, cycle, 60);
    system.RunRounds(10);  // let live decoys go quiet
    const BackTracerStats stats = system.AggregateBackTracerStats();
    live_aborts = stats.traces_completed_live;
    garbage_confirms = stats.traces_completed_garbage;
    traces = stats.traces_started;
  }
  state.counters["L_estimate"] = static_cast<double>(cycle_length_estimate);
  state.counters["D2"] = static_cast<double>(2 + cycle_length_estimate);
  state.counters["traces_started"] = static_cast<double>(traces);
  state.counters["aborted_live"] = static_cast<double>(live_aborts);
  state.counters["confirmed_garbage"] = static_cast<double>(garbage_confirms);
  state.counters["rounds_to_collect"] =
      static_cast<double>(rounds_to_collect);
}
BENCHMARK(BM_BackThreshold_Sweep)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Live suspects must stop generating traces: total traces started over a
// long run against purely-live suspects (no garbage at all) stays bounded
// because every visit bumps the ioref's threshold.
void BM_LiveSuspectsGoQuiet(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  std::uint64_t traces = 0;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 1;
    config.estimated_cycle_length = 1;
    config.back_threshold_increment = 3;
    System system(4, config);
    BuildLiveDecoyLoop(system, 0, 1, /*depth=*/3);
    BuildLiveDecoyLoop(system, 2, 3, /*depth=*/4);
    system.RunRounds(rounds);
    traces = system.AggregateBackTracerStats().traces_started;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["traces_started_total"] = static_cast<double>(traces);
}
BENCHMARK(BM_LiveSuspectsGoQuiet)->Arg(10)->Arg(40)->Arg(160);

}  // namespace

BENCHMARK_MAIN();
