// Experiment §5: cost of computing back information.
//
// Ablation of §5.1 (independent tracing per suspected inref, O(ni * n)
// worst case) against §5.2 (single bottom-up Tarjan pass with memoized
// unions, near-linear): object visits, edges scanned, and wall time on the
// adversarial shapes the paper discusses — shared chains (every inref
// reaches the same tail), strongly connected components (back edges), and
// wide fans.
#include <benchmark/benchmark.h>

#include <set>

#include "backinfo/outset_store.h"
#include "backinfo/suspect_trace.h"
#include "store/heap.h"

namespace {

using namespace dgc;

struct BenchEnv {
  std::set<ObjectId> clean_objects;
  bool ObjectIsCleanMarked(ObjectId id) const {
    return clean_objects.contains(id);
  }
  bool OutrefIsClean(ObjectId) const { return false; }
  void OnSuspectMarked(ObjectId) {}
};

/// ni suspected inrefs all feeding one shared chain of n objects ending in a
/// remote ref: §5.1 retraces the chain per inref.
struct SharedChain {
  Heap heap{0};
  std::vector<ObjectId> roots;

  SharedChain(std::size_t inrefs, std::size_t chain) {
    std::vector<ObjectId> tail;
    for (std::size_t i = 0; i < chain; ++i) tail.push_back(heap.Allocate(1));
    for (std::size_t i = 0; i + 1 < chain; ++i) {
      heap.SetSlot(tail[i], 0, tail[i + 1]);
    }
    heap.SetSlot(tail.back(), 0, ObjectId{1, 1});  // remote
    for (std::size_t i = 0; i < inrefs; ++i) {
      const ObjectId root = heap.Allocate(1);
      heap.SetSlot(root, 0, tail.front());
      roots.push_back(root);
    }
  }
};

void BM_BackInfo_BottomUp_SharedChain(benchmark::State& state) {
  SharedChain world(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)));
  SuspectTraceStats last{};
  for (auto _ : state) {
    BenchEnv env;
    OutsetStore store;
    BottomUpOutsetComputer<BenchEnv> computer(world.heap, store, env);
    for (const ObjectId root : world.roots) {
      benchmark::DoNotOptimize(computer.TraceFrom(root));
    }
    last = computer.stats();
  }
  state.counters["inrefs"] = static_cast<double>(state.range(0));
  state.counters["objects"] = static_cast<double>(world.heap.object_count());
  state.counters["object_visits"] = static_cast<double>(last.object_visits);
  state.counters["edges"] = static_cast<double>(last.edges_scanned);
}

void BM_BackInfo_Independent_SharedChain(benchmark::State& state) {
  SharedChain world(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)));
  SuspectTraceStats last{};
  for (auto _ : state) {
    BenchEnv env;
    IndependentOutsetTracer<BenchEnv> tracer(world.heap, env);
    for (const ObjectId root : world.roots) {
      benchmark::DoNotOptimize(tracer.TraceFrom(root));
    }
    last = tracer.stats();
  }
  state.counters["inrefs"] = static_cast<double>(state.range(0));
  state.counters["objects"] = static_cast<double>(world.heap.object_count());
  state.counters["object_visits"] = static_cast<double>(last.object_visits);
  state.counters["edges"] = static_cast<double>(last.edges_scanned);
}

#define CHAIN_ARGS \
  Args({4, 1000})->Args({16, 1000})->Args({64, 1000})->Args({64, 10000})
BENCHMARK(BM_BackInfo_BottomUp_SharedChain)->CHAIN_ARGS;
BENCHMARK(BM_BackInfo_Independent_SharedChain)->CHAIN_ARGS;

/// One big strongly connected component of n objects (ring + chords) with k
/// remote refs sprinkled in, entered from ni inrefs: exercises the Tarjan
/// leader/outset sharing (Figure 4 generalized).
struct BigScc {
  Heap heap{0};
  std::vector<ObjectId> roots;

  BigScc(std::size_t inrefs, std::size_t n) {
    std::vector<ObjectId> ring;
    for (std::size_t i = 0; i < n; ++i) ring.push_back(heap.Allocate(3));
    for (std::size_t i = 0; i < n; ++i) {
      heap.SetSlot(ring[i], 0, ring[(i + 1) % n]);
      heap.SetSlot(ring[i], 1, ring[(i + n / 3) % n]);  // chord
      if (i % 16 == 0) {
        heap.SetSlot(ring[i], 2, ObjectId{1, i});  // remote ref
      }
    }
    for (std::size_t i = 0; i < inrefs; ++i) {
      const ObjectId root = heap.Allocate(1);
      heap.SetSlot(root, 0, ring[(i * 7) % n]);
      roots.push_back(root);
    }
  }
};

void BM_BackInfo_BottomUp_Scc(benchmark::State& state) {
  BigScc world(static_cast<std::size_t>(state.range(0)),
               static_cast<std::size_t>(state.range(1)));
  SuspectTraceStats last{};
  std::size_t distinct = 0;
  for (auto _ : state) {
    BenchEnv env;
    OutsetStore store;
    BottomUpOutsetComputer<BenchEnv> computer(world.heap, store, env);
    for (const ObjectId root : world.roots) {
      benchmark::DoNotOptimize(computer.TraceFrom(root));
    }
    last = computer.stats();
    distinct = store.distinct_outsets();
  }
  state.counters["inrefs"] = static_cast<double>(state.range(0));
  state.counters["objects"] = static_cast<double>(world.heap.object_count());
  state.counters["object_visits"] = static_cast<double>(last.object_visits);
  state.counters["distinct_outsets"] = static_cast<double>(distinct);
}

void BM_BackInfo_Independent_Scc(benchmark::State& state) {
  BigScc world(static_cast<std::size_t>(state.range(0)),
               static_cast<std::size_t>(state.range(1)));
  SuspectTraceStats last{};
  for (auto _ : state) {
    BenchEnv env;
    IndependentOutsetTracer<BenchEnv> tracer(world.heap, env);
    for (const ObjectId root : world.roots) {
      benchmark::DoNotOptimize(tracer.TraceFrom(root));
    }
    last = tracer.stats();
  }
  state.counters["inrefs"] = static_cast<double>(state.range(0));
  state.counters["objects"] = static_cast<double>(world.heap.object_count());
  state.counters["object_visits"] = static_cast<double>(last.object_visits);
}

#define SCC_ARGS Args({4, 2000})->Args({16, 2000})->Args({64, 2000})
BENCHMARK(BM_BackInfo_BottomUp_Scc)->SCC_ARGS;
BENCHMARK(BM_BackInfo_Independent_Scc)->SCC_ARGS;

}  // namespace

BENCHMARK_MAIN();
