// Experiment §4.7: multiple concurrent back traces.
//
// The paper argues overlap is unlikely (one ioref crosses D2 first and its
// trace sweeps the cycle before others trigger) and harmless when it
// happens. Measures: traces started when all sites trigger simultaneously,
// message overhead versus the single-trace baseline, and correctness.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace dgc;

void BM_Concurrent_SimultaneousTriggers(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  const std::size_t initiators = static_cast<std::size_t>(state.range(1));
  std::uint64_t messages = 0;
  std::uint64_t garbage_outcomes = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;
  double cache_hit_rate = 0.0;
  bool collected = false;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length = static_cast<Distance>(sites + 2);
    config.enable_back_tracing = false;
    NetworkConfig net;
    net.latency = 20;  // slow enough that traces genuinely overlap
    System system(sites, config, net);
    const auto cycle = workload::BuildCycle(
        system, {.sites = sites, .objects_per_site = 1});
    system.RunRounds(sites + 10);
    system.network().ResetStats();
    for (std::size_t i = 0; i < initiators; ++i) {
      Site& site = system.site(static_cast<SiteId>(i));
      site.back_tracer().StartTrace(site.tables().outrefs().begin()->first);
    }
    system.SettleNetwork();
    messages = system.network().stats().inter_site_sent;
    batches = system.network().stats().count_of<BackCallBatchMsg>();
    const BackTracerStats bt = system.AggregateBackTracerStats();
    garbage_outcomes = bt.traces_completed_garbage;
    coalesced = bt.branches_coalesced;
    const std::uint64_t lookups = bt.cache_hits + bt.cache_misses;
    cache_hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(bt.cache_hits) /
                           static_cast<double>(lookups);
    system.RunRounds(3);
    collected = true;
    for (const ObjectId id : cycle.objects) {
      if (system.ObjectExists(id)) collected = false;
    }
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["initiators"] = static_cast<double>(initiators);
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["single_trace_formula"] =
      static_cast<double>(2 * sites + sites - 1);
  state.counters["garbage_outcomes"] = static_cast<double>(garbage_outcomes);
  state.counters["collected"] = collected ? 1.0 : 0.0;
  // One multi-suspect cycle per run: inter-site back messages spent per
  // collected cycle. bench_compare.py gates on this (lower is better).
  state.counters["msgs_per_cycle"] = static_cast<double>(messages);
  state.counters["call_batches"] = static_cast<double>(batches);
  state.counters["branches_coalesced"] = static_cast<double>(coalesced);
  state.counters["cache_hit_rate"] = cache_hit_rate;
}
BENCHMARK(BM_Concurrent_SimultaneousTriggers)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({8, 8});

// Natural triggering (no forced simultaneity): how many traces actually
// start per collected cycle when distances trigger organically — the
// paper's claim that the first trace usually wins.
void BM_Concurrent_NaturalTriggering(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  std::uint64_t traces_started = 0;
  std::uint64_t messages = 0;
  double cache_hit_rate = 0.0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length = static_cast<Distance>(sites);
    System system(sites, config);
    const auto cycle = workload::BuildCycle(
        system, {.sites = sites, .objects_per_site = 1});
    system.network().ResetStats();
    dgc::bench::RoundsUntilCollected(system, cycle, 80);
    const BackTracerStats bt = system.AggregateBackTracerStats();
    traces_started = bt.traces_started;
    const NetworkStats& net = system.network().stats();
    messages = net.count_of<BackLocalCallMsg>() +
               net.count_of<BackCallBatchMsg>() +
               net.count_of<BackReplyMsg>() + net.count_of<BackReportMsg>();
    const std::uint64_t lookups = bt.cache_hits + bt.cache_misses;
    cache_hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(bt.cache_hits) /
                           static_cast<double>(lookups);
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["traces_per_cycle"] = static_cast<double>(traces_started);
  state.counters["msgs_per_cycle"] = static_cast<double>(messages);
  state.counters["cache_hit_rate"] = cache_hit_rate;
}
BENCHMARK(BM_Concurrent_NaturalTriggering)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Many disjoint cycles collected in parallel: aggregate messages scale
// linearly with the number of cycles (each trace stays local to its cycle).
void BM_Concurrent_DisjointCycles(benchmark::State& state) {
  const std::size_t pairs = static_cast<std::size_t>(state.range(0));
  std::uint64_t messages = 0;
  bool all_collected = false;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    System system(2 * pairs, config);
    std::vector<workload::CycleHandles> cycles;
    for (std::size_t p = 0; p < pairs; ++p) {
      cycles.push_back(workload::BuildCycle(
          system, {.sites = 2,
                   .objects_per_site = 1,
                   .first_site = static_cast<SiteId>(2 * p)}));
    }
    system.network().ResetStats();
    system.RunRounds(20);
    messages = system.network().stats().count_of<BackLocalCallMsg>() +
               system.network().stats().count_of<BackCallBatchMsg>() +
               system.network().stats().count_of<BackReplyMsg>() +
               system.network().stats().count_of<BackReportMsg>();
    all_collected = true;
    for (const auto& cycle : cycles) {
      for (const ObjectId id : cycle.objects) {
        if (system.ObjectExists(id)) all_collected = false;
      }
    }
  }
  state.counters["cycles"] = static_cast<double>(pairs);
  state.counters["backtrace_messages"] = static_cast<double>(messages);
  state.counters["per_cycle"] =
      static_cast<double>(messages) / static_cast<double>(pairs);
  state.counters["msgs_per_cycle"] =
      static_cast<double>(messages) / static_cast<double>(pairs);
  state.counters["all_collected"] = all_collected ? 1.0 : 0.0;
}
BENCHMARK(BM_Concurrent_DisjointCycles)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  return dgc::bench::RunBenchmarksWithDefaultOut(argc, argv,
                                                 "BENCH_trace_concurrent.json");
}
