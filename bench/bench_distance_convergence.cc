// Experiment §3: the distance heuristic.
//
//   * Theorem: if every site containing a garbage cycle traces once per
//     round, then after d rounds every estimated distance in the cycle is at
//     least d — measured as min-distance-per-round on rings of varying size.
//   * Threshold tradeoff: higher suspicion thresholds delay detection
//     (rounds until all cycle iorefs are suspected grows with D) but
//     suppress false suspects among live objects.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace dgc;

// Rounds until every ioref on a garbage ring exceeds the suspicion
// threshold, for ring size x threshold sweeps.
void BM_RoundsUntilSuspected(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  const Distance threshold = static_cast<Distance>(state.range(1));
  std::size_t rounds_needed = 0;
  Distance min_distance_after = 0;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = threshold;
    config.enable_back_tracing = false;
    System system(sites, config);
    const auto cycle = workload::BuildCycle(
        system, {.sites = sites, .objects_per_site = 1});
    rounds_needed = 0;
    for (std::size_t round = 1; round <= 200; ++round) {
      system.RunRound();
      bool all_suspected = true;
      Distance minimum = kDistanceInfinity;
      for (const ObjectId obj : cycle.objects) {
        const InrefEntry* inref = system.site(obj.site).tables().FindInref(obj);
        const Distance d = inref->distance();
        minimum = std::min(minimum, d);
        if (d <= threshold) all_suspected = false;
      }
      min_distance_after = minimum;
      if (all_suspected) {
        rounds_needed = round;
        break;
      }
    }
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["threshold_D"] = static_cast<double>(threshold);
  state.counters["rounds_until_all_suspected"] =
      static_cast<double>(rounds_needed);
  state.counters["min_distance_at_detection"] =
      static_cast<double>(min_distance_after);
}
BENCHMARK(BM_RoundsUntilSuspected)
    ->Args({2, 2})
    ->Args({2, 8})
    ->Args({2, 32})
    ->Args({8, 2})
    ->Args({8, 8})
    ->Args({8, 32})
    ->Args({16, 8})
    ->Args({32, 8});

// The theorem itself: after d rounds, min estimated distance >= d.
void BM_TheoremMinDistancePerRound(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  bool theorem_holds = true;
  Distance final_min = 0;
  const std::size_t rounds = 24;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 4;
    config.enable_back_tracing = false;
    System system(sites, config);
    const auto cycle = workload::BuildCycle(
        system, {.sites = sites, .objects_per_site = 2});
    theorem_holds = true;
    for (std::size_t round = 1; round <= rounds; ++round) {
      system.RunRound();
      Distance minimum = kDistanceInfinity;
      for (const ObjectId obj : cycle.objects) {
        if (const InrefEntry* inref =
                system.site(obj.site).tables().FindInref(obj)) {
          minimum = std::min(minimum, inref->distance());
        }
      }
      final_min = minimum;
      if (minimum < round) theorem_holds = false;
    }
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["final_min_distance"] = static_cast<double>(final_min);
  state.counters["theorem_holds"] = theorem_holds ? 1.0 : 0.0;
}
BENCHMARK(BM_TheoremMinDistancePerRound)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Accuracy: live objects at true distance k are false suspects iff k > D.
// Sweeps D on a world with live chains of depth 1..8; reports how many live
// iorefs are suspected (lower is better) — the paper's "accuracy can be
// controlled arbitrarily".
void BM_FalseSuspectsVsThreshold(benchmark::State& state) {
  const Distance threshold = static_cast<Distance>(state.range(0));
  std::size_t live_suspects = 0;
  std::size_t live_iorefs = 0;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = threshold;
    config.enable_back_tracing = false;
    System system(4, config);
    // Live chains of depth 1..8 hops from a root.
    const ObjectId root = system.NewObject(0, 8);
    system.SetPersistentRoot(root);
    for (int depth = 1; depth <= 8; ++depth) {
      workload::AttachChain(system, root, depth - 1, depth);
    }
    system.RunRounds(12);
    live_suspects = 0;
    live_iorefs = 0;
    for (SiteId s = 0; s < 4; ++s) {
      for (const auto& [obj, entry] : system.site(s).tables().inrefs()) {
        (void)obj;
        ++live_iorefs;
        if (!entry.clean(threshold)) ++live_suspects;
      }
    }
  }
  state.counters["threshold_D"] = static_cast<double>(threshold);
  state.counters["live_inrefs"] = static_cast<double>(live_iorefs);
  state.counters["false_suspects"] = static_cast<double>(live_suspects);
}
BENCHMARK(BM_FalseSuspectsVsThreshold)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
