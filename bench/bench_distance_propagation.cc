// Low-churn soak for incremental distance propagation (ISSUE: bounded-repair
// distance labels instead of Theta(heap) re-propagation per topology change).
//
// Twin systems run the same low-churn workload — well under 1% of each
// site's objects mutate per epoch — one twin re-deriving every distance
// label with a full forward propagation per trace (the classic collector),
// one maintaining labels in place with bounded repairs and serving traces
// from them. The bench checks the twins agree on every verdict (objects
// stored and reclaimed, safety) and reports what the repairs saved:
//
//   * relabel_reduction      — full twin's label writes (its per-trace marks)
//     over the incremental twin's objects_relabeled, repairs and fallback
//     rebuilds included (the ISSUE acceptance bar is >= 10x);
//   * relabeled_per_mutation — label writes per mutation event, the bounded-
//     repair cost the tentpole is named for;
//   * fallback_rate          — fraction of label-plane traces that fell back
//     to a full rebuild (crash restarts, budget blowouts, breaches);
//   * repair_wall_speedup    — full twin's trace wall time over the
//     incremental twin's.
//
// A second benchmark sweeps the incremental_trace x mark_threads matrix with
// the knob on, and a third forces crash-restart fallbacks mid-soak. Emits
// BENCH_distance.json by default for bench_compare.py --check-distance.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/system.h"

namespace {

using namespace dgc;

constexpr std::size_t kChainLength = 3;
constexpr std::size_t kEpochs = 32;
constexpr std::size_t kWarmupEpochs = 8;  // distance convergence, first plane

/// One rooted container per site; each container slot holds a private chain
/// of kChainLength objects, and every eighth chain tail also references the
/// next site's container (steady cross-site inrefs/outrefs so the support
/// index earns its keep).
std::vector<ObjectId> BuildWorld(System& system, std::size_t slots_per_site) {
  std::vector<ObjectId> containers;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    containers.push_back(system.NewObject(s, slots_per_site));
    system.SetPersistentRoot(containers.back());
  }
  for (SiteId s = 0; s < system.site_count(); ++s) {
    for (std::size_t slot = 0; slot < slots_per_site; ++slot) {
      ObjectId prev = kInvalidObject;
      for (std::size_t i = 0; i < kChainLength; ++i) {
        const ObjectId obj = system.NewObject(s, 1);
        if (i == 0) {
          system.Wire(containers[s], slot, obj);
        } else {
          system.Wire(prev, 0, obj);
        }
        prev = obj;
      }
      if (slot % 8 == 0) {
        const SiteId next =
            static_cast<SiteId>((s + 1) % system.site_count());
        system.Wire(prev, 0, containers[next]);
      }
    }
  }
  return containers;
}

/// Rewires a handful of container slots on one site: the old chain becomes
/// garbage (swept by that site's next trace) and a fresh chain replaces it.
/// Touches well under 1% of the site's objects. Returns the mutation count.
std::size_t MutateSite(System& system, ObjectId container,
                       std::size_t slots_per_site, Rng& rng) {
  const std::size_t rewires = std::max<std::size_t>(1, slots_per_site / 128);
  for (std::size_t r = 0; r < rewires; ++r) {
    const std::size_t slot = rng.NextBelow(slots_per_site);
    system.Unwire(container, slot);
    ObjectId prev = kInvalidObject;
    for (std::size_t i = 0; i < kChainLength; ++i) {
      const ObjectId obj = system.NewObject(container.site, 1);
      if (i == 0) {
        system.Wire(container, slot, obj);
      } else {
        system.Wire(prev, 0, obj);
      }
      prev = obj;
    }
  }
  return rewires;
}

struct SoakTotals {
  std::uint64_t marked = 0;
  std::uint64_t relabeled = 0;
  std::uint64_t repairs = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t serves = 0;
  std::uint64_t traces = 0;
  std::uint64_t wall_ns = 0;
};

SoakTotals Totals(const System& system) {
  SoakTotals t;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const SiteStats& stats = system.site(s).stats();
    t.marked += stats.objects_marked;
    t.relabeled += stats.objects_relabeled;
    t.repairs += stats.distance_repairs;
    t.fallbacks += stats.distance_fallbacks;
    t.serves += stats.label_serves;
    t.traces += stats.local_traces;
    t.wall_ns += stats.trace_wall_ns;
  }
  return t;
}

SoakTotals Delta(const SoakTotals& end, const SoakTotals& base) {
  return {end.marked - base.marked,     end.relabeled - base.relabeled,
          end.repairs - base.repairs,   end.fallbacks - base.fallbacks,
          end.serves - base.serves,     end.traces - base.traces,
          end.wall_ns - base.wall_ns};
}

void ReportSoak(benchmark::State& state, const SoakTotals& full,
                const SoakTotals& inc, std::size_t mutations) {
  const double epochs = static_cast<double>(kEpochs - kWarmupEpochs);
  state.counters["full_marked_per_epoch"] =
      static_cast<double>(full.marked) / epochs;
  state.counters["inc_relabeled_per_epoch"] =
      static_cast<double>(inc.relabeled) / epochs;
  state.counters["relabel_reduction"] =
      static_cast<double>(full.marked) /
      static_cast<double>(inc.relabeled ? inc.relabeled : 1);
  state.counters["relabeled_per_mutation"] =
      static_cast<double>(inc.relabeled) /
      static_cast<double>(mutations ? mutations : 1);
  state.counters["fallback_rate"] =
      static_cast<double>(inc.fallbacks) /
      static_cast<double>(inc.traces ? inc.traces : 1);
  state.counters["label_serve_rate"] =
      static_cast<double>(inc.serves) /
      static_cast<double>(inc.traces ? inc.traces : 1);
  state.counters["repair_wall_speedup"] =
      static_cast<double>(full.wall_ns) /
      static_cast<double>(inc.wall_ns ? inc.wall_ns : 1);
}

/// Runs the twin soak and returns (full deltas, inc deltas, mutations).
/// `crash_epoch` (nonzero) crash-restarts one incremental-twin site mid-soak
/// on both twins, forcing the fallback path into the measured window.
void RunSoak(benchmark::State& state, const CollectorConfig& inc_config,
             std::size_t sites, std::size_t slots_per_site,
             std::size_t crash_epoch = 0) {
  CollectorConfig full_config = bench::DefaultConfig();
  full_config.mark_threads = inc_config.mark_threads;

  SoakTotals full_totals{}, inc_totals{};
  std::size_t mutations = 0;
  for (auto _ : state) {
    System full(sites, full_config, {}, /*seed=*/29);
    System inc(sites, inc_config, {}, /*seed=*/29);
    const std::vector<ObjectId> full_containers =
        BuildWorld(full, slots_per_site);
    const std::vector<ObjectId> inc_containers =
        BuildWorld(inc, slots_per_site);

    SoakTotals full_base{}, inc_base{};
    Rng full_rng(113), inc_rng(113);
    mutations = 0;
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      if (epoch == kWarmupEpochs) {
        full_base = Totals(full);
        inc_base = Totals(inc);
      }
      if (crash_epoch != 0 && epoch == crash_epoch) {
        full.site(0).CrashRestart();
        inc.site(0).CrashRestart();
      }
      // Every other epoch one site (rotating) takes its sub-1% of churn.
      if (epoch % 2 == 0) {
        const std::size_t victim = (epoch / 2) % sites;
        MutateSite(full, full_containers[victim], slots_per_site, full_rng);
        const std::size_t rewires =
            MutateSite(inc, inc_containers[victim], slots_per_site, inc_rng);
        if (epoch >= kWarmupEpochs) mutations += rewires;
      }
      full.RunRound();
      inc.RunRound();
    }

    // Identical verdicts and sweeps, or the numbers above mean nothing.
    DGC_CHECK(full.TotalObjects() == inc.TotalObjects());
    DGC_CHECK(full.TotalObjectsReclaimed() == inc.TotalObjectsReclaimed());
    DGC_CHECK(full.CheckSafety().empty() && inc.CheckSafety().empty());

    full_totals = Delta(Totals(full), full_base);
    inc_totals = Delta(Totals(inc), inc_base);
  }
  ReportSoak(state, full_totals, inc_totals, mutations);
}

void BM_LowChurnSoak(benchmark::State& state) {
  CollectorConfig inc_config = bench::DefaultConfig();
  inc_config.incremental_distance = true;
  RunSoak(state, inc_config, static_cast<std::size_t>(state.range(0)),
          static_cast<std::size_t>(state.range(1)));
}
BENCHMARK(BM_LowChurnSoak)
    ->Args({16, 128})
    ->Args({16, 512})
    ->Args({32, 256})
    ->Unit(benchmark::kMillisecond);

// The composition matrix: incremental distance under incremental traces
// and/or parallel marking must keep its verdicts and its savings per cell.
void BM_ConfigMatrix(benchmark::State& state) {
  CollectorConfig inc_config = bench::DefaultConfig();
  inc_config.incremental_distance = true;
  inc_config.incremental_trace = state.range(0) != 0;
  inc_config.mark_threads = static_cast<std::size_t>(state.range(1));
  RunSoak(state, inc_config, /*sites=*/16, /*slots_per_site=*/128);
}
BENCHMARK(BM_ConfigMatrix)
    ->ArgNames({"inc_trace", "mark_threads"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond);

// Crash-restart mid-soak: the label plane on the restarted site must fall
// back to one full rebuild (a nonzero fallback_rate) and then resume
// repairing, with the twins still agreeing on everything.
void BM_CrashRestartFallback(benchmark::State& state) {
  CollectorConfig inc_config = bench::DefaultConfig();
  inc_config.incremental_distance = true;
  RunSoak(state, inc_config, /*sites=*/16, /*slots_per_site=*/128,
          /*crash_epoch=*/kWarmupEpochs + 5);
}
BENCHMARK(BM_CrashRestartFallback)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dgc::bench::RunBenchmarksWithDefaultOut(argc, argv,
                                                 "BENCH_distance.json");
}
