// End-to-end experiment: the whole system on realistic workloads.
//
//   * Hypertext webs (the paper's motivating example: documents form large,
//     complex inter-site cycles): rounds and messages until the unrooted
//     half of the web is fully reclaimed, with safety/completeness checks.
//   * Steady-state overhead: per-round message cost of the scheme on a
//     purely live world (the price of distances + back thresholds when
//     there is nothing to collect).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"

namespace {

using namespace dgc;

void BM_EndToEnd_HypertextWeb(benchmark::State& state) {
  const std::size_t documents = static_cast<std::size_t>(state.range(0));
  std::size_t rounds_needed = 0;
  std::uint64_t messages = 0;
  bool safe = false, complete = false;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 3;
    config.estimated_cycle_length =
        static_cast<Distance>(documents);  // webs have long cycles
    System system(4, config, NetworkConfig{}, /*seed=*/5);
    Rng rng(17);
    workload::HypertextSpec spec;
    spec.sites = 4;
    spec.documents = documents;
    spec.sections_per_document = 3;
    spec.links_per_document = 3;
    spec.rooted_fraction = 0.5;
    workload::BuildHypertextWeb(system, spec, rng);
    const std::size_t live = system.ComputeLiveSet().size();
    system.network().ResetStats();
    rounds_needed = 120;
    for (std::size_t round = 1; round <= 120; ++round) {
      system.RunRound();
      if (system.TotalObjects() == live) {
        rounds_needed = round;
        break;
      }
    }
    messages = system.network().stats().inter_site_sent;
    safe = system.CheckSafety().empty();
    complete = system.CheckCompleteness().empty();
  }
  state.counters["documents"] = static_cast<double>(documents);
  state.counters["rounds_to_clean"] = static_cast<double>(rounds_needed);
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["safe"] = safe ? 1.0 : 0.0;
  state.counters["complete"] = complete ? 1.0 : 0.0;
}
BENCHMARK(BM_EndToEnd_HypertextWeb)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EndToEnd_SteadyStateOverhead(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  std::uint64_t messages_per_round = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    System system(sites, config, NetworkConfig{}, /*seed=*/3);
    Rng rng(23);
    workload::RandomGraphSpec spec;
    spec.sites = sites;
    spec.objects_per_site = 50;
    spec.remote_edge_fraction = 0.15;
    const auto objects = workload::BuildRandomGraph(system, spec, rng);
    for (std::size_t i = 0; i < objects.size(); i += 10) {
      system.SetPersistentRoot(objects[i]);
    }
    system.RunRounds(12);  // reach steady state (garbage gone, distances set)
    system.network().ResetStats();
    system.RunRounds(8);
    messages_per_round = system.network().stats().inter_site_sent / 8;
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["steady_messages_per_round"] =
      static_cast<double>(messages_per_round);
}
BENCHMARK(BM_EndToEnd_SteadyStateOverhead)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_EndToEnd_RandomWorldReclamation(benchmark::State& state) {
  const std::uint64_t seed = static_cast<std::uint64_t>(state.range(0));
  std::size_t garbage = 0, rounds_needed = 0;
  bool safe = false, complete = false;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 3;
    config.estimated_cycle_length = 8;
    System system(6, config, NetworkConfig{}, seed);
    Rng rng(seed * 31);
    workload::RandomGraphSpec spec;
    spec.sites = 6;
    spec.objects_per_site = 80;
    spec.remote_edge_fraction = 0.25;
    const auto objects = workload::BuildRandomGraph(system, spec, rng);
    for (const ObjectId id : objects) {
      if (rng.NextBool(0.04)) system.SetPersistentRoot(id);
    }
    const std::size_t live = system.ComputeLiveSet().size();
    garbage = system.TotalObjects() - live;
    rounds_needed = 100;
    for (std::size_t round = 1; round <= 100; ++round) {
      system.RunRound();
      if (system.TotalObjects() == live) {
        rounds_needed = round;
        break;
      }
    }
    safe = system.CheckSafety().empty();
    complete = system.CheckCompleteness().empty();
  }
  state.counters["garbage_objects"] = static_cast<double>(garbage);
  state.counters["rounds_to_clean"] = static_cast<double>(rounds_needed);
  state.counters["safe"] = safe ? 1.0 : 0.0;
  state.counters["complete"] = complete ? 1.0 : 0.0;
}
BENCHMARK(BM_EndToEnd_RandomWorldReclamation)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
