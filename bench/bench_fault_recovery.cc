// Fault recovery: time-to-collect for a 4-site garbage ring over reliable
// channels, at 0% loss (the retransmit machinery must be nearly free) and
// under sustained message loss (retransmission must keep the collection
// finite and within a small factor of the lossless baseline).
//
// Emits BENCH_fault_recovery.json; scripts/bench_compare.py gates the
// counters both relatively (rounds/time vs a stored baseline) and absolutely
// (--check-fault-recovery: retransmit_overhead at 0% loss, collected and
// ttc_ratio_vs_lossless under loss).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace dgc;

struct RecoveryRun {
  std::size_t rounds = 0;
  SimTime ticks = 0;
  bool collected = false;
  double retransmit_overhead = 0.0;
};

RecoveryRun CollectRingUnderLoss(double loss) {
  CollectorConfig config = dgc::bench::DefaultConfig();
  config.update_refresh_period = 3;
  NetworkConfig net;
  net.latency = 5;
  net.reliable_delivery = true;  // timeouts derived from the latency profile
  net.drop_probability = loss;
  System system(4, config, net, /*seed=*/42);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 4, .objects_per_site = 1});
  const ObjectId live = system.NewObject(0, 0);
  system.SetPersistentRoot(live);

  RecoveryRun run;
  run.rounds = dgc::bench::RoundsUntilCollected(system, cycle, 120);
  run.collected = !system.ObjectExists(cycle.head());
  run.ticks = system.scheduler().now();
  const NetworkStats& stats = system.network().stats();
  run.retransmit_overhead =
      static_cast<double>(stats.retransmits) /
      static_cast<double>(stats.inter_site_sent > 0 ? stats.inter_site_sent
                                                    : 1);
  return run;
}

void BM_FaultRecovery_GarbageRing(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  RecoveryRun run;
  RecoveryRun lossless;
  for (auto _ : state) {
    run = CollectRingUnderLoss(loss);
    lossless = loss > 0.0 ? CollectRingUnderLoss(0.0) : run;
  }
  state.counters["loss_pct"] = static_cast<double>(state.range(0));
  state.counters["rounds_to_collect"] = static_cast<double>(run.rounds);
  state.counters["time_to_collect"] = static_cast<double>(run.ticks);
  state.counters["collected"] = run.collected ? 1.0 : 0.0;
  state.counters["retransmit_overhead"] = run.retransmit_overhead;
  if (loss > 0.0) {
    state.counters["ttc_ratio_vs_lossless"] =
        lossless.ticks > 0
            ? static_cast<double>(run.ticks) /
                  static_cast<double>(lossless.ticks)
            : 0.0;
  }
}
BENCHMARK(BM_FaultRecovery_GarbageRing)->Arg(0)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  return dgc::bench::RunBenchmarksWithDefaultOut(argc, argv,
                                                 "BENCH_fault_recovery.json");
}
