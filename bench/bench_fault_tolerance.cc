// Experiment §1/§7 (locality under faults): a crashed site must delay only
// the garbage reachable from its objects.
//
// World: two disjoint 2-site garbage rings, A on sites {0,1} and B on sites
// {2,3}; site 3 is crashed. Back tracing still collects ring A (and ring B
// after recovery); the global schemes collect NOTHING while any site is
// down.
#include <benchmark/benchmark.h>

#include "baselines/global_trace.h"
#include "baselines/hughes.h"
#include "bench_util.h"

namespace {

using namespace dgc;

struct TwoRings {
  workload::CycleHandles a, b;
};

TwoRings BuildTwoRings(System& system) {
  TwoRings rings;
  rings.a = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
  rings.b = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 2});
  return rings;
}

bool Gone(const System& system, const workload::CycleHandles& cycle) {
  for (const ObjectId id : cycle.objects) {
    if (system.ObjectExists(id)) return false;
  }
  return true;
}

void BM_Faults_BackTracing(benchmark::State& state) {
  bool a_collected = false, b_blocked = false, b_after_recovery = false;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.back_call_timeout = 300;
    config.report_timeout = 3000;
    System system(4, config);
    const TwoRings rings = BuildTwoRings(system);
    system.network().SetSiteDown(3, true);
    system.RunRounds(25);
    a_collected = Gone(system, rings.a);
    b_blocked = !Gone(system, rings.b);  // delayed, safely
    system.network().SetSiteDown(3, false);
    system.RunRounds(30);
    b_after_recovery = Gone(system, rings.b);
  }
  state.counters["ringA_collected_during_crash"] = a_collected ? 1.0 : 0.0;
  state.counters["ringB_safely_delayed"] = b_blocked ? 1.0 : 0.0;
  state.counters["ringB_collected_after_recovery"] =
      b_after_recovery ? 1.0 : 0.0;
}
BENCHMARK(BM_Faults_BackTracing);

void BM_Faults_GlobalTrace(benchmark::State& state) {
  bool anything_collected = true;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(4, config);
    BuildTwoRings(system);
    system.network().SetSiteDown(3, true);
    baselines::GlobalTraceCollector collector(system);
    const auto stats = collector.RunCycle(/*max_wait=*/30'000);
    anything_collected = stats.completed && stats.objects_swept > 0;
  }
  state.counters["anything_collected_during_crash"] =
      anything_collected ? 1.0 : 0.0;
}
BENCHMARK(BM_Faults_GlobalTrace);

void BM_Faults_Hughes(benchmark::State& state) {
  bool anything_collected = true;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(4, config);
    BuildTwoRings(system);
    baselines::HughesCollector collector(system, /*lag_rounds=*/4);
    system.network().SetSiteDown(3, true);
    for (int round = 0; round < 25; ++round) collector.RunRound();
    anything_collected = collector.stats().objects_swept > 0;
  }
  state.counters["anything_collected_during_crash"] =
      anything_collected ? 1.0 : 0.0;
}
BENCHMARK(BM_Faults_Hughes);

// Message loss: back tracing under a lossy network — collection is delayed
// (timeouts answer Live) but remains safe, and eventually succeeds thanks to
// periodic update refresh and trace retries.
void BM_Faults_BackTracingUnderLoss(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  std::size_t rounds_needed = 0;
  bool safe = true;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.back_call_timeout = 200;
    config.report_timeout = 2000;
    NetworkConfig net;
    net.drop_probability = loss;
    System system(4, config, net, /*seed=*/99);
    const auto cycle = workload::BuildCycle(
        system, {.sites = 4, .objects_per_site = 1});
    const ObjectId live = system.NewObject(0, 0);
    system.SetPersistentRoot(live);
    rounds_needed = dgc::bench::RoundsUntilCollected(system, cycle, 120);
    safe = system.CheckSafety().empty();
  }
  state.counters["loss_pct"] = static_cast<double>(state.range(0));
  state.counters["rounds_to_collect"] = static_cast<double>(rounds_needed);
  state.counters["safe"] = safe ? 1.0 : 0.0;
}
BENCHMARK(BM_Faults_BackTracingUnderLoss)->Arg(0)->Arg(2)->Arg(10)->Arg(25);

}  // namespace

BENCHMARK_MAIN();
