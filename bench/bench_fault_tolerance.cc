// Experiment §1/§7 (locality under faults): a crashed site must delay only
// the garbage reachable from its objects.
//
// World: two disjoint 2-site garbage rings, A on sites {0,1} and B on sites
// {2,3}; site 3 is crashed. Back tracing still collects ring A (and ring B
// after recovery); the global schemes collect NOTHING while any site is
// down.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "baselines/global_trace.h"
#include "baselines/hughes.h"
#include "bench_util.h"

namespace {

using namespace dgc;

struct TwoRings {
  workload::CycleHandles a, b;
};

TwoRings BuildTwoRings(System& system) {
  TwoRings rings;
  rings.a = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
  rings.b = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 2});
  return rings;
}

bool Gone(const System& system, const workload::CycleHandles& cycle) {
  for (const ObjectId id : cycle.objects) {
    if (system.ObjectExists(id)) return false;
  }
  return true;
}

void BM_Faults_BackTracing(benchmark::State& state) {
  bool a_collected = false, b_blocked = false, b_after_recovery = false;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.back_call_timeout = 300;
    config.report_timeout = 3000;
    System system(4, config);
    const TwoRings rings = BuildTwoRings(system);
    system.network().SetSiteDown(3, true);
    system.RunRounds(25);
    a_collected = Gone(system, rings.a);
    b_blocked = !Gone(system, rings.b);  // delayed, safely
    system.network().SetSiteDown(3, false);
    system.RunRounds(30);
    b_after_recovery = Gone(system, rings.b);
  }
  state.counters["ringA_collected_during_crash"] = a_collected ? 1.0 : 0.0;
  state.counters["ringB_safely_delayed"] = b_blocked ? 1.0 : 0.0;
  state.counters["ringB_collected_after_recovery"] =
      b_after_recovery ? 1.0 : 0.0;
}
BENCHMARK(BM_Faults_BackTracing);

void BM_Faults_GlobalTrace(benchmark::State& state) {
  bool anything_collected = true;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(4, config);
    BuildTwoRings(system);
    system.network().SetSiteDown(3, true);
    baselines::GlobalTraceCollector collector(system);
    const auto stats = collector.RunCycle(/*max_wait=*/30'000);
    anything_collected = stats.completed && stats.objects_swept > 0;
  }
  state.counters["anything_collected_during_crash"] =
      anything_collected ? 1.0 : 0.0;
}
BENCHMARK(BM_Faults_GlobalTrace);

void BM_Faults_Hughes(benchmark::State& state) {
  bool anything_collected = true;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(4, config);
    BuildTwoRings(system);
    baselines::HughesCollector collector(system, /*lag_rounds=*/4);
    system.network().SetSiteDown(3, true);
    for (int round = 0; round < 25; ++round) collector.RunRound();
    anything_collected = collector.stats().objects_swept > 0;
  }
  state.counters["anything_collected_during_crash"] =
      anything_collected ? 1.0 : 0.0;
}
BENCHMARK(BM_Faults_Hughes);

// Message loss: back tracing under a lossy network — collection is delayed
// (timeouts answer Live) but remains safe, and eventually succeeds thanks to
// periodic update refresh and trace retries.
void BM_Faults_BackTracingUnderLoss(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  std::size_t rounds_needed = 0;
  bool safe = true;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.back_call_timeout = 200;
    config.report_timeout = 2000;
    NetworkConfig net;
    net.drop_probability = loss;
    System system(4, config, net, /*seed=*/99);
    const auto cycle = workload::BuildCycle(
        system, {.sites = 4, .objects_per_site = 1});
    const ObjectId live = system.NewObject(0, 0);
    system.SetPersistentRoot(live);
    rounds_needed = dgc::bench::RoundsUntilCollected(system, cycle, 120);
    safe = system.CheckSafety().empty();
  }
  state.counters["loss_pct"] = static_cast<double>(state.range(0));
  state.counters["rounds_to_collect"] = static_cast<double>(rounds_needed);
  state.counters["safe"] = safe ? 1.0 : 0.0;
}
BENCHMARK(BM_Faults_BackTracingUnderLoss)->Arg(0)->Arg(2)->Arg(10)->Arg(25);

// Parking vs timeout-only recovery: a back trace is forced while a site on
// its path is down long enough for the failure detector to suspect it. With
// parking off, the remote step is dispatched into the void — the retransmit
// budget exhausts and the waiting frames burn the full back_call_timeout
// into spurious Live verdicts that bump thresholds and delay collection.
// With parking on, the step waits out the outage and resumes into a prompt
// Garbage verdict.
struct ParkingOutcome {
  std::uint64_t spurious_live = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t calls_parked = 0;
  std::size_t rounds_after_heal = 0;
  bool collected = false;
};

ParkingOutcome RunOutageWithParking(bool parking) {
  CollectorConfig config = dgc::bench::DefaultConfig();
  config.park_on_suspected_failure = parking;
  // Wide band between "suspected" and "auto-traced": distances propagate up
  // to a full ring circumference per round, so a narrow band would let the
  // scan start (and finish) the trace before the outage is staged.
  config.estimated_cycle_length = 16;
  // Generous, identical timeouts in both modes: a timeout then only fires
  // for a genuinely unrecoverable loss, which is exactly what the
  // timeout-only mode produces by dispatching into the outage.
  config.back_call_timeout = 200'000;
  config.report_timeout = 500'000;
  config.update_refresh_period = 3;
  NetworkConfig net;
  net.latency = 5;
  net.reliable_delivery = true;
  net.max_retransmit_attempts = 6;
  net.heartbeat_period = 50;
  net.heartbeat_timeout = 60;
  System system(4, config, net, /*seed=*/17);
  const auto cycle =
      workload::BuildCycle(system, {.sites = 4, .objects_per_site = 1});

  // Ripen until every ring outref is suspected (but still below its back
  // threshold, so no trace starts on its own).
  for (int round = 0; round < 10; ++round) {
    system.RunRounds(1);
    Distance min_distance = kDistanceInfinity;
    for (SiteId s = 0; s < 4; ++s) {
      for (const auto& [ref, entry] : system.site(s).tables().outrefs()) {
        (void)ref;
        min_distance = std::min(min_distance, entry.distance);
      }
    }
    if (min_distance > config.suspicion_threshold) break;
  }

  system.network().SetSiteDown(2, true);
  system.AdvanceTime(100);  // past heartbeat_timeout: site 2 is suspected
  // Force the trace from site 0's ring outref: its first remote step goes
  // to site 3, whose back step must then call into the downed site 2.
  system.site(0).back_tracer().StartTrace(cycle.objects[1]);
  system.AdvanceTime(2000);  // park (parking) or exhaust retransmits (not)
  system.network().SetSiteDown(2, false);
  system.SettleNetwork();

  ParkingOutcome outcome;
  outcome.rounds_after_heal =
      dgc::bench::RoundsUntilCollected(system, cycle, 60);
  outcome.collected = !system.ObjectExists(cycle.head());
  const BackTracerStats bt = system.AggregateBackTracerStats();
  outcome.spurious_live = bt.traces_completed_live;
  outcome.timeouts = bt.timeouts;
  outcome.calls_parked = bt.calls_parked;
  return outcome;
}

void BM_Faults_ParkingVsTimeoutOnly(benchmark::State& state) {
  ParkingOutcome parked, timeout_only;
  for (auto _ : state) {
    parked = RunOutageWithParking(true);
    timeout_only = RunOutageWithParking(false);
  }
  state.counters["spurious_live_timeout_only"] =
      static_cast<double>(timeout_only.spurious_live);
  state.counters["spurious_live_with_parking"] =
      static_cast<double>(parked.spurious_live);
  state.counters["spurious_live_avoided"] = static_cast<double>(
      timeout_only.spurious_live - parked.spurious_live);
  state.counters["calls_parked"] = static_cast<double>(parked.calls_parked);
  state.counters["rounds_after_heal_timeout_only"] =
      static_cast<double>(timeout_only.rounds_after_heal);
  state.counters["rounds_after_heal_with_parking"] =
      static_cast<double>(parked.rounds_after_heal);
  state.counters["both_collected"] =
      parked.collected && timeout_only.collected ? 1.0 : 0.0;
}
BENCHMARK(BM_Faults_ParkingVsTimeoutOnly);

}  // namespace

BENCHMARK_MAIN();
