// Experiment Fig.1: locality of local tracing + the cycle it cannot collect,
// plus the raw forward-trace throughput the whole scheme stands on.
//
// Reproduces the Section 2 narrative as measurable rows:
//   * acyclic garbage (d, e) is collected within two rounds via update
//     messages, involving only the sites it is reachable from;
//   * the inter-site cycle {f, g} survives arbitrarily many rounds without
//     back tracing, and is reclaimed with it.
//
// The MarkThroughput pair measures the local trace's marking rate on a
// 100k-object heap: the slab store with epoch side arrays against a replica
// of the historical std::map<index, Object> layout. The run emits
// BENCH_trace.json (google-benchmark JSON) so scripts/bench_compare.py can
// gate regressions in marked-objects/sec across commits.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/system.h"
#include "localgc/local_collector.h"
#include "refs/tables.h"
#include "store/heap.h"
#include "workload/figures.h"

namespace {

dgc::CollectorConfig Config(bool back_tracing) {
  dgc::CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 3;
  config.enable_back_tracing = back_tracing;
  return config;
}

void BM_Fig1_LocalTracingOnly(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  std::size_t leaked = 0;
  for (auto _ : state) {
    dgc::System system(3, Config(false));
    const auto w = dgc::workload::BuildFigure1(system);
    system.RunRounds(rounds);
    leaked = (system.ObjectExists(w.f) ? 1 : 0) +
             (system.ObjectExists(w.g) ? 1 : 0);
    benchmark::DoNotOptimize(leaked);
  }
  state.counters["rounds"] = rounds;
  state.counters["cycle_objects_leaked"] = static_cast<double>(leaked);
}
BENCHMARK(BM_Fig1_LocalTracingOnly)->Arg(2)->Arg(8)->Arg(32);

void BM_Fig1_WithBackTracing(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  std::size_t leaked = 0;
  std::uint64_t traces = 0;
  for (auto _ : state) {
    dgc::System system(3, Config(true));
    const auto w = dgc::workload::BuildFigure1(system);
    system.RunRounds(rounds);
    leaked = (system.ObjectExists(w.f) ? 1 : 0) +
             (system.ObjectExists(w.g) ? 1 : 0);
    traces = system.AggregateBackTracerStats().traces_completed_garbage;
    benchmark::DoNotOptimize(leaked);
  }
  state.counters["rounds"] = rounds;
  state.counters["cycle_objects_leaked"] = static_cast<double>(leaked);
  state.counters["garbage_traces"] = static_cast<double>(traces);
}
BENCHMARK(BM_Fig1_WithBackTracing)->Arg(8)->Arg(16)->Arg(32);

// --- Forward-trace marking throughput --------------------------------------

// Both throughput benches trace the same graph: object 0 is the root, every
// object i links to object i+1 (slot 0, guaranteeing full reachability) and
// to a random earlier object (slot 1, realistic pointer-chasing fan-in).
constexpr std::size_t kMarkObjects = 100'000;

void BM_Fig1_MarkThroughput_SlabHeap(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  dgc::CollectorConfig config;
  dgc::Heap heap(0);
  dgc::RefTables tables(0, config);
  dgc::LocalCollector collector(heap, tables);
  dgc::Rng rng(42);
  std::vector<dgc::ObjectId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.push_back(heap.Allocate(2));
  heap.AddPersistentRoot(ids[0]);
  for (std::size_t i = 0; i + 1 < count; ++i) {
    heap.SetSlot(ids[i], 0, ids[i + 1]);
    if (i > 0) heap.SetSlot(ids[i], 1, ids[rng.NextBelow(i)]);
  }
  std::uint64_t marked_total = 0;
  for (auto _ : state) {
    const dgc::TraceResult result = collector.Run({});
    marked_total += result.stats.objects_marked_clean;
    benchmark::DoNotOptimize(result.stats.objects_marked_clean);
  }
  state.counters["objects"] = static_cast<double>(count);
  state.counters["objects_per_sec"] = benchmark::Counter(
      static_cast<double>(marked_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fig1_MarkThroughput_SlabHeap)
    ->Arg(static_cast<long>(kMarkObjects))
    ->Unit(benchmark::kMillisecond);

// Replica of the historical heap layout — ordered std::map keyed by object
// index, epochs inline in the node — running the identical mark + sweep-scan
// loops the collector used to run against it. The ratio of the two
// objects_per_sec counters is the slab refactor's speedup.
void BM_Fig1_MarkThroughput_MapHeapBaseline(benchmark::State& state) {
  struct MapObject {
    std::vector<std::uint64_t> slots;
    std::uint64_t mark_epoch = 0;
    std::uint64_t clean_epoch = 0;
  };
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  std::map<std::uint64_t, MapObject> heap;
  dgc::Rng rng(42);
  for (std::uint64_t i = 1; i <= count; ++i) {
    MapObject object;
    object.slots.assign(2, 0);  // 0 = null, matching index numbering from 1
    heap.emplace(i, std::move(object));
  }
  for (std::uint64_t i = 1; i < count; ++i) {
    heap.find(i)->second.slots[0] = i + 1;
    if (i > 1) heap.find(i)->second.slots[1] = 1 + rng.NextBelow(i - 1);
  }
  std::uint64_t epoch = 0;
  std::uint64_t marked_total = 0;
  std::vector<std::uint64_t> stack;
  for (auto _ : state) {
    ++epoch;
    std::uint64_t marked = 0;
    MapObject& root = heap.find(1)->second;
    root.mark_epoch = root.clean_epoch = epoch;
    ++marked;
    stack.push_back(1);
    while (!stack.empty()) {
      const std::uint64_t current = stack.back();
      stack.pop_back();
      for (const std::uint64_t target : heap.find(current)->second.slots) {
        if (target == 0) continue;
        MapObject& object = heap.find(target)->second;
        if (object.clean_epoch == epoch) continue;
        object.mark_epoch = object.clean_epoch = epoch;
        ++marked;
        stack.push_back(target);
      }
    }
    // The sweep scan the collector's phase 3 performs.
    std::uint64_t swept = 0;
    for (const auto& [index, object] : heap) {
      if (object.mark_epoch != epoch) ++swept;
    }
    benchmark::DoNotOptimize(swept);
    marked_total += marked;
  }
  state.counters["objects"] = static_cast<double>(count);
  state.counters["objects_per_sec"] = benchmark::Counter(
      static_cast<double>(marked_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fig1_MarkThroughput_MapHeapBaseline)
    ->Arg(static_cast<long>(kMarkObjects))
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: default the file reporter to BENCH_trace.json so every run
// leaves a machine-readable trajectory for scripts/bench_compare.py. An
// explicit --benchmark_out on the command line still wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_trace.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
