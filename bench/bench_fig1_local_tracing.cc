// Experiment Fig.1: locality of local tracing + the cycle it cannot collect.
//
// Reproduces the Section 2 narrative as measurable rows:
//   * acyclic garbage (d, e) is collected within two rounds via update
//     messages, involving only the sites it is reachable from;
//   * the inter-site cycle {f, g} survives arbitrarily many rounds without
//     back tracing, and is reclaimed with it.
#include <benchmark/benchmark.h>

#include "core/system.h"
#include "workload/figures.h"

namespace {

dgc::CollectorConfig Config(bool back_tracing) {
  dgc::CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 3;
  config.enable_back_tracing = back_tracing;
  return config;
}

void BM_Fig1_LocalTracingOnly(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  std::size_t leaked = 0;
  for (auto _ : state) {
    dgc::System system(3, Config(false));
    const auto w = dgc::workload::BuildFigure1(system);
    system.RunRounds(rounds);
    leaked = (system.ObjectExists(w.f) ? 1 : 0) +
             (system.ObjectExists(w.g) ? 1 : 0);
    benchmark::DoNotOptimize(leaked);
  }
  state.counters["rounds"] = rounds;
  state.counters["cycle_objects_leaked"] = static_cast<double>(leaked);
}
BENCHMARK(BM_Fig1_LocalTracingOnly)->Arg(2)->Arg(8)->Arg(32);

void BM_Fig1_WithBackTracing(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  std::size_t leaked = 0;
  std::uint64_t traces = 0;
  for (auto _ : state) {
    dgc::System system(3, Config(true));
    const auto w = dgc::workload::BuildFigure1(system);
    system.RunRounds(rounds);
    leaked = (system.ObjectExists(w.f) ? 1 : 0) +
             (system.ObjectExists(w.g) ? 1 : 0);
    traces = system.AggregateBackTracerStats().traces_completed_garbage;
    benchmark::DoNotOptimize(leaked);
  }
  state.counters["rounds"] = rounds;
  state.counters["cycle_objects_leaked"] = static_cast<double>(leaked);
  state.counters["garbage_traces"] = static_cast<double>(traces);
}
BENCHMARK(BM_Fig1_WithBackTracing)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
