// Experiment Fig.2: insets of suspected outrefs and the start-from-an-outref
// rule. Measures inset computation on the figure's world and confirms the
// trace started from outref c finds both paths (via inrefs a and b), while
// the whole interlocked structure is reclaimed.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/figures.h"

namespace {

using namespace dgc;

void BM_Fig2_InsetComputation(benchmark::State& state) {
  std::size_t inset_of_c = 0;
  std::size_t back_info_elements = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(3, config);
    const auto w = workload::BuildFigure2(system);
    system.RunRounds(8);
    const auto& info = system.site(1).back_info();
    const auto it = info.outref_insets.find(w.c);
    inset_of_c = it == info.outref_insets.end() ? 0 : it->second.size();
    back_info_elements = info.stored_elements();
  }
  state.counters["inset_of_outref_c"] = static_cast<double>(inset_of_c);
  state.counters["paper_expected"] = 2.0;  // {a, b}
  state.counters["site_Q_back_info_elements"] =
      static_cast<double>(back_info_elements);
}
BENCHMARK(BM_Fig2_InsetComputation);

void BM_Fig2_FullCollection(benchmark::State& state) {
  std::size_t rounds_needed = 0;
  std::uint64_t traces = 0;
  for (auto _ : state) {
    System system(3, dgc::bench::DefaultConfig());
    const auto w = workload::BuildFigure2(system);
    rounds_needed = 40;
    for (std::size_t round = 1; round <= 40; ++round) {
      system.RunRound();
      if (!system.ObjectExists(w.a) && !system.ObjectExists(w.b) &&
          !system.ObjectExists(w.c) && !system.ObjectExists(w.d)) {
        rounds_needed = round;
        break;
      }
    }
    traces = system.AggregateBackTracerStats().traces_completed_garbage;
  }
  state.counters["rounds_to_collect"] = static_cast<double>(rounds_needed);
  state.counters["garbage_traces"] = static_cast<double>(traces);
}
BENCHMARK(BM_Fig2_FullCollection);

}  // namespace

BENCHMARK_MAIN();
