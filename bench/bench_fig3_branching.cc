// Experiment Fig.3: a branching back trace. From outref d the trace forks at
// inref c toward sites P and Q; one branch reaches the root path (Live), the
// other closes on a visited ioref (Garbage). Measures branch counts, message
// cost of the aborted Live trace, and that nothing is flagged.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/figures.h"

namespace {

using namespace dgc;

void BM_Fig3_BranchingLiveTrace(benchmark::State& state) {
  std::uint64_t calls = 0, replies = 0;
  bool live = false;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    // D = 1 so b, c and d are suspected while a (distance 1) stays clean —
    // the trace must actually branch at inref c instead of stopping at a
    // clean outref.
    config.suspicion_threshold = 1;
    config.enable_back_tracing = false;
    System system(5, config);
    const auto w = workload::BuildFigure3(system);
    system.RunRounds(10);
    system.network().ResetStats();
    Site& r = system.site(2);
    BackResult outcome = BackResult::kGarbage;
    r.back_tracer().set_outcome_observer(
        [&](const TraceOutcome& result) { outcome = result.result; });
    r.back_tracer().StartTrace(w.d);
    system.SettleNetwork();
    live = outcome == BackResult::kLive;
    calls = system.network().stats().count_of<BackLocalCallMsg>();
    replies = system.network().stats().count_of<BackReplyMsg>();
    frames = system.AggregateBackTracerStats().frames_created;
  }
  state.counters["outcome_live"] = live ? 1.0 : 0.0;
  state.counters["calls"] = static_cast<double>(calls);
  state.counters["replies"] = static_cast<double>(replies);
  state.counters["frames"] = static_cast<double>(frames);
}
BENCHMARK(BM_Fig3_BranchingLiveTrace);

// Widening the branch factor: a hub object c on site 0 forms a two-hop
// garbage cycle with each of k holders on distinct sites (c -> h_i -> c), so
// inref c has k sources and the trace forks k branches at it. Messages grow
// with the edges actually traversed (2k inter-site references), not with
// the system size.
void BM_Fig3_BranchFactorSweep(benchmark::State& state) {
  const std::size_t branches = static_cast<std::size_t>(state.range(0));
  std::uint64_t calls = 0;
  bool garbage = false;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length = 6;
    config.enable_back_tracing = false;
    const std::size_t sites = branches + 2;
    System system(sites, config);
    const ObjectId c = system.NewObject(0, branches + 1);
    const ObjectId d = system.NewObject(1, 0);
    system.Wire(c, 0, d);
    for (std::size_t k = 0; k < branches; ++k) {
      const SiteId hs = static_cast<SiteId>(2 + k);
      const ObjectId holder = system.NewObject(hs, 1);
      system.Wire(c, 1 + k, holder);
      system.Wire(holder, 0, c);
    }
    system.RunRounds(12);
    system.network().ResetStats();
    Site& site0 = system.site(0);
    if (site0.tables().FindOutref(d) == nullptr) continue;
    BackResult outcome = BackResult::kLive;
    site0.back_tracer().set_outcome_observer(
        [&](const TraceOutcome& result) { outcome = result.result; });
    site0.back_tracer().StartTrace(d);
    system.SettleNetwork();
    calls = system.network().stats().count_of<BackLocalCallMsg>();
    garbage = outcome == BackResult::kGarbage;
  }
  state.counters["branches"] = static_cast<double>(branches);
  state.counters["calls"] = static_cast<double>(calls);
  state.counters["expected_calls_2k"] = static_cast<double>(2 * branches);
  state.counters["outcome_garbage"] = garbage ? 1.0 : 0.0;
}
BENCHMARK(BM_Fig3_BranchFactorSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
