// Experiment Fig.4: plain tracing cannot compute inref-to-outref
// reachability; the SCC-aware bottom-up pass can, tracing each object once.
// Runs the figure's exact graph through the full local collector and
// reports the computed outsets plus the trace-cost stats.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/figures.h"

namespace {

using namespace dgc;

void BM_Fig4_OutsetsThroughLocalTrace(benchmark::State& state) {
  const bool close_scc = state.range(0) != 0;
  std::size_t outset_a = 0, outset_b = 0;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 0;  // everything inref'd is suspected
    config.enable_back_tracing = false;
    System system(3, config);
    const auto w = workload::BuildFigure4(system, close_scc);
    system.site(0).StartLocalTrace();
    system.SettleNetwork();
    const auto& info = system.site(0).back_info();
    const auto it_a = info.inref_outsets.find(w.a);
    const auto it_b = info.inref_outsets.find(w.b);
    outset_a = it_a == info.inref_outsets.end() ? 0 : it_a->second.size();
    outset_b = it_b == info.inref_outsets.end() ? 0 : it_b->second.size();
  }
  state.counters["scc_closed"] = close_scc ? 1.0 : 0.0;
  state.counters["outset_a_size"] = static_cast<double>(outset_a);
  state.counters["outset_b_size"] = static_cast<double>(outset_b);
  state.counters["paper_expected_each"] = 2.0;  // {c, d}
}
BENCHMARK(BM_Fig4_OutsetsThroughLocalTrace)->Arg(0)->Arg(1);

// Scaled-up Figure 4: many a/b-style inrefs sharing deep z->x->y structure
// with back edges; the bottom-up pass must stay linear in objects.
void BM_Fig4_Scaled(benchmark::State& state) {
  const std::size_t inrefs = static_cast<std::size_t>(state.range(0));
  const std::size_t depth = static_cast<std::size_t>(state.range(1));
  std::uint64_t traced = 0;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 0;
    config.enable_back_tracing = false;
    System system(2, config);
    // Deep shared spine with a closing back edge (one big SCC), plus remote
    // refs sprinkled along it.
    std::vector<ObjectId> spine;
    for (std::size_t i = 0; i < depth; ++i) {
      spine.push_back(system.NewObject(0, 3));
    }
    for (std::size_t i = 0; i + 1 < depth; ++i) {
      system.Wire(spine[i], 0, spine[i + 1]);
    }
    system.Wire(spine.back(), 0, spine.front());
    for (std::size_t i = 0; i < depth; i += 8) {
      const ObjectId remote = system.NewObject(1, 0);
      system.Wire(spine[i], 1, remote);
    }
    for (std::size_t i = 0; i < inrefs; ++i) {
      const ObjectId entry = system.NewObject(0, 1);
      system.Wire(entry, 0, spine[(i * 13) % depth]);
      const ObjectId holder = system.NewObject(1, 1);
      system.Wire(holder, 0, entry);
    }
    system.site(0).StartLocalTrace();
    system.SettleNetwork();
    traced = system.site(0).heap().object_count();
  }
  state.counters["inrefs"] = static_cast<double>(inrefs);
  state.counters["spine_depth"] = static_cast<double>(depth);
  state.counters["objects"] = static_cast<double>(traced);
}
BENCHMARK(BM_Fig4_Scaled)
    ->Args({8, 1000})
    ->Args({64, 1000})
    ->Args({64, 20000})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
