// Experiment Fig.5: the transfer/insert barriers under the figure's mutation
// (create y->z, delete d->e) across a sweep of mutation timings. Reports
// barrier hit counts, clean-rule activations, and the end state: live
// objects survive, the dead tail {e, f, x} is reclaimed.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mutator/session.h"
#include "workload/figures.h"

namespace {

using namespace dgc;

void BM_Fig5_MutationRaceSweep(benchmark::State& state) {
  const SimTime mutation_delay = state.range(0);
  bool safe = false, tail_collected = false;
  std::uint64_t barrier_hits = 0, clean_rule_hits = 0;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 3;
    config.estimated_cycle_length = 3;
    NetworkConfig net;
    net.latency = 30;
    System system(4, config, net);
    const auto w = workload::BuildFigure5(system, /*with_second_source=*/false);
    system.RunRounds(5);

    Session session(system, 1, 1);
    system.site(1).ApplyTransferBarrier(w.f);  // traversal reached f
    session.Hold(w.z);
    system.RunRoundStaggered(15);
    system.scheduler().RunUntil(system.scheduler().now() + mutation_delay);
    system.site(1).heap().SetSlot(w.y, 0, w.z);  // y -> z (local copy)
    system.Unwire(w.d, 0);                       // delete d -> e
    session.ReleaseAll();
    system.RunRounds(20);

    safe = system.CheckSafety().empty();
    tail_collected = !system.ObjectExists(w.e) && !system.ObjectExists(w.f) &&
                     !system.ObjectExists(w.x) && system.ObjectExists(w.z) &&
                     system.ObjectExists(w.g);
    barrier_hits = 0;
    clean_rule_hits = 0;
    for (SiteId s = 0; s < 4; ++s) {
      barrier_hits += system.site(s).stats().transfer_barrier_hits;
      clean_rule_hits += system.site(s).back_tracer().stats().clean_rule_hits;
    }
  }
  state.counters["mutation_delay"] = static_cast<double>(mutation_delay);
  state.counters["safe"] = safe ? 1.0 : 0.0;
  state.counters["dead_tail_collected_live_kept"] =
      tail_collected ? 1.0 : 0.0;
  state.counters["transfer_barrier_hits"] =
      static_cast<double>(barrier_hits);
  state.counters["clean_rule_hits"] = static_cast<double>(clean_rule_hits);
}
BENCHMARK(BM_Fig5_MutationRaceSweep)
    ->Arg(0)
    ->Arg(40)
    ->Arg(80)
    ->Arg(160)
    ->Arg(320);

// Barrier overhead on a mutation-heavy live workload: how often the
// transfer barrier actually fires (it costs nothing unless the inref is
// suspected — the paper's "inexpensive" claim).
void BM_Fig5_BarrierOverhead(benchmark::State& state) {
  std::uint64_t rpcs = 0, barrier_hits = 0;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 4;
    System system(3, config);
    std::vector<ObjectId> containers;
    for (SiteId s = 0; s < 3; ++s) {
      const ObjectId container = system.NewObject(s, 2);
      system.SetPersistentRoot(container);
      containers.push_back(container);
    }
    Session session(system, 0, 1);
    rpcs = 0;
    for (int i = 0; i < 100; ++i) {
      const ObjectId container = containers[i % 3];
      if (!session.Holds(container)) session.LoadRoot(container);
      const ObjectId fresh = session.Create(1);
      session.Write(container, i % 2, fresh);
      session.Release(fresh);
      rpcs += 2;
      if (i % 10 == 9) system.RunRound();
    }
    barrier_hits = 0;
    for (SiteId s = 0; s < 3; ++s) {
      barrier_hits += system.site(s).stats().transfer_barrier_hits;
    }
  }
  state.counters["rpcs"] = static_cast<double>(rpcs);
  state.counters["suspected_barrier_hits"] =
      static_cast<double>(barrier_hits);
}
BENCHMARK(BM_Fig5_BarrierOverhead);

}  // namespace

BENCHMARK_MAIN();
