// Experiment Fig.6: the hard race — a branching back trace (inref g sourced
// from both Q and R) versus a concurrent mutation, where one branch might
// miss the mutator and the other might see the deletion. The paper's §6.4
// proof says some ioref's clean period must overlap a trace's active period;
// sweeping interleavings measures how often each safety mechanism fires and
// that no interleaving kills a live object.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mutator/session.h"
#include "workload/figures.h"

namespace {

using namespace dgc;

void BM_Fig6_InterleavingSweep(benchmark::State& state) {
  const SimTime latency = state.range(0);
  std::size_t interleavings_tested = 0;
  std::size_t all_safe = 0;
  std::uint64_t clean_rule_total = 0;
  std::uint64_t live_aborts_total = 0;
  for (auto _ : state) {
    interleavings_tested = 0;
    all_safe = 0;
    clean_rule_total = 0;
    live_aborts_total = 0;
    for (SimTime delay = 0; delay <= 300; delay += 30) {
      CollectorConfig config;
      config.suspicion_threshold = 3;
      config.estimated_cycle_length = 3;
      NetworkConfig net;
      net.latency = latency;
      System system(4, config, net);
      const auto w =
          workload::BuildFigure5(system, /*with_second_source=*/true);
      system.RunRounds(5);

      Session session(system, 1, 1);
      system.site(1).ApplyTransferBarrier(w.f);
      session.Hold(w.z);
      system.RunRoundStaggered(10);
      system.scheduler().RunUntil(system.scheduler().now() + delay);
      system.site(1).heap().SetSlot(w.y, 0, w.z);
      system.Unwire(w.d, 0);
      session.ReleaseAll();
      system.RunRounds(20);

      ++interleavings_tested;
      const bool ok = system.CheckSafety().empty() &&
                      system.ObjectExists(w.z) && system.ObjectExists(w.g);
      if (ok) ++all_safe;
      for (SiteId s = 0; s < 4; ++s) {
        clean_rule_total += system.site(s).back_tracer().stats().clean_rule_hits;
      }
      live_aborts_total +=
          system.AggregateBackTracerStats().traces_completed_live;
    }
  }
  state.counters["latency"] = static_cast<double>(latency);
  state.counters["interleavings"] = static_cast<double>(interleavings_tested);
  state.counters["safe_interleavings"] = static_cast<double>(all_safe);
  state.counters["clean_rule_hits"] = static_cast<double>(clean_rule_total);
  state.counters["live_aborted_traces"] =
      static_cast<double>(live_aborts_total);
}
BENCHMARK(BM_Fig6_InterleavingSweep)->Arg(5)->Arg(20)->Arg(50)->Arg(90);

// The branching structure itself: back trace from outref g at Q forks at
// inref g to sources {Q, R}; count the branch fan-out frames.
void BM_Fig6_BranchFanout(benchmark::State& state) {
  std::uint64_t frames = 0;
  bool live = false;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 3;
    config.estimated_cycle_length = 3;
    config.enable_back_tracing = false;
    System system(4, config);
    const auto w = workload::BuildFigure5(system, /*with_second_source=*/true);
    system.RunRounds(6);
    Site& q = system.site(1);
    if (q.tables().FindOutref(w.g) == nullptr) continue;
    BackResult outcome = BackResult::kGarbage;
    q.back_tracer().set_outcome_observer(
        [&](const TraceOutcome& result) { outcome = result.result; });
    q.back_tracer().StartTrace(w.g);
    system.SettleNetwork();
    live = outcome == BackResult::kLive;
    frames = system.AggregateBackTracerStats().frames_created;
  }
  state.counters["outcome_live"] = live ? 1.0 : 0.0;  // old path intact
  state.counters["frames"] = static_cast<double>(frames);
}
BENCHMARK(BM_Fig6_BranchFanout);

// The clean rule firing mid-trace: a trace is parked on a slow link while
// the transfer barrier cleans its starting ioref; the trace must be forced
// Live (one clean-rule hit) regardless of what its branches report.
void BM_Fig6_CleanRuleForcedLive(benchmark::State& state) {
  std::uint64_t hits = 0;
  bool live = false;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 3;
    config.estimated_cycle_length = 3;
    config.enable_back_tracing = false;
    NetworkConfig net;
    net.latency = 100;
    System system(4, config, net);
    const auto w = workload::BuildFigure5(system, /*with_second_source=*/true);
    system.RunRounds(6);
    Site& q = system.site(1);
    if (q.tables().FindOutref(w.g) == nullptr) continue;
    BackResult outcome = BackResult::kGarbage;
    q.back_tracer().set_outcome_observer(
        [&](const TraceOutcome& result) { outcome = result.result; });
    q.back_tracer().StartTrace(w.g);
    system.scheduler().RunUntil(system.scheduler().now() + 10);
    // The mutator traverses the reference to f: the barrier cleans inref f
    // and the outrefs in its outset (which includes g) while the trace is
    // active there.
    q.ApplyTransferBarrier(w.f);
    system.SettleNetwork();
    live = outcome == BackResult::kLive;
    hits = q.back_tracer().stats().clean_rule_hits;
  }
  state.counters["outcome_live"] = live ? 1.0 : 0.0;
  state.counters["clean_rule_hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_Fig6_CleanRuleForcedLive);

}  // namespace

BENCHMARK_MAIN();
