// Experiment §3 (heuristic choice): "Heuristics that suspect the inrefs not
// accessed recently are not suitable for persistent stores since live
// objects might not be accessed for long periods."
//
// World: per site, a HOT live partition (objects the application touches
// every round), a COLD live partition (rooted but never accessed — archives,
// old documents), and inter-site garbage cycles. Two suspicion heuristics
// judge every inref:
//   * distance (the paper's): estimated distance > D;
//   * recency (the rejected alternative): no access within the TTL.
// Reported: false suspects among live inrefs and missed garbage, per
// heuristic. Distance stays exact on cold-but-rooted data; recency condemns
// all of it.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"

namespace {

using namespace dgc;

void BM_Heuristic_DistanceVsRecency(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  const SimTime recency_ttl = state.range(1);
  std::size_t live_inrefs = 0;
  std::size_t distance_false = 0, recency_false = 0;
  std::size_t garbage_inrefs = 0;
  std::size_t distance_found = 0, recency_found = 0;
  for (auto _ : state) {
    CollectorConfig config;
    config.suspicion_threshold = 3;
    config.enable_back_tracing = false;  // judge the heuristics only
    System system(4, config);

    // Access log for the recency heuristic.
    std::map<ObjectId, SimTime> last_access;

    // COLD live: per site, a rooted chain through the next site (so the
    // remote hop creates a real inref), never accessed again.
    std::vector<ObjectId> cold;
    for (SiteId s = 0; s < 4; ++s) {
      const ObjectId root = system.NewObject(s, 1);
      system.SetPersistentRoot(root);
      const ObjectId archived = system.NewObject((s + 1) % 4, 0);
      system.Wire(root, 0, archived);
      cold.push_back(archived);
      last_access[archived] = 0;
    }
    // HOT live: same shape, but "touched" every round.
    std::vector<ObjectId> hot;
    for (SiteId s = 0; s < 4; ++s) {
      const ObjectId root = system.NewObject(s, 1);
      system.SetPersistentRoot(root);
      const ObjectId touched = system.NewObject((s + 1) % 4, 0);
      system.Wire(root, 0, touched);
      hot.push_back(touched);
      last_access[touched] = 0;
    }
    // Garbage: two 2-site cycles.
    const auto g1 = workload::BuildCycle(
        system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
    const auto g2 = workload::BuildCycle(
        system, {.sites = 2, .objects_per_site = 1, .first_site = 2});
    for (const ObjectId id : g1.objects) last_access[id] = 0;
    for (const ObjectId id : g2.objects) last_access[id] = 0;

    for (int round = 0; round < rounds; ++round) {
      system.AdvanceTime(100);
      for (const ObjectId id : hot) {
        last_access[id] = system.scheduler().now();  // application touch
      }
      system.RunRound();
    }

    // Judge every inref against the truth.
    const auto live = system.ComputeLiveSet();
    live_inrefs = distance_false = recency_false = 0;
    garbage_inrefs = distance_found = recency_found = 0;
    const SimTime now = system.scheduler().now();
    for (SiteId s = 0; s < 4; ++s) {
      for (const auto& [obj, entry] : system.site(s).tables().inrefs()) {
        const bool is_live = live.contains(obj);
        const bool distance_suspects =
            !entry.clean(config.suspicion_threshold);
        const auto access = last_access.find(obj);
        const SimTime accessed_at =
            access == last_access.end() ? 0 : access->second;
        const bool recency_suspects = now - accessed_at > recency_ttl;
        if (is_live) {
          ++live_inrefs;
          if (distance_suspects) ++distance_false;
          if (recency_suspects) ++recency_false;
        } else {
          ++garbage_inrefs;
          if (distance_suspects) ++distance_found;
          if (recency_suspects) ++recency_found;
        }
      }
    }
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["recency_ttl"] = static_cast<double>(recency_ttl);
  state.counters["live_inrefs"] = static_cast<double>(live_inrefs);
  state.counters["distance_false_suspects"] =
      static_cast<double>(distance_false);
  state.counters["recency_false_suspects"] =
      static_cast<double>(recency_false);
  state.counters["garbage_inrefs"] = static_cast<double>(garbage_inrefs);
  state.counters["distance_detected"] = static_cast<double>(distance_found);
  state.counters["recency_detected"] = static_cast<double>(recency_found);
}
BENCHMARK(BM_Heuristic_DistanceVsRecency)
    ->Args({10, 500})
    ->Args({20, 500})
    ->Args({20, 2000})
    ->Args({40, 2000});

}  // namespace

BENCHMARK_MAIN();
