// Low-churn soak for the incremental local trace (ISSUE: mutation-driven
// dirty tracking and back-info reuse).
//
// Two identically seeded twin systems run the same low-churn workload —
// under 1% of each site's objects mutate per epoch, and only one site
// mutates at a time — one twin with incremental_trace off (every epoch
// re-traces every live object on every site) and one with it on. The bench
// checks the twins agree on every verdict (objects stored and reclaimed)
// and reports how much tracing work the dirty tracking avoided:
//
//   * retrace_reduction  — full twin's marks over incremental twin's
//     re-traced objects (the ISSUE acceptance bar is >= 10x);
//   * reuse_hit_rate     — fraction of local traces served from the cache
//     (quiescent skips / traces), gated by bench_compare.py;
//   * intern_bytes_saved — cumulative outset-interning savings from the
//     store persisting across epochs.
//
// Emits BENCH_trace_incremental.json by default for bench_compare.py.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/system.h"

namespace {

using namespace dgc;

constexpr std::size_t kChainLength = 3;
constexpr std::size_t kEpochs = 32;
constexpr std::size_t kWarmupEpochs = 8;  // distance convergence, first caches

/// One rooted container per site; each container slot holds a private chain
/// of kChainLength objects, and every eighth chain tail also references the
/// next site's container (steady cross-site inrefs/outrefs).
std::vector<ObjectId> BuildWorld(System& system, std::size_t slots_per_site) {
  std::vector<ObjectId> containers;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    containers.push_back(system.NewObject(s, slots_per_site));
    system.SetPersistentRoot(containers.back());
  }
  for (SiteId s = 0; s < system.site_count(); ++s) {
    for (std::size_t slot = 0; slot < slots_per_site; ++slot) {
      ObjectId prev = kInvalidObject;
      for (std::size_t i = 0; i < kChainLength; ++i) {
        const ObjectId obj = system.NewObject(s, 1);
        if (i == 0) {
          system.Wire(containers[s], slot, obj);
        } else {
          system.Wire(prev, 0, obj);
        }
        prev = obj;
      }
      if (slot % 8 == 0) {
        const SiteId next =
            static_cast<SiteId>((s + 1) % system.site_count());
        system.Wire(prev, 0, containers[next]);
      }
    }
  }
  return containers;
}

/// Rewires a handful of container slots on one site: the old chain becomes
/// garbage (swept by that site's next trace) and a fresh chain replaces it.
/// Touches well under 1% of the site's objects.
void MutateSite(System& system, ObjectId container, std::size_t slots_per_site,
                Rng& rng) {
  const std::size_t rewires = std::max<std::size_t>(1, slots_per_site / 128);
  for (std::size_t r = 0; r < rewires; ++r) {
    const std::size_t slot = rng.NextBelow(slots_per_site);
    system.Unwire(container, slot);
    ObjectId prev = kInvalidObject;
    for (std::size_t i = 0; i < kChainLength; ++i) {
      const ObjectId obj = system.NewObject(container.site, 1);
      if (i == 0) {
        system.Wire(container, slot, obj);
      } else {
        system.Wire(prev, 0, obj);
      }
      prev = obj;
    }
  }
}

struct SoakTotals {
  std::uint64_t marked = 0;
  std::uint64_t retraced = 0;
  std::uint64_t traces = 0;
  std::uint64_t skips = 0;
  std::uint64_t wall_ns = 0;
};

SoakTotals Totals(const System& system) {
  SoakTotals t;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const SiteStats& stats = system.site(s).stats();
    t.marked += stats.objects_marked;
    t.retraced += stats.objects_retraced;
    t.traces += stats.local_traces;
    t.skips += stats.quiescent_skips;
    t.wall_ns += stats.trace_wall_ns;
  }
  return t;
}

void BM_LowChurnSoak(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  const std::size_t slots_per_site = static_cast<std::size_t>(state.range(1));

  CollectorConfig full_config = bench::DefaultConfig();
  CollectorConfig inc_config = full_config;
  inc_config.incremental_trace = true;

  SoakTotals full_totals{}, inc_totals{};
  std::uint64_t intern_saved = 0;
  std::uint64_t reclaimed = 0;
  for (auto _ : state) {
    System full(sites, full_config, {}, /*seed=*/29);
    System inc(sites, inc_config, {}, /*seed=*/29);
    const std::vector<ObjectId> full_containers =
        BuildWorld(full, slots_per_site);
    const std::vector<ObjectId> inc_containers =
        BuildWorld(inc, slots_per_site);

    SoakTotals full_base{}, inc_base{};
    Rng full_rng(113), inc_rng(113);
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      if (epoch == kWarmupEpochs) {
        full_base = Totals(full);
        inc_base = Totals(inc);
      }
      // Every other epoch one site (rotating) takes its sub-1% of churn;
      // every other site stays quiescent and must be served from cache.
      if (epoch % 2 == 0) {
        const std::size_t victim = (epoch / 2) % sites;
        MutateSite(full, full_containers[victim], slots_per_site, full_rng);
        MutateSite(inc, inc_containers[victim], slots_per_site, inc_rng);
      }
      full.RunRound();
      inc.RunRound();
    }

    // Identical verdicts and sweeps, or the numbers above mean nothing.
    DGC_CHECK(full.TotalObjects() == inc.TotalObjects());
    DGC_CHECK(full.TotalObjectsReclaimed() == inc.TotalObjectsReclaimed());
    DGC_CHECK(full.CheckSafety().empty() && inc.CheckSafety().empty());

    const SoakTotals full_end = Totals(full), inc_end = Totals(inc);
    full_totals = {full_end.marked - full_base.marked,
                   full_end.retraced - full_base.retraced,
                   full_end.traces - full_base.traces,
                   full_end.skips - full_base.skips,
                   full_end.wall_ns - full_base.wall_ns};
    inc_totals = {inc_end.marked - inc_base.marked,
                  inc_end.retraced - inc_base.retraced,
                  inc_end.traces - inc_base.traces,
                  inc_end.skips - inc_base.skips,
                  inc_end.wall_ns - inc_base.wall_ns};
    intern_saved = 0;
    for (SiteId s = 0; s < inc.site_count(); ++s) {
      intern_saved +=
          inc.site(s).collector().outset_store().stats().intern_bytes_saved;
    }
    reclaimed = inc.TotalObjectsReclaimed();
  }

  const double epochs_counted = static_cast<double>(kEpochs - kWarmupEpochs);
  state.counters["full_marked_per_epoch"] =
      static_cast<double>(full_totals.marked) / epochs_counted;
  state.counters["inc_retraced_per_epoch"] =
      static_cast<double>(inc_totals.retraced) / epochs_counted;
  state.counters["retrace_reduction"] =
      static_cast<double>(full_totals.marked) /
      static_cast<double>(inc_totals.retraced ? inc_totals.retraced : 1);
  state.counters["reuse_hit_rate"] =
      static_cast<double>(inc_totals.skips) /
      static_cast<double>(inc_totals.traces ? inc_totals.traces : 1);
  state.counters["intern_bytes_saved"] = static_cast<double>(intern_saved);
  state.counters["objects_reclaimed"] = static_cast<double>(reclaimed);
  state.counters["trace_wall_speedup"] =
      static_cast<double>(full_totals.wall_ns) /
      static_cast<double>(inc_totals.wall_ns ? inc_totals.wall_ns : 1);
}
BENCHMARK(BM_LowChurnSoak)
    ->Args({16, 128})
    ->Args({16, 512})
    ->Args({32, 256})
    ->Unit(benchmark::kMillisecond);

// The degenerate best case: a completely idle federation. Every epoch after
// the first must be a quiescent skip on every site.
void BM_IdleFederation(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  CollectorConfig config = bench::DefaultConfig();
  config.incremental_trace = true;
  SoakTotals totals{};
  for (auto _ : state) {
    System system(sites, config, {}, /*seed=*/31);
    BuildWorld(system, /*slots_per_site=*/64);
    system.RunRounds(kEpochs);
    totals = Totals(system);
  }
  state.counters["reuse_hit_rate"] =
      static_cast<double>(totals.skips) /
      static_cast<double>(totals.traces ? totals.traces : 1);
  state.counters["retraced_per_trace"] =
      static_cast<double>(totals.retraced) /
      static_cast<double>(totals.traces ? totals.traces : 1);
}
BENCHMARK(BM_IdleFederation)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dgc::bench::RunBenchmarksWithDefaultOut(
      argc, argv, "BENCH_trace_incremental.json");
}
