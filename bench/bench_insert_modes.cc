// Ablation: insert protocol variants (§2's "sending, deferring, or avoiding
// insert messages"). Measures mutator-visible operation latency and message
// counts for publish-heavy workloads under synchronous vs. (opportunistic)
// deferred inserts.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mutator/session.h"

namespace {

using namespace dgc;

void BM_InsertMode_PublishLatency(benchmark::State& state) {
  const InsertMode mode =
      state.range(0) == 0 ? InsertMode::kSynchronous : InsertMode::kDeferred;
  SimTime total_latency = 0;
  std::uint64_t ops = 0;
  std::uint64_t inserts = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.insert_mode = mode;
    NetworkConfig net;
    net.latency = 40;
    System system(3, config, net);
    std::vector<ObjectId> containers;
    for (SiteId s = 1; s < 3; ++s) {
      const ObjectId container = system.NewObject(s, 4);
      system.SetPersistentRoot(container);
      containers.push_back(container);
    }
    Session session(system, 0, 1);
    total_latency = 0;
    ops = 0;
    // Publish-heavy: the session repeatedly ships its own fresh objects
    // into remote containers — the case deferral accelerates.
    for (int i = 0; i < 20; ++i) {
      const ObjectId container = containers[i % containers.size()];
      if (!session.Holds(container)) session.LoadRoot(container);
      const ObjectId fresh = session.Create(0);
      const SimTime before = system.scheduler().now();
      session.Write(container, i % 4, fresh);
      total_latency += system.scheduler().now() - before;
      session.Release(fresh);
      ++ops;
    }
    system.SettleNetwork();
    inserts = system.network().stats().count_of<InsertMsg>();
  }
  state.counters["mode_deferred"] = state.range(0) ? 1.0 : 0.0;
  state.counters["mean_publish_latency_ticks"] =
      static_cast<double>(total_latency) / static_cast<double>(ops);
  state.counters["insert_msgs"] = static_cast<double>(inserts);
}
BENCHMARK(BM_InsertMode_PublishLatency)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
