// Experiment §4.6: message complexity of a back trace is 2E + P, where E is
// the number of inter-site references traversed and P the number of
// participant sites.
//
// Sweeps ring cycles (E = sites) and complete inter-site digraphs
// (E = sites * (sites - 1)); reports measured call/reply/report counts
// against the formula. The match must be exact — this is the paper's core
// cost claim for the scheme's locality.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace dgc;

void MeasureTrace(System& system, std::size_t expected_edges,
                  std::size_t participants, benchmark::State& state) {
  system.network().ResetStats();
  Site& initiator = system.site(0);
  initiator.back_tracer().StartTrace(
      initiator.tables().outrefs().begin()->first);
  system.SettleNetwork();
  const NetworkStats& stats = system.network().stats();
  state.counters["E_edges"] = static_cast<double>(expected_edges);
  state.counters["P_sites"] = static_cast<double>(participants);
  state.counters["calls"] =
      static_cast<double>(stats.count_of<BackLocalCallMsg>());
  state.counters["replies"] =
      static_cast<double>(stats.count_of<BackReplyMsg>());
  state.counters["reports"] =
      static_cast<double>(stats.count_of<BackReportMsg>());
  state.counters["total_measured"] = static_cast<double>(stats.inter_site_sent);
  // The initiator's own report is a free self-delivery.
  state.counters["formula_2E_plus_P"] =
      static_cast<double>(2 * expected_edges + participants - 1);
  state.counters["bytes"] = static_cast<double>(stats.approx_bytes);
  // One cycle condemned per measured trace: inter-site back messages spent
  // per collected cycle. bench_compare.py gates on this (lower is better).
  state.counters["msgs_per_cycle"] = static_cast<double>(stats.inter_site_sent);
}

void BM_BackTrace_Ring(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  const std::size_t objects_per_site = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length = static_cast<Distance>(sites + 2);
    config.enable_back_tracing = false;  // ripen, then measure one trace
    System system(sites, config);
    const auto cycle = workload::BuildCycle(
        system, {.sites = sites, .objects_per_site = objects_per_site});
    system.RunRounds(sites + 10);
    MeasureTrace(system, sites, sites, state);
  }
}
BENCHMARK(BM_BackTrace_Ring)
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({8, 16})   // object count within sites must not affect messages
    ->Args({8, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_BackTrace_Clique(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length = static_cast<Distance>(2 * sites);
    config.enable_back_tracing = false;
    System system(sites, config);
    std::vector<ObjectId> objects;
    for (SiteId s = 0; s < sites; ++s) {
      objects.push_back(system.NewObject(s, sites - 1));
    }
    for (std::size_t i = 0; i < sites; ++i) {
      std::size_t slot = 0;
      for (std::size_t j = 0; j < sites; ++j) {
        if (i != j) system.Wire(objects[i], slot++, objects[j]);
      }
    }
    system.RunRounds(sites + 12);
    MeasureTrace(system, sites * (sites - 1), sites, state);
  }
}
BENCHMARK(BM_BackTrace_Clique)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);

// Chains hanging INTO the cycle (garbage pointing at it) are visited
// backwards, adding their edges to E; chains hanging OFF the cycle are not
// visited at all — locality in action.
void BM_BackTrace_CycleWithTail(benchmark::State& state) {
  const std::size_t tail = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length = 8;
    config.enable_back_tracing = false;
    System system(4, config);
    const auto cycle =
        workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
    // Outbound tail (cycle -> chain): must not be traversed.
    workload::AttachChain(system, cycle.objects[1], 1, tail);
    system.RunRounds(16);
    MeasureTrace(system, 2, 2, state);
  }
}
BENCHMARK(BM_BackTrace_CycleWithTail)->Arg(0)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return dgc::bench::RunBenchmarksWithDefaultOut(argc, argv,
                                                 "BENCH_trace_msg.json");
}
