// Experiment §5.2 (storage): canonical outsets + memoized unions.
//
// The paper argues that on well-clustered sites there are far fewer distinct
// outsets than suspected objects (chains and SCCs share one outset), that
// memoization answers repeated unions in O(1), and that retained back
// information costs O(ni + no)-flavoured space rather than per-object space.
#include <benchmark/benchmark.h>

#include <set>

#include "backinfo/outset_store.h"
#include "backinfo/suspect_trace.h"
#include "common/rng.h"
#include "store/heap.h"

namespace {

using namespace dgc;

struct BenchEnv {
  bool ObjectIsCleanMarked(ObjectId) const { return false; }
  bool OutrefIsClean(ObjectId) const { return false; }
  void OnSuspectMarked(ObjectId) {}
  std::size_t marked = 0;
};

/// Clustered world: `clusters` locally-connected blobs of `objects_per`
/// objects, each blob holding `outrefs_per` remote refs; `inrefs_per` inrefs
/// enter each blob. Objects within a blob share outsets.
struct ClusteredWorld {
  Heap heap{0};
  std::vector<ObjectId> roots;
  std::size_t total_objects = 0;

  ClusteredWorld(std::size_t clusters, std::size_t objects_per,
                 std::size_t outrefs_per, std::size_t inrefs_per,
                 std::uint64_t seed) {
    Rng rng(seed);
    for (std::size_t c = 0; c < clusters; ++c) {
      std::vector<ObjectId> blob;
      for (std::size_t i = 0; i < objects_per; ++i) {
        blob.push_back(heap.Allocate(3));
      }
      // Local chain + random local chords: one SCC-ish blob.
      for (std::size_t i = 0; i < objects_per; ++i) {
        heap.SetSlot(blob[i], 0, blob[(i + 1) % objects_per]);
        heap.SetSlot(blob[i], 1, blob[rng.NextBelow(objects_per)]);
      }
      for (std::size_t o = 0; o < outrefs_per; ++o) {
        heap.SetSlot(blob[rng.NextBelow(objects_per)], 2,
                     ObjectId{static_cast<SiteId>(1 + o % 3), c * 100 + o});
      }
      for (std::size_t i = 0; i < inrefs_per; ++i) {
        const ObjectId root = heap.Allocate(1);
        heap.SetSlot(root, 0, blob[rng.NextBelow(objects_per)]);
        roots.push_back(root);
      }
      total_objects += objects_per;
    }
  }
};

void BM_OutsetSharing_Clustered(benchmark::State& state) {
  ClusteredWorld world(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(1)),
                       /*outrefs_per=*/4, /*inrefs_per=*/4, /*seed=*/7);
  OutsetStore::Stats stats{};
  std::size_t distinct = 0;
  std::size_t suspects = 0;
  for (auto _ : state) {
    BenchEnv env;
    OutsetStore store;
    BottomUpOutsetComputer<BenchEnv> computer(world.heap, store, env);
    for (const ObjectId root : world.roots) {
      benchmark::DoNotOptimize(computer.TraceFrom(root));
    }
    stats = store.stats();
    distinct = store.distinct_outsets();
    suspects = computer.stats().objects_traced;
  }
  state.counters["suspected_objects"] = static_cast<double>(suspects);
  state.counters["distinct_outsets"] = static_cast<double>(distinct);
  state.counters["sharing_ratio"] =
      static_cast<double>(suspects) / static_cast<double>(distinct);
  state.counters["unions_requested"] =
      static_cast<double>(stats.unions_requested);
  state.counters["unions_computed"] =
      static_cast<double>(stats.unions_computed);
  state.counters["memo_hit_pct"] =
      100.0 * static_cast<double>(stats.unions_memo_hits + stats.unions_trivial) /
      static_cast<double>(stats.unions_requested ? stats.unions_requested : 1);
  state.counters["stored_elements"] =
      static_cast<double>(stats.stored_elements);
}
BENCHMARK(BM_OutsetSharing_Clustered)
    ->Args({4, 100})
    ->Args({16, 100})
    ->Args({16, 1000})
    ->Args({64, 1000});

// Space claim: retained back info is O(ni * no) worst case but O(ni + no)
// in clustered practice. Reports retained elements vs ni, no, and objects.
void BM_RetainedSpace(benchmark::State& state) {
  ClusteredWorld world(static_cast<std::size_t>(state.range(0)),
                       /*objects_per=*/200, /*outrefs_per=*/6,
                       /*inrefs_per=*/6, /*seed=*/11);
  std::size_t retained = 0;
  std::size_t ni = world.roots.size();
  std::set<ObjectId> outrefs;
  for (auto _ : state) {
    BenchEnv env;
    OutsetStore store;
    BottomUpOutsetComputer<BenchEnv> computer(world.heap, store, env);
    retained = 0;
    outrefs.clear();
    for (const ObjectId root : world.roots) {
      const auto& outset = store.Get(computer.TraceFrom(root));
      retained += outset.size();
      outrefs.insert(outset.begin(), outset.end());
    }
  }
  state.counters["ni_suspected_inrefs"] = static_cast<double>(ni);
  state.counters["no_suspected_outrefs"] = static_cast<double>(outrefs.size());
  state.counters["retained_elements"] = static_cast<double>(retained);
  state.counters["ni_times_no"] =
      static_cast<double>(ni) * static_cast<double>(outrefs.size());
  state.counters["objects"] = static_cast<double>(world.total_objects);
}
BENCHMARK(BM_RetainedSpace)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
