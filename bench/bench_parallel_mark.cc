// Intra-site parallel marking: forward-trace throughput of one large site at
// mark_threads = 1 / 2 / 4 / 8, the scaling measurement behind the
// work-stealing mark over slab shards.
//
// The graph is a 500k-object pointer-chasing web on a single heap: a spine
// guaranteeing full reachability plus two random fan-in edges per object, so
// the traversal visits every slab and the cross-shard routing and stealing
// paths all run. mark_threads = 1 is the untouched sequential collector —
// the speedup_vs_1 the comparison script derives is against the seed code
// path, not against a parallel run throttled to one worker.
//
// Emits BENCH_parallel_mark.json; scripts/bench_compare.py
// --check-parallel-mark gates single-thread regressions always, and the
// multi-thread speedup floor only when host_cpus shows enough cores to make
// speedup physically possible.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/worker_pool.h"
#include "localgc/local_collector.h"
#include "refs/tables.h"
#include "store/heap.h"

namespace {

constexpr std::size_t kMarkObjects = 500'000;

void BM_ParallelMark_Throughput(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  dgc::CollectorConfig config;
  config.mark_threads = threads;
  dgc::Heap heap(0);
  dgc::RefTables tables(0, config);
  dgc::LocalCollector collector(heap, tables);
  dgc::WorkerPool pool(threads == 0 ? 0 : threads - 1);
  collector.set_worker_pool(&pool);

  dgc::Rng rng(42);
  std::vector<dgc::ObjectId> ids;
  ids.reserve(kMarkObjects);
  for (std::size_t i = 0; i < kMarkObjects; ++i) {
    ids.push_back(heap.Allocate(3));
  }
  heap.AddPersistentRoot(ids[0]);
  for (std::size_t i = 0; i + 1 < kMarkObjects; ++i) {
    heap.SetSlot(ids[i], 0, ids[i + 1]);
    if (i > 0) {
      heap.SetSlot(ids[i], 1, ids[rng.NextBelow(i)]);
      heap.SetSlot(ids[i], 2, ids[rng.NextBelow(kMarkObjects)]);
    }
  }

  std::uint64_t marked_total = 0;
  std::uint64_t mark_ns = 0;
  std::uint64_t steals = 0;
  for (auto _ : state) {
    const dgc::TraceResult result = collector.Run({});
    marked_total += result.stats.objects_marked_clean;
    mark_ns += result.stats.mark_wall_ns;
    steals += result.stats.mark_steals;
    benchmark::DoNotOptimize(result.stats.objects_marked_clean);
  }
  state.counters["objects"] = static_cast<double>(kMarkObjects);
  state.counters["mark_threads"] = static_cast<double>(threads);
  state.counters["host_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["steals"] = static_cast<double>(steals);
  state.counters["mark_ns_total"] = static_cast<double>(mark_ns);
  state.counters["objects_per_sec"] = benchmark::Counter(
      static_cast<double>(marked_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelMark_Throughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dgc::bench::RunBenchmarksWithDefaultOut(argc, argv,
                                                 "BENCH_parallel_mark.json");
}
