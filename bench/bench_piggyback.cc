// Experiment §4.6 (piggybacking): "These messages are small and can be
// piggybacked on other messages."
//
// Runs the same collection workload under increasing batch windows and
// reports logical vs. wire messages and bytes: batching coalesces the
// protocol's chatter (updates + back-trace calls/replies/reports sharing a
// channel) into far fewer wire messages at a modest latency cost.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace dgc;

void BM_Piggyback_ManyCyclesOneChannel(benchmark::State& state) {
  const SimTime window = state.range(0);
  const std::size_t cycles = static_cast<std::size_t>(state.range(1));
  std::uint64_t logical = 0, wire = 0;
  std::uint64_t logical_bytes = 0, wire_bytes = 0;
  bool collected = false;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length = 4;
    NetworkConfig net;
    net.latency = 10;
    net.batch_window = window;
    System system(2, config, net);
    // `cycles` disjoint two-object rings, all between sites 0 and 1: their
    // distances ripen in lock-step, so their back traces run concurrently
    // and the calls/replies/reports share the 0<->1 channels.
    std::vector<workload::CycleHandles> rings;
    for (std::size_t i = 0; i < cycles; ++i) {
      rings.push_back(workload::BuildCycle(
          system, {.sites = 2, .objects_per_site = 1}));
    }
    system.RunRounds(12);
    collected = true;
    for (const auto& ring : rings) {
      for (const ObjectId id : ring.objects) {
        if (system.ObjectExists(id)) collected = false;
      }
    }
    logical = system.network().stats().inter_site_sent;
    wire = system.network().stats().wire_messages;
    logical_bytes = system.network().stats().approx_bytes;
    wire_bytes = system.network().stats().wire_bytes;
  }
  state.counters["batch_window"] = static_cast<double>(window);
  state.counters["cycles"] = static_cast<double>(cycles);
  state.counters["logical_msgs"] = static_cast<double>(logical);
  state.counters["wire_msgs"] = static_cast<double>(wire);
  state.counters["piggyback_ratio"] =
      static_cast<double>(logical) / static_cast<double>(wire ? wire : 1);
  state.counters["logical_bytes"] = static_cast<double>(logical_bytes);
  state.counters["wire_bytes"] = static_cast<double>(wire_bytes);
  state.counters["all_collected"] = collected ? 1.0 : 0.0;
}
BENCHMARK(BM_Piggyback_ManyCyclesOneChannel)
    ->Args({0, 16})
    ->Args({5, 16})
    ->Args({20, 16})
    ->Args({20, 64})
    ->Args({80, 64});

}  // namespace

BENCHMARK_MAIN();
