// Scalability: "It is suitable for emerging distributed object systems that
// must scale to a large number of sites" (Section 8).
//
// Sweeps the system size with a FIXED amount of garbage (one 2-site cycle
// plus per-site live data): back tracing's total and per-bystander cost must
// stay flat as sites grow — the work is a function of the garbage, not of
// the system. Also sweeps cycle size at fixed system size (cost ∝ cycle).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/parallel_trace.h"

namespace {

using namespace dgc;

void BM_Scale_SystemSizeFixedGarbage(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  std::uint64_t backtrace_msgs = 0;
  std::uint64_t total_msgs = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    System system(sites, config);
    const auto cycle = dgc::bench::BuildCycleScenario(
        system, {.cycle_sites = 2, .objects_per_site = 1, .live_per_site = 4});
    rounds = dgc::bench::RoundsUntilCollected(system, cycle, 40);
    const NetworkStats& stats = system.network().stats();
    backtrace_msgs = stats.count_of<BackLocalCallMsg>() +
                     stats.count_of<BackReplyMsg>() +
                     stats.count_of<BackReportMsg>();
    total_msgs = stats.inter_site_sent;
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["backtrace_msgs"] = static_cast<double>(backtrace_msgs);
  state.counters["total_msgs"] = static_cast<double>(total_msgs);
}
BENCHMARK(BM_Scale_SystemSizeFixedGarbage)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Scale_CycleSizeFixedSystem(benchmark::State& state) {
  const std::size_t cycle_sites = static_cast<std::size_t>(state.range(0));
  std::uint64_t backtrace_msgs = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length = static_cast<Distance>(cycle_sites + 2);
    System system(32, config);
    const auto cycle = dgc::bench::BuildCycleScenario(
        system,
        {.cycle_sites = cycle_sites, .objects_per_site = 1,
         .live_per_site = 4});
    dgc::bench::RoundsUntilCollected(system, cycle, 80);
    const NetworkStats& stats = system.network().stats();
    backtrace_msgs = stats.count_of<BackLocalCallMsg>() +
                     stats.count_of<BackReplyMsg>() +
                     stats.count_of<BackReportMsg>();
  }
  state.counters["cycle_sites"] = static_cast<double>(cycle_sites);
  state.counters["backtrace_msgs"] = static_cast<double>(backtrace_msgs);
  state.counters["per_cycle_site"] =
      static_cast<double>(backtrace_msgs) / static_cast<double>(cycle_sites);
}
BENCHMARK(BM_Scale_CycleSizeFixedSystem)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Parallel local tracing: the paper's locality property makes each site's
// trace an independent computation, so a round's compute phase can fan out
// across a thread pool. Fixed total work (8 sites x ~12.5k objects), swept
// over the pool size. On a single hardware thread the Arg(2)/Arg(4) rows
// only measure scheduling overhead; on multi-core hosts they show the
// speedup, and objects_per_sec is the comparable figure either way.
void BM_Scale_TraceThreads(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSites = 8;
  constexpr std::size_t kObjectsPerSite = 12'500;

  CollectorConfig config = dgc::bench::DefaultConfig();
  System system(kSites, config);
  for (SiteId s = 0; s < kSites; ++s) {
    const ObjectId root = system.NewObject(s, kObjectsPerSite);
    system.SetPersistentRoot(root);
    for (std::size_t i = 0; i < kObjectsPerSite; ++i) {
      system.Wire(root, i, system.NewObject(s, 0));
    }
  }

  std::vector<Site*> sites;
  for (SiteId s = 0; s < kSites; ++s) sites.push_back(&system.site(s));

  ParallelTraceExecutor executor(threads);
  std::uint64_t marked_total = 0;
  for (auto _ : state) {
    std::vector<TraceResult> results = executor.ComputeAll(sites);
    std::uint64_t marked = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      marked += results[i].stats.objects_marked_clean +
                results[i].stats.objects_marked_suspect;
      // Commit so the next iteration starts from a trace-complete state.
      sites[i]->CommitLocalTrace(std::move(results[i]));
    }
    marked_total += marked;
    benchmark::DoNotOptimize(marked);
  }
  state.counters["trace_threads"] = static_cast<double>(threads);
  state.counters["sites"] = static_cast<double>(kSites);
  state.counters["objects_per_sec"] = benchmark::Counter(
      static_cast<double>(marked_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Scale_TraceThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: default the file reporter to BENCH_trace_scalability.json for
// scripts/bench_compare.py. An explicit --benchmark_out still wins.
int main(int argc, char** argv) {
  return dgc::bench::RunBenchmarksWithDefaultOut(
      argc, argv, "BENCH_trace_scalability.json");
}
