// Scalability: "It is suitable for emerging distributed object systems that
// must scale to a large number of sites" (Section 8).
//
// Sweeps the system size with a FIXED amount of garbage (one 2-site cycle
// plus per-site live data): back tracing's total and per-bystander cost must
// stay flat as sites grow — the work is a function of the garbage, not of
// the system. Also sweeps cycle size at fixed system size (cost ∝ cycle).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace dgc;

void AddLiveData(System& system, std::size_t per_site) {
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const ObjectId root = system.NewObject(s, per_site);
    system.SetPersistentRoot(root);
    for (std::size_t i = 0; i < per_site; ++i) {
      system.Wire(root, i, system.NewObject(s, 0));
    }
  }
}

void BM_Scale_SystemSizeFixedGarbage(benchmark::State& state) {
  const std::size_t sites = static_cast<std::size_t>(state.range(0));
  std::uint64_t backtrace_msgs = 0;
  std::uint64_t total_msgs = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    System system(sites, config);
    const auto cycle = workload::BuildCycle(
        system, {.sites = 2, .objects_per_site = 1});
    AddLiveData(system, 4);
    system.network().ResetStats();
    rounds = dgc::bench::RoundsUntilCollected(system, cycle, 40);
    const NetworkStats& stats = system.network().stats();
    backtrace_msgs = stats.count_of<BackLocalCallMsg>() +
                     stats.count_of<BackReplyMsg>() +
                     stats.count_of<BackReportMsg>();
    total_msgs = stats.inter_site_sent;
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["backtrace_msgs"] = static_cast<double>(backtrace_msgs);
  state.counters["total_msgs"] = static_cast<double>(total_msgs);
}
BENCHMARK(BM_Scale_SystemSizeFixedGarbage)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Scale_CycleSizeFixedSystem(benchmark::State& state) {
  const std::size_t cycle_sites = static_cast<std::size_t>(state.range(0));
  std::uint64_t backtrace_msgs = 0;
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length = static_cast<Distance>(cycle_sites + 2);
    System system(32, config);
    const auto cycle = workload::BuildCycle(
        system, {.sites = cycle_sites, .objects_per_site = 1});
    AddLiveData(system, 4);
    system.network().ResetStats();
    dgc::bench::RoundsUntilCollected(system, cycle, 80);
    const NetworkStats& stats = system.network().stats();
    backtrace_msgs = stats.count_of<BackLocalCallMsg>() +
                     stats.count_of<BackReplyMsg>() +
                     stats.count_of<BackReportMsg>();
  }
  state.counters["cycle_sites"] = static_cast<double>(cycle_sites);
  state.counters["backtrace_msgs"] = static_cast<double>(backtrace_msgs);
  state.counters["per_cycle_site"] =
      static_cast<double>(backtrace_msgs) / static_cast<double>(cycle_sites);
}
BENCHMARK(BM_Scale_CycleSizeFixedSystem)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
