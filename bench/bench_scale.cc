// Scale engine: open-loop 100-site / 10^6-object runs (ROADMAP: "millions of
// users" means the collector must hold up at deployment scale, not bench
// scale).
//
// Rows:
//   * BM_Scale_OpenLoop/<sites>/<objects_per_site>: instantiate a power-law
//     topology, then drive actor-style request/reply churn at a fixed
//     arrival rate while staggered collection rounds overlap — no drain
//     between mutations. Reports sustained mutation throughput, p50/p99
//     time-to-collect (simulated ticks from tether-sever to full
//     reclamation), messages per collected cycle, a peak-RSS proxy (VmHWM)
//     and the flat-table reuse counters. The small row is the CI gate; the
//     100 x 10'000 row is the headline configuration.
//   * BM_Scale_TableMutation/<impl>/<entries>: the per-mutation table cost
//     the flat swap targets — an identical find/insert/erase mix against
//     FlatMap (impl 1) and the old std::map (impl 0) at per-site table
//     sizes, so bench_compare.py --check-scale can assert the flat path is
//     measurably cheaper.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "workload/scale.h"

namespace {

using namespace dgc;

/// Peak resident set (VmHWM) in MiB, from /proc/self/status; 0 when the
/// proc interface is unavailable.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      double kb = 0.0;
      fields >> kb;
      return kb / 1024.0;
    }
  }
  return 0.0;
}

void BM_Scale_OpenLoop(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto objects_per_site = static_cast<std::size_t>(state.range(1));

  std::uint64_t mutations = 0;
  std::uint64_t collected = 0;
  std::uint64_t severed = 0;
  std::uint64_t backlog = 0;
  std::uint64_t messages = 0;
  std::uint64_t reuses = 0;
  std::uint64_t grows = 0;
  SimTime p50 = 0;
  SimTime p99 = 0;

  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    System system(sites, config);

    workload::ScaleTopologySpec topo;
    topo.sites = sites;
    topo.objects_per_site = objects_per_site;
    topo.seed = 42;
    const workload::ScaleTopologyPlan plan = workload::BuildScaleTopology(topo);
    workload::InstantiateScaleTopology(system, plan);
    system.network().ResetStats();

    workload::ScaleDriverSpec drive;
    drive.duration = 20'000;
    drive.mean_interarrival = 5;
    drive.mean_lifetime = 400;
    drive.round_period = 500;
    drive.seed = 7;
    workload::ScaleDriver driver(system, drive);
    driver.Run();

    mutations = driver.stats().mutations;
    collected = driver.stats().cohorts_collected;
    severed = driver.stats().cohorts_severed;
    backlog = driver.backlog();
    messages = system.network().stats().inter_site_sent;
    p50 = driver.time_to_collect().Quantile(0.5);
    p99 = driver.time_to_collect().Quantile(0.99);
    reuses = 0;
    grows = 0;
    for (SiteId s = 0; s < system.site_count(); ++s) {
      reuses += system.site(s).stats().table_slot_reuses;
      grows += system.site(s).stats().table_slot_grows;
    }
  }

  state.counters["sites"] = static_cast<double>(sites);
  state.counters["objects"] =
      static_cast<double>(sites * objects_per_site);
  state.counters["mutations_per_sec"] = benchmark::Counter(
      static_cast<double>(mutations), benchmark::Counter::kIsRate);
  state.counters["cycles_collected"] = static_cast<double>(collected);
  state.counters["cycles_severed"] = static_cast<double>(severed);
  state.counters["backlog"] = static_cast<double>(backlog);
  state.counters["ttc_p50"] = static_cast<double>(p50);
  state.counters["ttc_p99"] = static_cast<double>(p99);
  state.counters["msgs_per_cycle"] =
      collected == 0 ? 0.0
                     : static_cast<double>(messages) /
                           static_cast<double>(collected);
  state.counters["table_slot_reuses"] = static_cast<double>(reuses);
  state.counters["table_slot_grows"] = static_cast<double>(grows);
  state.counters["peak_rss_mb"] = PeakRssMb();
}
// The small row gates CI; the 100 x 10'000 row is the paper-scale headline
// (10^6 objects, single iteration — construction dominates re-runs).
BENCHMARK(BM_Scale_OpenLoop)
    ->Args({10, 2'000})
    ->Args({100, 10'000})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// The table traffic one driver mutation induces on a site's ref tables.
/// Object ids are allocated monotonically, so barrier inserts land at the
/// tail of the key order; actor cohorts die young, so erases also hit near
/// the tail (a sliding window of `window` churn keys). Lookups — the bulk of
/// the traffic, from barriers and trace scans — span the whole table. This
/// is the pattern that favours a sorted vector: contiguous binary search for
/// the lookups, O(window) shifts (not O(table)) for the structural ops.
template <typename Map>
std::uint64_t RunMutationMix(Map& map, Rng& rng, std::size_t ops,
                             std::uint64_t bulk, std::uint64_t window,
                             std::uint64_t& next_key) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    // Barrier and trace lookups: mostly the long-lived topology bulk, some
    // against the in-flight churn region.
    for (int k = 0; k < 6; ++k) {
      const auto it = map.find(ObjectId{0, rng.NextBelow(bulk)});
      if (it != map.end()) acc += static_cast<std::uint64_t>(it->second);
    }
    for (int k = 0; k < 2; ++k) {
      const auto it = map.find(ObjectId{0, next_key - 1 - rng.NextBelow(window)});
      if (it != map.end()) acc += static_cast<std::uint64_t>(it->second);
    }
    // Transfer barrier on a fresh object; its cohort dies `window` ids later.
    map[ObjectId{0, next_key}] = static_cast<int>(i);
    map.erase(ObjectId{0, next_key - window});
    ++next_key;
  }
  return acc;
}

void BM_Scale_TableMutation(benchmark::State& state) {
  const bool use_flat = state.range(0) == 1;
  const auto entries = static_cast<std::size_t>(state.range(1));
  constexpr std::uint64_t kChurnWindow = 64;
  constexpr std::size_t kOpsPerIteration = 10'000;

  FlatMap<ObjectId, int> flat;
  std::map<ObjectId, int> tree;
  std::uint64_t next_key = 0;
  // Long-lived topology bulk plus a warm churn window at the tail.
  for (; next_key < entries + kChurnWindow; ++next_key) {
    if (use_flat) {
      flat[ObjectId{0, next_key}] = static_cast<int>(next_key);
    } else {
      tree[ObjectId{0, next_key}] = static_cast<int>(next_key);
    }
  }

  Rng rng(1234);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += use_flat ? RunMutationMix(flat, rng, kOpsPerIteration, entries,
                                     kChurnWindow, next_key)
                    : RunMutationMix(tree, rng, kOpsPerIteration, entries,
                                     kChurnWindow, next_key);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kOpsPerIteration));
  state.counters["entries"] = static_cast<double>(entries);
  state.counters["flat"] = use_flat ? 1.0 : 0.0;
}
BENCHMARK(BM_Scale_TableMutation)
    ->Args({0, 2'048})
    ->Args({1, 2'048})
    ->Args({0, 16'384})
    ->Args({1, 16'384})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return dgc::bench::RunBenchmarksWithDefaultOut(argc, argv,
                                                 "BENCH_scale.json");
}
