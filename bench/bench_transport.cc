// Transport backends head-to-head: the same seeded scenarios run under the
// deterministic simulator and under the other backends, one JSON record per
// comparison, so the speedup (and its verdict-equality precondition) is
// something bench_compare.py --check-transport can gate.
//
// Rows:
//   * BM_Transport_OpenLoop/<sites>/<objects_per_site>: drive the power-law
//     request/reply churn with same-instant collection rounds
//     (round_stagger 0 — every site's trace lands in one parallel phase,
//     the configuration the threaded engine parallelises) under BOTH
//     backends. Reports per-backend wall-clock, the speedup, both backends'
//     severed/collected/reclaimed figures plus verdicts_match (1 when the
//     threaded run reproduced the sim run's counts and survivor census
//     exactly), host_cpus (the gate only enforces a speedup floor when the
//     host has cores to parallelise on), and the threaded engine's
//     queue-depth/handoff counters.
//   * BM_Transport_ScriptedChurn: the sim-vs-socket differential as a bench
//     row — the scripted ring churn applied to a System and to a SocketWorld
//     (real site processes over Unix-domain sockets) with one seed. Emits
//     socket_* figures and the socket engine's handshake/step counters.
//     Verdict equality is the gate; wall-clock is informational (real
//     processes pay real syscalls — there is no speedup leg to enforce).
//   * BM_Transport_ReplayShard/<sites>/<objects_per_site>: the threaded
//     engine with sharded staged-send replay (the default) against the
//     forced-serial replay loop (transport_serial_replay). Equality of the
//     two runs' verdicts is the gate; parallel_replays proves the sharded
//     branch actually ran; replay_speedup carries a floor only on hosts
//     with cores to shard across.
//   * BM_Transport_SocketPipeline/<sites>: the socket engine's pipelined
//     step loop (one StepRequest in flight to every involved site) against
//     the serial lock-step loop (socket.pipelined_steps = false), identical
//     seeded op streams, wall measured AFTER process spawn so the figure is
//     the step loop itself. Reports coordinator wall per step for both
//     modes and their ratio (pipeline_step_speedup); equality unconditional,
//     the per-step floor again gated on host_cpus.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/socket_world.h"
#include "net/transport.h"
#include "workload/scale.h"
#include "workload/scripted.h"

namespace {

using namespace dgc;

struct RunResult {
  double wall_ms = 0.0;
  std::uint64_t mutations = 0;
  std::uint64_t severed = 0;
  std::uint64_t collected = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t objects_left = 0;
  TransportCounters transport;
};

RunResult RunScenario(TransportKind kind, std::size_t sites,
                      std::size_t objects_per_site,
                      bool serial_replay = false) {
  CollectorConfig config = dgc::bench::DefaultConfig();
  NetworkConfig net;
  net.transport = kind;
  net.transport_serial_replay = serial_replay;

  const auto start = std::chrono::steady_clock::now();
  System system(sites, config, net, /*seed=*/42);

  workload::ScaleTopologySpec topo;
  topo.sites = sites;
  topo.objects_per_site = objects_per_site;
  topo.seed = 42;
  workload::InstantiateScaleTopology(system, workload::BuildScaleTopology(topo));

  workload::ScaleDriverSpec drive;
  drive.duration = 20'000;
  drive.mean_interarrival = 5;
  drive.mean_lifetime = 400;
  drive.round_period = 500;
  drive.round_stagger = 0;  // same-instant rounds: one parallel phase each
  drive.seed = 7;
  workload::ScaleDriver driver(system, drive);
  driver.Run();
  driver.Quiesce();
  const auto end = std::chrono::steady_clock::now();

  RunResult out;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  out.mutations = driver.stats().mutations;
  out.severed = driver.stats().cohorts_severed;
  out.collected = driver.stats().cohorts_collected;
  out.reclaimed = system.TotalObjectsReclaimed();
  out.objects_left = system.TotalObjects();
  out.transport = system.transport().counters();
  return out;
}

void BM_Transport_OpenLoop(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto objects_per_site = static_cast<std::size_t>(state.range(1));

  RunResult sim;
  RunResult threaded;
  for (auto _ : state) {
    sim = RunScenario(TransportKind::kSim, sites, objects_per_site);
    threaded = RunScenario(TransportKind::kThreaded, sites, objects_per_site);
  }

  const bool verdicts_match = sim.severed == threaded.severed &&
                              sim.collected == threaded.collected &&
                              sim.reclaimed == threaded.reclaimed &&
                              sim.objects_left == threaded.objects_left;

  state.counters["sites"] = static_cast<double>(sites);
  state.counters["objects"] = static_cast<double>(sites * objects_per_site);
  state.counters["host_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["sim_wall_ms"] = sim.wall_ms;
  state.counters["threaded_wall_ms"] = threaded.wall_ms;
  state.counters["speedup"] =
      threaded.wall_ms == 0.0 ? 0.0 : sim.wall_ms / threaded.wall_ms;
  state.counters["verdicts_match"] = verdicts_match ? 1.0 : 0.0;
  state.counters["sim_cycles_severed"] = static_cast<double>(sim.severed);
  state.counters["sim_cycles_collected"] = static_cast<double>(sim.collected);
  state.counters["sim_reclaimed"] = static_cast<double>(sim.reclaimed);
  state.counters["threaded_cycles_severed"] =
      static_cast<double>(threaded.severed);
  state.counters["threaded_cycles_collected"] =
      static_cast<double>(threaded.collected);
  state.counters["threaded_reclaimed"] =
      static_cast<double>(threaded.reclaimed);
  state.counters["timesteps"] =
      static_cast<double>(threaded.transport.timesteps);
  state.counters["parallel_phases"] =
      static_cast<double>(threaded.transport.parallel_phases);
  state.counters["site_steps"] =
      static_cast<double>(threaded.transport.site_steps);
  state.counters["handoffs"] = static_cast<double>(threaded.transport.handoffs);
  state.counters["staged_sends"] =
      static_cast<double>(threaded.transport.staged_sends);
  state.counters["queue_peak"] =
      static_cast<double>(threaded.transport.inbox_peak_depth);
  state.counters["queue_contention"] =
      static_cast<double>(threaded.transport.inbox_contention);
}
// The small row gates CI (and keeps TSan runs affordable); the large row is
// the headline sim-vs-threaded comparison on the PR 7 scale scenario shape.
BENCHMARK(BM_Transport_OpenLoop)
    ->Args({4, 1'000})
    ->Args({10, 2'000})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// --- sharded vs serial staged-send replay ------------------------------

void BM_Transport_ReplayShard(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto objects_per_site = static_cast<std::size_t>(state.range(1));

  RunResult serial;
  RunResult sharded;
  for (auto _ : state) {
    serial = RunScenario(TransportKind::kThreaded, sites, objects_per_site,
                         /*serial_replay=*/true);
    sharded = RunScenario(TransportKind::kThreaded, sites, objects_per_site,
                          /*serial_replay=*/false);
  }

  const bool verdicts_match = serial.severed == sharded.severed &&
                              serial.collected == sharded.collected &&
                              serial.reclaimed == sharded.reclaimed &&
                              serial.objects_left == sharded.objects_left;

  state.counters["sites"] = static_cast<double>(sites);
  state.counters["objects"] = static_cast<double>(sites * objects_per_site);
  state.counters["host_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["serial_wall_ms"] = serial.wall_ms;
  state.counters["sharded_wall_ms"] = sharded.wall_ms;
  state.counters["replay_speedup"] =
      sharded.wall_ms == 0.0 ? 0.0 : serial.wall_ms / sharded.wall_ms;
  // Proof the sharded branch actually ran (0 on one-core hosts, where the
  // replay pool has no workers and the engine falls back to serial commit).
  state.counters["parallel_replays"] =
      static_cast<double>(sharded.transport.parallel_replays);
  state.counters["staged_sends"] =
      static_cast<double>(sharded.transport.staged_sends);
  state.counters["verdicts_match"] = verdicts_match ? 1.0 : 0.0;
  state.counters["serial_cycles_severed"] = static_cast<double>(serial.severed);
  state.counters["serial_cycles_collected"] =
      static_cast<double>(serial.collected);
  state.counters["serial_reclaimed"] = static_cast<double>(serial.reclaimed);
  state.counters["sharded_cycles_severed"] =
      static_cast<double>(sharded.severed);
  state.counters["sharded_cycles_collected"] =
      static_cast<double>(sharded.collected);
  state.counters["sharded_reclaimed"] = static_cast<double>(sharded.reclaimed);
}
BENCHMARK(BM_Transport_ReplayShard)
    ->Args({10, 2'000})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// --- sim vs socket -----------------------------------------------------

constexpr std::size_t kChurnSites = 4;

ScriptedChurnSpec BenchChurnSpec() {
  ScriptedChurnSpec spec;
  spec.rounds = 4;
  spec.rings_per_round = 2;
  spec.ring_span = 3;
  spec.locals_per_round = 2;
  spec.cut_probability = 0.6;
  spec.drain_rounds = 8;
  return spec;
}

struct ScriptedOutcome {
  double wall_ms = 0.0;
  std::uint64_t severed = 0;    // tethers cut: rings turned garbage
  std::uint64_t collected = 0;  // cut rings with every object reclaimed
  std::uint64_t reclaimed = 0;
  std::uint64_t objects_left = 0;
  /// Per-object survival, in script order (ring objects, tether, locals):
  /// the census the verdicts_match flag compares across backends.
  std::vector<bool> fates;
};

template <typename ExistsFn>
void FillOutcome(ScriptedOutcome& out, const ScriptedChurnResult& script,
                 const ExistsFn& exists) {
  for (const ScriptedRing& ring : script.rings) {
    if (ring.cut) ++out.severed;
    bool all_gone = true;
    for (const ObjectId obj : ring.objects) {
      const bool alive = exists(obj);
      out.fates.push_back(alive);
      if (alive) all_gone = false;
    }
    out.fates.push_back(exists(ring.tether));
    if (ring.cut && all_gone) ++out.collected;
  }
  for (const ObjectId obj : script.locals) out.fates.push_back(exists(obj));
}

ScriptedOutcome RunScriptedSim(std::uint64_t seed) {
  const auto start = std::chrono::steady_clock::now();
  System system(kChurnSites, dgc::bench::DefaultConfig(), NetworkConfig{},
                seed);
  SystemGodWorld world(system);
  const ScriptedChurnResult script =
      RunScriptedChurn(world, seed, BenchChurnSpec());
  ScriptedOutcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.reclaimed = system.TotalObjectsReclaimed();
  out.objects_left = system.TotalObjects();
  FillOutcome(out, script,
              [&](ObjectId id) { return system.ObjectExists(id); });
  return out;
}

ScriptedOutcome RunScriptedSocket(std::uint64_t seed,
                                  SocketCounters& counters) {
  const auto start = std::chrono::steady_clock::now();
  SocketWorldOptions options;
  options.site_count = kChurnSites;
  options.collector = dgc::bench::DefaultConfig();
  options.seed = seed;
  SocketWorld world(std::move(options));
  SocketGodWorld god(world);
  const ScriptedChurnResult script =
      RunScriptedChurn(god, seed, BenchChurnSpec());
  ScriptedOutcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.reclaimed = world.TotalObjectsReclaimed();
  out.objects_left = world.TotalObjects();
  FillOutcome(out, script,
              [&](ObjectId id) { return world.ObjectExists(id); });
  counters = world.transport().socket_counters();
  return out;
}

void BM_Transport_ScriptedChurn(benchmark::State& state) {
  constexpr std::uint64_t kSeed = 11;
  ScriptedOutcome sim;
  ScriptedOutcome socket;
  SocketCounters counters;
  for (auto _ : state) {
    sim = RunScriptedSim(kSeed);
    socket = RunScriptedSocket(kSeed, counters);
  }

  const bool verdicts_match = sim.fates == socket.fates &&
                              sim.severed == socket.severed &&
                              sim.collected == socket.collected &&
                              sim.reclaimed == socket.reclaimed &&
                              sim.objects_left == socket.objects_left;

  state.counters["sites"] = static_cast<double>(kChurnSites);
  state.counters["host_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["sim_wall_ms"] = sim.wall_ms;
  state.counters["socket_wall_ms"] = socket.wall_ms;
  state.counters["verdicts_match"] = verdicts_match ? 1.0 : 0.0;
  state.counters["sim_cycles_severed"] = static_cast<double>(sim.severed);
  state.counters["sim_cycles_collected"] = static_cast<double>(sim.collected);
  state.counters["sim_reclaimed"] = static_cast<double>(sim.reclaimed);
  state.counters["socket_cycles_severed"] =
      static_cast<double>(socket.severed);
  state.counters["socket_cycles_collected"] =
      static_cast<double>(socket.collected);
  state.counters["socket_reclaimed"] = static_cast<double>(socket.reclaimed);
  state.counters["handshakes"] =
      static_cast<double>(counters.handshakes_accepted);
  state.counters["step_requests"] = static_cast<double>(counters.step_requests);
  state.counters["build_ops"] = static_cast<double>(counters.build_ops);
  state.counters["step_timeouts"] = static_cast<double>(counters.step_timeouts);
}
BENCHMARK(BM_Transport_ScriptedChurn)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// --- pipelined vs lock-step socket stepping ----------------------------

/// Scripted churn against a SocketWorld in either step-loop mode. Unlike
/// RunScriptedSocket the clock starts AFTER SocketWorld construction, so
/// wall_ms is the coordinator's op/step loop without the fork+handshake
/// cost that is identical in both modes.
ScriptedOutcome RunScriptedSocketMode(std::uint64_t seed, std::size_t sites,
                                      bool pipelined,
                                      SocketCounters& counters) {
  SocketWorldOptions options;
  options.site_count = sites;
  options.collector = dgc::bench::DefaultConfig();
  options.seed = seed;
  options.network.socket.pipelined_steps = pipelined;
  SocketWorld world(std::move(options));
  const auto start = std::chrono::steady_clock::now();
  SocketGodWorld god(world);
  const ScriptedChurnResult script =
      RunScriptedChurn(god, seed, BenchChurnSpec());
  ScriptedOutcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.reclaimed = world.TotalObjectsReclaimed();
  out.objects_left = world.TotalObjects();
  FillOutcome(out, script,
              [&](ObjectId id) { return world.ObjectExists(id); });
  counters = world.transport().socket_counters();
  return out;
}

void BM_Transport_SocketPipeline(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kSeed = 17;

  ScriptedOutcome lockstep;
  ScriptedOutcome pipelined;
  SocketCounters lockstep_counters;
  SocketCounters pipelined_counters;
  for (auto _ : state) {
    lockstep =
        RunScriptedSocketMode(kSeed, sites, /*pipelined=*/false,
                              lockstep_counters);
    pipelined =
        RunScriptedSocketMode(kSeed, sites, /*pipelined=*/true,
                              pipelined_counters);
  }

  const bool verdicts_match = lockstep.fates == pipelined.fates &&
                              lockstep.severed == pipelined.severed &&
                              lockstep.collected == pipelined.collected &&
                              lockstep.reclaimed == pipelined.reclaimed &&
                              lockstep.objects_left == pipelined.objects_left;

  // Both modes run the identical seeded op stream, so step_requests match on
  // a fault-free run; per-step wall is the comparable coordinator figure.
  const double lockstep_steps =
      static_cast<double>(lockstep_counters.step_requests);
  const double pipelined_steps =
      static_cast<double>(pipelined_counters.step_requests);
  const double lockstep_per_step =
      lockstep_steps == 0.0 ? 0.0 : lockstep.wall_ms / lockstep_steps;
  const double pipelined_per_step =
      pipelined_steps == 0.0 ? 0.0 : pipelined.wall_ms / pipelined_steps;

  state.counters["sites"] = static_cast<double>(sites);
  state.counters["host_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["lockstep_wall_ms"] = lockstep.wall_ms;
  state.counters["pipelined_wall_ms"] = pipelined.wall_ms;
  state.counters["lockstep_step_requests"] = lockstep_steps;
  state.counters["pipelined_step_requests"] = pipelined_steps;
  state.counters["lockstep_wall_per_step_ms"] = lockstep_per_step;
  state.counters["pipelined_wall_per_step_ms"] = pipelined_per_step;
  state.counters["pipeline_step_speedup"] =
      pipelined_per_step == 0.0 ? 0.0 : lockstep_per_step / pipelined_per_step;
  state.counters["step_timeouts"] =
      static_cast<double>(pipelined_counters.step_timeouts);
  state.counters["verdicts_match"] = verdicts_match ? 1.0 : 0.0;
  state.counters["lockstep_cycles_severed"] =
      static_cast<double>(lockstep.severed);
  state.counters["lockstep_cycles_collected"] =
      static_cast<double>(lockstep.collected);
  state.counters["lockstep_reclaimed"] =
      static_cast<double>(lockstep.reclaimed);
  state.counters["pipelined_cycles_severed"] =
      static_cast<double>(pipelined.severed);
  state.counters["pipelined_cycles_collected"] =
      static_cast<double>(pipelined.collected);
  state.counters["pipelined_reclaimed"] =
      static_cast<double>(pipelined.reclaimed);
}
BENCHMARK(BM_Transport_SocketPipeline)
    ->Args({4})
    ->Args({8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dgc::bench::RunBenchmarksWithDefaultOut(argc, argv,
                                                 "BENCH_transport.json");
}
