// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdio>

#include "core/system.h"
#include "workload/builders.h"

namespace dgc::bench {

/// Collector tuning used across benches unless a bench sweeps it.
inline CollectorConfig DefaultConfig() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.back_threshold_increment = 2;
  return config;
}

/// Runs rounds until the ring cycle is fully reclaimed; returns the number
/// of rounds taken (or max_rounds if it never happened).
inline std::size_t RoundsUntilCollected(System& system,
                                        const workload::CycleHandles& cycle,
                                        std::size_t max_rounds) {
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    system.RunRound();
    bool any = false;
    for (const ObjectId id : cycle.objects) {
      if (system.ObjectExists(id)) {
        any = true;
        break;
      }
    }
    if (!any) return round;
  }
  return max_rounds;
}

}  // namespace dgc::bench
