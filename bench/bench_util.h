// Shared helpers for the benchmark harnesses.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.h"
#include "workload/builders.h"

namespace dgc::bench {

/// BENCHMARK_MAIN body that defaults --benchmark_out to `default_out` (JSON
/// format) so plain runs land in the comparison file bench_compare.py
/// expects; an explicit --benchmark_out on the command line still wins.
inline int RunBenchmarksWithDefaultOut(int argc, char** argv,
                                       const char* default_out) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// Collector tuning used across benches unless a bench sweeps it.
inline CollectorConfig DefaultConfig() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.back_threshold_increment = 2;
  return config;
}

/// Runs rounds until the ring cycle is fully reclaimed; returns the number
/// of rounds taken (or max_rounds if it never happened).
inline std::size_t RoundsUntilCollected(System& system,
                                        const workload::CycleHandles& cycle,
                                        std::size_t max_rounds) {
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    system.RunRound();
    bool any = false;
    for (const ObjectId id : cycle.objects) {
      if (system.ObjectExists(id)) {
        any = true;
        break;
      }
    }
    if (!any) return round;
  }
  return max_rounds;
}

}  // namespace dgc::bench
