// Shared helpers for the benchmark harnesses.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.h"
#include "workload/builders.h"

namespace dgc::bench {

/// BENCHMARK_MAIN body that defaults --benchmark_out to `default_out` (JSON
/// format) so plain runs land in the comparison file bench_compare.py
/// expects; an explicit --benchmark_out on the command line still wins.
inline int RunBenchmarksWithDefaultOut(int argc, char** argv,
                                       const char* default_out) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// Collector tuning used across benches unless a bench sweeps it.
inline CollectorConfig DefaultConfig() {
  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.back_threshold_increment = 2;
  return config;
}

/// Per-site rooted live data: one persistent root per site fanning out to
/// `per_site` leaf objects — the standing live world scenarios need so local
/// traces and back traces have non-garbage work to skip.
inline void AddRootedLiveData(System& system, std::size_t per_site) {
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const ObjectId root = system.NewObject(s, per_site);
    system.SetPersistentRoot(root);
    for (std::size_t i = 0; i < per_site; ++i) {
      system.Wire(root, i, system.NewObject(s, 0));
    }
  }
}

/// The canonical scenario most benches were assembling by hand: a garbage
/// ring spanning `cycle_sites` sites plus rooted live data on every site,
/// with network counters reset so the measured traffic starts at the
/// scenario boundary.
struct CycleScenarioSpec {
  std::size_t cycle_sites = 2;
  std::size_t objects_per_site = 1;
  std::size_t live_per_site = 4;
};

inline workload::CycleHandles BuildCycleScenario(
    System& system, const CycleScenarioSpec& spec) {
  const workload::CycleHandles cycle = workload::BuildCycle(
      system,
      {.sites = spec.cycle_sites, .objects_per_site = spec.objects_per_site});
  AddRootedLiveData(system, spec.live_per_site);
  system.network().ResetStats();
  return cycle;
}

/// Runs rounds until the ring cycle is fully reclaimed; returns the number
/// of rounds taken (or max_rounds if it never happened).
inline std::size_t RoundsUntilCollected(System& system,
                                        const workload::CycleHandles& cycle,
                                        std::size_t max_rounds) {
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    system.RunRound();
    bool any = false;
    for (const ObjectId id : cycle.objects) {
      if (system.ObjectExists(id)) {
        any = true;
        break;
      }
    }
    if (!any) return round;
  }
  return max_rounds;
}

}  // namespace dgc::bench
