// Experiment §7: back tracing against the three comparator schemes on the
// same task — reclaim a W-site garbage ring living in an N-site system with
// bystander live data.
//
// Reported per scheme: inter-site messages, approximate bytes, and whether
// bystander sites were involved (locality). Expected shape, per the paper:
//   * back tracing: small messages, 2E + P of them, zero bystander work;
//   * global mark-sweep: control + gray messages touching every site;
//   * Hughes: update + threshold traffic at every site, every round;
//   * migration: few messages but heavy payload bytes (objects move).
#include <benchmark/benchmark.h>

#include "baselines/central_service.h"
#include "baselines/global_trace.h"
#include "baselines/group_trace.h"
#include "baselines/hughes.h"
#include "baselines/migration.h"
#include "bench_util.h"

namespace {

using namespace dgc;

constexpr std::size_t kTotalSites = 8;

// A live bystander web spread over all sites so global schemes have real
// marking work to do outside the cycle.
void BuildBystanders(System& system, std::size_t per_site) {
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const ObjectId root = system.NewObject(s, per_site);
    system.SetPersistentRoot(root);
    for (std::size_t i = 0; i < per_site; ++i) {
      const ObjectId child = system.NewObject(s, 1);
      system.Wire(root, i, child);
      // One remote edge per bystander root keeps update traffic honest.
      if (i == 0) {
        const ObjectId remote =
            system.NewObject((s + 1) % system.site_count(), 0);
        system.Wire(child, 0, remote);
      }
    }
  }
}

struct Shape {
  std::size_t cycle_sites;
  std::size_t objects_per_site;
};

void ReportNetwork(benchmark::State& state, const System& system,
                   bool collected, std::size_t bystander_calls) {
  const NetworkStats& stats = system.network().stats();
  state.counters["messages"] = static_cast<double>(stats.inter_site_sent);
  state.counters["bytes"] = static_cast<double>(stats.approx_bytes);
  state.counters["collected"] = collected ? 1.0 : 0.0;
  state.counters["bystander_backtrace_calls"] =
      static_cast<double>(bystander_calls);
}

bool CycleGone(const System& system, const workload::CycleHandles& cycle) {
  for (const ObjectId id : cycle.objects) {
    if (system.ObjectExists(id)) return false;
  }
  return true;
}

// Accounting window for every scheme: from the moment the garbage ring
// exists until it is reclaimed, including each scheme's own ripening /
// marking rounds. (The global trace has no per-round infrastructure cost,
// but must be re-run periodically to notice garbage at all — EXPERIMENTS.md
// discusses the amortization.)
void BM_Collect_BackTracing(benchmark::State& state) {
  const Shape shape{static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1))};
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.estimated_cycle_length =
        static_cast<Distance>(shape.cycle_sites + 2);
    System system(kTotalSites, config);
    const auto cycle = workload::BuildCycle(
        system,
        {.sites = shape.cycle_sites, .objects_per_site = shape.objects_per_site});
    BuildBystanders(system, 4);
    system.network().ResetStats();
    const std::size_t rounds =
        dgc::bench::RoundsUntilCollected(system, cycle, 60);
    std::size_t bystander_calls = 0;
    for (SiteId s = static_cast<SiteId>(shape.cycle_sites); s < kTotalSites;
         ++s) {
      bystander_calls += system.site(s).back_tracer().stats().calls_handled;
    }
    ReportNetwork(state, system, rounds < 60, bystander_calls);
    state.counters["rounds"] = static_cast<double>(rounds);
    const NetworkStats& stats = system.network().stats();
    state.counters["backtrace_messages"] =
        static_cast<double>(stats.count_of<BackLocalCallMsg>() +
                            stats.count_of<BackReplyMsg>() +
                            stats.count_of<BackReportMsg>());
  }
}
BENCHMARK(BM_Collect_BackTracing)
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({4, 8});

void BM_Collect_GlobalTrace(benchmark::State& state) {
  const Shape shape{static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1))};
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(kTotalSites, config);
    const auto cycle = workload::BuildCycle(
        system,
        {.sites = shape.cycle_sites, .objects_per_site = shape.objects_per_site});
    BuildBystanders(system, 4);
    system.network().ResetStats();
    baselines::GlobalTraceCollector collector(system);
    const auto stats = collector.RunCycle();
    ReportNetwork(state, system, CycleGone(system, cycle),
                  /*bystander participation is total by construction*/
                  stats.gray_messages + stats.control_messages);
    state.counters["probe_rounds"] = static_cast<double>(stats.probe_rounds);
  }
}
BENCHMARK(BM_Collect_GlobalTrace)->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({4, 8});

void BM_Collect_Hughes(benchmark::State& state) {
  const Shape shape{static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1))};
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(kTotalSites, config);
    const auto cycle = workload::BuildCycle(
        system,
        {.sites = shape.cycle_sites, .objects_per_site = shape.objects_per_site});
    BuildBystanders(system, 4);
    system.network().ResetStats();
    baselines::HughesCollector collector(system, /*lag_rounds=*/4);
    std::size_t rounds = 0;
    for (; rounds < 60 && !CycleGone(system, cycle); ++rounds) {
      collector.RunRound();
    }
    ReportNetwork(state, system, CycleGone(system, cycle),
                  collector.stats().control_messages);
    state.counters["rounds"] = static_cast<double>(rounds);
  }
}
BENCHMARK(BM_Collect_Hughes)->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({4, 8});

void BM_Collect_Migration(benchmark::State& state) {
  const Shape shape{static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1))};
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(kTotalSites, config);
    const auto cycle = workload::BuildCycle(
        system,
        {.sites = shape.cycle_sites, .objects_per_site = shape.objects_per_site});
    BuildBystanders(system, 4);
    system.network().ResetStats();
    system.RunRounds(static_cast<int>(shape.cycle_sites) + 6);  // ripen
    baselines::MigrationCollector collector(system, /*migrate_threshold=*/4);
    collector.Converge();
    system.RunRounds(2);
    ReportNetwork(state, system, CycleGone(system, cycle), 0);
    state.counters["migrations"] =
        static_cast<double>(collector.stats().migrations);
    state.counters["payload_bytes_moved"] =
        static_cast<double>(collector.stats().bytes_moved);
  }
}
BENCHMARK(BM_Collect_Migration)->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({4, 8});

void BM_Collect_GroupTrace(benchmark::State& state) {
  const Shape shape{static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1))};
  const std::size_t bound = static_cast<std::size_t>(state.range(2));
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(kTotalSites, config);
    const auto cycle = workload::BuildCycle(
        system,
        {.sites = shape.cycle_sites, .objects_per_site = shape.objects_per_site});
    BuildBystanders(system, 4);
    system.network().ResetStats();
    system.RunRounds(static_cast<int>(shape.cycle_sites) + 4);  // ripen
    baselines::GroupTraceCollector collector(system, bound);
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (CycleGone(system, cycle)) break;
      if (!collector.RunOnFirstSuspect().has_value()) break;
    }
    ReportNetwork(state, system, CycleGone(system, cycle),
                  collector.stats().formation_messages);
    state.counters["group_size"] =
        static_cast<double>(collector.stats().last_group_size);
    state.counters["group_bound"] = static_cast<double>(bound);
    state.counters["group_messages"] = static_cast<double>(
        collector.stats().formation_messages +
        collector.stats().gray_messages + collector.stats().control_messages);
  }
}
// The crossover the paper predicts: groups bounded at 4 sites collect 2- and
// 4-site cycles but never the 8-site one; back tracing (above) has no bound.
BENCHMARK(BM_Collect_GroupTrace)
    ->Args({2, 1, 4})
    ->Args({4, 1, 4})
    ->Args({8, 1, 4})
    ->Args({8, 1, 8})
    ->Args({4, 8, 4});

void BM_Collect_CentralService(benchmark::State& state) {
  const Shape shape{static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1))};
  for (auto _ : state) {
    CollectorConfig config = dgc::bench::DefaultConfig();
    config.enable_back_tracing = false;
    System system(kTotalSites, config);
    const auto cycle = workload::BuildCycle(
        system,
        {.sites = shape.cycle_sites, .objects_per_site = shape.objects_per_site});
    BuildBystanders(system, 4);
    system.RunRound();  // tables settled
    system.network().ResetStats();
    baselines::CentralServiceCollector service(system);
    service.RunCycle();
    system.RunRounds(2);
    ReportNetwork(state, system, CycleGone(system, cycle),
                  /*every site reports*/ kTotalSites);
    state.counters["summary_bytes"] =
        static_cast<double>(service.stats().summary_bytes);
    state.counters["condemned"] =
        static_cast<double>(service.stats().inrefs_condemned);
  }
}
BENCHMARK(BM_Collect_CentralService)
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({4, 8});

}  // namespace

BENCHMARK_MAIN();
