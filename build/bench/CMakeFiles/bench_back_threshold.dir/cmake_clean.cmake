file(REMOVE_RECURSE
  "CMakeFiles/bench_back_threshold.dir/bench_back_threshold.cc.o"
  "CMakeFiles/bench_back_threshold.dir/bench_back_threshold.cc.o.d"
  "bench_back_threshold"
  "bench_back_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_back_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
