# Empty dependencies file for bench_back_threshold.
# This may be replaced when dependencies are built.
