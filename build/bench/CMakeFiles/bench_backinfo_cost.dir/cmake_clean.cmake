file(REMOVE_RECURSE
  "CMakeFiles/bench_backinfo_cost.dir/bench_backinfo_cost.cc.o"
  "CMakeFiles/bench_backinfo_cost.dir/bench_backinfo_cost.cc.o.d"
  "bench_backinfo_cost"
  "bench_backinfo_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backinfo_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
