# Empty dependencies file for bench_backinfo_cost.
# This may be replaced when dependencies are built.
