file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_traces.dir/bench_concurrent_traces.cc.o"
  "CMakeFiles/bench_concurrent_traces.dir/bench_concurrent_traces.cc.o.d"
  "bench_concurrent_traces"
  "bench_concurrent_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
