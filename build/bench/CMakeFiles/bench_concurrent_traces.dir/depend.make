# Empty dependencies file for bench_concurrent_traces.
# This may be replaced when dependencies are built.
