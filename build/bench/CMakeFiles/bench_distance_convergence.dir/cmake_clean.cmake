file(REMOVE_RECURSE
  "CMakeFiles/bench_distance_convergence.dir/bench_distance_convergence.cc.o"
  "CMakeFiles/bench_distance_convergence.dir/bench_distance_convergence.cc.o.d"
  "bench_distance_convergence"
  "bench_distance_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distance_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
