file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_local_tracing.dir/bench_fig1_local_tracing.cc.o"
  "CMakeFiles/bench_fig1_local_tracing.dir/bench_fig1_local_tracing.cc.o.d"
  "bench_fig1_local_tracing"
  "bench_fig1_local_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_local_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
