# Empty compiler generated dependencies file for bench_fig1_local_tracing.
# This may be replaced when dependencies are built.
