file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_insets.dir/bench_fig2_insets.cc.o"
  "CMakeFiles/bench_fig2_insets.dir/bench_fig2_insets.cc.o.d"
  "bench_fig2_insets"
  "bench_fig2_insets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_insets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
