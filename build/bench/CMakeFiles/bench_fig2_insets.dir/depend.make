# Empty dependencies file for bench_fig2_insets.
# This may be replaced when dependencies are built.
