file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_branching.dir/bench_fig3_branching.cc.o"
  "CMakeFiles/bench_fig3_branching.dir/bench_fig3_branching.cc.o.d"
  "bench_fig3_branching"
  "bench_fig3_branching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_branching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
