# Empty dependencies file for bench_fig3_branching.
# This may be replaced when dependencies are built.
