file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_backinfo.dir/bench_fig4_backinfo.cc.o"
  "CMakeFiles/bench_fig4_backinfo.dir/bench_fig4_backinfo.cc.o.d"
  "bench_fig4_backinfo"
  "bench_fig4_backinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_backinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
