# Empty dependencies file for bench_fig4_backinfo.
# This may be replaced when dependencies are built.
