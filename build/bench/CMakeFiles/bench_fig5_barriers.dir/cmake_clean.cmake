file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_barriers.dir/bench_fig5_barriers.cc.o"
  "CMakeFiles/bench_fig5_barriers.dir/bench_fig5_barriers.cc.o.d"
  "bench_fig5_barriers"
  "bench_fig5_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
