# Empty dependencies file for bench_fig5_barriers.
# This may be replaced when dependencies are built.
