file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_races.dir/bench_fig6_races.cc.o"
  "CMakeFiles/bench_fig6_races.dir/bench_fig6_races.cc.o.d"
  "bench_fig6_races"
  "bench_fig6_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
