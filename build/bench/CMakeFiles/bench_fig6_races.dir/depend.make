# Empty dependencies file for bench_fig6_races.
# This may be replaced when dependencies are built.
