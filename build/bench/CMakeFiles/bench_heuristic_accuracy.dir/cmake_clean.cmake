file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristic_accuracy.dir/bench_heuristic_accuracy.cc.o"
  "CMakeFiles/bench_heuristic_accuracy.dir/bench_heuristic_accuracy.cc.o.d"
  "bench_heuristic_accuracy"
  "bench_heuristic_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristic_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
