# Empty compiler generated dependencies file for bench_heuristic_accuracy.
# This may be replaced when dependencies are built.
