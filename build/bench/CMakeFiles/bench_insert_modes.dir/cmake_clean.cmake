file(REMOVE_RECURSE
  "CMakeFiles/bench_insert_modes.dir/bench_insert_modes.cc.o"
  "CMakeFiles/bench_insert_modes.dir/bench_insert_modes.cc.o.d"
  "bench_insert_modes"
  "bench_insert_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insert_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
