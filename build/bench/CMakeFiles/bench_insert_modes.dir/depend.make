# Empty dependencies file for bench_insert_modes.
# This may be replaced when dependencies are built.
