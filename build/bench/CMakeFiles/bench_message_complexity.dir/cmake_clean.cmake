file(REMOVE_RECURSE
  "CMakeFiles/bench_message_complexity.dir/bench_message_complexity.cc.o"
  "CMakeFiles/bench_message_complexity.dir/bench_message_complexity.cc.o.d"
  "bench_message_complexity"
  "bench_message_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
