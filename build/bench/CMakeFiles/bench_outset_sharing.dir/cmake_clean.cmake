file(REMOVE_RECURSE
  "CMakeFiles/bench_outset_sharing.dir/bench_outset_sharing.cc.o"
  "CMakeFiles/bench_outset_sharing.dir/bench_outset_sharing.cc.o.d"
  "bench_outset_sharing"
  "bench_outset_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outset_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
