# Empty compiler generated dependencies file for bench_outset_sharing.
# This may be replaced when dependencies are built.
