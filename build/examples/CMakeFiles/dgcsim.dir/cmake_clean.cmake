file(REMOVE_RECURSE
  "CMakeFiles/dgcsim.dir/dgcsim.cpp.o"
  "CMakeFiles/dgcsim.dir/dgcsim.cpp.o.d"
  "dgcsim"
  "dgcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
