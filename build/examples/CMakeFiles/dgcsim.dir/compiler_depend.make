# Empty compiler generated dependencies file for dgcsim.
# This may be replaced when dependencies are built.
