# Empty dependencies file for distributed_db.
# This may be replaced when dependencies are built.
