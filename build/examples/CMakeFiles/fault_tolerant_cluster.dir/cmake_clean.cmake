file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_cluster.dir/fault_tolerant_cluster.cpp.o"
  "CMakeFiles/fault_tolerant_cluster.dir/fault_tolerant_cluster.cpp.o.d"
  "fault_tolerant_cluster"
  "fault_tolerant_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
