file(REMOVE_RECURSE
  "CMakeFiles/hypertext_web.dir/hypertext_web.cpp.o"
  "CMakeFiles/hypertext_web.dir/hypertext_web.cpp.o.d"
  "hypertext_web"
  "hypertext_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypertext_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
