# Empty compiler generated dependencies file for hypertext_web.
# This may be replaced when dependencies are built.
