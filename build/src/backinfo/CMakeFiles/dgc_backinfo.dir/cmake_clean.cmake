file(REMOVE_RECURSE
  "CMakeFiles/dgc_backinfo.dir/outset_store.cc.o"
  "CMakeFiles/dgc_backinfo.dir/outset_store.cc.o.d"
  "CMakeFiles/dgc_backinfo.dir/site_back_info.cc.o"
  "CMakeFiles/dgc_backinfo.dir/site_back_info.cc.o.d"
  "libdgc_backinfo.a"
  "libdgc_backinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_backinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
