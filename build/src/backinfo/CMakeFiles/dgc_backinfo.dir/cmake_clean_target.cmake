file(REMOVE_RECURSE
  "libdgc_backinfo.a"
)
