# Empty compiler generated dependencies file for dgc_backinfo.
# This may be replaced when dependencies are built.
