# CMake generated Testfile for 
# Source directory: /root/repo/src/backinfo
# Build directory: /root/repo/build/src/backinfo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
