file(REMOVE_RECURSE
  "CMakeFiles/dgc_backtrace.dir/back_tracer.cc.o"
  "CMakeFiles/dgc_backtrace.dir/back_tracer.cc.o.d"
  "libdgc_backtrace.a"
  "libdgc_backtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_backtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
