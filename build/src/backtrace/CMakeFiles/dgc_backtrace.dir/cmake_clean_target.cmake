file(REMOVE_RECURSE
  "libdgc_backtrace.a"
)
