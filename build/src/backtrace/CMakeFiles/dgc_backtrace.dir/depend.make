# Empty dependencies file for dgc_backtrace.
# This may be replaced when dependencies are built.
