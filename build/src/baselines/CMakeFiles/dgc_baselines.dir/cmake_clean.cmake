file(REMOVE_RECURSE
  "CMakeFiles/dgc_baselines.dir/central_service.cc.o"
  "CMakeFiles/dgc_baselines.dir/central_service.cc.o.d"
  "CMakeFiles/dgc_baselines.dir/global_trace.cc.o"
  "CMakeFiles/dgc_baselines.dir/global_trace.cc.o.d"
  "CMakeFiles/dgc_baselines.dir/group_trace.cc.o"
  "CMakeFiles/dgc_baselines.dir/group_trace.cc.o.d"
  "CMakeFiles/dgc_baselines.dir/hughes.cc.o"
  "CMakeFiles/dgc_baselines.dir/hughes.cc.o.d"
  "CMakeFiles/dgc_baselines.dir/migration.cc.o"
  "CMakeFiles/dgc_baselines.dir/migration.cc.o.d"
  "libdgc_baselines.a"
  "libdgc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
