file(REMOVE_RECURSE
  "libdgc_baselines.a"
)
