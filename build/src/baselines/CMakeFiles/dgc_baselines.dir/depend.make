# Empty dependencies file for dgc_baselines.
# This may be replaced when dependencies are built.
