file(REMOVE_RECURSE
  "CMakeFiles/dgc_common.dir/common.cc.o"
  "CMakeFiles/dgc_common.dir/common.cc.o.d"
  "CMakeFiles/dgc_common.dir/logging.cc.o"
  "CMakeFiles/dgc_common.dir/logging.cc.o.d"
  "libdgc_common.a"
  "libdgc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
