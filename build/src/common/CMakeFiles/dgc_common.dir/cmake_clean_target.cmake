file(REMOVE_RECURSE
  "libdgc_common.a"
)
