# Empty dependencies file for dgc_common.
# This may be replaced when dependencies are built.
