file(REMOVE_RECURSE
  "CMakeFiles/dgc_core.dir/inspect.cc.o"
  "CMakeFiles/dgc_core.dir/inspect.cc.o.d"
  "CMakeFiles/dgc_core.dir/metrics.cc.o"
  "CMakeFiles/dgc_core.dir/metrics.cc.o.d"
  "CMakeFiles/dgc_core.dir/site.cc.o"
  "CMakeFiles/dgc_core.dir/site.cc.o.d"
  "CMakeFiles/dgc_core.dir/system.cc.o"
  "CMakeFiles/dgc_core.dir/system.cc.o.d"
  "libdgc_core.a"
  "libdgc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
