file(REMOVE_RECURSE
  "libdgc_core.a"
)
