# Empty dependencies file for dgc_core.
# This may be replaced when dependencies are built.
