file(REMOVE_RECURSE
  "CMakeFiles/dgc_localgc.dir/local_collector.cc.o"
  "CMakeFiles/dgc_localgc.dir/local_collector.cc.o.d"
  "libdgc_localgc.a"
  "libdgc_localgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_localgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
