file(REMOVE_RECURSE
  "libdgc_localgc.a"
)
