# Empty compiler generated dependencies file for dgc_localgc.
# This may be replaced when dependencies are built.
