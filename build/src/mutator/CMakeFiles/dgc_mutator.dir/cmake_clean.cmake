file(REMOVE_RECURSE
  "CMakeFiles/dgc_mutator.dir/session.cc.o"
  "CMakeFiles/dgc_mutator.dir/session.cc.o.d"
  "CMakeFiles/dgc_mutator.dir/transaction.cc.o"
  "CMakeFiles/dgc_mutator.dir/transaction.cc.o.d"
  "libdgc_mutator.a"
  "libdgc_mutator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_mutator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
