file(REMOVE_RECURSE
  "libdgc_mutator.a"
)
