# Empty dependencies file for dgc_mutator.
# This may be replaced when dependencies are built.
