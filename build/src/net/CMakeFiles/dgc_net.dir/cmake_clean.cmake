file(REMOVE_RECURSE
  "CMakeFiles/dgc_net.dir/messages.cc.o"
  "CMakeFiles/dgc_net.dir/messages.cc.o.d"
  "CMakeFiles/dgc_net.dir/network.cc.o"
  "CMakeFiles/dgc_net.dir/network.cc.o.d"
  "libdgc_net.a"
  "libdgc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
