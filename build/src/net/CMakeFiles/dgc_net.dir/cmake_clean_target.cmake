file(REMOVE_RECURSE
  "libdgc_net.a"
)
