# Empty compiler generated dependencies file for dgc_net.
# This may be replaced when dependencies are built.
