file(REMOVE_RECURSE
  "CMakeFiles/dgc_refs.dir/tables.cc.o"
  "CMakeFiles/dgc_refs.dir/tables.cc.o.d"
  "libdgc_refs.a"
  "libdgc_refs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_refs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
