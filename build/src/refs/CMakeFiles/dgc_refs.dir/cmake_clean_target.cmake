file(REMOVE_RECURSE
  "libdgc_refs.a"
)
