# Empty compiler generated dependencies file for dgc_refs.
# This may be replaced when dependencies are built.
