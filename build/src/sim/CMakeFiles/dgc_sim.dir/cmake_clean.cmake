file(REMOVE_RECURSE
  "CMakeFiles/dgc_sim.dir/scheduler.cc.o"
  "CMakeFiles/dgc_sim.dir/scheduler.cc.o.d"
  "libdgc_sim.a"
  "libdgc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
