file(REMOVE_RECURSE
  "libdgc_sim.a"
)
