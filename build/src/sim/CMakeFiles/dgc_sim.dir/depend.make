# Empty dependencies file for dgc_sim.
# This may be replaced when dependencies are built.
