file(REMOVE_RECURSE
  "CMakeFiles/dgc_store.dir/heap.cc.o"
  "CMakeFiles/dgc_store.dir/heap.cc.o.d"
  "libdgc_store.a"
  "libdgc_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
