file(REMOVE_RECURSE
  "libdgc_store.a"
)
