# Empty dependencies file for dgc_store.
# This may be replaced when dependencies are built.
