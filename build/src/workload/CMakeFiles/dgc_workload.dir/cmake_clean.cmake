file(REMOVE_RECURSE
  "CMakeFiles/dgc_workload.dir/builders.cc.o"
  "CMakeFiles/dgc_workload.dir/builders.cc.o.d"
  "CMakeFiles/dgc_workload.dir/churn.cc.o"
  "CMakeFiles/dgc_workload.dir/churn.cc.o.d"
  "CMakeFiles/dgc_workload.dir/figures.cc.o"
  "CMakeFiles/dgc_workload.dir/figures.cc.o.d"
  "libdgc_workload.a"
  "libdgc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
