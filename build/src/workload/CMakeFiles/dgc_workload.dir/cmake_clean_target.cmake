file(REMOVE_RECURSE
  "libdgc_workload.a"
)
