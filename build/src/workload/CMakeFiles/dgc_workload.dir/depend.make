# Empty dependencies file for dgc_workload.
# This may be replaced when dependencies are built.
