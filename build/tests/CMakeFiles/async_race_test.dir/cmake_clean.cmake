file(REMOVE_RECURSE
  "CMakeFiles/async_race_test.dir/async_race_test.cc.o"
  "CMakeFiles/async_race_test.dir/async_race_test.cc.o.d"
  "async_race_test"
  "async_race_test.pdb"
  "async_race_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_race_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
