file(REMOVE_RECURSE
  "CMakeFiles/backinfo_test.dir/backinfo_test.cc.o"
  "CMakeFiles/backinfo_test.dir/backinfo_test.cc.o.d"
  "backinfo_test"
  "backinfo_test.pdb"
  "backinfo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backinfo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
