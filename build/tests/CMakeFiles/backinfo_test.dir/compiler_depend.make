# Empty compiler generated dependencies file for backinfo_test.
# This may be replaced when dependencies are built.
