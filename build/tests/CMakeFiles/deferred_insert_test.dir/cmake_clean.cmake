file(REMOVE_RECURSE
  "CMakeFiles/deferred_insert_test.dir/deferred_insert_test.cc.o"
  "CMakeFiles/deferred_insert_test.dir/deferred_insert_test.cc.o.d"
  "deferred_insert_test"
  "deferred_insert_test.pdb"
  "deferred_insert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deferred_insert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
