# Empty dependencies file for deferred_insert_test.
# This may be replaced when dependencies are built.
