file(REMOVE_RECURSE
  "CMakeFiles/localgc_test.dir/localgc_test.cc.o"
  "CMakeFiles/localgc_test.dir/localgc_test.cc.o.d"
  "localgc_test"
  "localgc_test.pdb"
  "localgc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localgc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
