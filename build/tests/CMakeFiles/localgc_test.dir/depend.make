# Empty dependencies file for localgc_test.
# This may be replaced when dependencies are built.
