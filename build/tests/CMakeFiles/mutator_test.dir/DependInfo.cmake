
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mutator_test.cc" "tests/CMakeFiles/mutator_test.dir/mutator_test.cc.o" "gcc" "tests/CMakeFiles/mutator_test.dir/mutator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dgc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mutator/CMakeFiles/dgc_mutator.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dgc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dgc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/localgc/CMakeFiles/dgc_localgc.dir/DependInfo.cmake"
  "/root/repo/build/src/backtrace/CMakeFiles/dgc_backtrace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dgc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dgc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/refs/CMakeFiles/dgc_refs.dir/DependInfo.cmake"
  "/root/repo/build/src/backinfo/CMakeFiles/dgc_backinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/dgc_store.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
