file(REMOVE_RECURSE
  "CMakeFiles/mutator_test.dir/mutator_test.cc.o"
  "CMakeFiles/mutator_test.dir/mutator_test.cc.o.d"
  "mutator_test"
  "mutator_test.pdb"
  "mutator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
