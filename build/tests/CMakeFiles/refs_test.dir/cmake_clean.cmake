file(REMOVE_RECURSE
  "CMakeFiles/refs_test.dir/refs_test.cc.o"
  "CMakeFiles/refs_test.dir/refs_test.cc.o.d"
  "refs_test"
  "refs_test.pdb"
  "refs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
