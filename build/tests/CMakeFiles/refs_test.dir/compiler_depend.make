# Empty compiler generated dependencies file for refs_test.
# This may be replaced when dependencies are built.
