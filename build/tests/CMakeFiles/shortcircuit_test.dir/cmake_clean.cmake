file(REMOVE_RECURSE
  "CMakeFiles/shortcircuit_test.dir/shortcircuit_test.cc.o"
  "CMakeFiles/shortcircuit_test.dir/shortcircuit_test.cc.o.d"
  "shortcircuit_test"
  "shortcircuit_test.pdb"
  "shortcircuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortcircuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
