# Empty dependencies file for shortcircuit_test.
# This may be replaced when dependencies are built.
