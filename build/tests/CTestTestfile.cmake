# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/refs_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/backinfo_test[1]_include.cmake")
include("/root/repo/build/tests/localgc_test[1]_include.cmake")
include("/root/repo/build/tests/backtrace_test[1]_include.cmake")
include("/root/repo/build/tests/mutator_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/shortcircuit_test[1]_include.cmake")
include("/root/repo/build/tests/site_test[1]_include.cmake")
include("/root/repo/build/tests/transaction_test[1]_include.cmake")
include("/root/repo/build/tests/inspect_test[1]_include.cmake")
include("/root/repo/build/tests/churn_test[1]_include.cmake")
include("/root/repo/build/tests/crash_test[1]_include.cmake")
include("/root/repo/build/tests/deferred_insert_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/async_race_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/logging_test[1]_include.cmake")
