// dgcsim — command-line driver for the simulated world.
//
//   dgcsim [--sites N] [--cycle W[xK]] [--hypertext D] [--churn STEPS]
//          [--rounds R] [--threshold D] [--crash S] [--batch W]
//          [--transport sim|threaded] [--transport-threads N]
//          [--dump] [--dot] [--csv]
//
// Builds a world, runs collection rounds, prints a system summary (and
// optionally per-site tables or a Graphviz export of the final graph).
//
// Examples:
//   dgcsim --sites 4 --cycle 3x2 --rounds 20 --dump
//   dgcsim --sites 4 --hypertext 16 --rounds 30
//   dgcsim --sites 3 --churn 60 --rounds 10 --dot > world.dot
//   dgcsim --sites 4 --cycle 2 --crash 1 --rounds 15
//   dgcsim --sites 4 --cycle 3 --rounds 20 --csv > series.csv
//   dgcsim --sites 8 --cycle 4x2 --rounds 20 --transport threaded
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/inspect.h"
#include "core/metrics.h"
#include "core/system.h"
#include "workload/builders.h"
#include "workload/churn.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sites N] [--cycle W[xK]] [--hypertext D] "
               "[--churn STEPS]\n"
               "          [--rounds R] [--threshold D] [--crash S] "
               "[--batch W] [--seed S]\n"
               "          [--mark-threads N] [--trace-threads N] "
               "[--incremental-distance]\n"
               "          [--transport sim|threaded] [--transport-threads N]\n"
               "          [--dump] [--dot]\n"
               "  --transport threaded runs each site on its own thread\n"
               "  (deterministic; default sim). --churn is sim-only: its\n"
               "  mutator sessions script the shared clock event-to-event.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgc;

  std::size_t sites = 4;
  std::size_t cycle_sites = 0, cycle_objects = 1;
  std::size_t hypertext_docs = 0;
  std::size_t churn_steps = 0;
  std::size_t rounds = 15;
  Distance threshold = 2;
  int crash_site = -1;
  SimTime batch_window = 0;
  std::size_t mark_threads = 1;
  std::size_t trace_threads = 1;
  std::uint64_t seed = 42;
  bool incremental_distance = false;
  bool dump = false, dot = false, csv = false;
  TransportKind transport = TransportKind::kSim;
  std::size_t transport_threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(Usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--sites") {
      sites = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cycle") {
      const char* spec = next();
      const char* x = std::strchr(spec, 'x');
      cycle_sites = std::strtoull(spec, nullptr, 10);
      cycle_objects = x != nullptr ? std::strtoull(x + 1, nullptr, 10) : 1;
    } else if (arg == "--hypertext") {
      hypertext_docs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--churn") {
      churn_steps = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rounds") {
      rounds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threshold") {
      threshold = static_cast<Distance>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--crash") {
      crash_site = std::atoi(next());
    } else if (arg == "--batch") {
      batch_window = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--mark-threads") {
      mark_threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--trace-threads") {
      trace_threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--transport") {
      const std::string mode = next();
      if (mode == "sim") {
        transport = TransportKind::kSim;
      } else if (mode == "threaded") {
        transport = TransportKind::kThreaded;
      } else {
        std::fprintf(stderr, "unknown transport '%s' (want sim|threaded)\n",
                     mode.c_str());
        return Usage(argv[0]);
      }
    } else if (arg == "--transport-threads") {
      transport_threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--incremental-distance") {
      incremental_distance = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--csv") {
      csv = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (sites < 1 || (cycle_sites > sites)) return Usage(argv[0]);
  if (transport == TransportKind::kThreaded && churn_steps > 0) {
    std::fprintf(stderr,
                 "--churn is incompatible with --transport threaded: the "
                 "transactional churn driver's mutator sessions script the "
                 "shared simulator clock event-to-event, which only exists "
                 "under the sim transport. Drop --churn or use --transport "
                 "sim.\n");
    return 2;
  }

  CollectorConfig config;
  config.suspicion_threshold = threshold;
  config.estimated_cycle_length =
      static_cast<Distance>(cycle_sites > 0 ? cycle_sites + 2 : 8);
  config.back_call_timeout = crash_site >= 0 ? 300 : 0;
  config.report_timeout = crash_site >= 0 ? 3000 : 0;
  config.mark_threads = mark_threads > 0 ? mark_threads : 1;
  config.trace_threads = trace_threads > 0 ? trace_threads : 1;
  config.incremental_distance = incremental_distance;
  NetworkConfig net;
  net.batch_window = batch_window;
  net.transport = transport;
  net.transport_threads = transport_threads;
  System system(sites, config, net, seed);
  if (transport == TransportKind::kThreaded) {
    std::printf("transport: threaded\n");
  }
  Rng rng(seed);

  if (cycle_sites > 0) {
    workload::BuildCycle(system, {.sites = cycle_sites,
                                  .objects_per_site = cycle_objects});
    std::printf("built a %zu-site garbage ring (%zu objects)\n", cycle_sites,
                cycle_sites * cycle_objects);
  }
  if (hypertext_docs > 0) {
    workload::HypertextSpec spec;
    spec.sites = sites;
    spec.documents = hypertext_docs;
    workload::BuildHypertextWeb(system, spec, rng);
    std::printf("built a hypertext web of %zu documents (half rooted)\n",
                hypertext_docs);
  }
  if (churn_steps > 0) {
    workload::ChurnDriver driver(system, rng.Fork());
    workload::ChurnSpec spec;
    spec.steps = churn_steps;
    driver.Run(spec);
    std::printf("ran %zu transactional churn steps\n", churn_steps);
  }
  if (crash_site >= 0 && static_cast<std::size_t>(crash_site) < sites) {
    system.network().SetSiteDown(static_cast<SiteId>(crash_site), true);
    std::printf("site %d is DOWN\n", crash_site);
  }

  const std::size_t before = system.TotalObjects();
  MetricsRecorder recorder;
  recorder.Capture(system);
  recorder.CaptureRounds(system, rounds);
  std::printf("ran %zu rounds: %zu -> %zu objects\n\n", rounds, before,
              system.TotalObjects());

  std::fputs(DescribeSystem(system).c_str(), stdout);
  const std::string safety = system.CheckSafety();
  std::printf("safety: %s\n", safety.empty() ? "OK" : safety.c_str());

  if (dump) {
    std::printf("\n");
    for (SiteId s = 0; s < sites; ++s) {
      std::fputs(DescribeSite(system.site(s)).c_str(), stdout);
    }
  }
  if (dot) {
    std::fputs(ToDot(system).c_str(), stdout);
  }
  if (csv) {
    std::fputs(recorder.ToCsv().c_str(), stdout);
  }
  return safety.empty() ? 0 : 1;
}
