// dgcsim — command-line driver for the simulated world.
//
//   dgcsim [--sites N] [--cycle W[xK]] [--hypertext D] [--churn STEPS]
//          [--rounds R] [--threshold D] [--crash S] [--batch W]
//          [--transport sim|threaded|socket] [--transport-threads N]
//          [--dump] [--dot] [--csv]
//   dgcsim --role site --site N --socket PATH [--snapshot PATH]
//
// Builds a world, runs collection rounds, prints a system summary (and
// optionally per-site tables or a Graphviz export of the final graph).
//
// Under --transport socket every site is its own OS process: the
// coordinator re-execs this binary with `--role site`, and the site role
// runs the frame loop in net/site_host.h against the coordinator's
// Unix-domain socket. The site role is spawned by the supervisor — users
// never type it — but it is a plain CLI so `ps` output and core dumps
// read sensibly.
//
// Examples:
//   dgcsim --sites 4 --cycle 3x2 --rounds 20 --dump
//   dgcsim --sites 4 --hypertext 16 --rounds 30
//   dgcsim --sites 3 --churn 60 --rounds 10 --dot > world.dot
//   dgcsim --sites 4 --cycle 2 --crash 1 --rounds 15
//   dgcsim --sites 4 --cycle 3 --rounds 20 --csv > series.csv
//   dgcsim --sites 8 --cycle 4x2 --rounds 20 --transport threaded
//   dgcsim --sites 4 --cycle 3 --rounds 12 --transport socket --crash 1
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/inspect.h"
#include "core/metrics.h"
#include "core/system.h"
#include "net/site_host.h"
#include "net/socket_world.h"
#include "workload/builders.h"
#include "workload/churn.h"
#include "workload/scripted.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sites N] [--cycle W[xK]] [--hypertext D] "
               "[--churn STEPS]\n"
               "          [--rounds R] [--threshold D] [--crash S] "
               "[--batch W] [--seed S]\n"
               "          [--mark-threads N] [--trace-threads N] "
               "[--incremental-distance]\n"
               "          [--transport sim|threaded|socket] "
               "[--transport-threads N]\n"
               "          [--dump] [--dot]\n"
               "       %s --role site --site N --socket PATH "
               "[--snapshot PATH]\n"
               "  --transport threaded runs each site on its own thread;\n"
               "  --transport socket runs each site as its own OS process\n"
               "  (both deterministic at the protocol level; default sim).\n"
               "  --churn runs under every backend: the transactional\n"
               "  driver under sim/threaded, the scripted generator over\n"
               "  the socket god-mode surface. --role site is the process\n"
               "  the socket coordinator spawns — not for interactive use.\n",
               argv0, argv0);
  return 2;
}

/// The site half of --transport socket: parses only the flags the
/// coordinator's supervisor appends and hands off to the frame loop.
int RunSiteRole(int argc, char** argv) {
  dgc::SiteHostOptions options;
  bool have_site = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dgcsim: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--role") {
      next();  // dispatched on before we got here
    } else if (arg == "--site") {
      options.site = static_cast<dgc::SiteId>(
          std::strtoul(next(), nullptr, 10));
      have_site = true;
    } else if (arg == "--socket") {
      options.socket_path = next();
    } else if (arg == "--snapshot") {
      options.snapshot_path = next();
    } else {
      std::fprintf(stderr, "dgcsim: unknown site-role option '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (!have_site || options.socket_path.empty()) {
    std::fprintf(stderr,
                 "dgcsim: --role site needs --site N and --socket PATH\n");
    return 2;
  }
  return dgc::RunSiteProcess(options);
}

/// The coordinator half of --transport socket. The in-process drivers
/// (System, workload builders, DescribeSystem) cannot host real site
/// processes, so this runs the canonical paper demo over SocketWorld's
/// god-mode surface instead: a cross-site ring whose tether is cut —
/// distributed garbage only back tracing collects — with --crash mapped
/// to a real kill -9 plus supervised restart.
int RunSocketCoordinator(const char* argv0, std::size_t sites,
                         std::size_t cycle_sites, std::size_t cycle_objects,
                         std::size_t churn_steps, std::size_t rounds,
                         dgc::Distance threshold, int crash_site,
                         std::uint64_t seed) {
  using namespace dgc;
  SocketWorldOptions options;
  options.site_count = sites;
  options.collector.suspicion_threshold = threshold;
  options.collector.estimated_cycle_length =
      static_cast<Distance>(cycle_sites > 0 ? cycle_sites + 2 : 8);
  options.seed = seed;
  options.site_exec_argv = {argv0};
  SocketWorld world(std::move(options));
  std::printf("transport: socket (%zu site processes, state in %s)\n", sites,
              world.state_dir().c_str());

  std::vector<ObjectId> ring;
  if (cycle_sites > 0) {
    for (std::size_t k = 0; k < cycle_sites; ++k) {
      for (std::size_t j = 0; j < cycle_objects; ++j) {
        ring.push_back(world.NewObject(static_cast<SiteId>(k % sites), 2));
      }
    }
    for (std::size_t k = 0; k < ring.size(); ++k) {
      world.Wire(ring[k], 0, ring[(k + 1) % ring.size()]);
    }
    const ObjectId tether = world.NewObject(0, 2);
    world.SetPersistentRoot(tether);
    world.Wire(tether, 0, ring.front());
    world.Unwire(tether, 0);
    std::printf(
        "built a %zu-site garbage ring (%zu objects) and cut its tether\n",
        cycle_sites, ring.size());
  }

  if (churn_steps > 0) {
    // Mutator churn against real site processes: the scripted generator
    // drives the same god-mode surface the sim-vs-socket differential uses,
    // with every random draw on the coordinator (site processes stay
    // deterministic replayers). One scripted round is roughly ten
    // transactional steps' worth of ring/local traffic.
    SocketGodWorld god(world);
    ScriptedChurnSpec churn_spec;
    churn_spec.rounds = std::max<std::size_t>(1, churn_steps / 10);
    const ScriptedChurnResult churn =
        RunScriptedChurn(god, seed, churn_spec);
    std::printf(
        "ran %zu scripted churn rounds: %zu rings, %zu locals, %zu cuts\n",
        churn_spec.rounds, churn.rings.size(), churn.locals.size(),
        churn.cuts);
  }

  const std::uint64_t before = world.TotalObjects();
  const bool crash = crash_site >= 0 &&
                     static_cast<std::size_t>(crash_site) < sites;
  if (crash && rounds > 0) {
    // Kill after the first round so traces are in flight: the supervisor
    // restarts the process, the handshake fences the old incarnation, and
    // the ring must still collect.
    world.RunRounds(1);
    world.KillSite(static_cast<SiteId>(crash_site));
    std::printf("kill -9 site %d (supervisor restarts it)\n", crash_site);
    if (rounds > 1) world.RunRounds(rounds - 1);
  } else {
    world.RunRounds(rounds);
  }
  world.SettleNetwork();

  std::printf("ran %zu rounds: %llu -> %llu objects (%llu reclaimed)\n",
              rounds, static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(world.TotalObjects()),
              static_cast<unsigned long long>(world.TotalObjectsReclaimed()));
  const SocketCounters& counters = world.transport().socket_counters();
  std::printf("sockets: %llu handshakes, %llu restarts accepted, "
              "%llu reconnects, %llu step timeouts\n",
              static_cast<unsigned long long>(counters.handshakes_accepted),
              static_cast<unsigned long long>(counters.restarts_accepted),
              static_cast<unsigned long long>(counters.reconnects),
              static_cast<unsigned long long>(counters.step_timeouts));
  std::printf("incarnations:");
  for (SiteId s = 0; s < sites; ++s) {
    std::printf(" s%u=%u", static_cast<unsigned>(s), world.incarnation(s));
  }
  std::printf("\n");

  bool leaked = false;
  for (const ObjectId id : ring) {
    if (world.ObjectExists(id)) leaked = true;
  }
  if (!ring.empty()) {
    std::printf("ring: %s\n", leaked ? "LEAKED" : "collected");
  }
  return leaked ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgc;

  // Role dispatch first: a site process must not run the coordinator
  // parse (its flag set is disjoint and appended by the supervisor).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--role") == 0) {
      const char* role = i + 1 < argc ? argv[i + 1] : "";
      if (std::strcmp(role, "site") == 0) return RunSiteRole(argc, argv);
      std::fprintf(stderr,
                   "dgcsim: unknown role '%s' (valid roles: site; the "
                   "coordinator role is the default)\n",
                   role);
      return 2;
    }
  }

  std::size_t sites = 4;
  std::size_t cycle_sites = 0, cycle_objects = 1;
  std::size_t hypertext_docs = 0;
  std::size_t churn_steps = 0;
  std::size_t rounds = 15;
  Distance threshold = 2;
  int crash_site = -1;
  SimTime batch_window = 0;
  std::size_t mark_threads = 1;
  std::size_t trace_threads = 1;
  std::uint64_t seed = 42;
  bool incremental_distance = false;
  bool dump = false, dot = false, csv = false;
  TransportKind transport = TransportKind::kSim;
  std::size_t transport_threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(Usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--sites") {
      sites = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cycle") {
      const char* spec = next();
      const char* x = std::strchr(spec, 'x');
      cycle_sites = std::strtoull(spec, nullptr, 10);
      cycle_objects = x != nullptr ? std::strtoull(x + 1, nullptr, 10) : 1;
    } else if (arg == "--hypertext") {
      hypertext_docs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--churn") {
      churn_steps = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rounds") {
      rounds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threshold") {
      threshold = static_cast<Distance>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--crash") {
      crash_site = std::atoi(next());
    } else if (arg == "--batch") {
      batch_window = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--mark-threads") {
      mark_threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--trace-threads") {
      trace_threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--transport") {
      const std::string mode = next();
      if (mode == "sim") {
        transport = TransportKind::kSim;
      } else if (mode == "threaded") {
        transport = TransportKind::kThreaded;
      } else if (mode == "socket") {
        transport = TransportKind::kSocket;
      } else {
        std::fprintf(stderr,
                     "dgcsim: unknown transport '%s' (valid backends: sim, "
                     "threaded, socket)\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--transport-threads") {
      transport_threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--incremental-distance") {
      incremental_distance = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--csv") {
      csv = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (sites < 1 || (cycle_sites > sites)) return Usage(argv[0]);
  if (transport == TransportKind::kSocket) {
    if (hypertext_docs > 0 || dump || dot || csv) {
      std::fprintf(stderr,
                   "dgcsim: --hypertext/--dump/--dot/--csv need the "
                   "in-process world; use --transport sim or threaded\n");
      return 2;
    }
    return RunSocketCoordinator(argv[0], sites, cycle_sites, cycle_objects,
                                churn_steps, rounds, threshold, crash_site,
                                seed);
  }

  CollectorConfig config;
  config.suspicion_threshold = threshold;
  config.estimated_cycle_length =
      static_cast<Distance>(cycle_sites > 0 ? cycle_sites + 2 : 8);
  config.back_call_timeout = crash_site >= 0 ? 300 : 0;
  config.report_timeout = crash_site >= 0 ? 3000 : 0;
  config.mark_threads = mark_threads > 0 ? mark_threads : 1;
  config.trace_threads = trace_threads > 0 ? trace_threads : 1;
  config.incremental_distance = incremental_distance;
  NetworkConfig net;
  net.batch_window = batch_window;
  net.transport = transport;
  net.transport_threads = transport_threads;
  System system(sites, config, net, seed);
  if (transport == TransportKind::kThreaded) {
    std::printf("transport: threaded\n");
  }
  Rng rng(seed);

  if (cycle_sites > 0) {
    workload::BuildCycle(system, {.sites = cycle_sites,
                                  .objects_per_site = cycle_objects});
    std::printf("built a %zu-site garbage ring (%zu objects)\n", cycle_sites,
                cycle_sites * cycle_objects);
  }
  if (hypertext_docs > 0) {
    workload::HypertextSpec spec;
    spec.sites = sites;
    spec.documents = hypertext_docs;
    workload::BuildHypertextWeb(system, spec, rng);
    std::printf("built a hypertext web of %zu documents (half rooted)\n",
                hypertext_docs);
  }
  if (churn_steps > 0) {
    workload::ChurnDriver driver(system, rng.Fork());
    workload::ChurnSpec spec;
    spec.steps = churn_steps;
    driver.Run(spec);
    std::printf("ran %zu transactional churn steps\n", churn_steps);
  }
  if (crash_site >= 0 && static_cast<std::size_t>(crash_site) < sites) {
    system.network().SetSiteDown(static_cast<SiteId>(crash_site), true);
    std::printf("site %d is DOWN\n", crash_site);
  }

  const std::size_t before = system.TotalObjects();
  MetricsRecorder recorder;
  recorder.Capture(system);
  recorder.CaptureRounds(system, rounds);
  std::printf("ran %zu rounds: %zu -> %zu objects\n\n", rounds, before,
              system.TotalObjects());

  std::fputs(DescribeSystem(system).c_str(), stdout);
  const std::string safety = system.CheckSafety();
  std::printf("safety: %s\n", safety.empty() ? "OK" : safety.c_str());

  if (dump) {
    std::printf("\n");
    for (SiteId s = 0; s < sites; ++s) {
      std::fputs(DescribeSite(system.site(s)).c_str(), stdout);
    }
  }
  if (dot) {
    std::fputs(ToDot(system).c_str(), stdout);
  }
  if (csv) {
    std::fputs(recorder.ToCsv().c_str(), stdout);
  }
  return safety.empty() ? 0 : 1;
}
