// Distributed object database — a Thor-flavoured scenario (the system the
// authors designed this collector for, LAC+96).
//
// Three sites host a rooted catalog each. Client sessions (mutators) run
// against their home sites: they create order objects, cross-link them into
// remote catalogs (every reference transfer goes through the real RPC path,
// firing the transfer and insert barriers), and later unlink them. Orphaned
// order chains — including cross-site mutual references — are reclaimed by
// the collector while clients keep running.
#include <cstdio>

#include "core/system.h"
#include "mutator/session.h"

int main() {
  using namespace dgc;

  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  System system(3, config);

  // One rooted catalog per site, four slots each.
  ObjectId catalogs[3];
  for (SiteId s = 0; s < 3; ++s) {
    catalogs[s] = system.NewObject(s, 4);
    system.SetPersistentRoot(catalogs[s]);
  }

  Session alice(system, 0, 1);
  Session bob(system, 1, 2);

  // Alice creates an order with a line-item and publishes it in her
  // catalog, then also into Bob's (remote write: insert barrier fires).
  alice.LoadRoot(catalogs[0]);
  alice.LoadRoot(catalogs[1]);
  const ObjectId order = alice.Create(2);
  const ObjectId item = alice.Create(1);
  alice.Write(order, 0, item);
  alice.Write(catalogs[0], 0, order);
  alice.Write(catalogs[1], 0, order);
  std::printf("alice published order %llu:%llu to catalogs on sites 0 and 1\n",
              (unsigned long long)order.site, (unsigned long long)order.index);

  // Bob reads the order from his catalog (remote read: transfer barrier at
  // the owner, arrival cases at his home site) and links a cross-site
  // "related order" that points back — an inter-site cycle is born.
  bob.LoadRoot(catalogs[1]);
  const ObjectId seen = bob.Read(catalogs[1], 0);
  const ObjectId related = bob.Create(1);
  bob.Write(related, 0, seen);
  bob.Write(seen, 1, related);  // order -> related, related -> order
  bob.Write(catalogs[1], 1, related);
  std::printf("bob cross-linked a related order: inter-site cycle created\n");

  system.RunRounds(3);
  std::printf("while referenced: %zu objects stored, safety %s\n",
              system.TotalObjects(),
              system.CheckSafety().empty() ? "OK" : "VIOLATED");

  // Both clients retire their references and the catalogs unlink the
  // orders. The {order <-> related} cycle spans sites 0 and 1: invisible to
  // local tracing, food for the back tracer.
  alice.Write(catalogs[0], 0, kInvalidObject);
  alice.Write(catalogs[1], 0, kInvalidObject);
  bob.Write(catalogs[1], 1, kInvalidObject);
  alice.ReleaseAll();
  bob.ReleaseAll();
  std::printf("orders unlinked: the cycle is now distributed garbage\n");

  for (int round = 1; round <= 25; ++round) {
    system.RunRound();
    if (!system.ObjectExists(order)) {
      std::printf("round %d: cycle reclaimed by back tracing\n", round);
      break;
    }
  }

  const BackTracerStats bt = system.AggregateBackTracerStats();
  std::uint64_t barrier_hits = 0;
  std::uint64_t inserts = 0;
  for (SiteId s = 0; s < 3; ++s) {
    barrier_hits += system.site(s).stats().transfer_barrier_hits;
    inserts += system.site(s).stats().inserts_handled;
  }
  std::printf(
      "\nstats: %llu inserts handled, %llu suspected-inref barrier hits, "
      "%llu back traces (%llu garbage / %llu live)\n",
      (unsigned long long)inserts, (unsigned long long)barrier_hits,
      (unsigned long long)bt.traces_started,
      (unsigned long long)bt.traces_completed_garbage,
      (unsigned long long)bt.traces_completed_live);
  std::printf("final: %zu objects stored (3 catalogs expected), safety %s, "
              "completeness %s\n",
              system.TotalObjects(),
              system.CheckSafety().empty() ? "OK" : "VIOLATED",
              system.CheckCompleteness().empty() ? "OK" : "garbage remains");
  return 0;
}
