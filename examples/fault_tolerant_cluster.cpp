// Fault tolerance and locality — the property the whole design optimizes
// for: "if a site is crashed ... it will delay the collection of only the
// garbage reachable from its objects" (Section 1).
//
// Four sites, two independent garbage rings: ring A on sites {0,1}, ring B
// on sites {2,3}. Site 3 crashes. Back tracing keeps collecting ring A;
// ring B is safely delayed (timeouts answer Live) and is reclaimed once
// site 3 recovers. Contrast with the global schemes in bench_vs_baselines,
// which collect nothing anywhere while any site is down.
#include <cstdio>

#include "core/system.h"
#include "workload/builders.h"

int main() {
  using namespace dgc;

  CollectorConfig config;
  config.suspicion_threshold = 2;
  config.estimated_cycle_length = 4;
  config.back_call_timeout = 300;   // calls into the dead site give up
  config.report_timeout = 3000;     // stale visit records self-heal
  System system(4, config);

  const auto ring_a = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 1, .first_site = 0});
  // Ring B is longer (two objects per site) so it ripens into suspicion more
  // slowly than ring A, and is still uncollected when site 3 goes down —
  // with its distances already suspicious, so the back traces that do start
  // run into the dead site and time out.
  const auto ring_b = workload::BuildCycle(
      system, {.sites = 2, .objects_per_site = 2, .first_site = 2});
  std::printf("two garbage rings: A on sites {0,1}, B on sites {2,3}\n");

  // Let ring B's distances ripen until a back trace actually launches from
  // site 2, then crash site 3 while that trace's call is in flight — the
  // worst case: the trace must time out and safely assume Live.
  for (int round = 0; round < 20; ++round) {
    system.site(2).StartLocalTrace();
    system.site(3).StartLocalTrace();
    system.scheduler().RunUntil(system.scheduler().now() + 2);
    if (system.site(2).back_tracer().active_frames() > 0 ||
        system.site(3).back_tracer().active_frames() > 0) {
      break;  // a trace is mid-flight into ring B
    }
    system.SettleNetwork();
  }

  std::printf("\n*** site 3 crashes (with a back trace mid-flight) ***\n");
  system.network().SetSiteDown(3, true);

  const auto gone = [&](const workload::CycleHandles& ring) {
    for (const ObjectId id : ring.objects) {
      if (system.ObjectExists(id)) return false;
    }
    return true;
  };

  for (int round = 1; round <= 25; ++round) {
    system.RunRound();
    if (round % 5 == 0) {
      std::printf("round %2d: ring A %s, ring B %s\n", round,
                  gone(ring_a) ? "RECLAIMED" : "present",
                  gone(ring_b) ? "RECLAIMED" : "present (site 3 down)");
    }
  }
  std::printf("\nwhile site 3 was down: ring A %s, ring B %s — locality!\n",
              gone(ring_a) ? "reclaimed" : "LEAKED (bug)",
              gone(ring_b) ? "reclaimed (bug!)" : "safely delayed");
  std::printf("timeouts fired: %llu (branches into the dead site assumed "
              "Live, per Section 4.6)\n",
              (unsigned long long)system.AggregateBackTracerStats().timeouts);

  std::printf("\n*** site 3 recovers ***\n");
  system.network().SetSiteDown(3, false);
  for (int round = 1; round <= 40; ++round) {
    system.RunRound();
    if (gone(ring_b)) {
      std::printf("round %d after recovery: ring B reclaimed\n", round);
      break;
    }
  }

  std::printf("\nfinal: %zu objects stored, safety %s, completeness %s\n",
              system.TotalObjects(),
              system.CheckSafety().empty() ? "OK" : "VIOLATED",
              system.CheckCompleteness().empty() ? "OK" : "garbage remains");
  return 0;
}
