// Hypertext web — the paper's motivating workload (Section 1: "hypertext
// documents often form large, complex cycles").
//
// Builds a web of documents spread over four sites: half reachable from a
// site-0 index (live), half an orphaned tangle of cross-site links including
// a guaranteed inter-site ring. Local tracing alone reclaims nothing of the
// orphaned half; the distance heuristic gradually suspects it, and back
// traces then confirm and reclaim it — watch the per-round progress.
#include <cstdio>

#include "common/rng.h"
#include "core/system.h"
#include "workload/builders.h"

int main() {
  using namespace dgc;

  CollectorConfig config;
  config.suspicion_threshold = 3;
  config.estimated_cycle_length = 16;  // webs form long cycles
  System system(4, config);

  Rng rng(2026);
  workload::HypertextSpec spec;
  spec.sites = 4;
  spec.documents = 24;
  spec.sections_per_document = 3;
  spec.links_per_document = 3;
  spec.rooted_fraction = 0.5;
  const auto web = workload::BuildHypertextWeb(system, spec, rng);

  const std::size_t live = system.ComputeLiveSet().size();
  std::printf("web built: %zu objects total, %zu live (indexed), %zu orphaned\n",
              system.TotalObjects(), live, system.TotalObjects() - live);

  for (int round = 1; round <= 60; ++round) {
    system.RunRound();
    const std::size_t stored = system.TotalObjects();
    if (round % 5 == 0 || stored == live) {
      const BackTracerStats bt = system.AggregateBackTracerStats();
      std::printf(
          "round %2d: stored=%3zu (garbage left: %3zu)  traces: %llu started, "
          "%llu garbage, %llu live\n",
          round, stored, stored - live,
          static_cast<unsigned long long>(bt.traces_started),
          static_cast<unsigned long long>(bt.traces_completed_garbage),
          static_cast<unsigned long long>(bt.traces_completed_live));
    }
    if (stored == live) {
      std::printf("orphaned web fully reclaimed after %d rounds\n", round);
      break;
    }
  }

  std::printf("safety: %s, completeness: %s\n",
              system.CheckSafety().empty() ? "OK" : "VIOLATED",
              system.CheckCompleteness().empty() ? "OK" : "garbage remains");
  const NetworkStats& net = system.network().stats();
  std::printf(
      "network: %llu inter-site messages (%llu back-trace calls, %llu "
      "replies, %llu reports, %llu updates)\n",
      static_cast<unsigned long long>(net.inter_site_sent),
      static_cast<unsigned long long>(net.count_of<BackLocalCallMsg>()),
      static_cast<unsigned long long>(net.count_of<BackReplyMsg>()),
      static_cast<unsigned long long>(net.count_of<BackReportMsg>()),
      static_cast<unsigned long long>(net.count_of<UpdateMsg>()));
  // The index root keeps its half alive forever.
  std::printf("indexed documents still present: %s\n",
              system.ObjectExists(web.documents[0]) ? "yes" : "NO (bug!)");
  return 0;
}
