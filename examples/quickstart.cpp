// Quickstart: build a two-site garbage cycle, watch local tracing fail to
// collect it, then let back tracing reclaim it.
//
//   $ ./quickstart
//
// Walks through the public API: System (sites + network + scheduler),
// god-mode graph construction, rounds of local traces, and the collector
// statistics that show what happened.
#include <cstdio>

#include "core/system.h"
#include "workload/builders.h"

int main() {
  using namespace dgc;

  CollectorConfig config;
  config.suspicion_threshold = 2;     // distance D above which iorefs are suspects
  config.estimated_cycle_length = 4;  // back threshold D2 = D + L
  System system(/*site_count=*/2, config);

  // A cycle of two objects, one per site, reachable from a persistent root.
  const auto cycle =
      workload::BuildCycle(system, {.sites = 2, .objects_per_site = 1});
  const ObjectId tether = workload::TetherToRoot(system, cycle.head(),
                                                 /*root_site=*/0);
  std::printf("world: %zu objects across 2 sites, cycle tethered to a root\n",
              system.TotalObjects());

  // While reachable, nothing happens no matter how many rounds pass.
  system.RunRounds(5);
  std::printf("after 5 rounds (still tethered): %zu objects survive\n",
              system.TotalObjects());

  // Cut the tether: the cycle is now distributed cyclic garbage — invisible
  // to each site's local trace, which must treat incoming references as
  // roots.
  system.Unwire(tether, 0);
  std::printf("tether cut: the cycle is garbage spread over 2 sites\n");

  for (int round = 1; round <= 15; ++round) {
    system.RunRound();
    const bool gone = !system.ObjectExists(cycle.head());
    std::printf("round %2d: objects=%zu inref_dist grows, %s\n", round,
                system.TotalObjects(),
                gone ? "cycle RECLAIMED by back trace" : "cycle still held");
    if (gone) break;
  }

  const BackTracerStats stats = system.AggregateBackTracerStats();
  std::printf(
      "\nback tracer: %llu trace(s) started, %llu confirmed garbage, "
      "%llu found live\n",
      static_cast<unsigned long long>(stats.traces_started),
      static_cast<unsigned long long>(stats.traces_completed_garbage),
      static_cast<unsigned long long>(stats.traces_completed_live));
  std::printf("safety check: %s\n",
              system.CheckSafety().empty() ? "OK" : "VIOLATED");
  std::printf("completeness check: %s\n",
              system.CheckCompleteness().empty() ? "OK (no garbage remains)"
                                                 : "garbage remains");
  return 0;
}
