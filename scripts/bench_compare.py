#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and gate on throughput regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
    bench_compare.py --self-test

Compares every benchmark present in both files. Gated user counters:

* ``objects_per_sec``  (higher is better) — marked-objects/sec of the local
  trace;
* ``cache_hit_rate``   (higher is better) — verdict-cache hits over lookups
  in the back-trace trigger scan;
* ``msgs_per_cycle``   (lower is better) — inter-site back-trace messages
  spent per collected cycle;
* ``reuse_hit_rate``   (higher is better) — local traces served from the
  incremental collector's cache over traces run.

Any benchmark whose candidate value worsens by more than ``--threshold``
(default 10%) relative to the baseline fails the run. Benchmarks with none
of these counters are compared on ``real_time`` and reported for
information only — wall time on shared CI hardware is too noisy to gate on.

Exit codes: 0 = no regression, 1 = regression detected, 2 = usage/input error.
"""

import argparse
import json
import sys


def _die(message):
    print(message, file=sys.stderr)
    sys.exit(2)


def load_benchmarks(path):
    """Return {name: benchmark-dict} from a google-benchmark JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        _die(f"error: cannot read {path}: {err}")
    rows = data.get("benchmarks")
    if not isinstance(rows, list):
        _die(f"error: {path} has no 'benchmarks' array "
             "(not a google-benchmark JSON file?)")
    out = {}
    for row in rows:
        # Aggregate rows (mean/median/stddev) would double-count; keep the
        # plain iteration rows and the 'mean' aggregate if that is all there is.
        if row.get("run_type") == "aggregate" and row.get(
                "aggregate_name") != "mean":
            continue
        out[row["name"]] = row
    return out


# Gated counters: (name, higher_is_better). The reported delta is always
# "positive = improvement", so the single threshold applies uniformly.
GATED_COUNTERS = (
    ("objects_per_sec", True),
    ("cache_hit_rate", True),
    ("msgs_per_cycle", False),
    ("reuse_hit_rate", True),
)


def compare(baseline, candidate, threshold):
    """Yield (name, kind, base, cand, delta, gated) for common benchmarks."""
    for name in sorted(set(baseline) & set(candidate)):
        base_row, cand_row = baseline[name], candidate[name]
        emitted = False
        for counter, higher_is_better in GATED_COUNTERS:
            if counter not in base_row or counter not in cand_row:
                continue
            base = float(base_row[counter])
            cand = float(cand_row[counter])
            if base <= 0:
                continue
            if higher_is_better:
                delta = (cand - base) / base
            else:
                delta = (base - cand) / base
            emitted = True
            yield name, counter, base, cand, delta, True
        if emitted:
            continue
        if "real_time" in base_row and "real_time" in cand_row:
            base = float(base_row["real_time"])
            cand = float(cand_row["real_time"])
            if base <= 0:
                continue
            # For times, lower is better; report the rate-style delta.
            delta = (base - cand) / base
            yield name, "real_time", base, cand, delta, False


def run_compare(baseline_path, candidate_path, threshold):
    baseline = load_benchmarks(baseline_path)
    candidate = load_benchmarks(candidate_path)
    common = set(baseline) & set(candidate)
    if not common:
        _die("error: no common benchmarks between the two files")

    failures = []
    for name, kind, base, cand, delta, gated in compare(
            baseline, candidate, threshold):
        verdict = "ok"
        if gated and delta < -threshold:
            verdict = "REGRESSION"
            failures.append(f"{name} ({kind})")
        elif not gated:
            verdict = "info"
        print(f"{verdict:>10}  {name}: {kind} {base:.4g} -> {cand:.4g} "
              f"({delta:+.1%})")

    if failures:
        print(f"\n{len(failures)} gated counter(s) regressed more than "
              f"{threshold:.0%}:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"\nno gated-counter regression beyond {threshold:.0%} "
          f"across {len(common)} common benchmark(s)")
    return 0


# --- self test --------------------------------------------------------------

_FIXTURE_BASE = {
    "benchmarks": [
        {"name": "BM_Mark/100000", "run_type": "iteration",
         "real_time": 2.0, "objects_per_sec": 50e6},
        {"name": "BM_Sweep/100000", "run_type": "iteration",
         "real_time": 4.0, "objects_per_sec": 20e6},
        {"name": "BM_Rounds/8", "run_type": "iteration", "real_time": 9.0},
        {"name": "BM_Trace/4/4", "run_type": "iteration", "real_time": 3.0,
         "msgs_per_cycle": 20.0, "cache_hit_rate": 0.5},
        {"name": "BM_Soak/16", "run_type": "iteration", "real_time": 5.0,
         "reuse_hit_rate": 0.8},
    ]
}


def _self_test():
    import copy
    import os
    import tempfile

    def run_with(candidate):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            cand_path = os.path.join(tmp, "cand.json")
            with open(base_path, "w", encoding="utf-8") as fh:
                json.dump(_FIXTURE_BASE, fh)
            with open(cand_path, "w", encoding="utf-8") as fh:
                json.dump(candidate, fh)
            return run_compare(base_path, cand_path, threshold=0.10)

    # Identical results: pass.
    assert run_with(copy.deepcopy(_FIXTURE_BASE)) == 0, "identical must pass"

    # 5% dip: within the 10% budget, still passes.
    slight = copy.deepcopy(_FIXTURE_BASE)
    slight["benchmarks"][0]["objects_per_sec"] = 47.5e6
    assert run_with(slight) == 0, "5% dip must pass"

    # 20% dip in one gated counter: fails.
    bad = copy.deepcopy(_FIXTURE_BASE)
    bad["benchmarks"][1]["objects_per_sec"] = 16e6
    assert run_with(bad) == 1, "20% dip must fail"

    # Un-gated real_time rows never fail the run, even when slower.
    slow = copy.deepcopy(_FIXTURE_BASE)
    slow["benchmarks"][2]["real_time"] = 90.0
    assert run_with(slow) == 0, "real_time rows are informational"

    # msgs_per_cycle is lower-is-better: a 50% increase fails...
    chatty = copy.deepcopy(_FIXTURE_BASE)
    chatty["benchmarks"][3]["msgs_per_cycle"] = 30.0
    assert run_with(chatty) == 1, "msgs_per_cycle increase must fail"

    # ...and a decrease passes.
    quiet = copy.deepcopy(_FIXTURE_BASE)
    quiet["benchmarks"][3]["msgs_per_cycle"] = 10.0
    assert run_with(quiet) == 0, "msgs_per_cycle decrease must pass"

    # cache_hit_rate is higher-is-better: a drop beyond threshold fails.
    cold = copy.deepcopy(_FIXTURE_BASE)
    cold["benchmarks"][3]["cache_hit_rate"] = 0.3
    assert run_with(cold) == 1, "cache_hit_rate drop must fail"

    # reuse_hit_rate is higher-is-better: losing the incremental cache fails.
    stale = copy.deepcopy(_FIXTURE_BASE)
    stale["benchmarks"][4]["reuse_hit_rate"] = 0.4
    assert run_with(stale) == 1, "reuse_hit_rate drop must fail"

    print("bench_compare self-test: all cases passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated objects_per_sec drop "
                             "(fraction, default 0.10)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded fixture tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return _self_test()
    if not args.baseline or not args.candidate:
        parser.print_usage(sys.stderr)
        return 2
    return run_compare(args.baseline, args.candidate, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
