#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and gate on throughput regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
    bench_compare.py --check-fault-recovery BENCH_fault_recovery.json
    bench_compare.py --check-parallel-mark BENCH_parallel_mark.json
    bench_compare.py --check-distance BENCH_distance.json
    bench_compare.py --check-scale BENCH_scale.json
    bench_compare.py --check-transport BENCH_transport.json
    bench_compare.py --self-test

Compares every benchmark present in both files. Gated user counters:

* ``objects_per_sec``  (higher is better) — marked-objects/sec of the local
  trace;
* ``cache_hit_rate``   (higher is better) — verdict-cache hits over lookups
  in the back-trace trigger scan;
* ``msgs_per_cycle``   (lower is better) — inter-site back-trace messages
  spent per collected cycle;
* ``reuse_hit_rate``   (higher is better) — local traces served from the
  incremental collector's cache over traces run;
* ``rounds_to_collect`` (lower is better) — collection rounds until a
  garbage cycle is reclaimed under faults;
* ``time_to_collect``  (lower is better) — simulated ticks until the cycle
  is reclaimed under faults.

Any benchmark whose candidate value worsens by more than ``--threshold``
(default 10%) relative to the baseline fails the run. Benchmarks with none
of these counters are compared on ``real_time`` and reported for
information only — wall time on shared CI hardware is too noisy to gate on.

``--check-fault-recovery`` gates a single BENCH_fault_recovery.json on
absolute bounds instead of a baseline: lossless rows (loss_pct == 0) must
show retransmit_overhead <= 0.01 (the reliable machinery is nearly free on a
clean network), and lossy rows must show collected == 1 with
ttc_ratio_vs_lossless <= 5.0 (collection stays finite and within 5x of the
lossless twin run).

``--check-parallel-mark`` gates a single BENCH_parallel_mark.json against
its own mark_threads == 1 row: every multi-thread row must reach at least
half the single-thread throughput (parallel overhead must never halve the
mark), and — only when the host has at least as many cores as the row used
threads (the host_cpus counter) — at least 0.35x-per-thread speedup (e.g.
2.8x at 8 threads). On smaller hosts the speedup is reported as info: it is
physically impossible there, not a regression.

``--check-distance`` gates a single BENCH_distance.json on absolute bounds:
every soak row must show relabel_reduction >= 10 (the incremental maintainer
relabels at least 10x fewer objects than the full re-propagation twin on the
low-churn soak), fallback_rate <= 0.25 (full rebuilds stay the exception),
and label_serve_rate >= 0.01 (the label plane actually served traces — a
vacuous run must not pass).

``--check-scale`` gates a single BENCH_scale.json on absolute bounds: every
open-loop row must show the collector keeping up with the arrival rate
(cycles_collected >= 0.5x cycles_severed, end-of-run backlog <= 0.5x
severed) with a bounded time-to-collect tail (p99 <= 10000 simulated
ticks); and each flat/map table-mutation pair must show the flat table
measurably cheaper than the std::map baseline (time ratio <= 0.95). The
open-loop counters are simulation-clock values, deterministic per seed.

``--check-transport`` gates a single BENCH_transport.json on the threaded
backend's correctness contract: every row must show verdicts_match == 1 with
the threaded run's cycles_severed/cycles_collected/reclaimed exactly equal
to the sim run's (same seed, same garbage verdicts, same reclaim set — the
equality is the gate, always, on any host), on a non-vacuous run
(cycles_severed > 0). The speedup floor (threaded at least as fast as sim)
is enforced only when the host has enough cores (host_cpus >= 4) to
parallelise on; on smaller hosts it is reported as info — absent cores make
the floor physically impossible, not a regression.

Every gate degrades with a clear one-line error (exit 2, never a Python
traceback) when its input or baseline JSON is missing or malformed.

Exit codes: 0 = no regression, 1 = regression detected, 2 = usage/input error.
"""

import argparse
import json
import sys


def _die(message):
    print(message, file=sys.stderr)
    sys.exit(2)


def load_benchmarks(path):
    """Return {name: benchmark-dict} from a google-benchmark JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        _die(f"error: cannot read {path}: {err}")
    rows = data.get("benchmarks")
    if not isinstance(rows, list):
        _die(f"error: {path} has no 'benchmarks' array "
             "(not a google-benchmark JSON file?)")
    out = {}
    for row in rows:
        if not isinstance(row, dict) or "name" not in row:
            _die(f"error: {path} has a benchmark row without a name "
                 "(malformed google-benchmark JSON?)")
        # Aggregate rows (mean/median/stddev) would double-count; keep the
        # plain iteration rows and the 'mean' aggregate if that is all there is.
        if row.get("run_type") == "aggregate" and row.get(
                "aggregate_name") != "mean":
            continue
        out[row["name"]] = row
    return out


# Gated counters: (name, higher_is_better). The reported delta is always
# "positive = improvement", so the single threshold applies uniformly.
GATED_COUNTERS = (
    ("objects_per_sec", True),
    ("cache_hit_rate", True),
    ("msgs_per_cycle", False),
    ("reuse_hit_rate", True),
    ("rounds_to_collect", False),
    ("time_to_collect", False),
)


def compare(baseline, candidate, threshold):
    """Yield (name, kind, base, cand, delta, gated) for common benchmarks."""
    for name in sorted(set(baseline) & set(candidate)):
        base_row, cand_row = baseline[name], candidate[name]
        emitted = False
        for counter, higher_is_better in GATED_COUNTERS:
            if counter not in base_row or counter not in cand_row:
                continue
            base = float(base_row[counter])
            cand = float(cand_row[counter])
            if base <= 0:
                continue
            if higher_is_better:
                delta = (cand - base) / base
            else:
                delta = (base - cand) / base
            emitted = True
            yield name, counter, base, cand, delta, True
        if emitted:
            continue
        if "real_time" in base_row and "real_time" in cand_row:
            base = float(base_row["real_time"])
            cand = float(cand_row["real_time"])
            if base <= 0:
                continue
            # For times, lower is better; report the rate-style delta.
            delta = (base - cand) / base
            yield name, "real_time", base, cand, delta, False


def run_compare(baseline_path, candidate_path, threshold):
    baseline = load_benchmarks(baseline_path)
    candidate = load_benchmarks(candidate_path)
    common = set(baseline) & set(candidate)
    if not common:
        _die("error: no common benchmarks between the two files")

    failures = []
    for name, kind, base, cand, delta, gated in compare(
            baseline, candidate, threshold):
        verdict = "ok"
        if gated and delta < -threshold:
            verdict = "REGRESSION"
            failures.append(f"{name} ({kind})")
        elif not gated:
            verdict = "info"
        print(f"{verdict:>10}  {name}: {kind} {base:.4g} -> {cand:.4g} "
              f"({delta:+.1%})")

    if failures:
        print(f"\n{len(failures)} gated counter(s) regressed more than "
              f"{threshold:.0%}:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"\nno gated-counter regression beyond {threshold:.0%} "
          f"across {len(common)} common benchmark(s)")
    return 0


# --- fault-recovery absolute gate -------------------------------------------

# Absolute acceptance bounds for BENCH_fault_recovery.json (no baseline
# needed; a fresh checkout can gate its own run).
MAX_LOSSLESS_RETRANSMIT_OVERHEAD = 0.01
MAX_TTC_RATIO_VS_LOSSLESS = 5.0


def check_fault_recovery(path):
    """Gate BENCH_fault_recovery.json rows on absolute fault-recovery bounds.

    Lossless rows must show (nearly) no retransmit overhead; lossy rows must
    still collect, within a bounded slowdown of the lossless twin run.
    """
    rows = load_benchmarks(path)
    failures = []
    checked = 0
    for name in sorted(rows):
        row = rows[name]
        if "loss_pct" not in row:
            continue
        checked += 1
        loss = float(row["loss_pct"])
        if loss == 0.0:
            overhead = float(row.get("retransmit_overhead", 0.0))
            ok = overhead <= MAX_LOSSLESS_RETRANSMIT_OVERHEAD
            print(f"{'ok' if ok else 'FAIL':>10}  {name}: lossless "
                  f"retransmit_overhead {overhead:.4g} "
                  f"(max {MAX_LOSSLESS_RETRANSMIT_OVERHEAD})")
            if not ok:
                failures.append(f"{name} (retransmit_overhead)")
            continue
        collected = float(row.get("collected", 0.0))
        if collected != 1.0:
            print(f"{'FAIL':>10}  {name}: loss {loss:g}% did not collect")
            failures.append(f"{name} (collected)")
            continue
        ratio = float(row.get("ttc_ratio_vs_lossless", float("inf")))
        ok = ratio <= MAX_TTC_RATIO_VS_LOSSLESS
        print(f"{'ok' if ok else 'FAIL':>10}  {name}: loss {loss:g}% "
              f"ttc_ratio_vs_lossless {ratio:.4g} "
              f"(max {MAX_TTC_RATIO_VS_LOSSLESS})")
        if not ok:
            failures.append(f"{name} (ttc_ratio_vs_lossless)")
    if checked == 0:
        _die(f"error: {path} has no rows with a loss_pct counter "
             "(not a fault-recovery benchmark file?)")
    if failures:
        print(f"\n{len(failures)} fault-recovery bound(s) violated:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"\nall fault-recovery bounds hold across {checked} row(s)")
    return 0


# --- parallel-mark absolute gate --------------------------------------------

# A multi-thread mark may never fall below this fraction of the sequential
# throughput, on any host — that would mean the work-stealing machinery costs
# more than it can ever win back.
MIN_PARALLEL_MARK_FLOOR = 0.5
# Required speedup per thread when the host actually has the cores: 0.35x per
# thread is a loose floor (2.8x at 8 threads) that still catches a mark that
# stopped scaling entirely.
MIN_SPEEDUP_PER_THREAD = 0.35


def check_parallel_mark(path):
    """Gate BENCH_parallel_mark.json rows against their own 1-thread row.

    The mark_threads == 1 row runs the untouched sequential collector, so
    speedup_vs_1 here is speedup against the seed code path.
    """
    rows = load_benchmarks(path)
    threaded = {}
    for name in sorted(rows):
        row = rows[name]
        if "mark_threads" not in row or "objects_per_sec" not in row:
            continue
        threaded[int(float(row["mark_threads"]))] = (name, row)
    if not threaded:
        _die(f"error: {path} has no rows with mark_threads/objects_per_sec "
             "counters (not a parallel-mark benchmark file?)")
    if 1 not in threaded:
        _die(f"error: {path} has no mark_threads == 1 baseline row")
    base_rate = float(threaded[1][1]["objects_per_sec"])
    if base_rate <= 0:
        _die(f"error: {path} baseline row has no positive objects_per_sec")

    failures = []
    for threads in sorted(threaded):
        name, row = threaded[threads]
        rate = float(row["objects_per_sec"])
        host_cpus = float(row.get("host_cpus", 0.0))
        speedup = rate / base_rate
        if threads == 1:
            print(f"{'ok':>10}  {name}: 1-thread baseline "
                  f"{rate:.4g} objects/sec")
            continue
        if speedup < MIN_PARALLEL_MARK_FLOOR:
            print(f"{'FAIL':>10}  {name}: speedup_vs_1 {speedup:.2f} below "
                  f"the {MIN_PARALLEL_MARK_FLOOR} overhead floor")
            failures.append(f"{name} (overhead floor)")
            continue
        required = MIN_SPEEDUP_PER_THREAD * threads
        if host_cpus >= threads:
            ok = speedup >= required
            print(f"{'ok' if ok else 'FAIL':>10}  {name}: speedup_vs_1 "
                  f"{speedup:.2f} (need {required:.2f} on "
                  f"{host_cpus:.0f} cpus)")
            if not ok:
                failures.append(f"{name} (speedup)")
        else:
            print(f"{'info':>10}  {name}: speedup_vs_1 {speedup:.2f} "
                  f"(host has {host_cpus:.0f} cpus for {threads} threads; "
                  "speedup not gated)")
    if failures:
        print(f"\n{len(failures)} parallel-mark bound(s) violated:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"\nall parallel-mark bounds hold across {len(threaded)} row(s)")
    return 0


# --- incremental-distance absolute gate --------------------------------------

# The ISSUE acceptance bar: on the <1% churn soak the label maintainer must
# relabel at least 10x fewer objects than the full re-propagation twin,
# fallback rebuilds included.
MIN_RELABEL_REDUCTION = 10.0
# Full rebuilds (crash restarts, budget blowouts, threshold breaches) must
# stay the exception, or the "incremental" plane is full propagation in
# disguise.
MAX_FALLBACK_RATE = 0.25
# The plane must actually have served traces; a run where every trace went
# down some other path would pass the ratios vacuously.
MIN_LABEL_SERVE_RATE = 0.01


def check_distance(path):
    """Gate BENCH_distance.json rows on absolute incremental-distance bounds.

    The benchmark itself aborts on any verdict divergence between the twins
    (DGC_CHECK), so rows present in the file already carry identical sweeps;
    this gate checks the savings those verdicts were supposed to buy.
    """
    rows = load_benchmarks(path)
    failures = []
    checked = 0
    for name in sorted(rows):
        row = rows[name]
        if "relabel_reduction" not in row:
            continue
        checked += 1
        reduction = float(row["relabel_reduction"])
        fallback = float(row.get("fallback_rate", 0.0))
        serve = float(row.get("label_serve_rate", 0.0))
        problems = []
        if reduction < MIN_RELABEL_REDUCTION:
            problems.append("relabel_reduction")
        if fallback > MAX_FALLBACK_RATE:
            problems.append("fallback_rate")
        if serve < MIN_LABEL_SERVE_RATE:
            problems.append("label_serve_rate")
        ok = not problems
        print(f"{'ok' if ok else 'FAIL':>10}  {name}: relabel_reduction "
              f"{reduction:.4g} (min {MIN_RELABEL_REDUCTION:g}), "
              f"fallback_rate {fallback:.4g} (max {MAX_FALLBACK_RATE:g}), "
              f"label_serve_rate {serve:.4g} (min {MIN_LABEL_SERVE_RATE:g})")
        failures.extend(f"{name} ({p})" for p in problems)
    if checked == 0:
        _die(f"error: {path} has no rows with a relabel_reduction counter "
             "(not an incremental-distance benchmark file?)")
    if failures:
        print(f"\n{len(failures)} incremental-distance bound(s) violated:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"\nall incremental-distance bounds hold across {checked} row(s)")
    return 0


# Scale-engine bounds (BENCH_scale.json). The open-loop counters are purely
# simulated (deterministic for a given seed), so absolute bounds are stable
# across hosts; only the flat-vs-map ratio involves wall time, and it gets a
# wide margin for noisy single-CPU runners.
# The collector must keep up with the arrival rate: most severed cycles are
# reclaimed within the run, not deferred to a quiesce phase.
MIN_COLLECTED_FRACTION = 0.5
# Time-to-collect tail bound in simulated ticks (the drivers use a 500-tick
# round period; measured p99 is ~4k ticks, so 10k means "a few rounds, not
# dozens").
MAX_TTC_P99 = 10_000.0
# Uncollected-severed backlog at end of run, as a fraction of everything
# severed: bounded work-in-flight, not an ever-growing queue.
MAX_BACKLOG_FRACTION = 0.5
# The flat table must be measurably cheaper than the std::map baseline on the
# same mutation mix: flat_time <= 0.95 * map_time (measured ~0.5-0.8x).
MAX_FLAT_VS_MAP_RATIO = 0.95


def check_scale(path):
    """Gate BENCH_scale.json on absolute open-loop and flat-table bounds.

    Open-loop rows carry simulation-clock counters (deterministic per seed);
    the table-mutation rows compare FlatMap against the std::map it replaced
    on identical op streams.
    """
    rows = load_benchmarks(path)
    failures = []
    open_loop = 0
    mutation_rows = {}
    for name in sorted(rows):
        row = rows[name]
        if "ttc_p50" in row and "cycles_severed" in row:
            open_loop += 1
            collected = float(row.get("cycles_collected", 0.0))
            severed = float(row.get("cycles_severed", 0.0))
            backlog = float(row.get("backlog", 0.0))
            p50 = float(row["ttc_p50"])
            p99 = float(row.get("ttc_p99", 0.0))
            problems = []
            if severed <= 0 or collected < MIN_COLLECTED_FRACTION * severed:
                problems.append("cycles_collected")
            if p50 <= 0 or p99 < p50:
                problems.append("ttc_percentiles")
            if p99 > MAX_TTC_P99:
                problems.append("ttc_p99")
            if backlog > MAX_BACKLOG_FRACTION * severed:
                problems.append("backlog")
            ok = not problems
            print(f"{'ok' if ok else 'FAIL':>10}  {name}: collected "
                  f"{collected:g}/{severed:g} severed (min "
                  f"{MIN_COLLECTED_FRACTION:g}x), ttc p50/p99 "
                  f"{p50:g}/{p99:g} (max p99 {MAX_TTC_P99:g}), "
                  f"backlog {backlog:g}")
            failures.extend(f"{name} ({p})" for p in problems)
        elif "flat" in row and "entries" in row:
            key = float(row["entries"])
            mutation_rows.setdefault(key, {})[float(row["flat"])] = row
    if open_loop == 0:
        _die(f"error: {path} has no open-loop rows with ttc_p50/"
             "cycles_severed counters (not a scale benchmark file?)")
    pairs = 0
    for entries in sorted(mutation_rows):
        pair = mutation_rows[entries]
        if 0.0 not in pair or 1.0 not in pair:
            continue
        pairs += 1
        map_time = float(pair[0.0].get("real_time", 0.0))
        flat_time = float(pair[1.0].get("real_time", 0.0))
        ratio = flat_time / map_time if map_time > 0 else float("inf")
        ok = ratio <= MAX_FLAT_VS_MAP_RATIO
        print(f"{'ok' if ok else 'FAIL':>10}  table mutation @{entries:g} "
              f"entries: flat/map time ratio {ratio:.3f} "
              f"(max {MAX_FLAT_VS_MAP_RATIO:g})")
        if not ok:
            failures.append(f"table mutation @{entries:g} (flat_vs_map_ratio)")
    if pairs == 0:
        _die(f"error: {path} has no flat/map table-mutation row pairs")
    if failures:
        print(f"\n{len(failures)} scale bound(s) violated:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"\nall scale bounds hold across {open_loop} open-loop row(s) and "
          f"{pairs} table pair(s)")
    return 0


# --- transport gate ---------------------------------------------------------

# Threaded must at least match sim wall-clock — but only judged on hosts with
# cores to parallelise on.
MIN_TRANSPORT_SPEEDUP = 1.0
MIN_CPUS_FOR_TRANSPORT_SPEEDUP = 4

# Staged-send replay is one slice of the engine's wall, so its sharded-vs-
# serial ratio gets a noise-tolerant floor; the pipelined socket loop must at
# least match lock-step on coordinator wall per step. Both floors are only
# judged on hosts with cores to overlap on.
MIN_REPLAY_SPEEDUP = 0.9
MIN_PIPELINE_STEP_SPEEDUP = 1.0


def _check_replay_row(name, row):
    """Problems for a BM_Transport_ReplayShard row (sharded vs serial replay).

    Equality of the two replay modes' verdicts is unconditional. The sharded
    run must actually have taken the parallel branch (parallel_replays > 0)
    and must clear MIN_REPLAY_SPEEDUP — but only on hosts with enough cores:
    on a small host the replay pool auto-sizes to zero workers and the engine
    legitimately falls back to serial commit.
    """
    severed = float(row.get("serial_cycles_severed", 0.0))
    collected = float(row.get("serial_cycles_collected", 0.0))
    reclaimed = float(row.get("serial_reclaimed", 0.0))
    problems = []
    if severed <= 0:
        problems.append("vacuous_run")
    if float(row.get("verdicts_match", 0.0)) != 1.0:
        problems.append("verdicts_match")
    sharded = (float(row.get("sharded_cycles_severed", -1.0)),
               float(row.get("sharded_cycles_collected", -1.0)),
               float(row.get("sharded_reclaimed", -1.0)))
    if (severed, collected, reclaimed) != sharded:
        problems.append("serial_sharded_equality")
    speedup = float(row.get("replay_speedup", 0.0))
    host_cpus = float(row.get("host_cpus", 0.0))
    gate = host_cpus >= MIN_CPUS_FOR_TRANSPORT_SPEEDUP
    if gate and float(row.get("parallel_replays", 0.0)) <= 0:
        problems.append("parallel_replays")
    if gate and speedup < MIN_REPLAY_SPEEDUP:
        problems.append("replay_speedup")
    note = (f"replay_speedup {speedup:.2f}x (min {MIN_REPLAY_SPEEDUP:g}x), "
            f"parallel_replays {float(row.get('parallel_replays', 0.0)):g}"
            if gate else
            f"replay_speedup {speedup:.2f}x (info: host_cpus {host_cpus:g} < "
            f"{MIN_CPUS_FOR_TRANSPORT_SPEEDUP})")
    ok = not problems
    print(f"{'ok' if ok else 'FAIL':>10}  {name}: "
          f"serial {severed:g}/{collected:g}/{reclaimed:g} vs "
          f"sharded {sharded[0]:g}/{sharded[1]:g}/{sharded[2]:g} "
          f"(severed/collected/reclaimed), {note}")
    return problems


def _check_pipeline_row(name, row):
    """Problems for a BM_Transport_SocketPipeline row (pipelined vs lock-step).

    Both modes run the identical seeded op stream, so verdicts AND the number
    of StepRequests issued must match exactly. The coordinator-wall-per-step
    ratio gets a floor only on hosts with cores for the site processes to
    overlap on; on one core the sites serialise anyway and the ratio is noise.
    """
    severed = float(row.get("lockstep_cycles_severed", 0.0))
    collected = float(row.get("lockstep_cycles_collected", 0.0))
    reclaimed = float(row.get("lockstep_reclaimed", 0.0))
    problems = []
    if severed <= 0:
        problems.append("vacuous_run")
    if float(row.get("verdicts_match", 0.0)) != 1.0:
        problems.append("verdicts_match")
    piped = (float(row.get("pipelined_cycles_severed", -1.0)),
             float(row.get("pipelined_cycles_collected", -1.0)),
             float(row.get("pipelined_reclaimed", -1.0)))
    if (severed, collected, reclaimed) != piped:
        problems.append("lockstep_pipelined_equality")
    lock_steps = float(row.get("lockstep_step_requests", 0.0))
    pipe_steps = float(row.get("pipelined_step_requests", -1.0))
    if lock_steps != pipe_steps:
        problems.append("step_count_equality")
    speedup = float(row.get("pipeline_step_speedup", 0.0))
    host_cpus = float(row.get("host_cpus", 0.0))
    gate = host_cpus >= MIN_CPUS_FOR_TRANSPORT_SPEEDUP
    if gate and speedup < MIN_PIPELINE_STEP_SPEEDUP:
        problems.append("pipeline_step_speedup")
    note = (f"pipeline_step_speedup {speedup:.2f}x "
            f"(min {MIN_PIPELINE_STEP_SPEEDUP:g}x)" if gate else
            f"pipeline_step_speedup {speedup:.2f}x (info: host_cpus "
            f"{host_cpus:g} < {MIN_CPUS_FOR_TRANSPORT_SPEEDUP})")
    ok = not problems
    print(f"{'ok' if ok else 'FAIL':>10}  {name}: "
          f"lockstep {severed:g}/{collected:g}/{reclaimed:g} vs "
          f"pipelined {piped[0]:g}/{piped[1]:g}/{piped[2]:g} "
          f"(severed/collected/reclaimed), steps {lock_steps:g}/{pipe_steps:g},"
          f" {note}")
    return problems


def check_transport(path):
    """Gate BENCH_transport.json: every backend == sim verdicts.

    Rows come in four shapes, keyed by which backend counters they carry.
    Threaded rows (threaded_* counters) are gated on equality plus a
    wall-clock speedup floor enforced only when host_cpus suffices. Socket
    rows (socket_* counters, from the real-process backend) are gated on
    equality only — site processes pay real fork/socket syscalls, so their
    wall-clock is reported as information, never enforced. Replay rows
    (replay_speedup) compare sharded against serial staged-send replay, and
    pipeline rows (pipeline_step_speedup) compare the pipelined socket step
    loop against lock-step — both delegate to their _check_*_row helper.

    The equality leg (same severed/collected/reclaimed figures, row-level
    verdicts_match flag covering the survivor census) is unconditional for
    both shapes: it holds by the engines' determinism argument and any
    violation is a correctness bug, not noise.
    """
    rows = load_benchmarks(path)
    failures = []
    checked = 0
    for name in sorted(rows):
        row = rows[name]
        if "replay_speedup" in row:
            checked += 1
            failures.extend(
                f"{name} ({p})" for p in _check_replay_row(name, row))
            continue
        if "pipeline_step_speedup" in row:
            checked += 1
            failures.extend(
                f"{name} ({p})" for p in _check_pipeline_row(name, row))
            continue
        if "verdicts_match" not in row or "sim_cycles_severed" not in row:
            continue
        checked += 1
        severed = float(row["sim_cycles_severed"])
        collected = float(row.get("sim_cycles_collected", 0.0))
        reclaimed = float(row.get("sim_reclaimed", 0.0))
        problems = []
        if severed <= 0:
            problems.append("vacuous_run")
        if float(row["verdicts_match"]) != 1.0:
            problems.append("verdicts_match")
        notes = []
        compared = []
        if "threaded_cycles_severed" in row:
            t_severed = float(row["threaded_cycles_severed"])
            t_collected = float(row.get("threaded_cycles_collected", -1.0))
            t_reclaimed = float(row.get("threaded_reclaimed", -1.0))
            if (severed, collected, reclaimed) != (t_severed, t_collected,
                                                   t_reclaimed):
                problems.append("sim_threaded_equality")
            compared.append(
                f"threaded {t_severed:g}/{t_collected:g}/{t_reclaimed:g}")
            speedup = float(row.get("speedup", 0.0))
            host_cpus = float(row.get("host_cpus", 0.0))
            gate_speedup = host_cpus >= MIN_CPUS_FOR_TRANSPORT_SPEEDUP
            if gate_speedup and speedup < MIN_TRANSPORT_SPEEDUP:
                problems.append("speedup")
            notes.append(f"speedup {speedup:.2f}x (min "
                         f"{MIN_TRANSPORT_SPEEDUP:g}x)" if gate_speedup else
                         f"speedup {speedup:.2f}x (info: host_cpus "
                         f"{host_cpus:g} < "
                         f"{MIN_CPUS_FOR_TRANSPORT_SPEEDUP})")
        if "socket_cycles_severed" in row:
            s_severed = float(row["socket_cycles_severed"])
            s_collected = float(row.get("socket_cycles_collected", -1.0))
            s_reclaimed = float(row.get("socket_reclaimed", -1.0))
            if (severed, collected, reclaimed) != (s_severed, s_collected,
                                                   s_reclaimed):
                problems.append("sim_socket_equality")
            compared.append(
                f"socket {s_severed:g}/{s_collected:g}/{s_reclaimed:g}")
            notes.append(f"socket wall {float(row.get('socket_wall_ms', 0)):g}ms"
                         f" vs sim {float(row.get('sim_wall_ms', 0)):g}ms"
                         " (info)")
        if not compared:
            problems.append("no_backend_counters")
        ok = not problems
        print(f"{'ok' if ok else 'FAIL':>10}  {name}: "
              f"sim {severed:g}/{collected:g}/{reclaimed:g} vs "
              f"{', '.join(compared) or '(nothing)'} "
              f"(severed/collected/reclaimed), {'; '.join(notes)}")
        failures.extend(f"{name} ({p})" for p in problems)
    if checked == 0:
        _die(f"error: {path} has no rows with verdicts_match/"
             "sim_cycles_severed counters (not a transport benchmark file?)")
    if failures:
        print(f"\n{len(failures)} transport bound(s) violated:")
        for name in failures:
            print(f"  {name}")
        return 1
    print(f"\nall backends match sim on all {checked} row(s)")
    return 0


# --- self test --------------------------------------------------------------

_FIXTURE_BASE = {
    "benchmarks": [
        {"name": "BM_Mark/100000", "run_type": "iteration",
         "real_time": 2.0, "objects_per_sec": 50e6},
        {"name": "BM_Sweep/100000", "run_type": "iteration",
         "real_time": 4.0, "objects_per_sec": 20e6},
        {"name": "BM_Rounds/8", "run_type": "iteration", "real_time": 9.0},
        {"name": "BM_Trace/4/4", "run_type": "iteration", "real_time": 3.0,
         "msgs_per_cycle": 20.0, "cache_hit_rate": 0.5},
        {"name": "BM_Soak/16", "run_type": "iteration", "real_time": 5.0,
         "reuse_hit_rate": 0.8},
        {"name": "BM_FaultRecovery_GarbageRing/10", "run_type": "iteration",
         "real_time": 6.0, "rounds_to_collect": 5.0, "time_to_collect": 300.0},
    ]
}

_FIXTURE_PARALLEL_MARK = {
    "benchmarks": [
        {"name": "BM_ParallelMark_Throughput/1", "run_type": "iteration",
         "real_time": 8.0, "mark_threads": 1.0, "host_cpus": 16.0,
         "objects_per_sec": 50e6},
        {"name": "BM_ParallelMark_Throughput/2", "run_type": "iteration",
         "real_time": 4.5, "mark_threads": 2.0, "host_cpus": 16.0,
         "objects_per_sec": 90e6},
        {"name": "BM_ParallelMark_Throughput/8", "run_type": "iteration",
         "real_time": 1.6, "mark_threads": 8.0, "host_cpus": 16.0,
         "objects_per_sec": 250e6},
    ]
}

_FIXTURE_DISTANCE = {
    "benchmarks": [
        {"name": "BM_LowChurnSoak/16/128", "run_type": "iteration",
         "real_time": 11.0, "relabel_reduction": 2000.0,
         "fallback_rate": 0.0, "label_serve_rate": 1.0},
        {"name": "BM_CrashRestartFallback", "run_type": "iteration",
         "real_time": 8.0, "relabel_reduction": 300.0,
         "fallback_rate": 0.003, "label_serve_rate": 0.99},
    ]
}

_FIXTURE_SCALE = {
    "benchmarks": [
        {"name": "BM_Scale_OpenLoop/10/2000/iterations:1",
         "run_type": "iteration", "real_time": 1000.0,
         "cycles_collected": 3600.0, "cycles_severed": 4200.0,
         "backlog": 580.0, "ttc_p50": 3000.0, "ttc_p99": 3950.0,
         "msgs_per_cycle": 12.0},
        {"name": "BM_Scale_TableMutation/0/2048", "run_type": "iteration",
         "real_time": 11000.0, "flat": 0.0, "entries": 2048.0},
        {"name": "BM_Scale_TableMutation/1/2048", "run_type": "iteration",
         "real_time": 8500.0, "flat": 1.0, "entries": 2048.0},
    ]
}

_FIXTURE_TRANSPORT = {
    "benchmarks": [
        {"name": "BM_Transport_OpenLoop/4/1000/iterations:1",
         "run_type": "iteration", "real_time": 900.0, "host_cpus": 8.0,
         "sim_wall_ms": 400.0, "threaded_wall_ms": 250.0, "speedup": 1.6,
         "verdicts_match": 1.0, "sim_cycles_severed": 800.0,
         "sim_cycles_collected": 700.0, "sim_reclaimed": 2400.0,
         "threaded_cycles_severed": 800.0,
         "threaded_cycles_collected": 700.0, "threaded_reclaimed": 2400.0},
        {"name": "BM_Transport_OpenLoop/10/2000/iterations:1",
         "run_type": "iteration", "real_time": 2100.0, "host_cpus": 8.0,
         "sim_wall_ms": 1200.0, "threaded_wall_ms": 600.0, "speedup": 2.0,
         "verdicts_match": 1.0, "sim_cycles_severed": 4200.0,
         "sim_cycles_collected": 3600.0, "sim_reclaimed": 12600.0,
         "threaded_cycles_severed": 4200.0,
         "threaded_cycles_collected": 3600.0,
         "threaded_reclaimed": 12600.0},
        # The socket row carries socket_* counters and no speedup field:
        # real processes are slower than the simulator by design, so only
        # verdict equality is enforceable.
        {"name": "BM_Transport_ScriptedChurn/iterations:1",
         "run_type": "iteration", "real_time": 120.0, "host_cpus": 8.0,
         "sim_wall_ms": 0.5, "socket_wall_ms": 115.0,
         "verdicts_match": 1.0, "sim_cycles_severed": 8.0,
         "sim_cycles_collected": 8.0, "sim_reclaimed": 32.0,
         "socket_cycles_severed": 8.0, "socket_cycles_collected": 8.0,
         "socket_reclaimed": 32.0, "handshakes": 4.0,
         "step_requests": 165.0, "build_ops": 168.0, "step_timeouts": 0.0},
        # Replay rows compare the threaded engine against itself with the
        # sharded staged-send replay forced off; equality is unconditional,
        # the floor and the proof-of-parallel-branch only bind with cores.
        {"name": "BM_Transport_ReplayShard/10/2000/iterations:1",
         "run_type": "iteration", "real_time": 1900.0, "host_cpus": 8.0,
         "sites": 10.0, "objects": 20000.0, "serial_wall_ms": 1000.0,
         "sharded_wall_ms": 800.0, "replay_speedup": 1.25,
         "parallel_replays": 120.0, "staged_sends": 40000.0,
         "verdicts_match": 1.0, "serial_cycles_severed": 4200.0,
         "serial_cycles_collected": 3600.0, "serial_reclaimed": 12600.0,
         "sharded_cycles_severed": 4200.0,
         "sharded_cycles_collected": 3600.0, "sharded_reclaimed": 12600.0},
        # Pipeline rows compare the socket engine's two step loops on the
        # same seeded op stream: verdicts and StepRequest counts must match
        # exactly, the per-step wall ratio only binds with cores.
        {"name": "BM_Transport_SocketPipeline/8/iterations:1",
         "run_type": "iteration", "real_time": 400.0, "host_cpus": 8.0,
         "sites": 8.0, "lockstep_wall_ms": 260.0, "pipelined_wall_ms": 140.0,
         "lockstep_step_requests": 330.0, "pipelined_step_requests": 330.0,
         "lockstep_wall_per_step_ms": 0.79,
         "pipelined_wall_per_step_ms": 0.42,
         "pipeline_step_speedup": 1.86, "step_timeouts": 0.0,
         "verdicts_match": 1.0, "lockstep_cycles_severed": 8.0,
         "lockstep_cycles_collected": 8.0, "lockstep_reclaimed": 32.0,
         "pipelined_cycles_severed": 8.0, "pipelined_cycles_collected": 8.0,
         "pipelined_reclaimed": 32.0},
    ]
}

_FIXTURE_FAULT_RECOVERY = {
    "benchmarks": [
        {"name": "BM_FaultRecovery_GarbageRing/0", "run_type": "iteration",
         "real_time": 4.0, "loss_pct": 0.0, "collected": 1.0,
         "retransmit_overhead": 0.0},
        {"name": "BM_FaultRecovery_GarbageRing/10", "run_type": "iteration",
         "real_time": 6.0, "loss_pct": 10.0, "collected": 1.0,
         "retransmit_overhead": 0.15, "ttc_ratio_vs_lossless": 1.3},
    ]
}


def _self_test():
    import copy
    import os
    import tempfile

    def run_with(candidate):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            cand_path = os.path.join(tmp, "cand.json")
            with open(base_path, "w", encoding="utf-8") as fh:
                json.dump(_FIXTURE_BASE, fh)
            with open(cand_path, "w", encoding="utf-8") as fh:
                json.dump(candidate, fh)
            return run_compare(base_path, cand_path, threshold=0.10)

    # Identical results: pass.
    assert run_with(copy.deepcopy(_FIXTURE_BASE)) == 0, "identical must pass"

    # 5% dip: within the 10% budget, still passes.
    slight = copy.deepcopy(_FIXTURE_BASE)
    slight["benchmarks"][0]["objects_per_sec"] = 47.5e6
    assert run_with(slight) == 0, "5% dip must pass"

    # 20% dip in one gated counter: fails.
    bad = copy.deepcopy(_FIXTURE_BASE)
    bad["benchmarks"][1]["objects_per_sec"] = 16e6
    assert run_with(bad) == 1, "20% dip must fail"

    # Un-gated real_time rows never fail the run, even when slower.
    slow = copy.deepcopy(_FIXTURE_BASE)
    slow["benchmarks"][2]["real_time"] = 90.0
    assert run_with(slow) == 0, "real_time rows are informational"

    # msgs_per_cycle is lower-is-better: a 50% increase fails...
    chatty = copy.deepcopy(_FIXTURE_BASE)
    chatty["benchmarks"][3]["msgs_per_cycle"] = 30.0
    assert run_with(chatty) == 1, "msgs_per_cycle increase must fail"

    # ...and a decrease passes.
    quiet = copy.deepcopy(_FIXTURE_BASE)
    quiet["benchmarks"][3]["msgs_per_cycle"] = 10.0
    assert run_with(quiet) == 0, "msgs_per_cycle decrease must pass"

    # cache_hit_rate is higher-is-better: a drop beyond threshold fails.
    cold = copy.deepcopy(_FIXTURE_BASE)
    cold["benchmarks"][3]["cache_hit_rate"] = 0.3
    assert run_with(cold) == 1, "cache_hit_rate drop must fail"

    # reuse_hit_rate is higher-is-better: losing the incremental cache fails.
    stale = copy.deepcopy(_FIXTURE_BASE)
    stale["benchmarks"][4]["reuse_hit_rate"] = 0.4
    assert run_with(stale) == 1, "reuse_hit_rate drop must fail"

    # rounds_to_collect / time_to_collect are lower-is-better: a fault-recovery
    # slowdown beyond threshold fails, a speedup passes.
    slower = copy.deepcopy(_FIXTURE_BASE)
    slower["benchmarks"][5]["time_to_collect"] = 400.0
    assert run_with(slower) == 1, "time_to_collect increase must fail"
    faster = copy.deepcopy(_FIXTURE_BASE)
    faster["benchmarks"][5]["rounds_to_collect"] = 4.0
    faster["benchmarks"][5]["time_to_collect"] = 250.0
    assert run_with(faster) == 0, "faster recovery must pass"

    def check_with(fixture):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "fault.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(fixture, fh)
            return check_fault_recovery(path)

    # Absolute fault-recovery bounds: the healthy fixture passes.
    assert check_with(copy.deepcopy(_FIXTURE_FAULT_RECOVERY)) == 0, \
        "healthy fault-recovery run must pass"

    # Retransmit overhead on a lossless network fails.
    noisy = copy.deepcopy(_FIXTURE_FAULT_RECOVERY)
    noisy["benchmarks"][0]["retransmit_overhead"] = 0.2
    assert check_with(noisy) == 1, "lossless retransmit overhead must fail"

    # A lossy run that never collects fails.
    stuck = copy.deepcopy(_FIXTURE_FAULT_RECOVERY)
    stuck["benchmarks"][1]["collected"] = 0.0
    assert check_with(stuck) == 1, "uncollected lossy run must fail"

    # A lossy run more than 5x slower than its lossless twin fails.
    crawl = copy.deepcopy(_FIXTURE_FAULT_RECOVERY)
    crawl["benchmarks"][1]["ttc_ratio_vs_lossless"] = 7.5
    assert check_with(crawl) == 1, "5x time-to-collect blowup must fail"

    def mark_with(fixture):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "mark.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(fixture, fh)
            return check_parallel_mark(path)

    # Parallel-mark bounds: the scaling fixture passes.
    assert mark_with(copy.deepcopy(_FIXTURE_PARALLEL_MARK)) == 0, \
        "scaling parallel-mark run must pass"

    # A multi-thread mark slower than half the sequential one fails anywhere.
    heavy = copy.deepcopy(_FIXTURE_PARALLEL_MARK)
    heavy["benchmarks"][2]["objects_per_sec"] = 20e6
    assert mark_with(heavy) == 1, "parallel overhead floor must fail"

    # Insufficient speedup with enough cores fails...
    flat = copy.deepcopy(_FIXTURE_PARALLEL_MARK)
    flat["benchmarks"][2]["objects_per_sec"] = 60e6  # 1.2x on 16 cpus
    assert mark_with(flat) == 1, "non-scaling mark on a big host must fail"

    # ...but the same throughput on a single-core host is info-only.
    small_host = copy.deepcopy(flat)
    for row in small_host["benchmarks"]:
        row["host_cpus"] = 1.0
    assert mark_with(small_host) == 0, \
        "speedup must not be gated without the cores"

    def distance_with(fixture):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "distance.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(fixture, fh)
            return check_distance(path)

    # Incremental-distance bounds: the healthy fixture passes.
    assert distance_with(copy.deepcopy(_FIXTURE_DISTANCE)) == 0, \
        "healthy incremental-distance run must pass"

    # Relabeling within 10x of the full twin fails the acceptance bar.
    heavy_labels = copy.deepcopy(_FIXTURE_DISTANCE)
    heavy_labels["benchmarks"][0]["relabel_reduction"] = 5.0
    assert distance_with(heavy_labels) == 1, "sub-10x reduction must fail"

    # A plane that mostly falls back to full rebuilds fails.
    flaky = copy.deepcopy(_FIXTURE_DISTANCE)
    flaky["benchmarks"][1]["fallback_rate"] = 0.5
    assert distance_with(flaky) == 1, "rebuild-dominated plane must fail"

    # A run where labels never served a trace is vacuous and fails.
    vacuous = copy.deepcopy(_FIXTURE_DISTANCE)
    vacuous["benchmarks"][0]["label_serve_rate"] = 0.0
    assert distance_with(vacuous) == 1, "never-serving plane must fail"

    def scale_with(fixture):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "scale.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(fixture, fh)
            return check_scale(path)

    # Scale bounds: the healthy fixture passes.
    assert scale_with(copy.deepcopy(_FIXTURE_SCALE)) == 0, \
        "healthy scale run must pass"

    # A collector that falls behind the arrival rate fails.
    behind = copy.deepcopy(_FIXTURE_SCALE)
    behind["benchmarks"][0]["cycles_collected"] = 100.0
    assert scale_with(behind) == 1, "collector falling behind must fail"

    # An unbounded end-of-run backlog fails.
    queued = copy.deepcopy(_FIXTURE_SCALE)
    queued["benchmarks"][0]["backlog"] = 3000.0
    assert scale_with(queued) == 1, "unbounded backlog must fail"

    # A time-to-collect tail of dozens of rounds fails.
    tail = copy.deepcopy(_FIXTURE_SCALE)
    tail["benchmarks"][0]["ttc_p99"] = 50000.0
    assert scale_with(tail) == 1, "ttc tail blowup must fail"

    # A flat table no cheaper than the std::map it replaced fails.
    regressed = copy.deepcopy(_FIXTURE_SCALE)
    regressed["benchmarks"][2]["real_time"] = 11000.0
    assert scale_with(regressed) == 1, "flat-vs-map regression must fail"

    def transport_with(fixture):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "transport.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(fixture, fh)
            return check_transport(path)

    # Transport bounds: the healthy fixture passes.
    assert transport_with(copy.deepcopy(_FIXTURE_TRANSPORT)) == 0, \
        "healthy transport run must pass"

    # A threaded run with different verdicts fails on any host.
    diverged = copy.deepcopy(_FIXTURE_TRANSPORT)
    diverged["benchmarks"][0]["verdicts_match"] = 0.0
    assert transport_with(diverged) == 1, "verdict divergence must fail"

    # A threaded run with a different reclaim count fails even if the
    # row-level flag lies.
    short = copy.deepcopy(_FIXTURE_TRANSPORT)
    short["benchmarks"][1]["threaded_reclaimed"] = 12599.0
    assert transport_with(short) == 1, "reclaim-set mismatch must fail"

    # A run that never severed anything is vacuous and fails.
    idle = copy.deepcopy(_FIXTURE_TRANSPORT)
    for row in idle["benchmarks"]:
        for key in ("sim_cycles_severed", "threaded_cycles_severed",
                    "sim_cycles_collected", "threaded_cycles_collected",
                    "sim_reclaimed", "threaded_reclaimed"):
            row[key] = 0.0
    assert transport_with(idle) == 1, "vacuous transport run must fail"

    # Threaded slower than sim fails on a multi-core host...
    sluggish = copy.deepcopy(_FIXTURE_TRANSPORT)
    sluggish["benchmarks"][1]["speedup"] = 0.7
    assert transport_with(sluggish) == 1, \
        "threaded slower than sim on a big host must fail"

    # ...but the same speedup on a single-core host is info-only (there is
    # nothing to parallelise on).
    one_cpu = copy.deepcopy(sluggish)
    for row in one_cpu["benchmarks"]:
        row["host_cpus"] = 1.0
    assert transport_with(one_cpu) == 0, \
        "speedup must not be gated without the cores"

    # The socket row is equality-gated like the threaded rows: a reclaim
    # divergence between the process backend and sim fails...
    socket_diverged = copy.deepcopy(_FIXTURE_TRANSPORT)
    socket_diverged["benchmarks"][2]["socket_reclaimed"] = 31.0
    assert transport_with(socket_diverged) == 1, \
        "sim-socket reclaim mismatch must fail"

    # ...and a census mismatch flagged by the row fails even with counts
    # equal.
    socket_census = copy.deepcopy(_FIXTURE_TRANSPORT)
    socket_census["benchmarks"][2]["verdicts_match"] = 0.0
    assert transport_with(socket_census) == 1, \
        "socket census divergence must fail"

    # But the socket row carries no speedup field, and real processes being
    # slower than the simulator must never fail the gate on any host.
    socket_slow = copy.deepcopy(_FIXTURE_TRANSPORT)
    socket_slow["benchmarks"][2]["socket_wall_ms"] = 99999.0
    assert transport_with(socket_slow) == 0, \
        "socket wall-clock is informational, not gated"

    # Replay rows: the two replay modes diverging on reclaim counts fails
    # even with the row-level flag intact...
    replay_diverged = copy.deepcopy(_FIXTURE_TRANSPORT)
    replay_diverged["benchmarks"][3]["sharded_reclaimed"] = 12599.0
    assert transport_with(replay_diverged) == 1, \
        "serial-vs-sharded replay divergence must fail"

    # ...as does a census mismatch flagged by the row itself.
    replay_census = copy.deepcopy(_FIXTURE_TRANSPORT)
    replay_census["benchmarks"][3]["verdicts_match"] = 0.0
    assert transport_with(replay_census) == 1, \
        "replay census divergence must fail"

    # A sharded run that never took the parallel branch fails on a big host
    # (the row exists to prove the sharded path, not the fallback)...
    replay_fallback = copy.deepcopy(_FIXTURE_TRANSPORT)
    replay_fallback["benchmarks"][3]["parallel_replays"] = 0.0
    assert transport_with(replay_fallback) == 1, \
        "sharded replay must actually run on a big host"

    # ...and a sharded replay slower than the noise floor fails there too.
    replay_slow = copy.deepcopy(_FIXTURE_TRANSPORT)
    replay_slow["benchmarks"][3]["replay_speedup"] = 0.5
    assert transport_with(replay_slow) == 1, \
        "sharded replay below the noise floor must fail on a big host"

    # On one core the replay pool has no workers: fallback and a flat ratio
    # are both legitimate, so neither is gated.
    replay_one_cpu = copy.deepcopy(replay_slow)
    replay_one_cpu["benchmarks"][3]["parallel_replays"] = 0.0
    replay_one_cpu["benchmarks"][3]["host_cpus"] = 1.0
    assert transport_with(replay_one_cpu) == 0, \
        "replay floor and parallel proof must not bind without the cores"

    # Pipeline rows: a verdict divergence between the two step loops fails
    # on any host...
    pipeline_diverged = copy.deepcopy(_FIXTURE_TRANSPORT)
    pipeline_diverged["benchmarks"][4]["pipelined_reclaimed"] = 31.0
    pipeline_diverged["benchmarks"][4]["host_cpus"] = 1.0
    assert transport_with(pipeline_diverged) == 1, \
        "lockstep-vs-pipelined divergence must fail even on one core"

    # ...and so does a StepRequest count mismatch (identical op streams must
    # produce identical waves).
    pipeline_steps = copy.deepcopy(_FIXTURE_TRANSPORT)
    pipeline_steps["benchmarks"][4]["pipelined_step_requests"] = 331.0
    assert transport_with(pipeline_steps) == 1, \
        "pipelined step-count drift must fail"

    # The per-step floor binds on a big host and not on one core.
    pipeline_slow = copy.deepcopy(_FIXTURE_TRANSPORT)
    pipeline_slow["benchmarks"][4]["pipeline_step_speedup"] = 0.8
    assert transport_with(pipeline_slow) == 1, \
        "pipelined loop slower per step on a big host must fail"
    pipeline_one_cpu = copy.deepcopy(pipeline_slow)
    pipeline_one_cpu["benchmarks"][4]["host_cpus"] = 1.0
    assert transport_with(pipeline_one_cpu) == 0, \
        "per-step floor must not bind without the cores"

    # Every gate must degrade with a clear message and exit code 2 — never a
    # Python traceback — when its input/baseline JSON does not exist.
    def expect_clean_exit(fn, *args):
        try:
            fn(*args)
        except SystemExit as err:
            assert err.code == 2, f"missing input must exit 2, got {err.code}"
            return
        raise AssertionError("missing input must exit via sys.exit(2)")

    missing = os.path.join(tempfile.gettempdir(), "bench_compare_no_such.json")
    assert not os.path.exists(missing)
    expect_clean_exit(run_compare, missing, missing, 0.10)
    expect_clean_exit(check_fault_recovery, missing)
    expect_clean_exit(check_parallel_mark, missing)
    expect_clean_exit(check_distance, missing)
    expect_clean_exit(check_scale, missing)
    expect_clean_exit(check_transport, missing)

    # ...and the same for structurally malformed files.
    with tempfile.TemporaryDirectory() as tmp:
        broken = os.path.join(tmp, "broken.json")
        with open(broken, "w", encoding="utf-8") as fh:
            fh.write("{\"benchmarks\": [{\"real_time\": 1.0}]}")
        expect_clean_exit(check_distance, broken)
        expect_clean_exit(check_transport, broken)
        not_bench = os.path.join(tmp, "not_bench.json")
        with open(not_bench, "w", encoding="utf-8") as fh:
            fh.write("{\"context\": {}}")
        expect_clean_exit(run_compare, not_bench, not_bench, 0.10)

    print("bench_compare self-test: all cases passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated objects_per_sec drop "
                             "(fraction, default 0.10)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded fixture tests and exit")
    parser.add_argument("--check-fault-recovery", metavar="FILE",
                        help="gate a BENCH_fault_recovery.json on absolute "
                             "bounds (no baseline needed)")
    parser.add_argument("--check-parallel-mark", metavar="FILE",
                        help="gate a BENCH_parallel_mark.json against its own "
                             "1-thread row (no baseline needed)")
    parser.add_argument("--check-distance", metavar="FILE",
                        help="gate a BENCH_distance.json on absolute "
                             "incremental-distance bounds (no baseline needed)")
    parser.add_argument("--check-scale", metavar="FILE",
                        help="gate a BENCH_scale.json on absolute open-loop "
                             "and flat-table bounds (no baseline needed)")
    parser.add_argument("--check-transport", metavar="FILE",
                        help="gate a BENCH_transport.json on sim/threaded "
                             "verdict equality and (cores permitting) the "
                             "speedup floor (no baseline needed)")
    args = parser.parse_args(argv)

    if args.self_test:
        return _self_test()
    if args.check_fault_recovery:
        return check_fault_recovery(args.check_fault_recovery)
    if args.check_parallel_mark:
        return check_parallel_mark(args.check_parallel_mark)
    if args.check_distance:
        return check_distance(args.check_distance)
    if args.check_scale:
        return check_scale(args.check_scale)
    if args.check_transport:
        return check_transport(args.check_transport)
    if not args.baseline or not args.candidate:
        parser.print_usage(sys.stderr)
        return 2
    return run_compare(args.baseline, args.candidate, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
