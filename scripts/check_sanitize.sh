#!/usr/bin/env bash
# Builds the tree with a sanitizer in a separate build directory and runs the
# test suite under it. Slab recycling, flat visit records, and the message
# batching paths all juggle raw slots and ids — ASan + UBSan is the cheap way
# to prove none of them touch freed or uninitialized memory. The work-stealing
# mark, the shared worker pool, the parallel trace executor, and the threaded
# transport's per-site threads add real multithreading — TSan is the cheap way
# to prove the claim protocol, the deque handoffs, and the MPSC inbox queues
# are race-free.
#
# Usage:
#   check_sanitize.sh             # ASan+UBSan, full suite (includes chaos and
#                                 # the socket-transport process tests)
#   check_sanitize.sh --chaos     # ASan+UBSan, only the chaos suite (-L chaos):
#                                 # fault plans exercise the retransmit,
#                                 # parking, and restart-purge paths hardest,
#                                 # so this is the fast sanitizer smoke run
#   check_sanitize.sh --socket    # ASan+UBSan, only the socket suite
#                                 # (-L socket): real site processes, kill -9 /
#                                 # SIGSTOP chaos, snapshot restore — the fork
#                                 # server inherits ASan fine, and leaks in
#                                 # short-lived site processes still report
#   check_sanitize.sh --tsan      # ThreadSanitizer over the concurrency-heavy
#                                 # suites
#                                 # (-L "parallel|chaos|distance|scale|transport"):
#                                 # the parallel mark/trace tests, the chaos
#                                 # harness, the distance-label suite (whose
#                                 # config matrix runs mark_threads > 1 against
#                                 # the listener-driven label plane), the
#                                 # down-scaled open-loop scale smoke, and the
#                                 # threaded-transport suite (the MPSC inbox
#                                 # hammer, the two-site ping-pong smoke at
#                                 # eight threads, the mark_threads-by-transport
#                                 # matrix with nested per-site mark pools, and
#                                 # the sharded-vs-serial replay differential
#                                 # are its data-race probes).
#                                 # The socket label is deliberately absent:
#                                 # its tests fork site processes (and kill -9
#                                 # them mid-run), and TSan state does not
#                                 # survive fork-without-exec — each process is
#                                 # single-threaded anyway, so TSan has nothing
#                                 # to check that the in-process transports
#                                 # don't already cover
#   check_sanitize.sh [ctest args...]   # any extra args pass through to ctest
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=ON
DEFAULT_BUILD_DIR=build-asan

CTEST_ARGS=()
if [[ "${1:-}" == "--chaos" ]]; then
  CTEST_ARGS+=(-L chaos)
  shift
elif [[ "${1:-}" == "--socket" ]]; then
  CTEST_ARGS+=(-L socket)
  shift
elif [[ "${1:-}" == "--tsan" ]]; then
  SANITIZE=thread
  DEFAULT_BUILD_DIR=build-tsan
  CTEST_ARGS+=(-L 'parallel|chaos|distance|scale|transport')
  shift
fi
CTEST_ARGS+=("$@")

BUILD_DIR=${BUILD_DIR:-$DEFAULT_BUILD_DIR}

cmake -B "$BUILD_DIR" -G Ninja -DDGC_SANITIZE="$SANITIZE" -DCMAKE_BUILD_TYPE=Debug
cmake --build "$BUILD_DIR"
if [[ "$SANITIZE" == thread ]]; then
  TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1} \
    ctest --test-dir "$BUILD_DIR" --output-on-failure "${CTEST_ARGS[@]}"
else
  ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1} \
  UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
    ctest --test-dir "$BUILD_DIR" --output-on-failure "${CTEST_ARGS[@]}"
fi
