#!/usr/bin/env bash
# Builds the tree with ASan + UBSan (-DDGC_SANITIZE=ON) in a separate build
# directory and runs the full test suite under it. Slab recycling, flat visit
# records, and the message batching paths all juggle raw slots and ids — this
# is the cheap way to prove none of them touch freed or uninitialized memory.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -G Ninja -DDGC_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$BUILD_DIR"
ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
  ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
