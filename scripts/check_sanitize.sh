#!/usr/bin/env bash
# Builds the tree with ASan + UBSan (-DDGC_SANITIZE=ON) in a separate build
# directory and runs the full test suite under it. Slab recycling, flat visit
# records, and the message batching paths all juggle raw slots and ids — this
# is the cheap way to prove none of them touch freed or uninitialized memory.
#
# Usage:
#   check_sanitize.sh             # full suite (includes the chaos tests)
#   check_sanitize.sh --chaos     # only the chaos suite (ctest -L chaos):
#                                 # fault plans exercise the retransmit,
#                                 # parking, and restart-purge paths hardest,
#                                 # so this is the fast sanitizer smoke run
#   check_sanitize.sh [ctest args...]   # any extra args pass through to ctest
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

CTEST_ARGS=()
if [[ "${1:-}" == "--chaos" ]]; then
  CTEST_ARGS+=(-L chaos)
  shift
fi
CTEST_ARGS+=("$@")

cmake -B "$BUILD_DIR" -G Ninja -DDGC_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$BUILD_DIR"
ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
  ctest --test-dir "$BUILD_DIR" --output-on-failure "${CTEST_ARGS[@]}"
