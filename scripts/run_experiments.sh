#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md: runs the full test suite
# and all benchmark binaries, teeing results into the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do
  echo "===== $b"
  "$b"
done 2>&1 | tee bench_output.txt
