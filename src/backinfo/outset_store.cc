#include "backinfo/outset_store.h"

#include <algorithm>

namespace dgc {

void OutsetStore::Reserve(std::size_t expected_suspects) {
  if (expected_suspects == 0) return;
  sets_.reserve(sets_.size() + expected_suspects);
  by_content_.reserve(expected_suspects);
  singletons_.reserve(expected_suspects);
  // Each suspect contributes at most a handful of distinct pair-unions in
  // practice (shared subgraphs are memoized); 2x is a comfortable ceiling.
  union_memo_.reserve(2 * expected_suspects);
}

OutsetStore::OutsetId OutsetStore::Singleton(ObjectId ref) {
  const auto it = singletons_.find(ref);
  if (it != singletons_.end()) return it->second;
  const OutsetId id = Intern({ref});
  singletons_.emplace(ref, id);
  return id;
}

OutsetStore::OutsetId OutsetStore::Union(OutsetId a, OutsetId b) {
  ++stats_.unions_requested;
  if (a == b || b == kEmpty) {
    ++stats_.unions_trivial;
    return a;
  }
  if (a == kEmpty) {
    ++stats_.unions_trivial;
    return b;
  }
  if (a > b) std::swap(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  const auto memo = union_memo_.find(key);
  if (memo != union_memo_.end()) {
    ++stats_.unions_memo_hits;
    return memo->second;
  }

  ++stats_.unions_computed;
  const std::vector<ObjectId>& va = Get(a);
  const std::vector<ObjectId>& vb = Get(b);
  std::vector<ObjectId> merged;
  merged.reserve(va.size() + vb.size());
  std::set_union(va.begin(), va.end(), vb.begin(), vb.end(),
                 std::back_inserter(merged));
  const OutsetId id = Intern(std::move(merged));
  union_memo_.emplace(key, id);
  return id;
}

OutsetStore::OutsetId OutsetStore::Intern(std::vector<ObjectId> canonical) {
  DGC_DCHECK(std::is_sorted(canonical.begin(), canonical.end()));
  const auto it = by_content_.find(canonical);
  if (it != by_content_.end()) {
    ++stats_.interned_existing;
    return it->second;
  }
  const OutsetId id = static_cast<OutsetId>(sets_.size());
  stats_.stored_elements += canonical.size();
  by_content_.emplace(canonical, id);
  sets_.push_back(std::move(canonical));
  return id;
}

}  // namespace dgc
