#include "backinfo/outset_store.h"

#include <algorithm>

namespace dgc {

void OutsetStore::Reserve(std::size_t expected_suspects) {
  if (expected_suspects == 0) return;
  sets_.reserve(sets_.size() + expected_suspects);
  by_id_.reserve(expected_suspects);
  singletons_.reserve(expected_suspects);
  // Each suspect contributes at most a handful of distinct pair-unions in
  // practice (shared subgraphs are memoized); 2x is a comfortable ceiling.
  union_memo_.reserve(2 * expected_suspects);
}

OutsetStore::OutsetId OutsetStore::Singleton(ObjectId ref) {
  const auto it = singletons_.find(ref);
  if (it != singletons_.end()) return it->second;
  const OutsetId id = Intern({ref});
  singletons_.emplace(ref, id);
  return id;
}

OutsetStore::OutsetId OutsetStore::Union(OutsetId a, OutsetId b) {
  ++stats_.unions_requested;
  if (a == b || b == kEmpty) {
    ++stats_.unions_trivial;
    return a;
  }
  if (a == kEmpty) {
    ++stats_.unions_trivial;
    return b;
  }
  if (a > b) std::swap(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  const auto memo = union_memo_.find(key);
  if (memo != union_memo_.end()) {
    ++stats_.unions_memo_hits;
    return memo->second;
  }

  ++stats_.unions_computed;
  const std::vector<ObjectId>& va = Get(a);
  const std::vector<ObjectId>& vb = Get(b);
  std::vector<ObjectId> merged;
  merged.reserve(va.size() + vb.size());
  std::set_union(va.begin(), va.end(), vb.begin(), vb.end(),
                 std::back_inserter(merged));
  const OutsetId id = Intern(std::move(merged));
  union_memo_.emplace(key, id);
  return id;
}

OutsetStore::OutsetId OutsetStore::Intern(std::vector<ObjectId> canonical) {
  DGC_DCHECK(std::is_sorted(canonical.begin(), canonical.end()));
  // Tentatively append the candidate so the id-keyed table can hash and
  // compare it in place; on a duplicate, drop the tentative slot again.
  const OutsetId tentative = static_cast<OutsetId>(sets_.size());
  sets_.push_back(std::move(canonical));
  const auto [it, inserted] = by_id_.insert(tentative);
  if (!inserted) {
    sets_.pop_back();
    ++stats_.interned_existing;
    stats_.intern_bytes_saved +=
        sets_[*it].size() * sizeof(ObjectId) + sizeof(std::vector<ObjectId>);
    return *it;
  }
  stats_.stored_elements += sets_[tentative].size();
  return tentative;
}

}  // namespace dgc
