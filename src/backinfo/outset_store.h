// Canonical storage for outsets (Section 5.2).
//
// An outset is a set of suspected outrefs (remote references). The paper's
// efficiency argument rests on two observations implemented here:
//   1. suspects with equal outsets share storage — the store interns every
//      set in canonical (sorted) form and hands out small ids;
//   2. unions are memoized — a hash table maps pairs of outset ids to the id
//      of their union, so repeating a union costs O(1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace dgc {

class OutsetStore {
 public:
  using OutsetId = std::uint32_t;

  static constexpr OutsetId kEmpty = 0;

  OutsetStore() { sets_.emplace_back(); /* id 0 = empty set */ }

  /// Pre-sizes the hash tables for roughly `expected_suspects` suspected
  /// inrefs so a trace-sized workload does not pay rehash churn. Outset
  /// counts and memoized unions both grow with the suspect count, so one
  /// knob sizes all three tables.
  void Reserve(std::size_t expected_suspects);

  /// Interns {ref} and returns its id.
  OutsetId Singleton(ObjectId ref);

  /// Returns the id of a ∪ b, memoized.
  OutsetId Union(OutsetId a, OutsetId b);

  /// Returns the id of a ∪ {ref}.
  OutsetId Add(OutsetId a, ObjectId ref) { return Union(a, Singleton(ref)); }

  /// The canonical (sorted, deduplicated) members of an outset.
  [[nodiscard]] const std::vector<ObjectId>& Get(OutsetId id) const {
    DGC_CHECK(id < sets_.size());
    return sets_[id];
  }

  [[nodiscard]] std::size_t distinct_outsets() const { return sets_.size(); }

  struct Stats {
    std::uint64_t unions_requested = 0;
    std::uint64_t unions_memo_hits = 0;   // answered by the pair memo
    std::uint64_t unions_trivial = 0;     // empty/equal operands
    std::uint64_t unions_computed = 0;    // actually merged element-wise
    std::uint64_t interned_existing = 0;  // merge produced an existing set
    std::uint64_t stored_elements = 0;    // Σ |set| over distinct sets
    std::uint64_t union_memo_entries = 0;      // pairs memoized
    double union_memo_load_factor = 0.0;       // entries / buckets
  };
  /// Snapshot of the counters plus the current union-memo load.
  [[nodiscard]] Stats stats() const {
    Stats snapshot = stats_;
    snapshot.union_memo_entries = union_memo_.size();
    snapshot.union_memo_load_factor = union_memo_.load_factor();
    return snapshot;
  }

 private:
  struct VectorHash {
    std::size_t operator()(const std::vector<ObjectId>& v) const noexcept {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL + v.size();
      for (const ObjectId& id : v) {
        h = detail::mix64(h ^ std::hash<ObjectId>{}(id));
      }
      return static_cast<std::size_t>(h);
    }
  };

  /// Interns a canonical vector, returning its id.
  OutsetId Intern(std::vector<ObjectId> canonical);

  std::vector<std::vector<ObjectId>> sets_;
  std::unordered_map<std::vector<ObjectId>, OutsetId, VectorHash> by_content_;
  std::unordered_map<ObjectId, OutsetId> singletons_;
  std::unordered_map<std::uint64_t, OutsetId> union_memo_;
  Stats stats_;
};

}  // namespace dgc
