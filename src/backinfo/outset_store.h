// Canonical storage for outsets (Section 5.2).
//
// An outset is a set of suspected outrefs (remote references). The paper's
// efficiency argument rests on two observations implemented here:
//   1. suspects with equal outsets share storage — the store interns every
//      set in canonical (sorted) form and hands out small ids;
//   2. unions are memoized — a hash table maps pairs of outset ids to the id
//      of their union, so repeating a union costs O(1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace dgc {

class OutsetStore {
 public:
  using OutsetId = std::uint32_t;

  static constexpr OutsetId kEmpty = 0;

  OutsetStore() : by_id_(kInitialBuckets, IdHash{&sets_}, IdEq{&sets_}) {
    sets_.emplace_back();  // id 0 = empty set
    by_id_.insert(kEmpty);
  }

  // The intern table's hash/equal functors point into sets_, so the store
  // must stay put.
  OutsetStore(const OutsetStore&) = delete;
  OutsetStore& operator=(const OutsetStore&) = delete;

  /// Pre-sizes the hash tables for roughly `expected_suspects` suspected
  /// inrefs so a trace-sized workload does not pay rehash churn. Outset
  /// counts and memoized unions both grow with the suspect count, so one
  /// knob sizes all three tables.
  void Reserve(std::size_t expected_suspects);

  /// Interns {ref} and returns its id.
  OutsetId Singleton(ObjectId ref);

  /// Returns the id of a ∪ b, memoized.
  OutsetId Union(OutsetId a, OutsetId b);

  /// Returns the id of a ∪ {ref}.
  OutsetId Add(OutsetId a, ObjectId ref) { return Union(a, Singleton(ref)); }

  /// The canonical (sorted, deduplicated) members of an outset.
  [[nodiscard]] const std::vector<ObjectId>& Get(OutsetId id) const {
    DGC_CHECK(id < sets_.size());
    return sets_[id];
  }

  [[nodiscard]] std::size_t distinct_outsets() const { return sets_.size(); }

  struct Stats {
    std::uint64_t unions_requested = 0;
    std::uint64_t unions_memo_hits = 0;   // answered by the pair memo
    std::uint64_t unions_trivial = 0;     // empty/equal operands
    std::uint64_t unions_computed = 0;    // actually merged element-wise
    std::uint64_t interned_existing = 0;  // merge produced an existing set
    std::uint64_t stored_elements = 0;    // Σ |set| over distinct sets
    /// Bytes the id-keyed intern table avoids versus the old content-keyed
    /// map, which stored every canonical vector twice (as the map key and
    /// in sets_): the elements plus one vector header per distinct set.
    std::uint64_t intern_bytes_saved = 0;
    std::uint64_t union_memo_entries = 0;      // pairs memoized
    double union_memo_load_factor = 0.0;       // entries / buckets
  };
  /// Snapshot of the counters plus the current union-memo load.
  [[nodiscard]] Stats stats() const {
    Stats snapshot = stats_;
    snapshot.union_memo_entries = union_memo_.size();
    snapshot.union_memo_load_factor = union_memo_.load_factor();
    return snapshot;
  }

 private:
  static constexpr std::size_t kInitialBuckets = 16;

  static std::size_t HashContent(const std::vector<ObjectId>& v) noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL + v.size();
    for (const ObjectId& id : v) {
      h = detail::mix64(h ^ std::hash<ObjectId>{}(id));
    }
    return static_cast<std::size_t>(h);
  }

  // The intern table holds outset ids only; hashing and equality dereference
  // the canonical vectors in sets_, so each set's content is stored once.
  struct IdHash {
    const std::vector<std::vector<ObjectId>>* sets;
    std::size_t operator()(OutsetId id) const noexcept {
      return HashContent((*sets)[id]);
    }
  };
  struct IdEq {
    const std::vector<std::vector<ObjectId>>* sets;
    bool operator()(OutsetId a, OutsetId b) const noexcept {
      return (*sets)[a] == (*sets)[b];
    }
  };

  /// Interns a canonical vector, returning its id.
  OutsetId Intern(std::vector<ObjectId> canonical);

  std::vector<std::vector<ObjectId>> sets_;
  std::unordered_set<OutsetId, IdHash, IdEq> by_id_;
  std::unordered_map<ObjectId, OutsetId> singletons_;
  std::unordered_map<std::uint64_t, OutsetId> union_memo_;
  Stats stats_;
};

}  // namespace dgc
