#include "backinfo/site_back_info.h"

#include <algorithm>

#include "common/check.h"

namespace dgc {

void SiteBackInfo::RecomputeInsets() {
  outref_insets.clear();
  for (const auto& [inref_obj, outset] : inref_outsets) {
    for (const ObjectId outref : outset) {
      outref_insets[outref].push_back(inref_obj);
    }
  }
  // Map iteration is ordered by inref object id, so each inset is already
  // sorted; assert rather than re-sort.
  for (auto& [outref, inset] : outref_insets) {
    (void)outref;
    DGC_DCHECK(std::is_sorted(inset.begin(), inset.end()));
  }
}

std::size_t SiteBackInfo::stored_elements() const {
  std::size_t total = 0;
  for (const auto& [inref_obj, outset] : inref_outsets) {
    (void)inref_obj;
    total += outset.size();
  }
  for (const auto& [outref, inset] : outref_insets) {
    (void)outref;
    total += inset.size();
  }
  return total;
}

}  // namespace dgc
