#include "backinfo/site_back_info.h"

#include <algorithm>

#include "common/check.h"

namespace dgc {

void SiteBackInfo::RecomputeInsets() {
  outref_insets.clear();
  for (const auto& [inref_obj, outset] : inref_outsets) {
    for (const ObjectId outref : outset) {
      outref_insets[outref].push_back(inref_obj);
    }
  }
  // Outset iteration is ordered by inref object id, so each inset is already
  // sorted; assert rather than re-sort.
  for (auto& [outref, inset] : outref_insets) {
    (void)outref;
    DGC_DCHECK(std::is_sorted(inset.begin(), inset.end()));
  }
}

std::size_t SiteBackInfo::ApplyOutsetDelta(
    ObjectId inref_obj, const std::vector<ObjectId>& new_outset) {
  DGC_DCHECK(std::is_sorted(new_outset.begin(), new_outset.end()));
  static const std::vector<ObjectId> kEmpty;
  const auto old_it = inref_outsets.find(inref_obj);
  const std::vector<ObjectId>& old_outset =
      old_it == inref_outsets.end() ? kEmpty : old_it->second;

  // Walk both sorted outsets once; memberships only in one side are the
  // delta to patch into the inverse view.
  std::size_t delta_ops = 0;
  auto old_pos = old_outset.begin();
  auto new_pos = new_outset.begin();
  while (old_pos != old_outset.end() || new_pos != new_outset.end()) {
    if (new_pos == new_outset.end() ||
        (old_pos != old_outset.end() && *old_pos < *new_pos)) {
      // Removed membership: drop inref_obj from the old outref's inset.
      auto inset_it = outref_insets.find(*old_pos);
      DGC_CHECK_MSG(inset_it != outref_insets.end(),
                    "inset missing for " << *old_pos);
      auto& inset = inset_it->second;
      const auto mem =
          std::lower_bound(inset.begin(), inset.end(), inref_obj);
      DGC_CHECK(mem != inset.end() && *mem == inref_obj);
      inset.erase(mem);
      if (inset.empty()) outref_insets.erase(*old_pos);
      ++old_pos;
      ++delta_ops;
    } else if (old_pos == old_outset.end() || *new_pos < *old_pos) {
      // Added membership: insert inref_obj into the new outref's inset at
      // its sorted position.
      auto& inset = outref_insets[*new_pos];
      const auto mem =
          std::lower_bound(inset.begin(), inset.end(), inref_obj);
      DGC_DCHECK(mem == inset.end() || *mem != inref_obj);
      inset.insert(mem, inref_obj);
      ++new_pos;
      ++delta_ops;
    } else {
      ++old_pos;
      ++new_pos;
    }
  }

  if (new_outset.empty()) {
    inref_outsets.erase(inref_obj);
  } else {
    inref_outsets[inref_obj] = new_outset;
  }
  return delta_ops;
}

SiteBackInfo SiteBackInfo::PatchedFrom(const SiteBackInfo& prev,
                                       const OutsetMap& fresh_outsets,
                                       std::uint64_t* outsets_reused) {
  SiteBackInfo patched;
  patched.inref_outsets = prev.inref_outsets;
  patched.outref_insets = prev.outref_insets;
  for (const auto& [obj, outset] : prev.inref_outsets) {
    (void)outset;
    if (!fresh_outsets.contains(obj)) {
      patched.ApplyOutsetDelta(obj, {});
    }
  }
  for (const auto& [obj, outset] : fresh_outsets) {
    const auto old_it = prev.inref_outsets.find(obj);
    if (old_it != prev.inref_outsets.end() && old_it->second == outset) {
      if (outsets_reused != nullptr) ++*outsets_reused;
      continue;
    }
    patched.ApplyOutsetDelta(obj, outset);
  }
  DGC_DCHECK(patched.inref_outsets == fresh_outsets);
#if !defined(NDEBUG)
  SiteBackInfo rebuilt;
  rebuilt.inref_outsets = patched.inref_outsets;
  rebuilt.RecomputeInsets();
  DGC_DCHECK(rebuilt.outref_insets == patched.outref_insets);
#endif
  return patched;
}

std::size_t SiteBackInfo::stored_elements() const {
  std::size_t total = 0;
  for (const auto& [inref_obj, outset] : inref_outsets) {
    (void)inref_obj;
    total += outset.size();
  }
  for (const auto& [outref, inset] : outref_insets) {
    (void)outref;
    total += inset.size();
  }
  return total;
}

}  // namespace dgc
