// Materialized back information of one site (Section 5).
//
// After a local trace, a site retains the outsets of its suspected inrefs and
// the inverse view, the insets of its suspected outrefs. Back traces consult
// insets (local steps); the transfer barrier consults outsets (to clean the
// outrefs reachable from a cleaned inref). During a non-atomic local trace
// the site holds two copies — the old one serves back traces while the new
// one is being prepared (Section 6.2).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"

namespace dgc {

struct SiteBackInfo {
  /// Outset per suspected inref: local object -> sorted suspected outrefs.
  std::map<ObjectId, std::vector<ObjectId>> inref_outsets;

  /// Inset per suspected outref: remote ref -> sorted local inref objects.
  /// Always the exact inverse of inref_outsets.
  std::map<ObjectId, std::vector<ObjectId>> outref_insets;

  /// Rebuilds outref_insets from inref_outsets.
  void RecomputeInsets();

  /// Σ of stored set elements — the O(ni + no)-style space figure reported
  /// by bench_outset_sharing (counts both views).
  [[nodiscard]] std::size_t stored_elements() const;

  void clear() {
    inref_outsets.clear();
    outref_insets.clear();
  }
};

}  // namespace dgc
