// Materialized back information of one site (Section 5).
//
// After a local trace, a site retains the outsets of its suspected inrefs and
// the inverse view, the insets of its suspected outrefs. Back traces consult
// insets (local steps); the transfer barrier consults outsets (to clean the
// outrefs reachable from a cleaned inref). During a non-atomic local trace
// the site holds two copies — the old one serves back traces while the new
// one is being prepared (Section 6.2).
//
// Storage is a flat sorted vector behind a map-like wrapper (OutsetMap)
// rather than std::map: back info is rebuilt in bulk once per trace and then
// only read (binary searches) or delta-patched (ApplyOutsetDelta), which is
// the access pattern flat storage wins at — one contiguous allocation per
// view, cache-line-friendly lookups, and O(changed) inset maintenance for
// the incremental collector instead of a full inverse rebuild.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace dgc {

/// A sorted flat vector of (key, sorted id set) pairs exposing the std::map
/// surface the back-info consumers use. Iteration order is key order, same
/// as the std::map it replaces, so every downstream determinism property
/// (message batching, test dumps) is preserved.
class OutsetMap {
 public:
  using value_type = std::pair<ObjectId, std::vector<ObjectId>>;
  using Storage = std::vector<value_type>;
  using iterator = Storage::iterator;
  using const_iterator = Storage::const_iterator;

  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  [[nodiscard]] iterator find(ObjectId key) {
    const iterator it = LowerBound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  [[nodiscard]] const_iterator find(ObjectId key) const {
    const const_iterator it = LowerBound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  [[nodiscard]] bool contains(ObjectId key) const {
    return find(key) != entries_.end();
  }

  [[nodiscard]] const std::vector<ObjectId>& at(ObjectId key) const {
    const const_iterator it = find(key);
    DGC_CHECK_MSG(it != entries_.end(), "no back-info entry for " << key);
    return it->second;
  }

  /// Inserts an empty set at the key's sorted position when absent.
  std::vector<ObjectId>& operator[](ObjectId key) {
    iterator it = LowerBound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.insert(it, value_type{key, {}});
    }
    return it->second;
  }

  /// Map-style emplace: no-op (returning false) when the key exists.
  std::pair<iterator, bool> emplace(ObjectId key, std::vector<ObjectId> set) {
    iterator it = LowerBound(key);
    if (it != entries_.end() && it->first == key) return {it, false};
    it = entries_.insert(it, value_type{key, std::move(set)});
    return {it, true};
  }

  std::size_t erase(ObjectId key) {
    const iterator it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }

  friend bool operator==(const OutsetMap&, const OutsetMap&) = default;

 private:
  [[nodiscard]] iterator LowerBound(ObjectId key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, ObjectId k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator LowerBound(ObjectId key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, ObjectId k) { return e.first < k; });
  }

  Storage entries_;
};

struct SiteBackInfo {
  /// Outset per suspected inref: local object -> sorted suspected outrefs.
  OutsetMap inref_outsets;

  /// Inset per suspected outref: remote ref -> sorted local inref objects.
  /// Always the exact inverse of inref_outsets.
  OutsetMap outref_insets;

  /// Rebuilds outref_insets from inref_outsets.
  void RecomputeInsets();

  /// Delta maintenance: replaces the outset stored for `inref_obj` with
  /// `new_outset` (empty = remove the entry) and patches outref_insets with
  /// only the added/removed memberships, instead of the full inverse
  /// rebuild. Returns the number of inset memberships touched — the work an
  /// incremental trace actually paid, reported as delta ops. Equivalent to
  /// assigning the outset and calling RecomputeInsets.
  std::size_t ApplyOutsetDelta(ObjectId inref_obj,
                               const std::vector<ObjectId>& new_outset);

  /// Builds this trace's back info by patching the previous trace's forward:
  /// copies `prev`, removes the outsets of inrefs absent from
  /// `fresh_outsets`, applies a delta for each changed outset, and skips —
  /// counting into `outsets_reused` — every inref whose outset is verbatim
  /// unchanged. O(changed memberships) plus two flat copies, and exactly
  /// equivalent to storing `fresh_outsets` and calling RecomputeInsets.
  [[nodiscard]] static SiteBackInfo PatchedFrom(const SiteBackInfo& prev,
                                               const OutsetMap& fresh_outsets,
                                               std::uint64_t* outsets_reused);

  /// Σ of stored set elements — the O(ni + no)-style space figure reported
  /// by bench_outset_sharing (counts both views).
  [[nodiscard]] std::size_t stored_elements() const;

  void clear() {
    inref_outsets.clear();
    outref_insets.clear();
  }

  friend bool operator==(const SiteBackInfo&, const SiteBackInfo&) = default;
};

}  // namespace dgc
