// Computing outsets of suspected inrefs (Section 5).
//
// A plain forward trace cannot compute inref-to-outref reachability because
// it scans each object once (Figure 4). The paper gives two remedies:
//
//   * IndependentOutsetTracer (§5.1): trace from each suspected inref with
//     its own color. Complete but may retrace objects — O(ni * n) worst case.
//   * BottomUpOutsetComputer (§5.2): one Tarjan-style depth-first traversal
//     that finds strongly connected components and assigns every member of a
//     component its leader's outset; each object is traced exactly once.
//
// Both are templates over an Env policy that answers, for the *current*
// local trace, whether a local object was marked clean and whether an outref
// is clean, and that records suspect-marked objects so the sweep retains
// them. Clean objects are "black": never entered; clean outrefs are excluded
// from outsets (Section 4.2 limits back tracing to suspected iorefs).
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "backinfo/outset_store.h"
#include "common/check.h"
#include "common/ids.h"
#include "store/heap.h"

namespace dgc {

struct SuspectTraceStats {
  std::uint64_t objects_traced = 0;  // distinct objects entered
  std::uint64_t object_visits = 0;   // entries incl. re-traversals (§5.1 only)
  std::uint64_t edges_scanned = 0;
};

/// Section 5.2: single-pass, SCC-aware, memoized-union outset computation.
/// Call TraceFrom once per suspected inref, in increasing distance order;
/// state persists across calls so shared subgraphs are traced once.
template <typename Env>
class BottomUpOutsetComputer {
 public:
  BottomUpOutsetComputer(const Heap& heap, OutsetStore& store, Env& env)
      : heap_(heap), store_(store), env_(env), site_(heap.site()) {
    // Dense per-slot side array instead of a hash map: object indices encode
    // (generation << 32) | (slot + 1) — the heap's slot idiom — so the low
    // half minus one addresses a flat vector directly. Slots are never
    // recycled while a local trace runs, so keying by slot alone is exact
    // for this computer's lifetime (one trace).
    state_.resize(heap.slot_capacity());
  }

  /// Returns the outset (of suspected outrefs) locally reachable from the
  /// object `root` (the target of a suspected inref).
  OutsetStore::OutsetId TraceFrom(ObjectId root) {
    DGC_CHECK(root.site == site_);
    if (env_.ObjectIsCleanMarked(root)) return OutsetStore::kEmpty;
    if (const NodeState* ns = Find(root.index)) {
      DGC_CHECK(ns->done);  // the SCC stack is empty between top-level calls
      return ns->outset;
    }
    RunDfs(root.index);
    return StateOf(root.index).outset;
  }

  [[nodiscard]] const SuspectTraceStats& stats() const { return stats_; }

 private:
  struct NodeState {
    std::uint32_t mark = 0;  // visit order (the paper's Mark counter)
    std::uint32_t low = 0;   // Tarjan lowlink (the paper's Leader)
    OutsetStore::OutsetId outset = OutsetStore::kEmpty;
    bool on_stack = false;
    bool done = false;  // component completed; outset is final
  };

  // The heap's index layout (store/heap.h): low 32 bits are slot + 1.
  static constexpr std::uint64_t kSlotMask = (1ULL << 32) - 1;
  static std::size_t SlotOf(std::uint64_t index) {
    return static_cast<std::size_t>((index & kSlotMask) - 1);
  }

  /// mark == 0 means "never visited" (Visit assigns marks from 1 up).
  NodeState* Find(std::uint64_t index) {
    const std::size_t slot = SlotOf(index);
    if (slot >= state_.size() || state_[slot].mark == 0) return nullptr;
    return &state_[slot];
  }

  NodeState& StateOf(std::uint64_t index) {
    const std::size_t slot = SlotOf(index);
    DGC_DCHECK(slot < state_.size() && state_[slot].mark != 0);
    return state_[slot];
  }

  NodeState& Visit(std::uint64_t index) {
    const std::size_t slot = SlotOf(index);
    if (slot >= state_.size()) state_.resize(slot + 1);
    NodeState& ns = state_[slot];
    ns.mark = ns.low = ++counter_;
    ns.on_stack = true;
    scc_stack_.push_back(index);
    ++stats_.objects_traced;
    ++stats_.object_visits;
    env_.OnSuspectMarked(ObjectId{site_, index});
    return ns;
  }

  void RunDfs(std::uint64_t root_index) {
    struct Frame {
      std::uint64_t index;
      std::size_t next_slot = 0;
      std::uint64_t child = 0;
      bool awaiting_child = false;
    };
    std::vector<Frame> frames;
    Visit(root_index);
    frames.push_back(Frame{root_index});

    while (!frames.empty()) {
      Frame& f = frames.back();
      // A child Visit may grow the dense array and move it, so re-find every
      // iteration and never hold this reference across the push below.
      NodeState& ns = StateOf(f.index);

      if (f.awaiting_child) {
        const NodeState& cs = StateOf(f.child);
        ns.outset = store_.Union(ns.outset, cs.outset);
        // Unconditional min is safe: a completed child component's lowlink
        // is its leader's mark, which is greater than any mark still on the
        // stack below it.
        ns.low = std::min(ns.low, cs.low);
        f.awaiting_child = false;
      }

      const Object& object = heap_.Get(ObjectId{site_, f.index});
      bool descended = false;
      while (f.next_slot < object.slots.size()) {
        const ObjectId z = object.slots[f.next_slot++];
        if (!z.valid()) continue;
        ++stats_.edges_scanned;
        if (z.site != site_) {
          // Remote reference: a suspected outref joins the outset; clean
          // outrefs are skipped ("if z is clean continue loop").
          if (!env_.OutrefIsClean(z)) ns.outset = store_.Add(ns.outset, z);
          continue;
        }
        if (env_.ObjectIsCleanMarked(z)) continue;  // black, never entered
        if (NodeState* zs = Find(z.index)) {
          if (zs->on_stack) {
            // Back edge into the current component: lowlink update only.
            // z is a DFS ancestor, so its outset will subsume ours when the
            // component's leader completes; no union needed here.
            ns.low = std::min(ns.low, zs->mark);
          } else {
            DGC_CHECK(zs->done);
            ns.outset = store_.Union(ns.outset, zs->outset);
          }
          continue;
        }
        // Tree edge: descend.
        Visit(z.index);
        f.child = z.index;
        f.awaiting_child = true;
        frames.push_back(Frame{z.index});
        descended = true;
        break;
      }
      if (descended) continue;

      // All slots scanned. If this node is its component's leader, pop the
      // component and give every member the leader's (complete) outset.
      if (ns.low == ns.mark) {
        for (;;) {
          const std::uint64_t member = scc_stack_.back();
          scc_stack_.pop_back();
          NodeState& ms = StateOf(member);
          ms.outset = ns.outset;
          ms.on_stack = false;
          ms.done = true;
          if (member == f.index) break;
        }
      }
      frames.pop_back();
    }
    DGC_CHECK(scc_stack_.empty());
  }

  const Heap& heap_;
  OutsetStore& store_;
  Env& env_;
  SiteId site_;
  std::vector<NodeState> state_;  // indexed by heap slot; mark==0 <=> absent
  std::vector<std::uint64_t> scc_stack_;
  std::uint32_t counter_ = 0;
  SuspectTraceStats stats_;
};

/// Section 5.1: the straightforward technique — an independent trace per
/// suspected inref, each with its own color. Used as the ablation baseline
/// for bench_backinfo_cost and as a cross-check oracle in property tests.
template <typename Env>
class IndependentOutsetTracer {
 public:
  IndependentOutsetTracer(const Heap& heap, Env& env)
      : heap_(heap), env_(env), site_(heap.site()) {}

  /// Returns the sorted set of suspected outrefs locally reachable from
  /// `root`. Marks every reached object suspect in the Env.
  std::vector<ObjectId> TraceFrom(ObjectId root) {
    DGC_CHECK(root.site == site_);
    std::set<ObjectId> outset;
    if (env_.ObjectIsCleanMarked(root)) return {};
    std::set<std::uint64_t> color;  // this trace's private mark color
    std::vector<std::uint64_t> stack{root.index};
    color.insert(root.index);
    while (!stack.empty()) {
      const std::uint64_t index = stack.back();
      stack.pop_back();
      ++stats_.object_visits;
      if (global_seen_.insert(index).second) {
        ++stats_.objects_traced;
        env_.OnSuspectMarked(ObjectId{site_, index});
      }
      const Object& object = heap_.Get(ObjectId{site_, index});
      for (const ObjectId z : object.slots) {
        if (!z.valid()) continue;
        ++stats_.edges_scanned;
        if (z.site != site_) {
          if (!env_.OutrefIsClean(z)) outset.insert(z);
          continue;
        }
        if (env_.ObjectIsCleanMarked(z)) continue;
        if (color.insert(z.index).second) stack.push_back(z.index);
      }
    }
    return {outset.begin(), outset.end()};
  }

  [[nodiscard]] const SuspectTraceStats& stats() const { return stats_; }

 private:
  const Heap& heap_;
  Env& env_;
  SiteId site_;
  std::set<std::uint64_t> global_seen_;
  SuspectTraceStats stats_;
};

}  // namespace dgc
