#include "backtrace/back_tracer.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace dgc {

BackTracer::BackTracer(SiteId site, RefTables& tables, Network& network,
                       Scheduler& scheduler,
                       std::function<const SiteBackInfo&()> back_info,
                       std::function<bool(ObjectId)> is_root_object)
    : site_(site),
      tables_(tables),
      network_(network),
      scheduler_(scheduler),
      back_info_(std::move(back_info)),
      is_root_object_(std::move(is_root_object)) {
  DGC_CHECK(back_info_ != nullptr);
  DGC_CHECK(is_root_object_ != nullptr);
}

std::size_t BackTracer::MaybeStartTraces() {
  if (!tables_.config().enable_back_tracing) return 0;
  // Collect candidates first: starting a trace touches no table state
  // synchronously (the first step arrives as a self-message), but iterate
  // defensively anyway.
  std::vector<ObjectId> candidates;
  for (const auto& [ref, entry] : tables_.outrefs()) {
    if (entry.clean()) continue;
    if (entry.distance == kDistanceInfinity) continue;
    if (entry.distance <= entry.back_threshold) continue;
    // Already being examined (by any trace, ours or a peer's): let that
    // trace finish rather than piling on (Section 4.7).
    if (!entry.visited.empty()) continue;
    candidates.push_back(ref);
  }
  // Also skip outrefs with a root frame already open (trace started, first
  // step not yet delivered).
  for (const auto& [id, frame] : frames_) {
    (void)id;
    if (frame.is_root) {
      candidates.erase(
          std::remove(candidates.begin(), candidates.end(), frame.start_outref),
          candidates.end());
    }
  }
  for (const ObjectId ref : candidates) StartTrace(ref);
  return candidates.size();
}

TraceId BackTracer::StartTrace(ObjectId outref_ref) {
  const TraceId trace{site_, next_trace_seq_++};
  ++stats_.traces_started;
  Frame& root = CreateFrame(trace, kNoFrame, IorefKind::kOutref, outref_ref);
  root.is_root = true;
  root.start_outref = outref_ref;
  root.started_at = scheduler_.now();
  root.pending = 1;
  DGC_LOG_DEBUG("site " << site_ << ": start " << trace << " from outref "
                        << outref_ref);
  network_.Send(site_, site_,
                BackLocalCallMsg{trace, outref_ref, FrameId{site_, root.id}});
  ArmTimeout(root.id, trace);
  return trace;
}

void BackTracer::HandleLocalCall(const Envelope& envelope,
                                 const BackLocalCallMsg& msg) {
  ++stats_.calls_handled;
  OutrefEntry* entry = tables_.FindOutref(msg.ref);
  if (entry == nullptr) {
    // The outref was deleted — the reference no longer exists, so this path
    // backwards is dead (Section 4.4).
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  if (entry->clean()) {
    Reply(msg.trace, msg.caller, BackResult::kLive, {site_});
    return;
  }
  if (entry->IsVisitedBy(msg.trace)) {
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  entry->MarkVisited(msg.trace);
  entry->back_threshold += tables_.config().back_threshold_increment;
  VisitRecord& record = visit_records_[msg.trace];
  record.outrefs.push_back(msg.ref);
  record.last_touched = scheduler_.now();

  const SiteBackInfo& info = back_info_();
  const auto inset_it = info.outref_insets.find(msg.ref);
  if (inset_it == info.outref_insets.end() || inset_it->second.empty()) {
    // No recorded local path from any inref: at the last trace this outref
    // was reachable from no suspected inref (and from no clean one, or it
    // would be clean). Backwards, the path ends here.
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  Frame& frame = CreateFrame(msg.trace, msg.caller, IorefKind::kOutref, msg.ref);
  frame.pending = static_cast<int>(inset_it->second.size());
  for (const ObjectId inref_obj : inset_it->second) {
    // Local steps stay on this site; sent as self-messages to keep every
    // step asynchronous (they are not inter-site traffic).
    network_.Send(site_, site_,
                  BackRemoteCallMsg{msg.trace, inref_obj,
                                    FrameId{site_, frame.id}});
  }
  ArmTimeout(frame.id, msg.trace);
  (void)envelope;
}

void BackTracer::HandleRemoteCall(const Envelope& envelope,
                                  const BackRemoteCallMsg& msg) {
  ++stats_.calls_handled;
  DGC_CHECK(msg.ref.site == site_);
  InrefEntry* entry = tables_.FindInref(msg.ref);
  if (entry == nullptr) {
    // Deleted inref: defensively treat a persistent-root object as live
    // (possible only under races; costs nothing).
    const BackResult result = is_root_object_(msg.ref) ? BackResult::kLive
                                                       : BackResult::kGarbage;
    Reply(msg.trace, msg.caller, result, {site_});
    return;
  }
  if (entry->garbage_flagged) {
    // Already condemned by a completed trace; equivalent to deleted.
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  if (is_root_object_(msg.ref) ||
      entry->clean(tables_.config().suspicion_threshold)) {
    Reply(msg.trace, msg.caller, BackResult::kLive, {site_});
    return;
  }
  if (entry->IsVisitedBy(msg.trace)) {
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  entry->MarkVisited(msg.trace);
  entry->back_threshold += tables_.config().back_threshold_increment;
  VisitRecord& record = visit_records_[msg.trace];
  record.inrefs.push_back(msg.ref);
  record.last_touched = scheduler_.now();

  if (entry->sources.empty()) {
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  Frame& frame = CreateFrame(msg.trace, msg.caller, IorefKind::kInref, msg.ref);
  frame.pending = static_cast<int>(entry->sources.size());
  for (const auto& [source, info] : entry->sources) {
    (void)info;
    // Remote step: one inter-site call per source holding the reference —
    // the "2" in the 2E + P message bound (Section 4.6).
    network_.Send(site_, source,
                  BackLocalCallMsg{msg.trace, msg.ref, FrameId{site_, frame.id}});
  }
  ArmTimeout(frame.id, msg.trace);
  (void)envelope;
}

void BackTracer::HandleReply(const BackReplyMsg& msg) {
  const auto it = frames_.find(msg.to.frame);
  if (it == frames_.end() || it->second.trace != msg.trace) {
    return;  // frame already completed (timeout) — stale reply
  }
  Frame& frame = it->second;
  frame.participants.insert(msg.participants.begin(), msg.participants.end());
  if (msg.result == BackResult::kLive) frame.result = BackResult::kLive;
  DGC_CHECK(frame.pending > 0);
  --frame.pending;
  // §4.4's early return: once any branch answers Live the frame's answer is
  // known; answer the caller now and keep the frame only to absorb the
  // remaining replies. Participants arriving after this are stranded (their
  // visited marks expire via report_timeout).
  if (tables_.config().short_circuit_live_replies &&
      frame.result == BackResult::kLive && !frame.replied) {
    FinalizeFrame(frame);
  }
  if (frame.pending == 0) CompleteFrame(frame);
}

void BackTracer::Reply(TraceId trace, FrameId to, BackResult result,
                       std::vector<SiteId> participants) {
  network_.Send(site_, to.site,
                BackReplyMsg{trace, to, result, std::move(participants)});
}

void BackTracer::CompleteFrame(Frame& frame) {
  if (!frame.replied) FinalizeFrame(frame);
  frames_.erase(frame.id);
}

void BackTracer::FinalizeFrame(Frame& frame) {
  DGC_CHECK(!frame.replied);
  frame.replied = true;
  frame.participants.insert(site_);
  if (frame.is_root) {
    const BackResult outcome = frame.result;
    DGC_LOG_DEBUG("site " << site_ << ": " << frame.trace << " completed "
                          << (outcome == BackResult::kGarbage ? "Garbage"
                                                              : "Live")
                          << " with " << frame.participants.size()
                          << " participants");
    if (outcome == BackResult::kGarbage) {
      ++stats_.traces_completed_garbage;
    } else {
      ++stats_.traces_completed_live;
    }
    // Report phase (Section 4.5): one message per participant, the P term of
    // the 2E + P bound. The initiator is a participant too; its report is a
    // self-delivery.
    for (const SiteId participant : frame.participants) {
      network_.Send(site_, participant, BackReportMsg{frame.trace, outcome});
    }
    if (outcome_observer_) {
      outcome_observer_(TraceOutcome{frame.trace, frame.start_outref, outcome,
                                     frame.started_at, scheduler_.now(),
                                     frame.participants.size()});
    }
  } else {
    Reply(frame.trace, frame.parent, frame.result,
          {frame.participants.begin(), frame.participants.end()});
  }
}

BackTracer::Frame& BackTracer::CreateFrame(TraceId trace, FrameId parent,
                                           IorefKind kind, ObjectId ioref) {
  const std::uint64_t id = next_frame_++;
  Frame frame;
  frame.id = id;
  frame.trace = trace;
  frame.parent = parent;
  frame.kind = kind;
  frame.ioref = ioref;
  ++stats_.frames_created;
  return frames_.emplace(id, std::move(frame)).first->second;
}

void BackTracer::ArmTimeout(std::uint64_t frame_id, TraceId trace) {
  const SimTime timeout = tables_.config().back_call_timeout;
  if (timeout <= 0) return;
  scheduler_.After(timeout, [this, frame_id, trace] {
    const auto it = frames_.find(frame_id);
    if (it == frames_.end() || it->second.trace != trace) return;
    Frame& frame = it->second;
    if (frame.pending <= 0) return;
    // A missing reply is safely assumed Live (Section 4.6).
    ++stats_.timeouts;
    frame.result = BackResult::kLive;
    frame.pending = 0;
    CompleteFrame(frame);
  });
}

void BackTracer::OnIorefCleaned(IorefKind kind, ObjectId ref) {
  for (auto& [id, frame] : frames_) {
    (void)id;
    if (frame.kind == kind && frame.ioref == ref &&
        frame.result != BackResult::kLive) {
      frame.result = BackResult::kLive;
      ++stats_.clean_rule_hits;
      DGC_LOG_DEBUG("site " << site_ << ": clean rule forces " << frame.trace
                            << " Live at "
                            << (kind == IorefKind::kInref ? "inref " : "outref ")
                            << ref);
      if (tables_.config().short_circuit_live_replies && !frame.replied) {
        FinalizeFrame(frame);  // answer known; propagate it promptly
      }
    }
  }
}

void BackTracer::HandleReport(const BackReportMsg& msg) {
  const auto it = visit_records_.find(msg.trace);
  if (it == visit_records_.end()) return;
  const VisitRecord& record = it->second;
  if (msg.outcome == BackResult::kGarbage) {
    for (const ObjectId inref_obj : record.inrefs) {
      if (InrefEntry* entry = tables_.FindInref(inref_obj)) {
        if (!entry->garbage_flagged) {
          entry->garbage_flagged = true;
          ++stats_.inrefs_flagged;
        }
      }
    }
  }
  ClearRecordMarks(record, msg.trace);
  visit_records_.erase(it);
}

void BackTracer::ExpireStaleRecords() {
  const SimTime timeout = tables_.config().report_timeout;
  if (timeout <= 0) return;
  const SimTime now = scheduler_.now();
  for (auto it = visit_records_.begin(); it != visit_records_.end();) {
    if (now - it->second.last_touched >= timeout) {
      // Assume the outcome was Live (Section 4.6): just clear the marks.
      ClearRecordMarks(it->second, it->first);
      ++stats_.records_expired;
      it = visit_records_.erase(it);
    } else {
      ++it;
    }
  }
}

void BackTracer::DropVolatileState() {
  frames_.clear();
  for (const auto& [trace, record] : visit_records_) {
    ClearRecordMarks(record, trace);
  }
  visit_records_.clear();
}

void BackTracer::ClearRecordMarks(const VisitRecord& record, TraceId trace) {
  for (const ObjectId inref_obj : record.inrefs) {
    if (InrefEntry* entry = tables_.FindInref(inref_obj)) {
      entry->ClearVisited(trace);
    }
  }
  for (const ObjectId outref : record.outrefs) {
    if (OutrefEntry* entry = tables_.FindOutref(outref)) {
      entry->ClearVisited(trace);
    }
  }
}

}  // namespace dgc
