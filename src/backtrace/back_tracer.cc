#include "backtrace/back_tracer.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/distance.h"
#include "common/logging.h"

namespace dgc {

BackTracer::BackTracer(SiteId site, RefTables& tables, Transport& transport,
                       Scheduler& scheduler,
                       std::function<const SiteBackInfo&()> back_info,
                       std::function<bool(ObjectId)> is_root_object)
    : site_(site),
      tables_(tables),
      transport_(transport),
      scheduler_(scheduler),
      back_info_(std::move(back_info)),
      is_root_object_(std::move(is_root_object)) {
  DGC_CHECK(back_info_ != nullptr);
  DGC_CHECK(is_root_object_ != nullptr);
}

std::size_t BackTracer::MaybeStartTraces() {
  if (!tables_.config().enable_back_tracing) return 0;
  const bool use_cache = tables_.config().enable_verdict_cache;
  // Collect candidates first: starting a trace touches no table state
  // synchronously (the first step arrives as a self-message), but iterate
  // defensively anyway.
  std::vector<ObjectId> candidates;
  for (const auto& [ref, entry] : tables_.outrefs()) {
    if (entry.clean()) continue;
    if (entry.distance == kDistanceInfinity) continue;
    if (entry.distance <= entry.back_threshold) continue;
    // Already being examined (by any trace, ours or a peer's): let that
    // trace finish rather than piling on (Section 4.7).
    if (!entry.visited.empty()) continue;
    // A completed trace already settled this suspect recently: a Garbage
    // verdict means its inrefs are flagged and the next local traces will
    // reclaim the cycle; a Live verdict means a fresh trace would answer
    // Live again. Either way a restart is redundant until the cache entry
    // ages out (at most one local-trace round).
    if (use_cache) {
      const auto verdict = verdict_cache_.Lookup(IorefKind::kOutref, ref);
      if (verdict.has_value()) {
        ++stats_.cache_hits;
        ++stats_.trace_starts_skipped;
        continue;
      }
      ++stats_.cache_misses;
    }
    candidates.push_back(ref);
  }
  // Also skip outrefs with a root frame already open (trace started, first
  // step not yet delivered).
  frames_.ForEach([&candidates](Frame& frame) {
    if (frame.is_root) {
      candidates.erase(
          std::remove(candidates.begin(), candidates.end(), frame.start_outref),
          candidates.end());
    }
  });
  for (const ObjectId ref : candidates) StartTrace(ref);
  return candidates.size();
}

TraceId BackTracer::StartTrace(ObjectId outref_ref) {
  const TraceId trace{site_, next_trace_seq_++};
  ++stats_.traces_started;
  Frame& root = CreateFrame(trace, kNoFrame, IorefKind::kOutref, outref_ref);
  root.is_root = true;
  root.start_outref = outref_ref;
  root.started_at = scheduler_.now();
  root.pending = 1;
  DGC_LOG_DEBUG("site " << site_ << ": start " << trace << " from outref "
                        << outref_ref);
  transport_.Send(site_, site_,
                BackLocalCallMsg{trace, outref_ref, FrameId{site_, root.id}});
  ArmTimeout(root.id, trace);
  return trace;
}

void BackTracer::HandleLocalCall(const Envelope& envelope,
                                 const BackLocalCallMsg& msg) {
  ++stats_.calls_handled;
  OutrefEntry* entry = tables_.FindOutref(msg.ref);
  if (entry == nullptr) {
    // The outref was deleted — the reference no longer exists, so this path
    // backwards is dead (Section 4.4).
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  if (entry->clean()) {
    Reply(msg.trace, msg.caller, BackResult::kLive, {site_});
    return;
  }
  if (entry->IsVisitedBy(msg.trace)) {
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  if (TryCoalesce(entry->visited, msg.trace, msg.caller, IorefKind::kOutref,
                  msg.ref)) {
    return;
  }
  entry->MarkVisited(msg.trace);
  entry->back_threshold =
      AddDistance(entry->back_threshold, tables_.config().back_threshold_increment);
  VisitRecord& record = TouchRecord(msg.trace);
  record.outrefs.push_back(msg.ref);
  record.last_touched = scheduler_.now();

  const SiteBackInfo& info = back_info_();
  const auto inset_it = info.outref_insets.find(msg.ref);
  if (inset_it == info.outref_insets.end() || inset_it->second.empty()) {
    // No recorded local path from any inref: at the last trace this outref
    // was reachable from no suspected inref (and from no clean one, or it
    // would be clean). Backwards, the path ends here.
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  Frame& frame = CreateFrame(msg.trace, msg.caller, IorefKind::kOutref, msg.ref);
  frame.pending = static_cast<int>(inset_it->second.size());
  for (const ObjectId inref_obj : inset_it->second) {
    // Local steps stay on this site; sent as self-messages to keep every
    // step asynchronous (they are not inter-site traffic).
    transport_.Send(site_, site_,
                  BackRemoteCallMsg{msg.trace, inref_obj,
                                    FrameId{site_, frame.id}});
  }
  ArmTimeout(frame.id, msg.trace);
  (void)envelope;
}

void BackTracer::HandleRemoteCall(const Envelope& envelope,
                                  const BackRemoteCallMsg& msg) {
  ++stats_.calls_handled;
  DGC_CHECK(msg.ref.site == site_);
  InrefEntry* entry = tables_.FindInref(msg.ref);
  if (entry == nullptr) {
    // Deleted inref: defensively treat a persistent-root object as live
    // (possible only under races; costs nothing).
    const BackResult result = is_root_object_(msg.ref) ? BackResult::kLive
                                                       : BackResult::kGarbage;
    Reply(msg.trace, msg.caller, result, {site_});
    return;
  }
  if (entry->garbage_flagged) {
    // Already condemned by a completed trace; equivalent to deleted.
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  if (is_root_object_(msg.ref) ||
      entry->clean(tables_.config().suspicion_threshold)) {
    Reply(msg.trace, msg.caller, BackResult::kLive, {site_});
    return;
  }
  if (entry->IsVisitedBy(msg.trace)) {
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  if (TryCoalesce(entry->visited, msg.trace, msg.caller, IorefKind::kInref,
                  msg.ref)) {
    return;
  }
  entry->MarkVisited(msg.trace);
  entry->back_threshold =
      AddDistance(entry->back_threshold, tables_.config().back_threshold_increment);
  VisitRecord& record = TouchRecord(msg.trace);
  record.inrefs.push_back(msg.ref);
  record.last_touched = scheduler_.now();

  if (entry->sources.empty()) {
    Reply(msg.trace, msg.caller, BackResult::kGarbage, {site_});
    return;
  }
  Frame& frame = CreateFrame(msg.trace, msg.caller, IorefKind::kInref, msg.ref);
  frame.pending = static_cast<int>(entry->sources.size());
  const bool batch = tables_.config().batch_back_calls;
  for (const auto& [source, info] : entry->sources) {
    (void)info;
    // Remote step: one inter-site call per source holding the reference —
    // the "2" in the 2E + P message bound (Section 4.6).
    const BackLocalCallMsg call{msg.trace, msg.ref, FrameId{site_, frame.id}};
    if (source != site_ && ShouldPark(source)) {
      ParkCall(source, call, frame);
    } else if (batch && source != site_) {
      QueueBackCall(source, call);
    } else {
      transport_.Send(site_, source, call);
    }
  }
  ArmTimeout(frame.id, msg.trace);
  (void)envelope;
}

bool BackTracer::ShouldPark(SiteId dest) const {
  return tables_.config().park_on_suspected_failure &&
         transport_.failure_detection_enabled() &&
         transport_.IsPeerSuspected(site_, dest);
}

void BackTracer::ParkCall(SiteId dest, const BackLocalCallMsg& call,
                          Frame& frame) {
  parked_calls_[dest].push_back(ParkedCall{call, frame.id});
  ++frame.parked;
  ++stats_.calls_parked;
  DGC_LOG_DEBUG("site " << site_ << ": " << call.trace
                        << " parks remote step to suspected site " << dest);
}

void BackTracer::OnPeerRecovered(SiteId peer) {
  const auto it = parked_calls_.find(peer);
  if (it == parked_calls_.end()) return;
  std::vector<ParkedCall> resumed = std::move(it->second);
  parked_calls_.erase(it);
  const bool batch = tables_.config().batch_back_calls;
  for (const ParkedCall& parked : resumed) {
    Frame* frame = frames_.Find(parked.frame_id);
    if (frame == nullptr || frame->trace != parked.call.trace) {
      // The frame died while its child was parked (crash-restart dropped
      // the volatile state, or a concurrent clean-rule answer completed
      // it); the resumed step has no caller left to answer.
      continue;
    }
    DGC_CHECK(frame->parked > 0);
    --frame->parked;
    ++stats_.calls_unparked;
    if (batch) {
      QueueBackCall(peer, parked.call);
    } else {
      transport_.Send(site_, peer, parked.call);
    }
    if (frame->parked == 0 && frame->timeout_deferred) {
      frame->timeout_deferred = false;
      ArmTimeout(frame->id, frame->trace);
    }
  }
}

void BackTracer::OnPeerRestarted(SiteId peer) {
  if (peer == site_) return;
  const auto dead = [peer](TraceId trace) { return trace.initiator == peer; };
  // Frames of the peer's traces first: every reply they could produce climbs
  // toward an activation frame that died with the old incarnation (anything
  // still in flight is discarded by stale-incarnation fencing). Erasing
  // without finalizing is deliberate — there is no live caller to answer.
  std::vector<std::uint64_t> dead_frames;
  frames_.ForEach([&](Frame& frame) {
    if (dead(frame.trace)) dead_frames.push_back(frame.id);
  });
  for (const std::uint64_t id : dead_frames) frames_.Erase(id);
  // Queued and parked steps of those traces must not be dispatched: landing
  // on a live site they would re-mark iorefs visited for a trace that can
  // never report, recreating exactly the wedge being scrubbed. (Parked
  // calls of *live* traces are untouched; OnPeerRecovered resumes them.)
  for (auto& [dest, calls] : pending_calls_) {
    std::erase_if(calls, [&](const BackLocalCallMsg& c) { return dead(c.trace); });
  }
  for (auto& [dest, calls] : parked_calls_) {
    std::erase_if(calls, [&](const ParkedCall& p) { return dead(p.call.trace); });
  }
  // Scrub the visit records. Waiters coalesced onto a dead trace's record
  // are resolved Live (safe; re-dispatch lets their traces traverse the
  // region themselves now that the marks clear). Waiters that *belong* to a
  // dead trace are dropped everywhere first, so no resolution below can
  // requeue a call on the dead trace's behalf.
  for (auto& [trace, record] : visit_records_) {
    (void)trace;
    std::erase_if(record.waiters,
                  [&](const Waiter& w) { return dead(w.trace); });
  }
  for (std::size_t i = 0; i < visit_records_.size();) {
    if (dead(visit_records_[i].first)) {
      VisitRecord& record = visit_records_[i].second;
      ResolveWaiters(record, BackResult::kLive);
      ClearRecordMarks(record, visit_records_[i].first);
      ++stats_.records_scrubbed;
      visit_records_[i] = std::move(visit_records_.back());
      visit_records_.pop_back();
    } else {
      ++i;
    }
  }
}

void BackTracer::HandleCallBatch(const Envelope& envelope,
                                 const BackCallBatchMsg& msg) {
  for (const BackLocalCallMsg& call : msg.calls) {
    HandleLocalCall(envelope, call);
  }
}

void BackTracer::QueueBackCall(SiteId dest, const BackLocalCallMsg& call) {
  pending_calls_[dest].push_back(call);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    // Flush at the current instant but after every already-queued handler at
    // this timestamp has run (the scheduler is FIFO at equal times), so all
    // sibling fan-outs of this instant land in the same batch.
    scheduler_.After(0, [this] { FlushPendingCalls(); });
  }
}

void BackTracer::FlushPendingCalls() {
  flush_scheduled_ = false;
  std::map<SiteId, std::vector<BackLocalCallMsg>> pending;
  pending.swap(pending_calls_);
  for (auto& [dest, calls] : pending) {
    if (calls.size() == 1) {
      // A lone call ships as the plain message: the batch framing buys
      // nothing and the per-trace message counts of §4.6 stay exact.
      transport_.Send(site_, dest, calls.front());
    } else {
      stats_.calls_batched += calls.size();
      ++stats_.call_batches_sent;
      transport_.Send(site_, dest, BackCallBatchMsg{std::move(calls)});
    }
  }
}

void BackTracer::HandleReply(const BackReplyMsg& msg) {
  Frame* found = frames_.Find(msg.to.frame);
  if (found == nullptr || found->trace != msg.trace) {
    return;  // frame already completed (timeout) — stale reply
  }
  Frame& frame = *found;
  for (const SiteId participant : msg.participants) {
    AddParticipant(frame, participant);
  }
  if (msg.result == BackResult::kLive) frame.result = BackResult::kLive;
  DGC_CHECK(frame.pending > 0);
  --frame.pending;
  // §4.4's early return: once any branch answers Live the frame's answer is
  // known; answer the caller now and keep the frame only to absorb the
  // remaining replies. Participants arriving after this are stranded (their
  // visited marks expire via report_timeout).
  if (tables_.config().short_circuit_live_replies &&
      frame.result == BackResult::kLive && !frame.replied) {
    FinalizeFrame(frame);
  }
  if (frame.pending == 0) CompleteFrame(frame);
}

void BackTracer::Reply(TraceId trace, FrameId to, BackResult result,
                       std::vector<SiteId> participants) {
  transport_.Send(site_, to.site,
                BackReplyMsg{trace, to, result, std::move(participants)});
}

void BackTracer::CompleteFrame(Frame& frame) {
  if (!frame.replied) FinalizeFrame(frame);
  frames_.Erase(frame.id);
}

void BackTracer::FinalizeFrame(Frame& frame) {
  DGC_CHECK(!frame.replied);
  frame.replied = true;
  AddParticipant(frame, site_);
  if (frame.is_root) {
    const BackResult outcome = frame.result;
    DGC_LOG_DEBUG("site " << site_ << ": " << frame.trace << " completed "
                          << (outcome == BackResult::kGarbage ? "Garbage"
                                                              : "Live")
                          << " with " << frame.participants.size()
                          << " participants");
    if (outcome == BackResult::kGarbage) {
      ++stats_.traces_completed_garbage;
    } else {
      ++stats_.traces_completed_live;
    }
    // Report phase (Section 4.5): one message per participant, the P term of
    // the 2E + P bound. The initiator is a participant too; its report is a
    // self-delivery.
    for (const SiteId participant : frame.participants) {
      transport_.Send(site_, participant, BackReportMsg{frame.trace, outcome});
    }
    if (outcome_observer_) {
      outcome_observer_(TraceOutcome{frame.trace, frame.start_outref, outcome,
                                     frame.started_at, scheduler_.now(),
                                     frame.participants.size()});
    }
  } else {
    Reply(frame.trace, frame.parent, frame.result, frame.participants);
  }
}

BackTracer::Frame& BackTracer::CreateFrame(TraceId trace, FrameId parent,
                                           IorefKind kind, ObjectId ioref) {
  Frame frame;
  frame.trace = trace;
  frame.parent = parent;
  frame.kind = kind;
  frame.ioref = ioref;
  ++stats_.frames_created;
  const std::uint64_t id = frames_.Insert(std::move(frame));
  Frame* stored = frames_.Find(id);
  stored->id = id;
  return *stored;
}

void BackTracer::AddParticipant(Frame& frame, SiteId s) {
  const auto it =
      std::lower_bound(frame.participants.begin(), frame.participants.end(), s);
  if (it == frame.participants.end() || *it != s) {
    frame.participants.insert(it, s);
  }
}

void BackTracer::ArmTimeout(std::uint64_t frame_id, TraceId trace) {
  const SimTime timeout = tables_.config().back_call_timeout;
  if (timeout <= 0) return;
  scheduler_.After(timeout, [this, frame_id, trace] {
    Frame* found = frames_.Find(frame_id);
    if (found == nullptr || found->trace != trace) return;
    Frame& frame = *found;
    if (frame.pending <= 0) return;
    if (frame.parked > 0) {
      // Children are parked on a suspected peer: the silence is explained
      // by the outage, not by a lost reply, so assuming Live now would
      // manufacture exactly the spurious verdict parking exists to avoid.
      // OnPeerRecovered arms a fresh timeout when the calls resume. (Not
      // re-armed here: a perpetual re-check chain would keep the
      // drain-to-idle scheduler from ever going idle.)
      frame.timeout_deferred = true;
      return;
    }
    // A missing reply is safely assumed Live (Section 4.6).
    ++stats_.timeouts;
    frame.result = BackResult::kLive;
    frame.pending = 0;
    CompleteFrame(frame);
  });
}

void BackTracer::OnIorefCleaned(IorefKind kind, ObjectId ref) {
  verdict_cache_.OnIorefCleaned(kind, ref);
  frames_.ForEach([&](Frame& frame) {
    if (frame.kind == kind && frame.ioref == ref &&
        frame.result != BackResult::kLive) {
      frame.result = BackResult::kLive;
      ++stats_.clean_rule_hits;
      DGC_LOG_DEBUG("site " << site_ << ": clean rule forces " << frame.trace
                            << " Live at "
                            << (kind == IorefKind::kInref ? "inref " : "outref ")
                            << ref);
      if (tables_.config().short_circuit_live_replies && !frame.replied) {
        FinalizeFrame(frame);  // answer known; propagate it promptly
      }
    }
  });
}

void BackTracer::OnLocalTraceApplied(std::uint64_t epoch) {
  verdict_cache_.OnLocalTraceApplied(epoch);
}

void BackTracer::HandleReport(const BackReportMsg& msg) {
  for (std::size_t i = 0; i < visit_records_.size(); ++i) {
    if (visit_records_[i].first != msg.trace) continue;
    VisitRecord& record = visit_records_[i].second;
    // Calls that coalesced onto this trace inherit its verdict: a Garbage
    // closure is rootless for every backward path through it (the trace
    // fanned out fully from each visited ioref), and Live is always safe.
    ResolveWaiters(record, msg.outcome);
    if (tables_.config().enable_verdict_cache) {
      for (const ObjectId inref_obj : record.inrefs) {
        verdict_cache_.Record(IorefKind::kInref, inref_obj, msg.outcome);
      }
      for (const ObjectId outref : record.outrefs) {
        verdict_cache_.Record(IorefKind::kOutref, outref, msg.outcome);
      }
      stats_.verdicts_recorded += record.inrefs.size() + record.outrefs.size();
    }
    if (msg.outcome == BackResult::kGarbage) {
      for (const ObjectId inref_obj : record.inrefs) {
        if (InrefEntry* entry = tables_.FindInref(inref_obj)) {
          if (!entry->garbage_flagged) {
            entry->garbage_flagged = true;
            ++stats_.inrefs_flagged;
          }
        }
      }
    }
    ClearRecordMarks(record, msg.trace);
    visit_records_[i] = std::move(visit_records_.back());
    visit_records_.pop_back();
    return;
  }
}

void BackTracer::ExpireStaleRecords() {
  const SimTime timeout = tables_.config().report_timeout;
  if (timeout <= 0) return;
  const SimTime now = scheduler_.now();
  for (std::size_t i = 0; i < visit_records_.size();) {
    VisitRecord& record = visit_records_[i].second;
    if (now - record.last_touched >= timeout) {
      // Assume the outcome was Live (Section 4.6): clear the marks and
      // answer any parked calls Live (always safe).
      ResolveWaiters(record, BackResult::kLive);
      ClearRecordMarks(record, visit_records_[i].first);
      ++stats_.records_expired;
      visit_records_[i] = std::move(visit_records_.back());
      visit_records_.pop_back();
    } else {
      ++i;
    }
  }
}

void BackTracer::DropVolatileState() {
  frames_.Clear();
  for (const auto& [trace, record] : visit_records_) {
    ClearRecordMarks(record, trace);
  }
  visit_records_.clear();
  pending_calls_.clear();
  parked_calls_.clear();
  verdict_cache_.Clear();
}

void BackTracer::ClearRecordMarks(const VisitRecord& record, TraceId trace) {
  for (const ObjectId inref_obj : record.inrefs) {
    if (InrefEntry* entry = tables_.FindInref(inref_obj)) {
      entry->ClearVisited(trace);
    }
  }
  for (const ObjectId outref : record.outrefs) {
    if (OutrefEntry* entry = tables_.FindOutref(outref)) {
      entry->ClearVisited(trace);
    }
  }
}

BackTracer::VisitRecord* BackTracer::FindRecord(TraceId trace) {
  for (auto& [t, record] : visit_records_) {
    if (t == trace) return &record;
  }
  return nullptr;
}

BackTracer::VisitRecord& BackTracer::TouchRecord(TraceId trace) {
  if (VisitRecord* record = FindRecord(trace)) return *record;
  visit_records_.emplace_back(trace, VisitRecord{});
  return visit_records_.back().second;
}

bool BackTracer::TryCoalesce(const std::vector<TraceId>& visited,
                             TraceId trace, FrameId caller, IorefKind kind,
                             ObjectId ref) {
  if (!tables_.config().coalesce_traces || visited.empty()) return false;
  // Defer only to a *senior* trace (smaller TraceId): juniors wait for
  // seniors, never the reverse, so waiting chains are acyclic. Pick the most
  // senior in case several cover this ioref.
  const TraceId* senior = nullptr;
  for (const TraceId& t : visited) {
    if (t < trace && (senior == nullptr || t < *senior)) senior = &t;
  }
  if (senior == nullptr) return false;
  // A visited mark is always paired with a live visit record on this site
  // (marks are cleared whenever the record is dropped); check defensively
  // and traverse normally if the pairing is ever broken. Never park on a
  // record already known to be stranded.
  VisitRecord* record = FindRecord(*senior);
  if (record == nullptr || record->stranded) return false;
  record->waiters.push_back(Waiter{trace, caller, kind, ref});
  record->last_touched = scheduler_.now();
  ++stats_.branches_coalesced;
  DGC_LOG_DEBUG("site " << site_ << ": " << trace << " coalesced onto "
                        << *senior);
  // Bound the wait: if the covering trace's report has not resolved this
  // waiter within half a call timeout, assume the record is stranded (its
  // report may never come), stop coalescing onto it, and re-dispatch the
  // call so the waiting trace makes progress before its own caller times
  // out. Without this bound, one stranded record poisons every later trace
  // through the shared region into timing out, round after round.
  const SimTime call_timeout = tables_.config().back_call_timeout;
  if (call_timeout > 0) {
    scheduler_.After(std::max<SimTime>(1, call_timeout / 2),
                     [this, covering = *senior, trace, caller] {
                       VisitRecord* rec = FindRecord(covering);
                       if (rec == nullptr) return;
                       for (std::size_t i = 0; i < rec->waiters.size(); ++i) {
                         const Waiter& w = rec->waiters[i];
                         if (w.trace != trace || w.caller != caller) continue;
                         const Waiter expired = w;
                         rec->waiters.erase(rec->waiters.begin() + i);
                         rec->stranded = true;
                         RequeueWaiter(expired);
                         return;
                       }
                     });
  }
  return true;
}

void BackTracer::ResolveWaiters(VisitRecord& record, BackResult outcome) {
  for (const Waiter& waiter : record.waiters) {
    if (outcome == BackResult::kGarbage) {
      // The covering trace proved its visited closure rootless; every
      // backward path from the shared ioref lies inside it. Inherit.
      Reply(waiter.trace, waiter.caller, outcome, {site_});
      ++stats_.waiters_resolved;
    } else {
      // Live proves nothing about the waiter's region (some other branch of
      // the covering trace found a root). Re-dispatch the deferred call: it
      // is handled after the caller clears the covering trace's marks, so
      // the waiting trace traverses the region itself instead of inheriting
      // a verdict that could starve a garbage cycle forever.
      RequeueWaiter(waiter);
    }
  }
  record.waiters.clear();
}

void BackTracer::RequeueWaiter(const Waiter& waiter) {
  if (waiter.kind == IorefKind::kOutref) {
    transport_.Send(site_, site_,
                  BackLocalCallMsg{waiter.trace, waiter.ref, waiter.caller});
  } else {
    transport_.Send(site_, site_,
                  BackRemoteCallMsg{waiter.trace, waiter.ref, waiter.caller});
  }
  ++stats_.waiters_requeued;
}

}  // namespace dgc
