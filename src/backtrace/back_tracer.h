// The back-tracing engine (Section 4) — the paper's primary contribution.
//
// A back trace checks whether a suspected object is reachable from any root
// by tracing the reference graph *backwards*, leaping between iorefs:
//
//   * a local step goes from an outref to the inrefs in its inset (computed
//     by the local trace, Section 5); it stays on one site;
//   * a remote step goes from an inref to the corresponding outrefs on its
//     source sites; it crosses sites.
//
// Both steps are asynchronous calls carried as messages; an activation frame
// per call holds the return address, a pending count and the accumulated
// result, exactly as Section 4.4 describes. Reaching a clean ioref answers
// Live; a trace that closes over only suspected iorefs answers Garbage, and
// the report phase (Section 4.5) flags every visited inref so the next local
// traces reclaim the cycle.
//
// One deliberate deviation from the paper's pseudocode: a frame replies only
// after all its children reply, rather than short-circuiting on the first
// Live. Short-circuiting with parallel branches can strand participants
// outside the initiator's participant set, leaking visited marks; waiting
// costs latency only — the message count (2E + P, Section 4.6) is identical.
// Stranded marks from lost messages are still reclaimed via report_timeout.
//
// Three optimizations share the traces' work (all individually gated in
// Config, all preserving the verdicts the seed engine computes):
//
//   * trace coalescing: a call that lands on an ioref already visited by a
//     *senior* concurrent trace (smaller TraceId) does not re-traverse the
//     shared region — it parks as a waiter on the senior trace's visit
//     record and is answered with the senior's verdict when its report
//     arrives (Live if the record expires instead). Juniors defer only to
//     seniors, so waiting chains are acyclic and cannot deadlock;
//   * verdict caching: report-phase outcomes are remembered per ioref in a
//     VerdictCache so the trigger scan skips suspects a completed trace
//     already settled this round (see verdict_cache.h for the invalidation
//     rules);
//   * call batching: inter-site back calls issued in one simulated instant
//     to the same destination ride a single BackCallBatchMsg.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "backinfo/site_back_info.h"
#include "backtrace/slab_table.h"
#include "backtrace/verdict_cache.h"
#include "common/config.h"
#include "common/ids.h"
#include "net/transport.h"
#include "refs/tables.h"
#include "sim/scheduler.h"

namespace dgc {

struct BackTracerStats {
  std::uint64_t traces_started = 0;
  std::uint64_t traces_completed_garbage = 0;
  std::uint64_t traces_completed_live = 0;
  std::uint64_t frames_created = 0;
  std::uint64_t calls_handled = 0;
  std::uint64_t clean_rule_hits = 0;  // frames forced Live by the clean rule
  std::uint64_t timeouts = 0;
  std::uint64_t inrefs_flagged = 0;
  std::uint64_t records_expired = 0;
  /// Visit records scrubbed because their trace's initiator restarted (the
  /// report can never arrive; waiting out report_timeout would be dead time).
  std::uint64_t records_scrubbed = 0;
  // Verdict cache (mirrors VerdictCache::Stats for aggregation/benches).
  std::uint64_t verdicts_recorded = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t trace_starts_skipped = 0;  // trigger scans satisfied by cache
  // Trace coalescing.
  std::uint64_t branches_coalesced = 0;  // calls parked on a senior trace
  std::uint64_t waiters_resolved = 0;    // parked calls answered Garbage
  std::uint64_t waiters_requeued = 0;    // parked calls re-dispatched on Live
  // Call batching.
  std::uint64_t calls_batched = 0;  // back calls that rode a multi-call batch
  std::uint64_t call_batches_sent = 0;
  // Failure-detector parking (zero unless the detector is enabled).
  std::uint64_t calls_parked = 0;    // remote steps held for a suspect peer
  std::uint64_t calls_unparked = 0;  // parked calls resumed on heal
};

/// Outcome of a completed back trace, delivered to the initiator's observer.
struct TraceOutcome {
  TraceId trace;
  ObjectId start_outref;
  BackResult result = BackResult::kGarbage;
  SimTime started_at = 0;
  SimTime completed_at = 0;
  std::size_t participants = 0;
};

class BackTracer {
 public:
  /// `back_info` yields the site's *current* back information (the old copy
  /// while a local trace is in flight, per Section 6.2). `is_root_object`
  /// answers whether a local object is a persistent or application root.
  BackTracer(SiteId site, RefTables& tables, Transport& transport,
             Scheduler& scheduler,
             std::function<const SiteBackInfo&()> back_info,
             std::function<bool(ObjectId)> is_root_object);

  BackTracer(const BackTracer&) = delete;
  BackTracer& operator=(const BackTracer&) = delete;

  /// Scans suspected outrefs and starts a back trace from each whose
  /// estimated distance exceeds its back threshold (Section 4.3). Called by
  /// the site after applying a local trace. Returns the number started.
  std::size_t MaybeStartTraces();

  /// Unconditionally starts a back trace from the given suspected outref.
  TraceId StartTrace(ObjectId outref_ref);

  // Message handlers, dispatched by the owning site.
  void HandleLocalCall(const Envelope& envelope, const BackLocalCallMsg& msg);
  void HandleRemoteCall(const Envelope& envelope, const BackRemoteCallMsg& msg);
  void HandleCallBatch(const Envelope& envelope, const BackCallBatchMsg& msg);
  void HandleReply(const BackReplyMsg& msg);
  void HandleReport(const BackReportMsg& msg);

  /// The clean rule (Section 6.4): an ioref was just cleaned; every trace
  /// with a call active on it must answer Live. Also evicts the ioref's
  /// cached verdict — it just proved reachable.
  void OnIorefCleaned(IorefKind kind, ObjectId ref);

  /// A local trace's result was applied: advances the verdict cache's epoch
  /// (entries age out after surviving one apply; see verdict_cache.h).
  void OnLocalTraceApplied(std::uint64_t epoch);

  /// The failure detector reports `peer` healed: re-dispatches every back
  /// call parked on it (for frames still alive) and re-arms the call
  /// timeouts that were deferred while the frames had parked children.
  void OnPeerRecovered(SiteId peer);

  /// The peer came back as a *new incarnation*: every activation frame its
  /// old process owned is gone for certain, so no trace it initiated can
  /// ever finish or report. Drops this site's frames, parked/batched calls
  /// and visit records belonging to those traces (resolving coalesced
  /// waiters Live — always safe, Section 4.6) so the suspects their visited
  /// marks cover become traceable again immediately instead of after
  /// report_timeout. Called before OnPeerRecovered when the failure
  /// detector (or the socket coordinator's restart handshake) reports the
  /// heal was a replacement process.
  void OnPeerRestarted(SiteId peer);

  /// Expires visit records whose trace outcome never arrived (crashed
  /// initiator / lost report), assuming Live per Section 4.6.
  void ExpireStaleRecords();

  /// Models a crash-restart of the hosting site: activation frames, the
  /// per-trace visit records, queued outbound calls and the verdict cache
  /// are volatile and vanish (visited marks on the persistent iorefs are
  /// cleared — equivalent to recovery-time scrubbing); peers waiting on this
  /// site's replies recover via their call timeouts, which safely assume
  /// Live (Section 4.6).
  void DropVolatileState();

  /// Observer invoked on completion of traces this site initiated.
  void set_outcome_observer(std::function<void(const TraceOutcome&)> observer) {
    outcome_observer_ = std::move(observer);
  }

  [[nodiscard]] const BackTracerStats& stats() const { return stats_; }
  [[nodiscard]] const VerdictCache& verdict_cache() const {
    return verdict_cache_;
  }
  [[nodiscard]] std::size_t active_frames() const { return frames_.size(); }
  [[nodiscard]] bool idle() const { return frames_.empty(); }
  /// Visit records currently held (traces whose report has not arrived).
  [[nodiscard]] std::size_t visit_record_count() const {
    return visit_records_.size();
  }
  /// Back calls currently parked on suspected peers.
  [[nodiscard]] std::size_t parked_call_count() const {
    std::size_t total = 0;
    for (const auto& [peer, calls] : parked_calls_) total += calls.size();
    return total;
  }

 private:
  struct Frame {
    std::uint64_t id = 0;
    TraceId trace;
    FrameId parent;  // kNoFrame for the trace's root frame
    IorefKind kind = IorefKind::kOutref;
    ObjectId ioref;
    int pending = 0;
    BackResult result = BackResult::kGarbage;
    std::vector<SiteId> participants;  // sorted, unique
    bool is_root = false;
    /// Set once the frame has answered its caller (short-circuit mode may
    /// answer before all children do; the frame then lingers only to absorb
    /// straggler replies).
    bool replied = false;
    /// Children whose calls are parked on a suspected peer. While positive,
    /// the frame's call timeout defers instead of assuming Live.
    int parked = 0;
    /// The call timeout fired while children were parked; a fresh timeout
    /// is armed when the last parked call resumes.
    bool timeout_deferred = false;
    // Root-frame bookkeeping for the outcome report.
    ObjectId start_outref;
    SimTime started_at = 0;
  };

  /// A coalesced call parked on another trace's visit record. When the
  /// covering trace's report arrives with Garbage, the waiter inherits the
  /// verdict (the covering trace proved every backward path through the
  /// shared region rootless). On Live — which only proves *some* branch of
  /// the covering trace found a root, not that the waiter's region is live —
  /// the call is re-dispatched instead, so the waiting trace traverses the
  /// region itself once the covering trace's marks are cleared. Blindly
  /// inheriting Live would livelock: a live suspect's trace restarting every
  /// round could shadow a garbage cycle's trace forever.
  struct Waiter {
    TraceId trace;
    FrameId caller;
    IorefKind kind = IorefKind::kOutref;
    ObjectId ref;
  };

  /// Per-trace record of the iorefs this site marked visited, so the report
  /// phase can flag or clear them in O(|visited|). Stored in a flat vector
  /// (a site has a handful of traces in flight, never enough to amortize a
  /// hash table).
  struct VisitRecord {
    std::vector<ObjectId> inrefs;
    std::vector<ObjectId> outrefs;
    std::vector<Waiter> waiters;
    SimTime last_touched = 0;
    /// Set when a waiter's patience ran out before this trace's report
    /// arrived — evidence the report may never come (short-circuited
    /// participant sets and dropped messages strand records by design).
    /// A stranded record accepts no further waiters, so traces fall back to
    /// traversing alongside the stale marks exactly as without coalescing.
    bool stranded = false;
  };

  Frame& CreateFrame(TraceId trace, FrameId parent, IorefKind kind,
                     ObjectId ioref);
  void Reply(TraceId trace, FrameId to, BackResult result,
             std::vector<SiteId> participants);
  /// Answers the frame's caller (or finishes the trace for a root frame).
  void FinalizeFrame(Frame& frame);
  /// Finalizes if not yet done, then erases the frame.
  void CompleteFrame(Frame& frame);
  void ArmTimeout(std::uint64_t frame_id, TraceId trace);
  void ClearRecordMarks(const VisitRecord& record, TraceId trace);

  static void AddParticipant(Frame& frame, SiteId s);

  [[nodiscard]] VisitRecord* FindRecord(TraceId trace);
  VisitRecord& TouchRecord(TraceId trace);
  /// Parks `caller` on the most senior trace (< `trace`) among `visited`
  /// that has a visit record here. Returns true if the call was deferred.
  bool TryCoalesce(const std::vector<TraceId>& visited, TraceId trace,
                   FrameId caller, IorefKind kind, ObjectId ref);
  /// Re-dispatches a deferred call as a self-message so the waiting trace
  /// traverses the region itself (handled after the covering marks clear).
  void RequeueWaiter(const Waiter& waiter);
  void ResolveWaiters(VisitRecord& record, BackResult outcome);

  void QueueBackCall(SiteId dest, const BackLocalCallMsg& call);
  void FlushPendingCalls();

  /// A remote step held back because the failure detector suspects its
  /// destination; resumed (for frames still alive) by OnPeerRecovered.
  struct ParkedCall {
    BackLocalCallMsg call;
    std::uint64_t frame_id = 0;
  };
  /// Parks a remote step instead of dispatching it into a suspected outage,
  /// where it would burn a full back_call_timeout into a spurious
  /// threshold-bumping Live verdict.
  void ParkCall(SiteId dest, const BackLocalCallMsg& call, Frame& frame);
  /// True when the next remote step to `dest` should park.
  [[nodiscard]] bool ShouldPark(SiteId dest) const;

  SiteId site_;
  RefTables& tables_;
  Transport& transport_;
  Scheduler& scheduler_;
  std::function<const SiteBackInfo&()> back_info_;
  std::function<bool(ObjectId)> is_root_object_;
  std::function<void(const TraceOutcome&)> outcome_observer_;

  SlabTable<Frame> frames_;
  std::vector<std::pair<TraceId, VisitRecord>> visit_records_;
  /// Inter-site calls buffered within one simulated instant, per destination
  /// (ordered map for deterministic flush order).
  std::map<SiteId, std::vector<BackLocalCallMsg>> pending_calls_;
  bool flush_scheduled_ = false;
  /// Remote steps parked per suspected destination (ordered map for
  /// deterministic resume order). Volatile: a crash drops them with the
  /// frames they belong to.
  std::map<SiteId, std::vector<ParkedCall>> parked_calls_;
  VerdictCache verdict_cache_;
  std::uint32_t next_trace_seq_ = 1;
  BackTracerStats stats_;
};

}  // namespace dgc
