// Slab-allocated id-to-value table for the back-trace hot path.
//
// Reuses the heap's slot idiom (store/heap.h): values live in fixed-size
// slabs (stable addresses, no per-node allocation), ids encode
// (generation << 32) | (slot + 1), and erased slots recycle LIFO with a
// bumped generation so stale ids — e.g. a reply addressed to a frame that
// timed out, or one that died in a crash-restart — miss cleanly in O(1)
// instead of costing a hash probe in a node-based map.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"

namespace dgc {

template <typename T>
class SlabTable {
 public:
  static constexpr std::size_t kSlabSize = 256;

  /// Stores `value` and returns its id (never 0 in the low half).
  std::uint64_t Insert(T value) {
    std::uint64_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = used_slots_++;
      if (slot / kSlabSize == slabs_.size()) {
        slabs_.push_back(std::make_unique<Slab>());
      }
    }
    Slot& s = SlotAt(slot);
    DGC_DCHECK(!s.occupied);
    s.occupied = true;
    s.value = std::move(value);
    ++size_;
    return MakeId(s.generation, slot);
  }

  /// Finds a live value by id; stale or foreign ids return nullptr.
  [[nodiscard]] T* Find(std::uint64_t id) {
    const std::uint64_t biased = id & kSlotMask;
    if (biased == 0 || biased > used_slots_) return nullptr;
    Slot& s = SlotAt(biased - 1);
    if (!s.occupied || s.generation != GenerationOf(id)) return nullptr;
    return &s.value;
  }

  /// Erases a live id; stale ids are ignored.
  void Erase(std::uint64_t id) {
    const std::uint64_t biased = id & kSlotMask;
    if (biased == 0 || biased > used_slots_) return;
    const std::uint64_t slot = biased - 1;
    Slot& s = SlotAt(slot);
    if (!s.occupied || s.generation != GenerationOf(id)) return;
    Release(s, slot);
  }

  /// Visits every live value in slot order (deterministic).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (std::uint64_t slot = 0; slot < used_slots_; ++slot) {
      Slot& s = SlotAt(slot);
      if (s.occupied) fn(s.value);
    }
  }

  /// Drops every live value, invalidating all outstanding ids.
  void Clear() {
    for (std::uint64_t slot = 0; slot < used_slots_; ++slot) {
      Slot& s = SlotAt(slot);
      if (s.occupied) Release(s, slot);
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  static constexpr std::uint64_t kGenShift = 32;
  static constexpr std::uint64_t kSlotMask = (1ULL << kGenShift) - 1;

  struct Slot {
    T value{};
    std::uint32_t generation = 0;
    bool occupied = false;
  };
  using Slab = std::array<Slot, kSlabSize>;

  static std::uint64_t MakeId(std::uint32_t generation, std::uint64_t slot) {
    return (static_cast<std::uint64_t>(generation) << kGenShift) | (slot + 1);
  }
  static std::uint32_t GenerationOf(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> kGenShift);
  }

  Slot& SlotAt(std::uint64_t slot) {
    return (*slabs_[slot / kSlabSize])[slot % kSlabSize];
  }

  void Release(Slot& s, std::uint64_t slot) {
    s.value = T{};  // free owned storage eagerly
    s.occupied = false;
    ++s.generation;
    free_slots_.push_back(slot);
    --size_;
  }

  std::vector<std::unique_ptr<Slab>> slabs_;
  std::vector<std::uint64_t> free_slots_;
  std::uint64_t used_slots_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dgc
