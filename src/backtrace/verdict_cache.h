// Per-site cache of completed back-trace verdicts.
//
// When a trace's report phase (Section 4.5) reaches a participant, the
// participant records the trace's Garbage/Live verdict on every ioref it
// visited for that trace. MaybeStartTraces consults the cache so a suspect
// already covered by a completed trace does not start a redundant
// O(2E + P) traversal of the same cycle — the principal waste the paper's
// §5.2 memoization argument targets, applied to the back-trace hot path.
//
// Entries are versioned by the local-trace epoch at recording time and
// evicted by three events, mirroring the engine's own volatility rules:
//   * the clean rule (§6.4): a cleaned ioref's cached verdict is stale by
//     definition — the ioref just proved reachable;
//   * local-trace application: an entry recorded during epoch e stays
//     actionable through the apply of epoch e+1 (so the sweep that a
//     Garbage report triggers can run before the suspect is rescanned) and
//     is evicted by the next one — a skip therefore delays a live-suspect
//     retry by at most one round and can never leak a cycle;
//   * DropVolatileState on crash-restart: the cache is volatile state.
//
// Skipping a trace start is always safe (no trace means no reclamation);
// the epoch window bounds the completeness delay.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/ids.h"
#include "net/messages.h"
#include "refs/tables.h"

namespace dgc {

class VerdictCache {
 public:
  struct Stats {
    std::uint64_t recorded = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evicted_cleaned = 0;  // clean-rule evictions
    std::uint64_t evicted_epoch = 0;    // aged out by local-trace applies
    std::uint64_t dropped = 0;          // cleared by crash-restart
  };

  void Record(IorefKind kind, ObjectId ref, BackResult verdict) {
    ++stats_.recorded;
    Table(kind)[ref] = Entry{verdict, epoch_};
  }

  /// Stats-counting lookup used by the trace-trigger scan.
  std::optional<BackResult> Lookup(IorefKind kind, ObjectId ref) {
    const auto verdict = Peek(kind, ref);
    if (verdict.has_value()) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
    return verdict;
  }

  /// Side-effect-free probe (tests and diagnostics).
  [[nodiscard]] std::optional<BackResult> Peek(IorefKind kind,
                                               ObjectId ref) const {
    const auto& table = kind == IorefKind::kInref ? inrefs_ : outrefs_;
    const auto it = table.find(ref);
    if (it == table.end() || !Valid(it->second)) return std::nullopt;
    return it->second.verdict;
  }

  /// The clean rule: the ioref just proved reachable; its verdict is stale.
  void OnIorefCleaned(IorefKind kind, ObjectId ref) {
    stats_.evicted_cleaned += Table(kind).erase(ref);
  }

  /// A local trace applied: advance the epoch and age out entries that have
  /// now survived one full apply.
  void OnLocalTraceApplied(std::uint64_t epoch) {
    epoch_ = epoch;
    for (auto* table : {&inrefs_, &outrefs_}) {
      for (auto it = table->begin(); it != table->end();) {
        if (!Valid(it->second)) {
          ++stats_.evicted_epoch;
          it = table->erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  /// Crash-restart: the cache is volatile.
  void Clear() {
    stats_.dropped += inrefs_.size() + outrefs_.size();
    inrefs_.clear();
    outrefs_.clear();
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const {
    return inrefs_.size() + outrefs_.size();
  }

 private:
  struct Entry {
    BackResult verdict = BackResult::kLive;
    std::uint64_t epoch = 0;
  };

  [[nodiscard]] bool Valid(const Entry& entry) const {
    return entry.epoch + 1 >= epoch_;
  }

  std::unordered_map<ObjectId, Entry>& Table(IorefKind kind) {
    return kind == IorefKind::kInref ? inrefs_ : outrefs_;
  }

  std::unordered_map<ObjectId, Entry> inrefs_;
  std::unordered_map<ObjectId, Entry> outrefs_;
  std::uint64_t epoch_ = 0;
  Stats stats_;
};

}  // namespace dgc
