#include "baselines/central_service.h"

#include <deque>
#include <unordered_set>

#include "backinfo/outset_store.h"
#include "backinfo/suspect_trace.h"
#include "common/check.h"

namespace dgc::baselines {

namespace {

/// Env for computing FULL outsets: nothing is "clean", so every inref's
/// complete local reachability to every outref is produced — the heavyweight
/// requirement the paper criticizes ("requires full reachability information
/// between all inrefs and outrefs").
struct FullEnv {
  const Heap* heap = nullptr;
  std::uint64_t epoch = 0;
  bool ObjectIsCleanMarked(ObjectId) const { return false; }
  bool OutrefIsClean(ObjectId) const { return false; }
  void OnSuspectMarked(ObjectId) {}
};

}  // namespace

CentralServiceCollector::CentralServiceCollector(System& system,
                                                 SiteId service_site)
    : system_(system), service_site_(service_site) {
  DGC_CHECK(service_site < system.site_count());
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    system_.site(s).SetExtensionHandler(
        [this, s](const Envelope& envelope) {
          return HandleMessage(s, envelope);
        });
  }
}

void CentralServiceCollector::SendSummary(SiteId site_id) {
  const Site& site = system_.site(site_id);
  const Heap& heap = site.heap();
  ReachabilitySummaryMsg summary;
  summary.epoch = epoch_;

  // Root-reachable outrefs: BFS from persistent + app roots.
  {
    std::unordered_set<std::uint64_t> seen;
    std::deque<ObjectId> queue;
    const auto push = [&](ObjectId id) {
      if (heap.Exists(id) && seen.insert(id.index).second) queue.push_back(id);
    };
    for (const ObjectId root : heap.persistent_roots()) push(root);
    for (const ObjectId root : site.AppRootObjects()) push(root);
    std::set<ObjectId> root_outrefs;
    while (!queue.empty()) {
      const ObjectId current = queue.front();
      queue.pop_front();
      for (const ObjectId target : heap.Get(current).slots) {
        if (!target.valid()) continue;
        if (target.site != site_id) {
          root_outrefs.insert(target);
        } else {
          push(target);
        }
      }
    }
    // Pinned outrefs are root-held too.
    for (const ObjectId pinned : site.PinnedRemoteRefs()) {
      root_outrefs.insert(pinned);
    }
    summary.root_reachable_outrefs.assign(root_outrefs.begin(),
                                          root_outrefs.end());
  }

  // Full outset per inref (the §5.2 machinery with nothing treated clean).
  FullEnv env;
  OutsetStore store;
  BottomUpOutsetComputer<FullEnv> computer(heap, store, env);
  for (const auto& [obj, entry] : site.tables().inrefs()) {
    if (entry.garbage_flagged || !heap.Exists(obj)) continue;
    const auto outset_id = computer.TraceFrom(obj);
    summary.inrefs.push_back(
        ReachabilitySummaryMsg::InrefInfo{obj, store.Get(outset_id)});
  }

  ++stats_.summary_messages;
  stats_.summary_bytes += ApproxWireSize(Payload{summary});
  system_.network().Send(site_id, service_site_, std::move(summary));
}

void CentralServiceCollector::RunCycle() {
  ++epoch_;
  reports_.clear();
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    if (system_.network().IsSiteDown(s)) continue;  // never reports
    SendSummary(s);
  }
  system_.SettleNetwork();
  Analyse();
  system_.SettleNetwork();
}

bool CentralServiceCollector::HandleMessage(SiteId self,
                                            const Envelope& envelope) {
  if (const auto* summary =
          std::get_if<ReachabilitySummaryMsg>(&envelope.payload)) {
    DGC_CHECK(self == service_site_);
    if (summary->epoch != epoch_) return true;
    SummaryData& data = reports_[envelope.from];
    data.root_reachable = summary->root_reachable_outrefs;
    for (const auto& info : summary->inrefs) {
      data.inref_outsets[info.inref] = info.outset;
    }
    return true;
  }
  if (const auto* condemn = std::get_if<CondemnMsg>(&envelope.payload)) {
    if (condemn->epoch != epoch_) return true;
    for (const ObjectId obj : condemn->inrefs) {
      if (InrefEntry* entry = system_.site(self).tables().FindInref(obj)) {
        if (!entry->garbage_flagged) {
          entry->garbage_flagged = true;
          ++stats_.inrefs_condemned;
        }
      }
    }
    return true;
  }
  return false;
}

void CentralServiceCollector::Analyse() {
  stats_.sites_reported = reports_.size();
  if (reports_.size() < system_.site_count()) {
    // A silent site might hold the root path to anything: condemning with a
    // partial picture would be unsafe. Nothing is collected anywhere — the
    // exact dependence "on timely correspondence between the service and
    // all sites in the system" the paper criticizes.
    return;
  }
  // Node set: every inref named by any report. Edges: inref i@owner ->
  // (via the reporting site's outsets) inref r@its-owner. Roots feed every
  // inref named in a root_reachable list. Inrefs of NON-reporting sites are
  // conservatively live (and, since we lack their outsets, they propagate
  // nothing — their downstream stays uncollected too unless fed elsewhere;
  // conservative in the safe direction).
  std::set<ObjectId> live;
  std::deque<ObjectId> gray;
  const auto feed = [&](ObjectId inref) {
    if (live.insert(inref).second) gray.push_back(inref);
  };
  for (const auto& [site, data] : reports_) {
    (void)site;
    for (const ObjectId outref : data.root_reachable) feed(outref);
  }
  while (!gray.empty()) {
    const ObjectId current = gray.front();
    gray.pop_front();
    // current names an object at current.site; its local reachability is in
    // that site's report (if any).
    const auto report = reports_.find(current.site);
    if (report == reports_.end()) continue;  // silent site: stops here
    const auto outset = report->second.inref_outsets.find(current);
    if (outset == report->second.inref_outsets.end()) continue;
    for (const ObjectId next : outset->second) feed(next);
  }

  // Condemn reported inrefs not reached from any root.
  std::map<SiteId, CondemnMsg> condemnations;
  for (const auto& [site, data] : reports_) {
    for (const auto& [inref, outset] : data.inref_outsets) {
      (void)outset;
      if (!live.contains(inref)) {
        CondemnMsg& msg = condemnations[site];
        msg.epoch = epoch_;
        msg.inrefs.push_back(inref);
      }
    }
  }
  for (auto& [site, msg] : condemnations) {
    ++stats_.condemn_messages;
    system_.network().Send(service_site_, site, std::move(msg));
  }
}

}  // namespace dgc::baselines
