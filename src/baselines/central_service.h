// Baseline 5 (Section 7, "Central Service"): Beckerle & Ekanadham's fixed
// site collecting inref-to-outref reachability from every site and detecting
// inter-site garbage cycles centrally (Ladin & Liskov's replicated variant
// shares the shape).
//
// Each site ships a summary — the FULL reachability from every inref to
// every outref, plus which outrefs its roots reach — to the service site.
// The service builds the global ioref digraph, marks everything reachable
// from root-fed inrefs, and condemns the rest; the condemned inrefs are
// garbage-flagged at their sites and ordinary local traces reclaim them.
//
// The paper's criticisms, measured by the tests and bench_vs_baselines:
//   * the service is a bandwidth/processing bottleneck: summary bytes are
//     proportional to ALL inref-outref reachability (the paper's scheme
//     keeps insets for suspected iorefs only);
//   * "cycle collection still depends on timely correspondence between the
//     service and all sites" — a site that fails to report forces the
//     service to treat that site's inrefs conservatively as live, so any
//     cycle touching it survives.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/ids.h"
#include "core/system.h"

namespace dgc::baselines {

class CentralServiceCollector {
 public:
  struct Stats {
    std::uint64_t summary_messages = 0;
    std::uint64_t summary_bytes = 0;  // the bottleneck figure
    std::uint64_t condemn_messages = 0;
    std::uint64_t inrefs_condemned = 0;
    std::size_t sites_reported = 0;
  };

  /// `service_site` hosts the logically-central service.
  CentralServiceCollector(System& system, SiteId service_site = 0);

  /// One detection cycle: every reachable site reports, the service
  /// analyses, condemnations go out, and the world settles. Sites that are
  /// down simply never report (their iorefs are treated as live).
  /// Follow with System::RunRounds to let local traces reclaim.
  void RunCycle();

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  bool HandleMessage(SiteId self, const Envelope& envelope);
  void SendSummary(SiteId site);
  void Analyse();

  System& system_;
  SiteId service_site_;
  std::uint64_t epoch_ = 0;

  /// Service-side state for the in-progress epoch.
  struct SummaryData {
    std::map<ObjectId, std::vector<ObjectId>> inref_outsets;
    std::vector<ObjectId> root_reachable;
  };
  std::map<SiteId, SummaryData> reports_;
  Stats stats_;
};

}  // namespace dgc::baselines
