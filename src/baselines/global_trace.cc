#include "baselines/global_trace.h"

#include "common/check.h"

namespace dgc::baselines {

namespace {
constexpr SiteId kCoordinator = 0;
}

GlobalTraceCollector::GlobalTraceCollector(System& system)
    : system_(system), states_(system.site_count()) {
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    system_.site(s).SetExtensionHandler(
        [this, s](const Envelope& envelope) {
          return HandleMessage(s, envelope);
        });
  }
}

void GlobalTraceCollector::SendControl(SiteId to,
                                       GlobalGcControlMsg::Phase phase,
                                       std::uint64_t value) {
  ++current_.control_messages;
  system_.network().Send(kCoordinator, to,
                         GlobalGcControlMsg{epoch_, phase, value});
}

GlobalTraceCollector::Stats GlobalTraceCollector::RunCycle(SimTime max_wait) {
  ++epoch_;
  current_ = Stats{};
  cycle_done_ = false;
  const SimTime started = system_.scheduler().now();

  for (SiteId s = 0; s < system_.site_count(); ++s) {
    SendControl(s, GlobalGcControlMsg::Phase::kStartMark, 0);
  }
  // First probe round once the start wave has had a chance to land.
  pending_probe_replies_ = 0;
  system_.scheduler().After(1, [this] {
    probe_work_total_ = 0;
    pending_probe_replies_ = system_.site_count();
    ++current_.probe_rounds;
    for (SiteId s = 0; s < system_.site_count(); ++s) {
      SendControl(s, GlobalGcControlMsg::Phase::kProbe, 0);
    }
  });

  // Drive the world until the cycle completes or the deadline passes (a
  // crashed site never answers probes, so the sweep never starts).
  const SimTime deadline = started + max_wait;
  while (!cycle_done_ && system_.scheduler().now() < deadline) {
    if (!system_.scheduler().RunOne()) break;
  }
  current_.duration = system_.scheduler().now() - started;
  current_.completed = cycle_done_;
  return current_;
}

bool GlobalTraceCollector::HandleMessage(SiteId self,
                                         const Envelope& envelope) {
  if (const auto* gray = std::get_if<GlobalGcGrayMsg>(&envelope.payload)) {
    SiteState& state = states_[self];
    if (gray->epoch != epoch_) return true;
    std::deque<ObjectId> queue;
    for (const ObjectId target : gray->targets) {
      queue.push_back(target);
    }
    (void)state;
    MarkLocal(self, std::move(queue));
    return true;
  }
  const auto* control = std::get_if<GlobalGcControlMsg>(&envelope.payload);
  if (control == nullptr) return false;
  if (control->epoch != epoch_) return true;

  SiteState& state = states_[self];
  switch (control->phase) {
    case GlobalGcControlMsg::Phase::kStartMark: {
      state.epoch = epoch_;
      state.marked.clear();
      state.work_since_probe = 0;
      std::deque<ObjectId> roots;
      const Site& site = system_.site(self);
      for (const ObjectId root : site.heap().persistent_roots()) {
        roots.push_back(root);
      }
      for (const ObjectId root : site.AppRootObjects()) roots.push_back(root);
      MarkLocal(self, std::move(roots));
      return true;
    }
    case GlobalGcControlMsg::Phase::kProbe: {
      system_.network().Send(self, kCoordinator,
                             GlobalGcControlMsg{
                                 epoch_, GlobalGcControlMsg::Phase::kProbeReply,
                                 state.work_since_probe});
      ++current_.control_messages;
      state.work_since_probe = 0;
      return true;
    }
    case GlobalGcControlMsg::Phase::kProbeReply: {
      DGC_CHECK(self == kCoordinator);
      probe_work_total_ += control->value;
      DGC_CHECK(pending_probe_replies_ > 0);
      if (--pending_probe_replies_ == 0) {
        if (probe_work_total_ == 0) {
          // Quiescent: everyone may sweep.
          pending_sweep_acks_ = system_.site_count();
          for (SiteId s = 0; s < system_.site_count(); ++s) {
            SendControl(s, GlobalGcControlMsg::Phase::kSweep, 0);
          }
        } else {
          probe_work_total_ = 0;
          pending_probe_replies_ = system_.site_count();
          ++current_.probe_rounds;
          for (SiteId s = 0; s < system_.site_count(); ++s) {
            SendControl(s, GlobalGcControlMsg::Phase::kProbe, 0);
          }
        }
      }
      return true;
    }
    case GlobalGcControlMsg::Phase::kSweep: {
      std::vector<ObjectId> to_free;
      system_.site(self).heap().ForEach(
          [&](ObjectId id, const Object&) {
            if (!state.marked.contains(id.index)) to_free.push_back(id);
          });
      for (const ObjectId id : to_free) system_.site(self).heap().Free(id);
      system_.network().Send(
          self, kCoordinator,
          GlobalGcControlMsg{epoch_, GlobalGcControlMsg::Phase::kSweepDone,
                             to_free.size()});
      ++current_.control_messages;
      return true;
    }
    case GlobalGcControlMsg::Phase::kSweepDone: {
      DGC_CHECK(self == kCoordinator);
      current_.objects_swept += control->value;
      DGC_CHECK(pending_sweep_acks_ > 0);
      if (--pending_sweep_acks_ == 0) cycle_done_ = true;
      return true;
    }
  }
  return true;
}

void GlobalTraceCollector::MarkLocal(SiteId self, std::deque<ObjectId> gray) {
  SiteState& state = states_[self];
  const Heap& heap = system_.site(self).heap();
  std::unordered_map<SiteId, std::vector<ObjectId>> remote_gray;
  while (!gray.empty()) {
    const ObjectId current = gray.front();
    gray.pop_front();
    DGC_CHECK(current.site == self);
    if (!heap.Exists(current)) continue;
    if (!state.marked.insert(current.index).second) continue;
    ++state.work_since_probe;
    for (const ObjectId target : heap.Get(current).slots) {
      if (!target.valid()) continue;
      if (target.site == self) {
        gray.push_back(target);
      } else {
        remote_gray[target.site].push_back(target);
      }
    }
  }
  for (auto& [target_site, targets] : remote_gray) {
    ++current_.gray_messages;
    system_.network().Send(self, target_site,
                           GlobalGcGrayMsg{epoch_, std::move(targets)});
  }
}

}  // namespace dgc::baselines
