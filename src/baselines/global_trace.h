// Baseline 1 (Section 7, "Global Tracing"): a coordinated global mark-sweep.
//
// A coordinator starts a marking wave at every site; marking crosses sites
// via gray messages (one per inter-site edge traversed); termination is
// detected by repeated probe rounds (the coordinator keeps asking every site
// whether any marking happened since the last probe — 2N messages per
// round). Only when *all* sites are done may anything be swept: the paper's
// point that a global trace "requires the cooperation of all sites before it
// can collect any garbage", and a crashed site stalls collection everywhere.
//
// The baseline bypasses the inref/outref machinery entirely (it needs no
// reference listing to be safe); it maintains its own per-site mark sets.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "core/system.h"

namespace dgc::baselines {

class GlobalTraceCollector {
 public:
  struct Stats {
    std::uint64_t control_messages = 0;
    std::uint64_t gray_messages = 0;
    std::uint64_t probe_rounds = 0;
    std::uint64_t objects_swept = 0;
    SimTime duration = 0;
    bool completed = false;  // false if a crashed site stalled the trace
  };

  explicit GlobalTraceCollector(System& system);

  /// Runs one full global collection and drives the scheduler to completion.
  /// If a site is down, the trace never finishes; `max_wait` bounds the
  /// simulated time we wait before giving up (completed=false).
  Stats RunCycle(SimTime max_wait = 1'000'000);

 private:
  struct SiteState {
    std::uint64_t epoch = 0;
    std::unordered_set<std::uint64_t> marked;
    std::uint64_t work_since_probe = 0;
  };

  bool HandleMessage(SiteId self, const Envelope& envelope);
  void MarkLocal(SiteId self, std::deque<ObjectId> gray);
  void SendControl(SiteId to, GlobalGcControlMsg::Phase phase,
                   std::uint64_t value);

  System& system_;
  std::vector<SiteState> states_;
  std::uint64_t epoch_ = 0;

  // Coordinator-side (site 0) bookkeeping for the in-progress cycle.
  std::uint64_t pending_probe_replies_ = 0;
  std::uint64_t probe_work_total_ = 0;
  std::uint64_t pending_sweep_acks_ = 0;
  bool cycle_done_ = false;
  Stats current_;
};

}  // namespace dgc::baselines
