#include "baselines/group_trace.h"

#include <deque>
#include <unordered_set>

#include "common/check.h"

namespace dgc::baselines {

GroupTraceCollector::GroupTraceCollector(System& system,
                                         std::size_t max_group_sites)
    : system_(system), max_group_sites_(max_group_sites) {
  DGC_CHECK(max_group_sites_ >= 1);
}

std::optional<std::set<SiteId>> GroupTraceCollector::RunOnFirstSuspect() {
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    const Site& site = system_.site(s);
    for (const auto& [obj, entry] : site.tables().inrefs()) {
      if (entry.garbage_flagged || entry.sources.empty()) continue;
      if (entry.distance() <= site.config().suspicion_threshold) continue;
      if (!site.heap().Exists(obj)) continue;
      return RunFromSeed(obj);
    }
  }
  return std::nullopt;
}

std::set<SiteId> GroupTraceCollector::RunFromSeed(ObjectId seed) {
  const std::set<SiteId> group = FormGroup(seed);
  stats_.last_group_size = group.size();
  TraceGroup(group);
  return group;
}

std::set<SiteId> GroupTraceCollector::FormGroup(ObjectId seed) {
  // Forward closure from the seed across inter-site references, admitting
  // new sites until the bound. Each inter-site edge crossed during
  // formation costs one membership message (invite/accept round is folded
  // into one for simplicity; the shape, not the constant, matters).
  std::set<SiteId> group{seed.site};
  std::unordered_set<std::uint64_t> visited;  // (site<<40)^index
  const auto key = [](ObjectId id) {
    return (static_cast<std::uint64_t>(id.site) << 40) ^ id.index;
  };
  std::deque<ObjectId> queue{seed};
  visited.insert(key(seed));
  while (!queue.empty()) {
    const ObjectId current = queue.front();
    queue.pop_front();
    const Heap& heap = system_.site(current.site).heap();
    if (!heap.Exists(current)) continue;
    for (const ObjectId target : heap.Get(current).slots) {
      if (!target.valid()) continue;
      if (target.site != current.site) {
        ++stats_.formation_messages;
        if (!group.contains(target.site)) {
          if (group.size() >= max_group_sites_) continue;  // bound reached
          group.insert(target.site);
        }
      }
      if (!group.contains(target.site)) continue;
      if (visited.insert(key(target)).second) queue.push_back(target);
    }
  }
  return group;
}

void GroupTraceCollector::TraceGroup(const std::set<SiteId>& group) {
  // Coordinated mark over the group's sites (executed eagerly; messages
  // accounted: start/sweep control per site, one gray message per
  // inter-site edge followed within the group).
  stats_.control_messages += 2 * group.size();

  std::unordered_set<std::uint64_t> marked;
  const auto key = [](ObjectId id) {
    return (static_cast<std::uint64_t>(id.site) << 40) ^ id.index;
  };
  std::deque<ObjectId> gray;
  const auto push_root = [&](ObjectId id) {
    if (!system_.site(id.site).heap().Exists(id)) return;
    if (marked.insert(key(id)).second) gray.push_back(id);
  };

  for (const SiteId s : group) {
    const Site& site = system_.site(s);
    for (const ObjectId root : site.heap().persistent_roots()) push_root(root);
    for (const ObjectId root : site.AppRootObjects()) push_root(root);
    // Inrefs with any source outside the group are roots: the group cannot
    // know whether those references are live.
    for (const auto& [obj, entry] : site.tables().inrefs()) {
      if (entry.garbage_flagged) continue;
      bool external = false;
      for (const auto& [source, info] : entry.sources) {
        (void)info;
        if (!group.contains(source)) external = true;
      }
      if (external) push_root(obj);
    }
  }

  while (!gray.empty()) {
    const ObjectId current = gray.front();
    gray.pop_front();
    const Heap& heap = system_.site(current.site).heap();
    for (const ObjectId target : heap.Get(current).slots) {
      if (!target.valid()) continue;
      if (!group.contains(target.site)) continue;  // outside: not ours
      if (target.site != current.site) ++stats_.gray_messages;
      if (!system_.site(target.site).heap().Exists(target)) continue;
      if (marked.insert(key(target)).second) gray.push_back(target);
    }
  }

  // Sweep unmarked objects on group sites, fixing tables: their outrefs are
  // dropped (with removal updates applied eagerly) so referential integrity
  // holds afterwards.
  for (const SiteId s : group) {
    Site& site = system_.site(s);
    std::vector<ObjectId> to_free;
    site.heap().ForEach([&](ObjectId id, const Object&) {
      if (!marked.contains(key(id))) to_free.push_back(id);
    });
    for (const ObjectId id : to_free) {
      // Drop table state that named the dead object.
      for (const ObjectId target : site.heap().Get(id).slots) {
        if (!target.valid() || target.site == s) continue;
        // Another live local object may still hold the same remote ref;
        // only remove the outref if nothing marked does.
        bool still_held = false;
        site.heap().ForEach([&](ObjectId other, const Object& object) {
          if (!marked.contains(key(other))) return;
          for (const ObjectId r : object.slots) {
            if (r == target) still_held = true;
          }
        });
        if (!still_held && site.tables().FindOutref(target) != nullptr &&
            site.tables().FindOutref(target)->pin_count == 0) {
          site.tables().RemoveOutref(target);
          system_.site(target.site).tables().RemoveInrefSource(target, s);
        }
      }
      site.tables().RemoveInref(id);
      site.heap().Free(id);
      ++stats_.objects_swept;
    }
  }
}

}  // namespace dgc::baselines
