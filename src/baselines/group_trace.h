// Baseline 4 (Section 7, "Group Tracing"): trace within a group of selected
// sites, treating references from outside the group as roots (Maeda et al.,
// Rodrigues & Jones style: groups grown from a suspected seed).
//
// A group is formed by walking forward from a suspect's object across
// inter-site references, admitting sites until `max_group_sites` is reached
// (real systems must bound groups — an unbounded group is a global trace).
// A coordinated mark-sweep then runs over the group's sites with roots:
//   * persistent/application roots on group sites, and
//   * inrefs with at least one source outside the group.
//
// The paper's criticisms, demonstrated by tests and bench_vs_baselines:
//   * a cycle larger than the group bound is NEVER collected (the out-of-
//     group half keeps looking like a root) — "inter-group cycles may never
//     be collected";
//   * a garbage cycle pointing at live chains drags those chains' sites into
//     the group, so group tracing involves more sites than the garbage
//     occupies (no locality), unlike back tracing.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "core/system.h"

namespace dgc::baselines {

class GroupTraceCollector {
 public:
  struct Stats {
    std::uint64_t formation_messages = 0;  // group-membership negotiation
    std::uint64_t gray_messages = 0;       // in-group marking traffic
    std::uint64_t control_messages = 0;    // start/sweep per group site
    std::uint64_t objects_swept = 0;
    std::size_t last_group_size = 0;
  };

  GroupTraceCollector(System& system, std::size_t max_group_sites);

  /// Forms a group seeded at the first suspected inref (distance above the
  /// suspicion threshold) and runs one group trace. Returns the group's
  /// site set, or nullopt if there was no suspect.
  std::optional<std::set<SiteId>> RunOnFirstSuspect();

  /// Forms and traces a group seeded at a specific object's inref.
  std::set<SiteId> RunFromSeed(ObjectId seed);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::set<SiteId> FormGroup(ObjectId seed);
  void TraceGroup(const std::set<SiteId>& group);

  System& system_;
  std::size_t max_group_sites_;
  Stats stats_;
};

}  // namespace dgc::baselines
