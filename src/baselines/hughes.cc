#include "baselines/hughes.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace dgc::baselines {

namespace {
constexpr SiteId kService = 0;  // host of the logically-central service
}

HughesCollector::HughesCollector(System& system, std::size_t lag_rounds)
    : system_(system), states_(system.site_count()), lag_rounds_(lag_rounds) {
  const std::int64_t now = system_.scheduler().now();
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    system_.site(s).SetExtensionHandler(
        [this, s](const Envelope& envelope) {
          return HandleMessage(s, envelope);
        });
    // Seed every pre-existing inref'd object with the current time so the
    // first traces treat remotely-referenced objects as live. (Construct
    // the collector after building the world.)
    for (const auto& [obj, entry] : system_.site(s).tables().inrefs()) {
      (void)entry;
      states_[s].inref_stamps.emplace(obj, now);
    }
  }
}

bool HughesCollector::HandleMessage(SiteId self, const Envelope& envelope) {
  if (const auto* update =
          std::get_if<TimestampUpdateMsg>(&envelope.payload)) {
    SiteState& state = states_[self];
    for (const auto& entry : update->entries) {
      DGC_CHECK(entry.ref.site == self);
      auto [it, inserted] = state.inref_stamps.emplace(entry.ref, entry.stamp);
      if (!inserted) it->second = std::max(it->second, entry.stamp);
    }
    return true;
  }
  if (const auto* control =
          std::get_if<GlobalGcControlMsg>(&envelope.payload)) {
    if (control->phase == GlobalGcControlMsg::Phase::kProbe) {
      ++stats_.control_messages;
      system_.network().Send(
          self, kService,
          GlobalGcControlMsg{
              control->epoch, GlobalGcControlMsg::Phase::kProbeReply,
              static_cast<std::uint64_t>(states_[self].trace_clock)});
      return true;
    }
    if (control->phase == GlobalGcControlMsg::Phase::kProbeReply) {
      // Collected by UpdateThreshold via probe_replies_.
      probe_replies_.push_back(static_cast<std::int64_t>(control->value));
      return true;
    }
  }
  return false;
}

void HughesCollector::RunLocalTrace(SiteId site_id) {
  SiteState& state = states_[site_id];
  Site& site = system_.site(site_id);
  const Heap& heap = site.heap();
  const std::int64_t now = system_.scheduler().now();

  // Roots in decreasing timestamp order: roots (now) first, then inrefs.
  // Sub-threshold inrefs are garbage and are not used as roots.
  std::vector<std::pair<std::int64_t, ObjectId>> roots;
  for (const ObjectId root : heap.persistent_roots()) {
    roots.emplace_back(now, root);
  }
  for (const ObjectId root : site.AppRootObjects()) {
    roots.emplace_back(now, root);
  }
  for (const auto& [obj, stamp] : state.inref_stamps) {
    if (!heap.Exists(obj)) continue;
    if (stamp < threshold_) continue;  // condemned: not a root
    roots.emplace_back(stamp, obj);
  }
  std::sort(roots.begin(), roots.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Mark with max timestamp (first touch in descending order) and collect
  // outref stamps.
  std::unordered_map<std::uint64_t, std::int64_t> marks;
  std::map<ObjectId, std::int64_t> outref_stamps;
  for (const auto& [stamp, root] : roots) {
    if (marks.contains(root.index)) continue;
    std::vector<ObjectId> stack{root};
    marks.emplace(root.index, stamp);
    while (!stack.empty()) {
      const ObjectId current = stack.back();
      stack.pop_back();
      for (const ObjectId target : heap.Get(current).slots) {
        if (!target.valid()) continue;
        if (target.site != site_id) {
          auto [it, inserted] = outref_stamps.emplace(target, stamp);
          if (!inserted) it->second = std::max(it->second, stamp);
          continue;
        }
        if (marks.emplace(target.index, stamp).second) {
          stack.push_back(target);
        }
      }
    }
  }

  // Sweep unmarked objects and forget stamps of dead inrefs.
  std::vector<ObjectId> to_free;
  heap.ForEach([&](ObjectId id, const Object&) {
    if (!marks.contains(id.index)) to_free.push_back(id);
  });
  for (const ObjectId id : to_free) {
    state.inref_stamps.erase(id);
    site.heap().Free(id);
  }
  stats_.objects_swept += to_free.size();

  // Send timestamp updates, batched per target site.
  std::map<SiteId, TimestampUpdateMsg> updates;
  for (const auto& [ref, stamp] : outref_stamps) {
    updates[ref.site].entries.push_back({ref, stamp});
  }
  for (auto& [target, msg] : updates) {
    msg.sender_trace_clock = now;
    ++stats_.update_messages;
    system_.network().Send(site_id, target, std::move(msg));
  }

  state.trace_clock = now;
}

void HughesCollector::UpdateThreshold() {
  probe_replies_.clear();
  ++probe_epoch_;
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    ++stats_.control_messages;
    system_.network().Send(
        kService, s,
        GlobalGcControlMsg{probe_epoch_, GlobalGcControlMsg::Phase::kProbe, 0});
  }
  system_.SettleNetwork();
  if (probe_replies_.size() < system_.site_count()) {
    // Some site never answered (down): the threshold cannot advance — the
    // drawback the paper highlights for global schemes.
    return;
  }
  std::int64_t minimum = probe_replies_.front();
  for (const std::int64_t clock : probe_replies_) {
    minimum = std::min(minimum, clock);
  }
  // Lagged threshold (see header): only clocks from lag_rounds ago are
  // considered fully propagated.
  min_clock_history_.push_back(minimum);
  if (min_clock_history_.size() > lag_rounds_) {
    threshold_ =
        min_clock_history_[min_clock_history_.size() - 1 - lag_rounds_];
  }
  stats_.threshold = threshold_;
}

void HughesCollector::RunRound() {
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    if (system_.network().IsSiteDown(s)) continue;  // crashed: no trace
    // Advance the clock a little so successive traces have distinct times.
    system_.scheduler().RunUntil(system_.scheduler().now() + 1);
    RunLocalTrace(s);
    system_.SettleNetwork();
  }
  UpdateThreshold();
}

}  // namespace dgc::baselines
