// Baseline 2 (Section 7, "Global Tracing"): Hughes's timestamp algorithm.
//
// Local traces propagate *timestamps* instead of mark bits: persistent and
// application roots always carry the current time; a trace pushes each
// root/inref timestamp to the outrefs reachable from it (max wins), and
// update messages push outref timestamps into the target sites' inrefs. An
// object whose inref timestamp falls below a global threshold is garbage.
//
// The threshold is the minimum, over ALL sites, of the site's last completed
// trace time — computed here by a central service polling every site (the
// logically-central variant of Ladin & Liskov). The paper's criticism, which
// bench_vs_baselines demonstrates: a single slow or crashed site holds the
// threshold down and prohibits collection in the entire system, whereas back
// tracing's cost and fault exposure stay local to the cycle.
//
// This baseline replaces the distance machinery entirely; it shares the
// Network (so messages are counted) and keeps its own timestamp tables.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "core/system.h"

namespace dgc::baselines {

// SIMPLIFICATION (documented in DESIGN.md): real Hughes computes the
// threshold with a virtual-time termination algorithm so that timestamp
// waves still in flight are never overtaken. Here the threshold is the
// minimum trace clock from `lag_rounds` rounds ago — safe whenever the
// world's inter-site diameter (in hops a timestamp needs to travel) is below
// the lag, which holds for every bench world. The property under comparison
// is unaffected: the threshold needs *all* sites, so one slow or crashed
// site blocks collection everywhere.
class HughesCollector {
 public:
  struct Stats {
    std::uint64_t update_messages = 0;
    std::uint64_t control_messages = 0;
    std::uint64_t objects_swept = 0;
    std::int64_t threshold = 0;
  };

  explicit HughesCollector(System& system, std::size_t lag_rounds = 10);

  /// One local trace at `site`: stamps outrefs, sends timestamp updates,
  /// sweeps objects dead under the current global threshold, records the
  /// site's trace clock.
  void RunLocalTrace(SiteId site);

  /// Central threshold service: polls every live site's trace clock (2N
  /// control messages) and publishes min as the new global threshold.
  /// A down site simply never answers; the threshold then stays put.
  void UpdateThreshold();

  /// Convenience: one full round (every site traces) + threshold update.
  void RunRound();

  [[nodiscard]] std::int64_t threshold() const { return threshold_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct SiteState {
    /// Timestamp per inref'd local object (max over sources' reports).
    std::map<ObjectId, std::int64_t> inref_stamps;
    /// Local-trace clock: the time of this site's last completed trace.
    std::int64_t trace_clock = 0;
  };

  bool HandleMessage(SiteId self, const Envelope& envelope);

  System& system_;
  std::vector<SiteState> states_;
  std::vector<std::int64_t> probe_replies_;
  std::uint64_t probe_epoch_ = 0;
  std::size_t lag_rounds_;
  std::vector<std::int64_t> min_clock_history_;
  std::int64_t threshold_ = 0;
  Stats stats_;
};

}  // namespace dgc::baselines
