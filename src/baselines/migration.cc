#include "baselines/migration.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace dgc::baselines {

MigrationCollector::MigrationCollector(System& system,
                                       Distance migrate_threshold)
    : system_(system), migrate_threshold_(migrate_threshold) {
  // Consume the migration traffic (the mutation itself happens eagerly
  // below; the messages exist so the network accounts for them).
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    system_.site(s).SetExtensionHandler([](const Envelope& envelope) {
      return std::holds_alternative<MigrateMsg>(envelope.payload) ||
             std::holds_alternative<PatchMsg>(envelope.payload);
    });
  }
}

std::optional<ObjectId> MigrationCollector::MigrateOneSuspect() {
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    for (const auto& [obj, entry] : system_.site(s).tables().inrefs()) {
      if (entry.garbage_flagged) continue;
      if (entry.sources.empty()) continue;
      if (entry.distance() <= migrate_threshold_) continue;
      if (!system_.site(s).heap().Exists(obj)) continue;
      const SiteId destination = entry.sources.begin()->first;  // min site id
      return Migrate(obj, destination);
    }
  }
  return std::nullopt;
}

std::size_t MigrationCollector::Converge(std::size_t max_migrations) {
  std::size_t migrated = 0;
  while (migrated < max_migrations) {
    const auto moved = MigrateOneSuspect();
    if (!moved.has_value()) break;
    ++migrated;
    // Let local traces digest the move (trim stale outrefs, re-derive
    // distances) before picking the next suspect.
    system_.RunRound();
  }
  return migrated;
}

ObjectId MigrationCollector::Migrate(ObjectId victim, SiteId destination) {
  DGC_CHECK(destination != victim.site);
  Site& origin = system_.site(victim.site);
  Site& dest = system_.site(destination);
  Heap& origin_heap = origin.heap();

  // Suspects are never roots or mutator-held.
  DGC_CHECK_MSG(!origin.IsRootObject(victim),
                "migrating a rooted object " << victim);

  const InrefEntry* old_inref = origin.tables().FindInref(victim);
  DGC_CHECK(old_inref != nullptr);
  const Distance carried_distance = old_inref->distance();
  const std::vector<ObjectId> slots = origin_heap.Get(victim).slots;

  // 1. Ship the object (one migrate message with the whole payload).
  ++stats_.migrations;
  ++stats_.migrate_messages;
  stats_.bytes_moved += 16 + 8 * slots.size();
  system_.network().Send(victim.site, destination,
                         MigrateMsg{{MigrateMsg::MovedObject{victim, slots}}});

  const ObjectId new_id = dest.heap().Allocate(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    dest.heap().SetSlot(new_id, i, slots[i]);
  }

  // 2. Patch every holder. One patch message per site that held the
  // reference (the "must patch references to migrated objects" cost).
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    Site& holder = system_.site(s);
    bool patched = false;
    std::vector<std::pair<ObjectId, std::size_t>> fixes;
    holder.heap().ForEach([&](ObjectId id, const Object& object) {
      for (std::size_t i = 0; i < object.slots.size(); ++i) {
        if (object.slots[i] == victim) fixes.emplace_back(id, i);
      }
    });
    for (const auto& [id, slot] : fixes) {
      holder.heap().SetSlot(id, slot, new_id);
      patched = true;
    }
    if (patched && s != destination) {
      ++stats_.patch_messages;
      system_.network().Send(destination, s, PatchMsg{victim, new_id});
    }
    // Drop the stale outref for the old identity.
    if (OutrefEntry* outref = holder.tables().FindOutref(victim)) {
      DGC_CHECK_MSG(outref->pin_count == 0,
                    "migrating an object pinned at site " << s);
      holder.tables().RemoveOutref(victim);
    }
  }
  origin.tables().RemoveInref(victim);
  origin_heap.Free(victim);

  // 3. Rebuild table entries for the new identity: every remote holder gets
  // an outref, and the destination's inref carries the old distance so the
  // suspect stays suspected (convergence continues next pass).
  for (SiteId s = 0; s < system_.site_count(); ++s) {
    if (s == destination) continue;
    Site& holder = system_.site(s);
    bool holds = false;
    holder.heap().ForEach([&](ObjectId, const Object& object) {
      for (const ObjectId ref : object.slots) {
        if (ref == new_id) holds = true;
      }
    });
    if (!holds) continue;
    auto [outref, created] = holder.tables().EnsureOutref(new_id);
    if (created) outref->distance = carried_distance;
    dest.tables().AddInrefSource(new_id, s, carried_distance,
                                 system_.scheduler().now());
  }
  // 4. The moved object's own outgoing references: remote ones need an
  // outref at the destination and a source entry at their owners.
  for (const ObjectId ref : slots) {
    if (!ref.valid() || ref.site == destination) continue;
    auto [outref, created] = dest.tables().EnsureOutref(ref);
    if (created) outref->distance = carried_distance;
    const InrefEntry* target_inref =
        system_.site(ref.site).tables().FindInref(ref);
    const Distance source_distance =
        target_inref != nullptr ? target_inref->distance() : carried_distance;
    system_.site(ref.site).tables().AddInrefSource(
        ref, destination, source_distance, system_.scheduler().now());
  }
  system_.SettleNetwork();

  DGC_LOG_DEBUG("migration: " << victim << " -> " << new_id << " at site "
                              << destination);
  return new_id;
}

}  // namespace dgc::baselines
