// Baseline 3 (Section 7, "Schemes with Locality"): migration-based cycle
// collection — the authors' own prior design (ML95) that this paper's back
// tracing replaces.
//
// Suspects (inrefs whose estimated distance exceeds a migration threshold)
// are physically moved to a site that references them; a distributed garbage
// cycle converges onto a single site, where the ordinary local trace
// reclaims it. The paper's criticisms, which bench_vs_baselines quantifies:
// migration ships whole objects (payload bytes, not just ids) and every
// reference to a moved object must be patched.
//
// Mechanics in this simulator: the object is re-created at the destination
// under a new identity (a MigrateMsg carries its slots), and one patch
// message per holder site rewrites references in place — the eager
// equivalent of forwarding pointers plus lazy patching, with identical
// message/byte counts, minus the transient forwarder state. Destination
// choice is the minimum source-site id, processed one suspect at a time with
// tables refreshed in between, which makes convergence deterministic.
#pragma once

#include <cstdint>
#include <optional>

#include "common/distance.h"
#include "common/ids.h"
#include "core/system.h"

namespace dgc::baselines {

class MigrationCollector {
 public:
  struct Stats {
    std::uint64_t migrations = 0;
    std::uint64_t migrate_messages = 0;
    std::uint64_t patch_messages = 0;
    std::uint64_t bytes_moved = 0;
  };

  MigrationCollector(System& system, Distance migrate_threshold);

  /// Migrates the first (lowest site, lowest object id) suspect whose inref
  /// distance exceeds the threshold. Returns the object's new identity, or
  /// nullopt if there was no suspect to move. Call between rounds of normal
  /// local traces (run the System with back tracing disabled).
  std::optional<ObjectId> MigrateOneSuspect();

  /// Runs migration passes interleaved with rounds until no suspect remains
  /// or `max_migrations` is reached. Returns the number of migrations.
  std::size_t Converge(std::size_t max_migrations = 1000);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// Moves `victim` to `destination`: re-creates it, patches every holder,
  /// and rebuilds the affected table entries.
  ObjectId Migrate(ObjectId victim, SiteId destination);

  System& system_;
  Distance migrate_threshold_;
  Stats stats_;
};

}  // namespace dgc::baselines
