// Internal invariant checking.
//
// DGC_CHECK is always on (the simulation is the test vehicle; silently
// corrupt state would invalidate every experiment). DGC_DCHECK compiles out
// in NDEBUG builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dgc {

/// Thrown when an internal invariant is violated. Tests assert on this; the
/// simulation never catches it.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void FailCheck(const char* expr, const char* file, int line,
                            const std::string& message);
}  // namespace detail

}  // namespace dgc

#define DGC_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::dgc::detail::FailCheck(#cond, __FILE__, __LINE__, std::string()); \
    }                                                                     \
  } while (false)

#define DGC_CHECK_MSG(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) {                                                \
      std::ostringstream dgc_check_os;                            \
      dgc_check_os << msg;                                        \
      ::dgc::detail::FailCheck(#cond, __FILE__, __LINE__,         \
                               dgc_check_os.str());               \
    }                                                             \
  } while (false)

#ifdef NDEBUG
#define DGC_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define DGC_DCHECK(cond) DGC_CHECK(cond)
#endif
