#include "common/check.h"
#include "common/ids.h"

#include <ostream>

namespace dgc {

std::ostream& operator<<(std::ostream& os, const ObjectId& id) {
  if (!id.valid()) return os << "obj(invalid)";
  return os << "obj(s" << id.site << ":" << id.index << ")";
}

std::ostream& operator<<(std::ostream& os, const TraceId& id) {
  if (!id.valid()) return os << "trace(invalid)";
  return os << "trace(s" << id.initiator << "#" << id.seq << ")";
}

std::ostream& operator<<(std::ostream& os, const FrameId& id) {
  if (!id.valid()) return os << "frame(none)";
  return os << "frame(s" << id.site << ":" << id.frame << ")";
}

namespace detail {

void FailCheck(const char* expr, const char* file, int line,
               const std::string& message) {
  std::ostringstream os;
  os << "invariant violation at " << file << ":" << line << ": " << expr;
  if (!message.empty()) os << " — " << message;
  throw InvariantViolation(os.str());
}

}  // namespace detail
}  // namespace dgc
