// Tunables for the collector and the simulated environment.
//
// Defaults follow the paper's guidance: the back threshold D2 = D + L where
// L is a conservatively estimated (large) cycle length (Section 4.3), and
// visiting a back trace bumps an ioref's threshold so live suspects stop
// generating traces while garbage retries periodically.
#pragma once

#include <cstdint>
#include <string>

#include "common/distance.h"

namespace dgc {

/// Simulated time, in abstract ticks. One mutator action or message hop costs
/// a few ticks; local traces are minutes apart in the paper, here hundreds of
/// ticks.
using SimTime = std::int64_t;

/// How insert messages are delivered (Section 2: "There are various
/// protocols for sending, deferring, or avoiding insert messages while
/// ensuring safety").
enum class InsertMode : std::uint8_t {
  /// Every operation that created a new outref completes only after the
  /// reference's owner acknowledges the insert (ML94's synchronous
  /// inserts). Simplest reasoning, highest latency.
  kSynchronous,
  /// Opportunistic deferral of the ack wait, applied only when it is
  /// provably safe: when the reference's owner IS the site that sent it
  /// (the common ship-my-own-object case), the insert is sent ahead of the
  /// operation's reply on the same FIFO channel — the owner registers the
  /// new source before the sender's operation completes, so no protection
  /// gap can open. References owned by third parties keep the synchronous
  /// ack wait (the sender's pinned outref is the retention that makes that
  /// case sound, and it is only guaranteed to be held while the operation
  /// is outstanding).
  kDeferred,
};

struct CollectorConfig {
  /// Suspicion threshold D (Section 3): iorefs with estimated distance > D
  /// are suspected; distance <= D is clean.
  Distance suspicion_threshold = 4;

  /// Conservative estimate L of the largest cycle length, in inter-site
  /// references. The initial back threshold is D2 = D + L.
  Distance estimated_cycle_length = 8;

  /// Increment applied to an ioref's back threshold each time a back trace
  /// visits it (Section 4.3), so live suspects eventually stop triggering.
  Distance back_threshold_increment = 4;

  /// Initial back threshold D2 = suspicion_threshold + estimated_cycle_length
  /// (saturating: configuring either near infinity must not wrap D2 around
  /// to a threshold every suspect immediately exceeds).
  [[nodiscard]] Distance initial_back_threshold() const {
    return AddDistance(suspicion_threshold, estimated_cycle_length);
  }

  /// Simulated duration of a local trace. Zero models an atomic trace
  /// (Section 6.1); a positive value exercises the double-buffered back
  /// information of Section 6.2.
  SimTime local_trace_duration = 0;

  /// Timeout for a pending back-step call; on expiry the waiting frame
  /// assumes the answer is Live (Section 4.6). Zero disables timeouts —
  /// except when NetworkConfig::reliable_delivery is on, where System
  /// derives 20 × (latency + latency_jitter + batch_window + 1) instead:
  /// with retransmission a lost call is a latency event, not a permanent
  /// loss, so "no timeout" would let a trace strand forever behind the one
  /// message whose retransmit budget ran out. The factor 20 dominates the
  /// exponential-backoff retransmit schedule for the first few attempts, so
  /// a call only times out (spurious Live) once a loss is effectively
  /// unrecoverable.
  SimTime back_call_timeout = 0;

  /// How long a participant waits for a trace's final outcome before
  /// assuming Live and clearing its visited marks (Section 4.6). Checked
  /// lazily at each local trace. Zero disables expiry — except when
  /// NetworkConfig::reliable_delivery is on, where System derives
  /// 10 × back_call_timeout (after deriving back_call_timeout as above):
  /// the report phase waits on a whole trace, which spans many call
  /// round-trips.
  SimTime report_timeout = 0;

  /// Every this-many local traces, a site resends ALL outref distances in
  /// its update messages instead of only changed ones, so distance
  /// information lost to dropped messages or crashed sites recovers
  /// (Section 2 assumes fault-tolerant update messaging, cf. ML94).
  /// Zero disables refresh (changes only).
  std::uint64_t update_refresh_period = 4;

  /// Optional source leases: an inref source not refreshed by an update or
  /// insert within this long is dropped at the next local trace, recovering
  /// from *lost removal* updates. UNSAFE if set below the sender's refresh
  /// cadence — a live source could be dropped. Zero (default) disables
  /// expiry.
  SimTime source_lease_ttl = 0;

  /// When false, only local tracing runs (the baseline that leaks cycles,
  /// as in Figure 1 where f and g are never collected).
  bool enable_back_tracing = true;

  /// Insert protocol variant (see InsertMode).
  InsertMode insert_mode = InsertMode::kSynchronous;

  /// Worker threads used by System::RunRound to compute per-site local
  /// traces. The paper's locality property makes the traces independent
  /// computations, so with > 1 thread a round computes every site's trace
  /// concurrently from the same snapshot and then applies the results
  /// deterministically in site order. The default of 1 preserves the
  /// historical sequential round (trace, settle, next site) bit for bit.
  std::size_t trace_threads = 1;

  /// Worker threads used *inside* one site's local trace: the clean-marking
  /// phase runs as a work-stealing traversal over slab shards, the sweep as
  /// an embarrassingly-parallel pass over slabs, and the incremental
  /// distance refold as a partitioned fold — all on the same persistent pool
  /// the per-site level uses (sites are coarse tasks, shards fine tasks).
  /// Results are bit-identical at any thread count: clean marks are claimed
  /// with first-claim-wins atomics but processed in distance layers, so every
  /// claim in a layer carries the same distance and the min-merge of outref
  /// distances is interleaving-independent. The default of 1 runs the
  /// historical sequential mark/sweep code path bit for bit (and spawns no
  /// threads at all when trace_threads is also 1).
  std::size_t mark_threads = 1;

  /// Verdict caching: when a back trace reports its outcome, every
  /// participant records the Garbage/Live verdict on the iorefs it visited,
  /// versioned by the local-trace epoch. MaybeStartTraces then skips
  /// suspects already covered by a completed trace instead of re-tracing
  /// the same cycle. Entries are evicted by the clean rule, by the second
  /// local-trace application after recording (the verdict stays actionable
  /// across exactly one apply, long enough for the sweep the flags trigger),
  /// and by crash-restart. Never unsafe: a skipped start only delays a
  /// retry by at most one round.
  bool enable_verdict_cache = true;

  /// Trace coalescing (shared back traces): when a trace's call lands on an
  /// ioref already visited by a concurrent *senior* trace (smaller TraceId),
  /// the junior branch does not re-traverse the shared subgraph; it parks as
  /// a waiter and inherits the senior's verdict when the report phase
  /// delivers it. Seniors always traverse junior-marked iorefs, so waiting
  /// chains are acyclic and cannot deadlock. Under message loss the waiter
  /// is reclaimed by report_timeout (assuming Live), like any stranded
  /// visit record.
  bool coalesce_traces = true;

  /// Multi-target back calls: inter-site back-step calls queued for the
  /// same destination during one simulated instant ride one
  /// BackCallBatchMsg instead of separate BackLocalCallMsg payloads.
  /// A batch of one degenerates to the plain message, so single-trace
  /// message counts (2E + P) are unchanged.
  bool batch_back_calls = true;

  /// Incremental local traces: reuse the previous trace's result when the
  /// site's collector inputs (heap contents, roots, ioref tables) are
  /// provably unchanged since that trace was computed. A fully quiescent
  /// site short-circuits the whole trace and re-serves the cached
  /// TraceResult; a site whose only change is suspected-inref distance
  /// drift (the steady ripening the distance heuristic produces every
  /// epoch) reuses all marks and memoized outsets and re-folds only the
  /// distance aggregation. Dirty tracking is strictly conservative — any
  /// mutation the barriers or tables observe forces a full trace — so the
  /// reused result is byte-identical to what a full trace would compute.
  /// Default off preserves the historical always-full-trace behavior
  /// bit for bit.
  bool incremental_trace = false;

  /// Differential self-check for incremental traces: every time the
  /// collector reuses cached state it ALSO runs the full trace and checks
  /// the two results are semantically identical (snapshots, distances,
  /// cleanliness, sweep set, back information), aborting on divergence.
  /// Costs a full trace per reuse — a correctness harness for tests, not a
  /// production mode. Ignored unless incremental_trace is on.
  bool incremental_differential = false;

  /// Incremental distance propagation: maintain per-object distance labels
  /// (minimum inter-site-hop estimate, Section 3's heuristic) under edge-
  /// level repair instead of re-deriving every distance with a full forward
  /// trace per round. Heap mutations are observed eagerly at the
  /// Heap::SetSlot write barrier; root and ioref contribution changes are
  /// reconciled lazily at trace time. An edge or contribution *decrease*
  /// repairs by a bounded ripple from the changed edge; an increase or
  /// delete invalidates and re-floors only the affected cone. The label
  /// plane then serves the trace result directly (clean set, sweep set,
  /// outref distances) with the suspect outsets recomputed against it. The
  /// labels fall back to full forward propagation when they go stale:
  /// crash-restart, a distance report crossing the suspicion threshold
  /// upward, or a repair exceeding distance_repair_budget. Every served
  /// result is bit-identical to the full trace's (the repairs are exact,
  /// not approximate); incremental_distance_differential asserts that.
  /// Default off preserves the historical recompute-every-round behavior
  /// bit for bit.
  bool incremental_distance = false;

  /// Differential self-check for incremental distance labels: every
  /// label-served trace ALSO runs the full trace and compares the results,
  /// and re-runs the full forward propagation and compares the repaired
  /// label plane against it bit for bit, aborting on divergence. A
  /// correctness harness for tests, not a production mode. Ignored unless
  /// incremental_distance is on.
  bool incremental_distance_differential = false;

  /// Maximum label writes one distance repair (ripple or cone re-floor) may
  /// perform before the maintainer declares the plane stale and the next
  /// trace falls back to full propagation. Caps the "bounded" in bounded
  /// repair: a topology change whose cone approaches the heap size is
  /// cheaper to re-propagate wholesale than to repair. Zero = unlimited.
  std::size_t distance_repair_budget = 4096;

  /// Graceful degradation under failures: when the network's failure
  /// detector (NetworkConfig::heartbeat_period) suspects the destination of
  /// a back trace's next remote step, the call is *parked* instead of being
  /// dispatched into the void — where it would burn a full
  /// back_call_timeout and yield a spurious Live verdict that bumps the
  /// suspect's back threshold and delays collection. Parked calls resume
  /// when the failure detector reports the peer healed; the waiting frame's
  /// call timeout is deferred while any child is parked (re-armed fresh on
  /// resume), so parking never converts into a timeout by itself. Inert
  /// unless the failure detector is enabled.
  bool park_on_suspected_failure = true;

  /// The paper's pseudocode returns Live as soon as any branch answers Live
  /// (§4.4). With parallel branches that can strand late-reporting
  /// participants outside the initiator's report set, leaking their visited
  /// marks until report_timeout expires them — so it is an opt-in latency
  /// optimization here (set report_timeout > 0 with it). When false
  /// (default), a frame replies only after all children answer; the message
  /// count 2E + P is identical either way.
  bool short_circuit_live_replies = false;
};

/// Which transport backend carries cross-site traffic (see src/net/transport.h).
enum class TransportKind : std::uint8_t {
  /// Single-threaded deterministic simulator: one Scheduler runs every site's
  /// events interleaved on the caller's thread. The historical (seed) path,
  /// bit for bit.
  kSim,
  /// In-process multi-threaded backend: each site's events run thread-confined
  /// on worker threads under a conservative time-stepped engine; cross-site
  /// messages flow through per-site MPSC inboxes. Reproducible for a given
  /// seed and produces the same garbage verdicts/reclaim sets as kSim.
  kThreaded,
  /// Real-process backend: each site is its own OS process connected to the
  /// coordinator over Unix-domain sockets (length-prefixed frames, TCP-ready
  /// addressing). The coordinator owns the Network, the seeds, and the same
  /// conservative time-stepped engine as kThreaded, so seeded runs produce
  /// the same garbage verdicts/reclaim sets as kSim. System cannot construct
  /// this backend (sites live in other processes); drive it through
  /// SocketWorld (net/socket_world.h) or `dgcsim --transport socket`.
  kSocket,
};

/// Knobs for TransportKind::kSocket: where the rendezvous socket lives, how
/// long the coordinator waits on a site process, and how the supervisor
/// restarts crashed ones. All real-time values are wall-clock milliseconds —
/// the one place the otherwise simulated-time system touches real clocks.
struct SocketConfig {
  /// Directory for the coordinator's listening socket, site snapshots, and
  /// any per-run scratch. Empty (default) creates a private mkdtemp
  /// directory, which keeps parallel test runs from colliding.
  std::string state_dir;

  /// How long the coordinator waits for one site's StepReply before marking
  /// the process unresponsive (SIGSTOP'd, wedged, or dying). The site is
  /// then treated as down — the failure detector and park machinery take
  /// over — until its late reply arrives or the supervisor replaces it.
  int step_timeout_ms = 2000;

  /// How long Settle() keeps waiting, in real time, for pending supervisor
  /// restarts and owed replies from unresponsive sites after simulated work
  /// runs dry. Past the grace, Settle returns with the world as settled as
  /// it can get (parked traces then resolve via protocol timeouts).
  int settle_grace_ms = 10'000;

  /// Supervisor restart backoff: first delay, then doubling per consecutive
  /// failure up to the cap.
  int restart_backoff_initial_ms = 50;
  int restart_backoff_max_ms = 2'000;

  /// A site incarnation that stays up this long is considered healthy: its
  /// next crash restarts from restart_backoff_initial_ms again and with a
  /// fresh max_restarts budget, so a process that crashes once an hour does
  /// not march toward give-up forever. Crash loops (every life shorter than
  /// the window) still exhaust the budget. Zero = never reset (every crash
  /// over the process's whole history counts against one budget).
  int restart_backoff_reset_ms = 30'000;

  /// Restarts the supervisor will attempt per site before giving up and
  /// leaving the site permanently down (the heartbeat/park machinery then
  /// degrades gracefully, as for any dark peer). Zero = never restart.
  int max_restarts = 8;

  /// Pipelined stepping (default): the coordinator keeps a StepRequest in
  /// flight to every live site simultaneously and absorbs the replies from a
  /// poll() readiness loop, processing them in site order so the lock-step
  /// determinism contract is untouched. Each site still gets the full
  /// step_timeout_ms — measured from its own request — before it is marked
  /// unresponsive. False restores the serial one-site-at-a-time
  /// request/blocking-reply loop (the differential baseline in
  /// bench_transport).
  bool pipelined_steps = true;

  /// When true (default) a site process snapshots its durable state (heap
  /// image, ref tables, back info, incarnation) after every step that
  /// changed it, write-temp-then-rename, so a kill -9 loses at most the
  /// in-flight step — which the insert-resend/refresh machinery repairs.
  /// When false a restarted site comes back empty, as Site::CrashRestart
  /// models.
  bool snapshot_each_step = true;
};

struct NetworkConfig {
  /// Fixed transit latency plus uniform jitter in [0, latency_jitter].
  SimTime latency = 5;
  SimTime latency_jitter = 0;

  /// Probability that a message is dropped in transit (timeouts recover).
  double drop_probability = 0.0;

  /// Piggybacking (Section 4.6: protocol messages "are small and can be
  /// piggybacked"): when positive, messages on a channel are held up to this
  /// long and flushed together as one wire message. Zero disables batching
  /// (every payload is its own wire message).
  SimTime batch_window = 0;

  /// Reliable channels: per-channel sequence numbers, cumulative acks,
  /// retransmission with exponential backoff + jitter and bounded attempts,
  /// and duplicate suppression on delivery. Loss injected by
  /// drop_probability (or a chaos plan's drop bursts) then costs latency
  /// instead of a permanent drop; the per-channel FIFO order of R1 is
  /// preserved by delivering in sequence-number order at the receiver.
  /// Default off keeps the unreliable datagram transport bit-for-bit.
  bool reliable_delivery = false;

  /// Base delay before the first retransmission of an unacked wire message;
  /// doubles per attempt (plus deterministic jitter of up to a quarter of
  /// the delay). Zero derives 2 × (latency + latency_jitter) +
  /// batch_window + 1 — just past one worst-case round trip, so an ack in
  /// flight usually beats the timer.
  SimTime retransmit_base = 0;

  /// Transmission attempts per wire message before it is abandoned as
  /// undeliverable (counted as dropped; the protocol timeouts then recover
  /// exactly as for an unreliable loss). Bounded so a crashed peer cannot
  /// accumulate retransmit state forever.
  int max_retransmit_attempts = 8;

  /// Heartbeat failure detector period; zero disables detection. The
  /// simulation models the detector analytically: each site is assumed to
  /// heartbeat every peer at this period, so an outage is "suspected" by
  /// everyone once it has lasted heartbeat_timeout, and "healed" one period
  /// plus a round trip after connectivity returns — without flooding the
  /// event queue with literal heartbeat messages (which would keep the
  /// drain-to-idle simulation from ever going idle).
  SimTime heartbeat_period = 0;

  /// Outage duration after which a down site or severed link is suspected.
  /// Zero derives 4 × heartbeat_period (four missed heartbeats).
  SimTime heartbeat_timeout = 0;

  /// Transport backend (see TransportKind). kSim is the seed-identical
  /// default; kThreaded runs sites concurrently on worker threads.
  TransportKind transport = TransportKind::kSim;

  /// Worker threads for TransportKind::kThreaded. Zero sizes the pool to
  /// hardware_concurrency (capped by the site count). Ignored under kSim.
  std::size_t transport_threads = 0;

  /// Worker threads in the transport-owned pool that backs both site-level
  /// stepping and the nested per-site parallelism (mark_threads shard
  /// batches, sharded staged-send replay). Zero sizes it automatically:
  /// transport_threads - 1 workers when no nested parallelism is requested
  /// (the historical sizing), otherwise enough extra workers for
  /// transport_nested_threads-way nesting, capped at
  /// max(transport_threads, hardware_concurrency) so a round with 8 sites
  /// and mark_threads = 8 does not balloon into 64 kernel threads.
  std::size_t transport_pool_threads = 0;

  /// Per-site nested parallelism the automatic pool sizing budgets for.
  /// System fills this from CollectorConfig::mark_threads; leave 0 when
  /// constructing a transport directly unless site code will fork nested
  /// batches on the transport pool.
  std::size_t transport_nested_threads = 0;

  /// Forces staged sends to be replayed into the Network serially on the
  /// coordinator even when the parallel sharded replay is eligible
  /// (unreliable delivery, no batching window, no jitter, no drop
  /// probability). The parallel path is bit-identical — prepared shards are
  /// committed in sender site order — so this knob exists for the
  /// sharded-vs-serial differential rows in bench_transport, not for
  /// correctness.
  bool transport_serial_replay = false;

  /// Soft capacity bound for each site's threaded-transport inbox. A hard
  /// bound would let a full inbox block the delivering coordinator and
  /// deadlock the barrier engine, so overflows are admitted but counted
  /// (TransportCounters::inbox_overflows) — the counter is the back-pressure
  /// signal. Zero = unbounded (nothing counted).
  std::size_t transport_queue_capacity = 0;

  /// Knobs for TransportKind::kSocket (ignored by the in-process backends).
  SocketConfig socket;
};

/// Derives the reliable-delivery protocol timeouts exactly as System does
/// (see CollectorConfig::back_call_timeout): with retransmission a lost call
/// is a latency event, so "no timeout" would strand a trace forever behind
/// the one message whose retransmit budget ran out. Shared so SocketWorld's
/// coordinator derives the same values System would for the same configs —
/// a precondition for the sim-vs-socket differential.
inline void DeriveReliabilityTimeouts(CollectorConfig& collector,
                                      const NetworkConfig& net) {
  if (!net.reliable_delivery) return;
  const SimTime unit = net.latency + net.latency_jitter + net.batch_window + 1;
  if (collector.back_call_timeout == 0) {
    collector.back_call_timeout = 20 * unit;
  }
  if (collector.report_timeout == 0) {
    collector.report_timeout = 10 * collector.back_call_timeout;
  }
}

}  // namespace dgc
