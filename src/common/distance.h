// Distance arithmetic for the distance heuristic (Section 3 of the paper).
//
// The distance of an object is the minimum number of inter-site references on
// any path from a persistent root to it; garbage has distance infinity.
// Distances are estimated conservatively and only ever compared and
// incremented by one, so saturating arithmetic on a 32-bit value suffices.
#pragma once

#include <cstdint>
#include <limits>

namespace dgc {

using Distance = std::uint32_t;

/// Estimated distance of unreachable iorefs; also the initial distance of an
/// outref before any local trace has propagated a value to it.
inline constexpr Distance kDistanceInfinity = std::numeric_limits<Distance>::max();

/// Saturating distance addition: every increment of a Distance value must go
/// through here (or NextDistance) so a near-infinity estimate pins at
/// infinity instead of wrapping around to a tiny — and therefore *clean* —
/// distance, which would unsuspect garbage forever.
[[nodiscard]] constexpr Distance AddDistance(Distance a, Distance b) {
  return a >= kDistanceInfinity - b ? kDistanceInfinity : a + b;
}

/// distance + 1 with saturation at infinity (a path through an unreachable
/// ioref stays unreachable).
[[nodiscard]] constexpr Distance NextDistance(Distance d) {
  return AddDistance(d, 1);
}

/// Label value assigned by the incremental distance plane to objects held
/// alive by a root whose own distance estimate is infinity (an inref entry
/// with an empty source list): still a retention root — everything it
/// reaches survives the sweep — but no finite hop count flows from it. One
/// below infinity, so such objects are distinguishable from garbage
/// (label == infinity) while staying suspect (label > any real threshold).
inline constexpr Distance kDistanceUnreachedRoot = kDistanceInfinity - 1;

}  // namespace dgc
