// Distance arithmetic for the distance heuristic (Section 3 of the paper).
//
// The distance of an object is the minimum number of inter-site references on
// any path from a persistent root to it; garbage has distance infinity.
// Distances are estimated conservatively and only ever compared and
// incremented by one, so saturating arithmetic on a 32-bit value suffices.
#pragma once

#include <cstdint>
#include <limits>

namespace dgc {

using Distance = std::uint32_t;

/// Estimated distance of unreachable iorefs; also the initial distance of an
/// outref before any local trace has propagated a value to it.
inline constexpr Distance kDistanceInfinity = std::numeric_limits<Distance>::max();

/// distance + 1 with saturation at infinity (a path through an unreachable
/// ioref stays unreachable).
[[nodiscard]] constexpr Distance NextDistance(Distance d) {
  return d == kDistanceInfinity ? kDistanceInfinity : d + 1;
}

}  // namespace dgc
