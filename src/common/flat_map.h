// FlatMap: a sorted-vector map with the std::map surface the hot paths use.
//
// The ref tables, the site's root/ack books, and the network's per-channel
// state are all keyed lookups that are read and iterated far more often than
// they are structurally mutated. std::map pays a node allocation per entry
// and a pointer chase per comparison; at 10^6 objects those dominate the
// per-mutation profile. A sorted std::vector keeps the same ordered,
// deterministic iteration (so verdict and sweep order are bit-identical to
// the std::map code) while lookups become cache-friendly binary searches and
// iteration a linear scan.
//
// Deliberate differences from std::map, which every call site must respect:
//
//   * insert/erase invalidate ALL iterators, references, and entry pointers
//     into the map (vector reallocation / element shifting). Callers may
//     hold a pointer only across non-structural mutations — the same
//     discipline the OutsetMap of PR 3 established;
//   * value_type is std::pair<Key, T> (non-const Key): structured bindings
//     and `it->first` read identically, but writing the key of a live entry
//     is undefined — nothing in this codebase does;
//   * erase(key) and erase(iterator) are O(n) shifts, insert is O(n) —
//     acceptable because the tables see ~2 structural ops per mutation
//     against thousands of lookups, and n is the *active* entry count.
//
// Spare-capacity accounting: the map never shrinks its vector, so steady
// state churn (insert/erase cycles under workload) is served from already-
// allocated slots. `stats().reuses` counts inserts absorbed by spare
// capacity and `stats().grows` counts reallocations — the observable that
// tells a scale run its tables stopped allocating.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"

namespace dgc {

struct FlatMapStats {
  std::uint64_t inserts = 0;  // structural insertions
  std::uint64_t erases = 0;   // structural removals
  std::uint64_t reuses = 0;   // inserts absorbed by spare capacity
  std::uint64_t grows = 0;    // inserts that reallocated the vector
};

template <typename Key, typename T, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;

  FlatMap() = default;

  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }
  [[nodiscard]] const_iterator cbegin() const { return entries_.cbegin(); }
  [[nodiscard]] const_iterator cend() const { return entries_.cend(); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return entries_.capacity(); }
  void reserve(std::size_t n) { entries_.reserve(n); }
  void clear() { entries_.clear(); }

  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            KeyLess{Compare{}});
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            KeyLess{Compare{}});
  }

  [[nodiscard]] iterator find(const Key& key) {
    const iterator it = lower_bound(key);
    return it != entries_.end() && KeysEqual(it->first, key) ? it
                                                             : entries_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const const_iterator it = lower_bound(key);
    return it != entries_.end() && KeysEqual(it->first, key) ? it
                                                             : entries_.end();
  }

  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != entries_.end();
  }
  [[nodiscard]] std::size_t count(const Key& key) const {
    return contains(key) ? 1 : 0;
  }

  [[nodiscard]] T& at(const Key& key) {
    const iterator it = find(key);
    DGC_CHECK_MSG(it != entries_.end(), "FlatMap::at: key not found");
    return it->second;
  }
  [[nodiscard]] const T& at(const Key& key) const {
    const const_iterator it = find(key);
    DGC_CHECK_MSG(it != entries_.end(), "FlatMap::at: key not found");
    return it->second;
  }

  /// Inserts default-constructed-from-args if absent; like std::map, the
  /// mapped value is untouched when the key already exists.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    iterator it = lower_bound(key);
    if (it != entries_.end() && KeysEqual(it->first, key)) return {it, false};
    it = Insert(it, value_type(std::piecewise_construct,
                               std::forward_as_tuple(key),
                               std::forward_as_tuple(
                                   std::forward<Args>(args)...)));
    return {it, true};
  }

  /// std::map::emplace for the (key, value) shape used in this codebase.
  template <typename K, typename V>
  std::pair<iterator, bool> emplace(K&& key, V&& value) {
    const Key k(std::forward<K>(key));
    iterator it = lower_bound(k);
    if (it != entries_.end() && KeysEqual(it->first, k)) return {it, false};
    it = Insert(it, value_type(k, T(std::forward<V>(value))));
    return {it, true};
  }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  std::size_t erase(const Key& key) {
    const iterator it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    ++stats_.erases;
    return 1;
  }
  iterator erase(const_iterator it) {
    ++stats_.erases;
    return entries_.erase(it);
  }

  /// Removes every entry matching the predicate in one linear pass (the
  /// iterator-erase loop would be quadratic). Returns the count removed.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    const std::size_t removed = std::erase_if(
        entries_, [&pred](const value_type& entry) { return pred(entry); });
    stats_.erases += removed;
    return removed;
  }

  [[nodiscard]] const FlatMapStats& stats() const { return stats_; }

 private:
  struct KeyLess {
    Compare compare;
    bool operator()(const value_type& entry, const Key& key) const {
      return compare(entry.first, key);
    }
  };
  [[nodiscard]] static bool KeysEqual(const Key& a, const Key& b) {
    const Compare compare{};
    return !compare(a, b) && !compare(b, a);
  }

  iterator Insert(iterator position, value_type&& entry) {
    ++stats_.inserts;
    if (entries_.size() < entries_.capacity()) {
      ++stats_.reuses;
    } else {
      ++stats_.grows;
    }
    return entries_.insert(position, std::move(entry));
  }

  storage_type entries_;
  FlatMapStats stats_;
};

}  // namespace dgc
