// Strong identifier types shared by every subsystem.
//
// The simulated world is a set of sites; each site owns objects. An object is
// globally named by (owning site, local index). Back traces are globally
// named by (initiating site, per-site sequence number), and activation frames
// by (hosting site, per-site frame counter).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace dgc {

/// Identifies a site (a node that stores objects and runs a local collector).
using SiteId = std::uint32_t;

inline constexpr SiteId kInvalidSite = std::numeric_limits<SiteId>::max();

/// Globally unique name of an object: the owning site plus a site-local index.
/// Objects never migrate in the core scheme, so the owner is fixed. (The
/// migration baseline models moved objects with forwarding entries instead of
/// renaming, matching how migration-based collectors patch references.)
struct ObjectId {
  SiteId site = kInvalidSite;
  std::uint64_t index = 0;

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;

  [[nodiscard]] bool valid() const { return site != kInvalidSite; }
};

inline constexpr ObjectId kInvalidObject{};

std::ostream& operator<<(std::ostream& os, const ObjectId& id);

/// Globally unique back-trace identifier: initiator site in the high bits,
/// a per-initiator sequence number in the low bits (Section 4.7 of the paper:
/// "The site starting a trace assigns it a unique id").
struct TraceId {
  SiteId initiator = kInvalidSite;
  std::uint32_t seq = 0;

  friend bool operator==(const TraceId&, const TraceId&) = default;
  friend auto operator<=>(const TraceId&, const TraceId&) = default;

  [[nodiscard]] bool valid() const { return initiator != kInvalidSite; }
};

std::ostream& operator<<(std::ostream& os, const TraceId& id);

/// Names an activation frame of a back trace: the site hosting the frame plus
/// a site-local counter. Replies to back-step calls are addressed to frames.
struct FrameId {
  SiteId site = kInvalidSite;
  std::uint64_t frame = 0;

  friend bool operator==(const FrameId&, const FrameId&) = default;
  friend auto operator<=>(const FrameId&, const FrameId&) = default;

  [[nodiscard]] bool valid() const { return site != kInvalidSite; }
};

inline constexpr FrameId kNoFrame{};

std::ostream& operator<<(std::ostream& os, const FrameId& id);

namespace detail {
// 64-bit mix (splitmix64 finalizer) used to combine id fields into hashes.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace detail

}  // namespace dgc

template <>
struct std::hash<dgc::ObjectId> {
  std::size_t operator()(const dgc::ObjectId& id) const noexcept {
    return static_cast<std::size_t>(
        dgc::detail::mix64((static_cast<std::uint64_t>(id.site) << 40) ^ id.index));
  }
};

template <>
struct std::hash<dgc::TraceId> {
  std::size_t operator()(const dgc::TraceId& id) const noexcept {
    return static_cast<std::size_t>(dgc::detail::mix64(
        (static_cast<std::uint64_t>(id.initiator) << 32) | id.seq));
  }
};

template <>
struct std::hash<dgc::FrameId> {
  std::size_t operator()(const dgc::FrameId& id) const noexcept {
    return static_cast<std::size_t>(
        dgc::detail::mix64((static_cast<std::uint64_t>(id.site) << 40) ^ id.frame));
  }
};
