#include "common/logging.h"

#include <iostream>
#include <utility>

namespace dgc {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger()
    : sink_([](LogLevel level, const std::string& message) {
        const char* tag = "?";
        switch (level) {
          case LogLevel::kError: tag = "E"; break;
          case LogLevel::kInfo: tag = "I"; break;
          case LogLevel::kDebug: tag = "D"; break;
          case LogLevel::kTrace: tag = "T"; break;
          case LogLevel::kOff: tag = "-"; break;
        }
        std::cerr << "[dgc:" << tag << "] " << message << '\n';
      }) {}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::Write(LogLevel level, const std::string& message) {
  if (sink_) sink_(level, message);
}

}  // namespace dgc
