// Minimal leveled logging.
//
// The simulator is single-threaded by construction (a discrete-event loop),
// so the logger keeps no locks. Logging defaults to off; tests and examples
// raise the level when diagnosing a scenario.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dgc {

enum class LogLevel { kOff = 0, kError, kInfo, kDebug, kTrace };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level <= level_ && level_ != LogLevel::kOff; }

  /// Replaces the output sink (default: stderr). Tests install a capture sink.
  void set_sink(Sink sink);

  void Write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

}  // namespace dgc

#define DGC_LOG(level, expr)                                        \
  do {                                                              \
    if (::dgc::Logger::Instance().enabled(level)) {                 \
      std::ostringstream dgc_log_os;                                \
      dgc_log_os << expr;                                           \
      ::dgc::Logger::Instance().Write(level, dgc_log_os.str());     \
    }                                                               \
  } while (false)

#define DGC_LOG_INFO(expr) DGC_LOG(::dgc::LogLevel::kInfo, expr)
#define DGC_LOG_DEBUG(expr) DGC_LOG(::dgc::LogLevel::kDebug, expr)
#define DGC_LOG_TRACE(expr) DGC_LOG(::dgc::LogLevel::kTrace, expr)
#define DGC_LOG_ERROR(expr) DGC_LOG(::dgc::LogLevel::kError, expr)
