// Deterministic pseudo-random number generator.
//
// All randomness in the simulation (workload generation, mutator scheduling,
// network latency jitter, drop injection) flows through Rng seeded from the
// experiment configuration, so every run is reproducible bit-for-bit.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace dgc {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, and trivially
/// seedable from a single 64-bit value via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 stream expands the seed into the full state.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be positive.
  std::uint64_t NextBelow(std::uint64_t bound) {
    DGC_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) {
    DGC_CHECK(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Derives an independent child generator (for per-site streams).
  Rng Fork() { return Rng(Next()); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace dgc
