#include "common/worker_pool.h"

#include <algorithm>
#include <exception>

namespace dgc {

/// One RunBatch's shared bookkeeping. Helpers hold a shared_ptr, so a helper
/// that wakes after the batch finished only touches the (still-alive) atomic
/// cursor and returns. The task function itself is borrowed from the caller's
/// frame: a task only executes after winning a claim, and the caller cannot
/// leave RunBatch until `done` reaches `count` — which happens strictly after
/// every claimed execution — so the borrow cannot dangle.
struct WorkerPool::BatchState {
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr failure;  // written by the first failing task, under mu
};

namespace {

/// Claims and runs tasks until the batch cursor is exhausted. Returns how
/// many tasks this thread executed. Shared by pool workers and the calling
/// thread so both sides run the identical claim/execute/complete protocol.
std::size_t DrainBatch(WorkerPool::BatchState& batch) {
  std::size_t executed = 0;
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return executed;
    if (!batch.failed.load(std::memory_order_relaxed)) {
      try {
        (*batch.task)(i);
        ++executed;
      } catch (...) {
        // First failure wins; the remaining claims are skipped but still
        // counted as done so the caller's completion wait stays exact.
        if (!batch.failed.exchange(true)) {
          std::lock_guard<std::mutex> lock(batch.mu);
          batch.failure = std::current_exception();
        }
      }
    }
    const std::size_t finished =
        batch.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (finished == batch.count) {
      // The lock pairs with the caller's predicate check, so this notify
      // cannot slip between its check and its wait.
      std::lock_guard<std::mutex> lock(batch.mu);
      batch.done_cv.notify_all();
    }
  }
}

}  // namespace

WorkerPool::WorkerPool(std::size_t worker_threads) {
  threads_.reserve(worker_threads);
  for (std::size_t i = 0; i < worker_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<BatchState> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !tickets_.empty(); });
      if (stopping_ && tickets_.empty()) return;
      batch = std::move(tickets_.front());
      tickets_.pop_front();
    }
    const std::size_t executed = DrainBatch(*batch);
    pool_tasks_run_.fetch_add(executed, std::memory_order_relaxed);
  }
}

void WorkerPool::RunBatch(std::size_t task_count,
                          const std::function<void(std::size_t)>& task,
                          std::size_t max_concurrency) {
  if (task_count == 0) return;
  const auto batch = std::make_shared<BatchState>();
  batch->task = &task;
  batch->count = task_count;

  if (max_concurrency == 0) max_concurrency = 1;
  const std::size_t helpers =
      std::min({max_concurrency - 1, threads_.size(), task_count - 1});
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++batches_;
    helpers_dispatched_ += helpers;
    for (std::size_t i = 0; i < helpers; ++i) tickets_.push_back(batch);
  }
  if (helpers == 1) {
    work_cv_.notify_one();
  } else if (helpers > 1) {
    work_cv_.notify_all();
  }

  // The caller claims tasks alongside the helpers, then waits for stragglers
  // (helpers still executing tasks the caller could not claim).
  DrainBatch(*batch);
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done_cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->count;
    });
  }
  tasks_run_.fetch_add(task_count, std::memory_order_relaxed);

  if (batch->failed.load(std::memory_order_acquire)) {
    std::exception_ptr failure;
    {
      std::lock_guard<std::mutex> lock(batch->mu);
      failure = batch->failure;
    }
    if (failure) std::rethrow_exception(failure);
  }
}

WorkerPoolStats WorkerPool::stats() const {
  WorkerPoolStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.batches = batches_;
    out.helpers_dispatched = helpers_dispatched_;
  }
  out.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  out.pool_tasks_run = pool_tasks_run_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace dgc
