// A persistent, bounded pool of worker threads shared by both levels of the
// collector's parallelism: per-site local traces (coarse tasks) and the
// intra-site mark/sweep shards inside one trace (fine tasks).
//
// The pool exists because respawning std::threads every collector round costs
// more than the traces it accelerates on small heaps, and because the two
// scheduling levels must share one bounded set of threads — a round with 8
// sites and mark_threads = 8 must not balloon into 64 kernel threads.
//
// Execution model: RunBatch is a caller-participates parallel-for. The
// calling thread always executes tasks itself, and up to max_concurrency - 1
// pool workers join in by claiming task indices from a shared atomic cursor.
// Because the caller participates, RunBatch makes progress even when every
// pool worker is busy (or when the pool has zero threads) — a nested RunBatch
// issued from inside a pool task therefore degrades gracefully instead of
// deadlocking: the site-level task simply runs its own shard tasks while any
// free workers help.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dgc {

struct WorkerPoolStats {
  std::uint64_t batches = 0;       // RunBatch invocations
  std::uint64_t tasks_run = 0;     // task executions across all batches
  std::uint64_t pool_tasks_run = 0;  // executed by pool threads (not callers)
  std::uint64_t helpers_dispatched = 0;  // helper tickets queued to the pool
  /// Fraction of task executions the pool's threads absorbed (the rest ran
  /// on calling threads). 0 on a zero-thread pool or before any batch.
  [[nodiscard]] double occupancy() const {
    return tasks_run == 0 ? 0.0
                          : static_cast<double>(pool_tasks_run) /
                                static_cast<double>(tasks_run);
  }
};

class WorkerPool {
 public:
  /// Spawns `worker_threads` persistent threads (0 is valid: every RunBatch
  /// then runs entirely on the calling thread, with no synchronization
  /// beyond the batch bookkeeping).
  explicit WorkerPool(std::size_t worker_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t worker_threads() const { return threads_.size(); }

  /// Executes task(0) … task(task_count - 1), each exactly once, with at most
  /// `max_concurrency` executions in flight (the caller plus up to
  /// max_concurrency - 1 pool workers). Blocks until every task finished.
  /// The first exception thrown by a task is rethrown here after remaining
  /// claimed tasks are skipped. Safe to call from inside a pool task.
  void RunBatch(std::size_t task_count,
                const std::function<void(std::size_t)>& task,
                std::size_t max_concurrency);

  [[nodiscard]] WorkerPoolStats stats() const;

  /// Per-RunBatch shared bookkeeping (public so the claim/execute loop can
  /// live in a translation-unit-local helper; not part of the API).
  struct BatchState;

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<BatchState>> tickets_;  // one entry per helper
  bool stopping_ = false;

  // Stats are written under mu_ (batches/helpers at dispatch) or with
  // atomics (task counts, updated from many threads).
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> pool_tasks_run_{0};
  std::uint64_t batches_ = 0;
  std::uint64_t helpers_dispatched_ = 0;
};

}  // namespace dgc
