#include "core/inspect.h"

#include <algorithm>
#include <sstream>

namespace dgc {

namespace {

void AppendDistance(std::ostringstream& os, Distance d) {
  if (d == kDistanceInfinity) {
    os << "inf";
  } else {
    os << d;
  }
}

}  // namespace

std::string DescribeSite(const Site& site) {
  std::ostringstream os;
  const Distance threshold = site.config().suspicion_threshold;
  os << "site " << site.id() << ": " << site.heap().object_count()
     << " objects, " << site.heap().persistent_roots().size()
     << " persistent roots, " << site.AppRootObjects().size()
     << " app roots" << (site.trace_in_flight() ? " [trace in flight]" : "")
     << "\n";

  os << "  inrefs (" << site.tables().inrefs().size() << "):\n";
  for (const auto& [obj, entry] : site.tables().inrefs()) {
    os << "    " << obj << " dist=";
    AppendDistance(os, entry.distance());
    os << " sources={";
    bool first = true;
    for (const auto& [source, info] : entry.sources) {
      if (!first) os << ",";
      os << "s" << source << ":";
      AppendDistance(os, info.distance);
      first = false;
    }
    os << "}" << (entry.clean(threshold) ? " clean" : " SUSPECTED")
       << (entry.garbage_flagged ? " FLAGGED" : "")
       << (entry.clean_override ? " (barrier-cleaned)" : "");
    if (!entry.visited.empty()) os << " visited:" << entry.visited.size();
    os << "\n";
  }

  os << "  outrefs (" << site.tables().outrefs().size() << "):\n";
  for (const auto& [ref, entry] : site.tables().outrefs()) {
    os << "    " << ref << " dist=";
    AppendDistance(os, entry.distance);
    os << (entry.clean() ? " clean" : " SUSPECTED");
    if (entry.pin_count > 0) os << " pins=" << entry.pin_count;
    if (entry.clean_override) os << " (barrier-cleaned)";
    os << " back_threshold=" << entry.back_threshold;
    const auto inset = site.back_info().outref_insets.find(ref);
    if (inset != site.back_info().outref_insets.end()) {
      os << " inset={";
      for (std::size_t i = 0; i < inset->second.size(); ++i) {
        if (i > 0) os << ",";
        os << inset->second[i];
      }
      os << "}";
    }
    if (!entry.visited.empty()) os << " visited:" << entry.visited.size();
    os << "\n";
  }

  const BackTracerStats& stats = site.back_tracer().stats();
  os << "  back tracer: " << stats.traces_started << " started, "
     << stats.traces_completed_garbage << " garbage, "
     << stats.traces_completed_live << " live, "
     << site.back_tracer().active_frames() << " active frames\n";
  if (site.config().incremental_trace) {
    os << "  incremental: " << site.stats().quiescent_skips
       << " quiescent skips, " << site.stats().objects_retraced
       << " objects retraced, " << site.stats().outsets_reused
       << " outsets reused, " << site.heap().dirty_object_count()
       << " dirty objects\n";
  }
  if (site.config().mark_threads > 1) {
    os << "  parallel mark: " << site.config().mark_threads << " threads, "
       << site.stats().mark_wall_ns << " ns marking, "
       << site.stats().mark_steals << " shard steals\n";
  }
  if (site.config().incremental_distance) {
    os << "  distance labels: " << site.stats().distance_repairs
       << " repairs, " << site.stats().distance_fallbacks << " fallbacks, "
       << site.stats().objects_relabeled << " objects relabeled, "
       << site.stats().label_serves << " label serves\n";
  }
  if (site.stats().transport_handoffs + site.stats().transport_staged_sends >
      0) {
    os << "  transport: " << site.stats().transport_handoffs
       << " inbox handoffs, " << site.stats().transport_staged_sends
       << " staged sends, queue peak " << site.stats().transport_queue_peak
       << " (contention " << site.stats().transport_queue_contention
       << ", overflows " << site.stats().transport_queue_overflows << ")\n";
  }
  os << "  ref tables: " << site.stats().table_slot_capacity
     << " slots (occupancy " << site.stats().table_occupancy << "), "
     << site.stats().table_slot_reuses << " slot reuses, "
     << site.stats().table_slot_grows << " grows\n";
  return os.str();
}

std::string DescribeSystem(const System& system) {
  std::ostringstream os;
  os << "system: " << system.site_count() << " sites, "
     << system.TotalObjects() << " objects stored, "
     << system.TotalObjectsReclaimed() << " reclaimed, round "
     << system.rounds_run() << "\n";
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const Site& site = system.site(s);
    std::size_t suspected_in = 0;
    for (const auto& [obj, entry] : site.tables().inrefs()) {
      (void)obj;
      if (!entry.clean(site.config().suspicion_threshold)) ++suspected_in;
    }
    std::size_t suspected_out = 0;
    for (const auto& [ref, entry] : site.tables().outrefs()) {
      (void)ref;
      if (!entry.clean()) ++suspected_out;
    }
    os << "  site " << s << ": " << site.heap().object_count() << " objects, "
       << site.tables().inrefs().size() << " inrefs (" << suspected_in
       << " suspected), " << site.tables().outrefs().size() << " outrefs ("
       << suspected_out << " suspected), " << site.stats().local_traces
       << " traces" << (system.network().IsSiteDown(s) ? " [DOWN]" : "")
       << "\n";
  }
  const NetworkStats& net = system.network().stats();
  os << "  network: " << net.inter_site_sent << " logical msgs ("
     << net.wire_messages << " wire), " << net.approx_bytes << " bytes, "
     << net.dropped << " dropped\n";
  if (net.retransmits + net.dup_suppressed + net.acks_sent +
          net.stale_incarnation_rejected >
      0) {
    os << "  reliable channels: " << net.retransmits << " retransmits ("
       << net.retransmits_exhausted << " exhausted), " << net.dup_suppressed
       << " dup-suppressed, " << net.acks_sent << " acks, "
       << net.stale_incarnation_rejected << " stale-incarnation rejects\n";
  }
  const BackTracerStats bt = system.AggregateBackTracerStats();
  os << "  back traces: " << bt.traces_started << " started, "
     << bt.traces_completed_garbage << " garbage, "
     << bt.traces_completed_live << " live, " << bt.clean_rule_hits
     << " clean-rule hits, " << bt.timeouts << " timeouts\n";
  if (net.fd_suspicions + bt.calls_parked > 0) {
    os << "  failure detector: " << net.fd_suspicions << " suspected outages, "
       << net.fd_recoveries << " recoveries, " << bt.calls_parked
       << " calls parked (" << bt.calls_unparked << " resumed)\n";
  }
  const WorkerPoolStats pool = system.worker_pool().stats();
  if (pool.batches > 0) {
    std::uint64_t steals = 0;
    std::uint64_t mark_ns = 0;
    for (SiteId s = 0; s < system.site_count(); ++s) {
      steals += system.site(s).stats().mark_steals;
      mark_ns += system.site(s).stats().mark_wall_ns;
    }
    os << "  worker pool: " << pool.batches << " batches, " << pool.tasks_run
       << " tasks (occupancy " << pool.occupancy() << "), "
       << system.trace_executor().stats().batches << " trace rounds, "
       << mark_ns << " ns marking, " << steals << " shard steals\n";
  }
  if (system.transport().kind() == TransportKind::kThreaded) {
    const TransportCounters transport = system.transport().counters();
    os << "  transport: threaded, " << transport.timesteps << " timesteps, "
       << transport.parallel_phases << " parallel phases, "
       << transport.site_steps << " site steps, " << transport.handoffs
       << " inbox handoffs, " << transport.staged_sends
       << " staged sends (queue peak " << transport.inbox_peak_depth
       << ", contention " << transport.inbox_contention << ", overflows "
       << transport.inbox_overflows << ")\n";
  }
  return os.str();
}

std::string ToDot(const System& system) {
  std::ostringstream os;
  os << "digraph dgc {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const Site& site = system.site(s);
    os << "  subgraph cluster_site" << s << " {\n"
       << "    label=\"site " << s << "\";\n";
    site.heap().ForEach([&](ObjectId id, const Object&) {
      os << "    \"" << id.site << ":" << id.index << "\"";
      std::vector<std::string> attrs;
      const auto& roots = site.heap().persistent_roots();
      if (std::find(roots.begin(), roots.end(), id) != roots.end()) {
        attrs.push_back("shape=doublecircle");
      }
      const InrefEntry* inref = site.tables().FindInref(id);
      if (inref != nullptr && inref->garbage_flagged) {
        attrs.push_back("style=filled");
        attrs.push_back("fillcolor=gray");
      } else if (inref != nullptr &&
                 !inref->clean(site.config().suspicion_threshold)) {
        attrs.push_back("style=dashed");
      }
      if (!attrs.empty()) {
        os << " [";
        for (std::size_t i = 0; i < attrs.size(); ++i) {
          if (i > 0) os << ",";
          os << attrs[i];
        }
        os << "]";
      }
      os << ";\n";
    });
    os << "  }\n";
  }
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const Site& site = system.site(s);
    site.heap().ForEach([&](ObjectId id, const Object& object) {
      for (const ObjectId target : object.slots) {
        if (!target.valid()) continue;
        os << "  \"" << id.site << ":" << id.index << "\" -> \""
           << target.site << ":" << target.index << "\"";
        if (target.site != id.site) {
          os << " [";
          const OutrefEntry* outref = site.tables().FindOutref(target);
          if (outref != nullptr) {
            os << "label=\"d=";
            if (outref->distance == kDistanceInfinity) {
              os << "inf";
            } else {
              os << outref->distance;
            }
            os << "\"" << (outref->clean() ? "" : ",style=dashed,color=red");
          }
          os << "]";
        }
        os << ";\n";
      }
    });
  }
  os << "}\n";
  return os.str();
}

}  // namespace dgc
