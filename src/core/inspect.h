// Human-readable views of collector state, for debugging and the examples:
// per-site table dumps, a whole-system summary, and a Graphviz export of the
// distributed object graph with the ioref overlay.
#pragma once

#include <string>

#include "core/site.h"
#include "core/system.h"

namespace dgc {

/// Multi-line description of one site: heap, roots, inref/outref tables
/// (distances, cleanliness, flags, pins), back information, tracer state.
std::string DescribeSite(const Site& site);

/// One line per site plus aggregate network/tracer statistics.
std::string DescribeSystem(const System& system);

/// Graphviz DOT: sites as clusters, objects as nodes (roots emphasized,
/// garbage-flagged inref targets marked), references as edges (inter-site
/// edges labeled with the outref's distance). Paste into `dot -Tsvg`.
std::string ToDot(const System& system);

}  // namespace dgc
