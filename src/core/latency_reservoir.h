// Bounded-memory latency percentiles (reservoir sampling, algorithm R).
//
// An open-loop scale run observes millions of per-cycle time-to-collect
// latencies; storing them all to compute p50/p99 at the end would cost more
// memory than the heaps under test. A fixed-size uniform reservoir keeps an
// unbiased sample of everything recorded so far, so quantile estimates stay
// honest over arbitrarily long runs at O(capacity) memory.
//
// Deterministic: the replacement choices come from a seeded Rng, so two runs
// with the same seed and the same observation stream report identical
// percentiles.
//
// Threading: explicitly single-writer. Record() mutates the sample vector,
// the seen counter and the Rng without any synchronization; under the
// threaded transport all recording must stay on one thread (the drivers
// record from the coordinator between engine phases, which satisfies this).
// Concurrent Record() calls are a data race — wrap per-thread reservoirs
// and merge instead if that is ever needed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/config.h"
#include "common/rng.h"

namespace dgc {

class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = 4096,
                            std::uint64_t seed = 0x1a7e4c7ULL)
      : capacity_(capacity), rng_(seed) {
    DGC_CHECK(capacity_ > 0);
    samples_.reserve(capacity_);
  }

  /// Records one observation. The first `capacity` observations are kept
  /// verbatim; afterwards each new observation replaces a uniformly random
  /// slot with probability capacity / seen (algorithm R).
  void Record(SimTime value) {
    ++seen_;
    if (samples_.size() < capacity_) {
      samples_.push_back(value);
      return;
    }
    const std::uint64_t slot = rng_.NextBelow(seen_);
    if (slot < capacity_) samples_[slot] = value;
  }

  /// Total observations recorded (not the retained sample count).
  [[nodiscard]] std::uint64_t count() const { return seen_; }
  /// Observations currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Nearest-rank quantile of the retained sample, q in [0, 1]. Returns 0
  /// when nothing has been recorded.
  [[nodiscard]] SimTime Quantile(double q) const {
    if (samples_.empty()) return 0;
    DGC_CHECK(q >= 0.0 && q <= 1.0);
    std::vector<SimTime> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }

  void clear() {
    samples_.clear();
    seen_ = 0;
  }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::vector<SimTime> samples_;
  std::uint64_t seen_ = 0;
};

}  // namespace dgc
