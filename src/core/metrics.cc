#include "core/metrics.h"

#include <sstream>

namespace dgc {

void MetricsRecorder::Capture(const System& system) {
  MetricsSample sample;
  sample.round = system.rounds_run();
  sample.time = system.now();
  sample.objects_stored = system.TotalObjects();
  sample.objects_reclaimed = system.TotalObjectsReclaimed();
  std::size_t table_live_entries = 0;
  for (SiteId s = 0; s < system.site_count(); ++s) {
    const Site& site = system.site(s);
    const Distance threshold = site.config().suspicion_threshold;
    for (const auto& [obj, entry] : site.tables().inrefs()) {
      (void)obj;
      if (entry.garbage_flagged) ++sample.garbage_flagged_inrefs;
      if (!entry.clean(threshold)) ++sample.suspected_inrefs;
    }
    for (const auto& [ref, entry] : site.tables().outrefs()) {
      (void)ref;
      if (!entry.clean()) ++sample.suspected_outrefs;
    }
    table_live_entries +=
        site.tables().inrefs().size() + site.tables().outrefs().size();
    sample.table_slot_reuses += site.stats().table_slot_reuses;
    sample.table_slot_grows += site.stats().table_slot_grows;
    sample.table_slot_capacity += site.stats().table_slot_capacity;
    sample.quiescent_skips += site.stats().quiescent_skips;
    sample.objects_retraced += site.stats().objects_retraced;
    sample.outsets_reused += site.stats().outsets_reused;
    sample.distance_repairs += site.stats().distance_repairs;
    sample.distance_fallbacks += site.stats().distance_fallbacks;
    sample.objects_relabeled += site.stats().objects_relabeled;
    sample.label_serves += site.stats().label_serves;
    sample.mark_wall_ns += site.stats().mark_wall_ns;
    sample.mark_steals += site.stats().mark_steals;
  }
  const WorkerPoolStats pool = system.worker_pool().stats();
  sample.pool_batches = pool.batches;
  sample.pool_tasks_run = pool.tasks_run;
  sample.pool_occupancy = pool.occupancy();
  const NetworkStats& net = system.network().stats();
  sample.messages_sent = net.inter_site_sent;
  sample.wire_messages = net.wire_messages;
  sample.retransmits = net.retransmits;
  sample.dup_suppressed = net.dup_suppressed;
  sample.stale_incarnation_rejected = net.stale_incarnation_rejected;
  sample.fd_suspicions = net.fd_suspicions;
  const BackTracerStats bt = system.AggregateBackTracerStats();
  sample.traces_started = bt.traces_started;
  sample.traces_garbage = bt.traces_completed_garbage;
  sample.traces_live = bt.traces_completed_live;
  sample.calls_parked = bt.calls_parked;
  const System::TraceThroughput throughput = system.AggregateTraceThroughput();
  sample.local_traces = throughput.traces;
  sample.trace_wall_ns = throughput.wall_ns;
  sample.trace_objects_marked = throughput.objects_marked;
  sample.trace_objects_per_sec = throughput.objects_per_sec();
  const System::HeapOccupancy occupancy = system.AggregateHeapOccupancy();
  sample.slab_count = occupancy.slabs;
  sample.slab_slot_capacity = occupancy.slot_capacity;
  sample.slab_free_slots = occupancy.free_slots;
  sample.slab_occupancy = occupancy.occupancy();
  const TransportCounters transport = system.transport().counters();
  sample.transport_timesteps = transport.timesteps;
  sample.transport_phases = transport.parallel_phases;
  sample.transport_site_steps = transport.site_steps;
  sample.transport_handoffs = transport.handoffs;
  sample.transport_staged = transport.staged_sends;
  sample.transport_queue_peak = transport.inbox_peak_depth;
  sample.transport_queue_contention = transport.inbox_contention;
  sample.transport_queue_overflows = transport.inbox_overflows;
  sample.table_occupancy =
      sample.table_slot_capacity == 0
          ? 1.0
          : static_cast<double>(table_live_entries) /
                static_cast<double>(sample.table_slot_capacity);
  samples_.push_back(sample);
}

void MetricsRecorder::CaptureRounds(System& system, std::size_t rounds) {
  for (std::size_t i = 0; i < rounds; ++i) {
    system.RunRound();
    Capture(system);
  }
}

std::string MetricsRecorder::ToCsv() const {
  std::ostringstream os;
  os << "round,time,objects_stored,objects_reclaimed,suspected_inrefs,"
        "suspected_outrefs,garbage_flagged_inrefs,messages_sent,"
        "wire_messages,traces_started,traces_garbage,traces_live,"
        "local_traces,trace_wall_ns,trace_objects_marked,"
        "trace_objects_per_sec,slab_count,slab_slot_capacity,"
        "slab_free_slots,slab_occupancy,quiescent_skips,objects_retraced,"
        "outsets_reused,mark_wall_ns,mark_steals,pool_batches,"
        "pool_tasks_run,pool_occupancy,retransmits,dup_suppressed,"
        "stale_incarnation_rejected,calls_parked,fd_suspicions,"
        "distance_repairs,distance_fallbacks,objects_relabeled,"
        "label_serves,table_slot_reuses,table_slot_grows,"
        "table_slot_capacity,table_occupancy,transport_timesteps,"
        "transport_phases,transport_site_steps,transport_handoffs,"
        "transport_staged,transport_queue_peak,"
        "transport_queue_contention,transport_queue_overflows\n";
  for (const MetricsSample& s : samples_) {
    os << s.round << ',' << s.time << ',' << s.objects_stored << ','
       << s.objects_reclaimed << ',' << s.suspected_inrefs << ','
       << s.suspected_outrefs << ',' << s.garbage_flagged_inrefs << ','
       << s.messages_sent << ',' << s.wire_messages << ','
       << s.traces_started << ',' << s.traces_garbage << ',' << s.traces_live
       << ',' << s.local_traces << ',' << s.trace_wall_ns << ','
       << s.trace_objects_marked << ',' << s.trace_objects_per_sec << ','
       << s.slab_count << ',' << s.slab_slot_capacity << ','
       << s.slab_free_slots << ',' << s.slab_occupancy << ','
       << s.quiescent_skips << ',' << s.objects_retraced << ','
       << s.outsets_reused << ',' << s.mark_wall_ns << ',' << s.mark_steals
       << ',' << s.pool_batches << ',' << s.pool_tasks_run << ','
       << s.pool_occupancy << ',' << s.retransmits << ','
       << s.dup_suppressed << ',' << s.stale_incarnation_rejected << ','
       << s.calls_parked << ',' << s.fd_suspicions << ','
       << s.distance_repairs << ',' << s.distance_fallbacks << ','
       << s.objects_relabeled << ',' << s.label_serves << ','
       << s.table_slot_reuses << ',' << s.table_slot_grows << ','
       << s.table_slot_capacity << ',' << s.table_occupancy << ','
       << s.transport_timesteps << ',' << s.transport_phases << ','
       << s.transport_site_steps << ',' << s.transport_handoffs << ','
       << s.transport_staged << ',' << s.transport_queue_peak << ','
       << s.transport_queue_contention << ','
       << s.transport_queue_overflows << '\n';
  }
  return os.str();
}

}  // namespace dgc
