// Time-series metrics: per-round snapshots of the collector's global state,
// exportable as CSV — the raw material for the paper-style series plots
// (objects over rounds, suspicion ripening, message traffic, trace outcomes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/latency_reservoir.h"
#include "core/system.h"

namespace dgc {

struct MetricsSample {
  std::size_t round = 0;
  SimTime time = 0;
  std::size_t objects_stored = 0;
  std::uint64_t objects_reclaimed = 0;
  std::size_t suspected_inrefs = 0;
  std::size_t suspected_outrefs = 0;
  std::size_t garbage_flagged_inrefs = 0;
  std::uint64_t messages_sent = 0;   // cumulative logical
  std::uint64_t wire_messages = 0;   // cumulative physical
  std::uint64_t traces_started = 0;  // cumulative
  std::uint64_t traces_garbage = 0;
  std::uint64_t traces_live = 0;
  // Local-trace throughput (cumulative real time; never simulated time).
  std::uint64_t local_traces = 0;
  std::uint64_t trace_wall_ns = 0;
  std::uint64_t trace_objects_marked = 0;
  double trace_objects_per_sec = 0.0;
  // Slab-store occupancy across all heaps at capture time.
  std::size_t slab_count = 0;
  std::size_t slab_slot_capacity = 0;
  std::size_t slab_free_slots = 0;
  double slab_occupancy = 1.0;
  // Incremental local traces (cumulative across sites; zero with the knob
  // off).
  std::uint64_t quiescent_skips = 0;
  std::uint64_t objects_retraced = 0;
  std::uint64_t outsets_reused = 0;
  // Incremental distance labels (cumulative; zero with the knob off).
  std::uint64_t distance_repairs = 0;
  std::uint64_t distance_fallbacks = 0;
  std::uint64_t objects_relabeled = 0;
  std::uint64_t label_serves = 0;
  // Intra-site parallel marking (cumulative; zero with mark_threads == 1)
  // and the shared worker pool's lifetime accounting.
  std::uint64_t mark_wall_ns = 0;
  std::uint64_t mark_steals = 0;
  std::uint64_t pool_batches = 0;
  std::uint64_t pool_tasks_run = 0;
  double pool_occupancy = 0.0;  // share of tasks run by pool threads
  // Fault tolerance (cumulative; zero with reliable delivery / the failure
  // detector off).
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t stale_incarnation_rejected = 0;
  std::uint64_t calls_parked = 0;
  std::uint64_t fd_suspicions = 0;
  // Flat ref-table slot churn across all sites (cumulative reuses/grows;
  // capacity and occupancy at capture time).
  std::uint64_t table_slot_reuses = 0;
  std::uint64_t table_slot_grows = 0;
  std::size_t table_slot_capacity = 0;
  double table_occupancy = 1.0;
  // Threaded-transport engine accounting (cumulative; all zero under the
  // sim transport).
  std::uint64_t transport_timesteps = 0;
  std::uint64_t transport_phases = 0;     // parallel phases run
  std::uint64_t transport_site_steps = 0;
  std::uint64_t transport_handoffs = 0;   // deliveries routed into inboxes
  std::uint64_t transport_staged = 0;     // site-thread sends replayed
  std::uint64_t transport_queue_peak = 0;
  std::uint64_t transport_queue_contention = 0;
  std::uint64_t transport_queue_overflows = 0;  // pushes past soft capacity
};

class MetricsRecorder {
 public:
  /// Takes one snapshot of the system's current state.
  void Capture(const System& system);

  /// Convenience: runs `rounds` rounds, capturing after each.
  void CaptureRounds(System& system, std::size_t rounds);

  [[nodiscard]] const std::vector<MetricsSample>& samples() const {
    return samples_;
  }

  /// CSV with a header row; one line per sample.
  [[nodiscard]] std::string ToCsv() const;

  void clear() { samples_.clear(); }

 private:
  std::vector<MetricsSample> samples_;
};

}  // namespace dgc
