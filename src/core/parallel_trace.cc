#include "core/parallel_trace.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "core/site.h"

namespace dgc {

std::vector<TraceResult> ParallelTraceExecutor::ComputeAll(
    const std::vector<Site*>& sites) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<TraceResult> results(sites.size());
  const std::size_t workers = std::min(threads_, sites.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < sites.size(); ++i) {
      results[i] = sites[i]->ComputeLocalTrace();
    }
  } else {
    // Work-stealing by atomic index: assignment of site to thread is
    // scheduling-dependent, but results land in their input position and
    // each compute is independent, so the output is identical either way.
    std::atomic<std::size_t> next{0};
    std::exception_ptr failure;
    std::atomic<bool> failed{false};
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= sites.size() || failed.load(std::memory_order_relaxed)) {
          return;
        }
        try {
          results[i] = sites[i]->ComputeLocalTrace();
        } catch (...) {
          // First failure wins; the guard below keeps it single-writer.
          if (!failed.exchange(true)) failure = std::current_exception();
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (failure) std::rethrow_exception(failure);
  }
  ++stats_.batches;
  stats_.traces_computed += sites.size();
  stats_.wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  return results;
}

}  // namespace dgc
