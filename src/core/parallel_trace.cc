#include "core/parallel_trace.h"

#include <chrono>

#include "core/site.h"

namespace dgc {

ParallelTraceExecutor::ParallelTraceExecutor(WorkerPool& pool,
                                             std::size_t max_concurrency)
    : pool_(&pool),
      max_concurrency_(max_concurrency == 0 ? 1 : max_concurrency) {}

ParallelTraceExecutor::ParallelTraceExecutor(std::size_t threads)
    : owned_pool_(std::make_unique<WorkerPool>(threads == 0 ? 0 : threads - 1)),
      pool_(owned_pool_.get()),
      max_concurrency_(threads == 0 ? 1 : threads) {}

ParallelTraceExecutor::~ParallelTraceExecutor() = default;

std::vector<TraceResult> ParallelTraceExecutor::ComputeAll(
    const std::vector<Site*>& sites) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<TraceResult> results(sites.size());
  if (max_concurrency_ <= 1 || sites.size() <= 1) {
    // Sequential fast path: no pool round trip, and trace_threads == 1
    // preserves the historical single-threaded round exactly.
    for (std::size_t i = 0; i < sites.size(); ++i) {
      results[i] = sites[i]->ComputeLocalTrace();
    }
  } else {
    // Assignment of site to worker is scheduling-dependent, but results land
    // in their input position and each compute is independent, so the output
    // is identical either way. RunBatch rethrows the first worker exception
    // after the batch joins.
    pool_->RunBatch(
        sites.size(),
        [&](std::size_t i) { results[i] = sites[i]->ComputeLocalTrace(); },
        max_concurrency_);
  }
  ++stats_.batches;
  stats_.traces_computed += sites.size();
  stats_.wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  return results;
}

}  // namespace dgc
