// Parallel computation of per-site local traces.
//
// The paper's locality property (Section 2) makes each site's forward trace
// a pure function of that site's own heap and tables: computing one touches
// no other site's state, no network, no scheduler. ParallelTraceExecutor
// exploits that by fanning Site::ComputeLocalTrace out over a persistent
// WorkerPool and handing the results back indexed by input position, so the
// caller can apply them deterministically in site order regardless of which
// thread finished first.
//
// The executor is the coarse level of the system's two-level scheduling:
// sites are coarse tasks on the shared pool, and each site's collector may
// fan its own mark/sweep out over the same pool as fine tasks (see
// localgc/parallel_mark.h). Pool batches are caller-participating, so the
// nesting cannot deadlock — a site task blocked on an inner mark batch is
// itself draining that batch.
//
// Determinism: each ComputeLocalTrace is itself deterministic and the sites
// share no mutable state, so the result vector is byte-identical whatever
// the thread count — 1 thread and N threads produce the same TraceResults.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/worker_pool.h"
#include "localgc/trace_result.h"

namespace dgc {

class Site;

struct ParallelTraceStats {
  std::uint64_t batches = 0;          // ComputeAll invocations
  std::uint64_t traces_computed = 0;  // across all batches
  std::uint64_t wall_ns = 0;          // cumulative batch wall time
};

class ParallelTraceExecutor {
 public:
  /// Borrows `pool` (which must outlive the executor) and caps one batch's
  /// concurrency at `max_concurrency` (clamped to at least 1) — the
  /// trace_threads knob. The pool may be larger or smaller; the cap is what
  /// bounds how many sites compute at once.
  ParallelTraceExecutor(WorkerPool& pool, std::size_t max_concurrency);

  /// Convenience for tests and benchmarks: owns a private persistent pool of
  /// `threads - 1` workers (the caller participates, so `threads` reach the
  /// work), capped at `threads`.
  explicit ParallelTraceExecutor(std::size_t threads);

  ~ParallelTraceExecutor();

  /// Computes sites[i]->ComputeLocalTrace() for every i, concurrently on up
  /// to `threads()` workers, and returns the results with result[i]
  /// belonging to sites[i]. Exceptions from a worker (invariant violations)
  /// are rethrown on the calling thread after the batch joins.
  std::vector<TraceResult> ComputeAll(const std::vector<Site*>& sites);

  [[nodiscard]] std::size_t threads() const { return max_concurrency_; }
  [[nodiscard]] const ParallelTraceStats& stats() const { return stats_; }

 private:
  std::unique_ptr<WorkerPool> owned_pool_;  // only for the convenience ctor
  WorkerPool* pool_;
  std::size_t max_concurrency_;
  ParallelTraceStats stats_;
};

}  // namespace dgc
