// Parallel computation of per-site local traces.
//
// The paper's locality property (Section 2) makes each site's forward trace
// a pure function of that site's own heap and tables: computing one touches
// no other site's state, no network, no scheduler. ParallelTraceExecutor
// exploits that by fanning Site::ComputeLocalTrace out over a fixed pool of
// worker threads and handing the results back indexed by input position, so
// the caller can apply them deterministically in site order regardless of
// which thread finished first.
//
// Determinism: each ComputeLocalTrace is itself deterministic and the sites
// share no mutable state, so the result vector is byte-identical whatever
// the thread count — 1 thread and N threads produce the same TraceResults.
#pragma once

#include <cstdint>
#include <vector>

#include "localgc/trace_result.h"

namespace dgc {

class Site;

struct ParallelTraceStats {
  std::uint64_t batches = 0;          // ComputeAll invocations
  std::uint64_t traces_computed = 0;  // across all batches
  std::uint64_t wall_ns = 0;          // cumulative batch wall time
};

class ParallelTraceExecutor {
 public:
  /// `threads` is clamped to at least 1. The pool is created per batch;
  /// thread startup is noise next to a trace over a non-trivial heap.
  explicit ParallelTraceExecutor(std::size_t threads)
      : threads_(threads == 0 ? 1 : threads) {}

  /// Computes sites[i]->ComputeLocalTrace() for every i, concurrently on up
  /// to `threads` workers, and returns the results with result[i] belonging
  /// to sites[i]. Exceptions from a worker (invariant violations) are
  /// rethrown on the calling thread after all workers join.
  std::vector<TraceResult> ComputeAll(const std::vector<Site*>& sites);

  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] const ParallelTraceStats& stats() const { return stats_; }

 private:
  std::size_t threads_;
  ParallelTraceStats stats_;
};

}  // namespace dgc
