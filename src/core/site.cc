#include "core/site.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace dgc {

Site::Site(SiteId id, Transport& transport, const CollectorConfig& config)
    : id_(id),
      transport_(transport),
      scheduler_(transport.SchedulerFor(id)),
      config_(config),
      heap_(id),
      tables_(id, config_),
      collector_(heap_, tables_),
      back_tracer_(
          id, tables_, transport, scheduler_,
          [this]() -> const SiteBackInfo& { return back_info_; },
          [this](ObjectId obj) { return IsRootObject(obj); }) {
  transport_.RegisterSite(id, [this](const Envelope& envelope) {
    HandleMessage(envelope);
  });
  transport_.SetRecoveryListener(id, [this](SiteId peer, bool restarted) {
    if (restarted) back_tracer_.OnPeerRestarted(peer);
    back_tracer_.OnPeerRecovered(peer);
  });
}

void Site::HandleMessage(const Envelope& envelope) {
  if (extension_handler_ && extension_handler_(envelope)) return;
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, InsertMsg>) {
          HandleInsert(envelope, msg);
        } else if constexpr (std::is_same_v<T, InsertAckMsg>) {
          HandleInsertAck(msg);
        } else if constexpr (std::is_same_v<T, UpdateMsg>) {
          HandleUpdate(envelope, msg);
        } else if constexpr (std::is_same_v<T, BackLocalCallMsg>) {
          back_tracer_.HandleLocalCall(envelope, msg);
        } else if constexpr (std::is_same_v<T, BackRemoteCallMsg>) {
          back_tracer_.HandleRemoteCall(envelope, msg);
        } else if constexpr (std::is_same_v<T, BackReplyMsg>) {
          back_tracer_.HandleReply(msg);
        } else if constexpr (std::is_same_v<T, BackReportMsg>) {
          back_tracer_.HandleReport(msg);
        } else if constexpr (std::is_same_v<T, BackCallBatchMsg>) {
          back_tracer_.HandleCallBatch(envelope, msg);
        } else if constexpr (std::is_same_v<T, MutatorReadMsg>) {
          HandleMutatorRead(envelope, msg);
        } else if constexpr (std::is_same_v<T, MutatorReadReplyMsg>) {
          HandleMutatorReadReply(envelope, msg);
        } else if constexpr (std::is_same_v<T, MutatorWriteMsg>) {
          HandleMutatorWrite(envelope, msg);
        } else if constexpr (std::is_same_v<T, MutatorWriteAckMsg>) {
          HandleMutatorWriteAck(msg);
        } else if constexpr (std::is_same_v<T, FetchMsg>) {
          HandleFetch(envelope, msg);
        } else if constexpr (std::is_same_v<T, FetchReplyMsg>) {
          HandleFetchReply(msg);
        } else if constexpr (std::is_same_v<T, CommitMsg>) {
          HandleCommit(envelope, msg);
        } else if constexpr (std::is_same_v<T, CommitAckMsg>) {
          HandleCommitAck(envelope, msg);
        } else if constexpr (std::is_same_v<T, PinReleaseMsg>) {
          HandlePinRelease(msg);
        } else {
          DGC_CHECK_MSG(false, "unhandled message kind "
                                   << PayloadKindName(envelope.payload.index())
                                   << " at site " << id_);
        }
      },
      envelope.payload);
}

// ---------------------------------------------------------------------------
// Reference-listing protocol (Section 2).

void Site::HandleInsert(const Envelope& envelope, const InsertMsg& msg) {
  DGC_CHECK(msg.ref.site == id_);
  if (!heap_.Exists(msg.ref)) {
    // A recovery-time re-registration (no pin held) may race a lease-based
    // source expiry that already reclaimed the object: the sender's outref
    // is stale and will be trimmed. A *pinned* insert for a dead object,
    // however, means a mutator held a reference to garbage — a safety bug.
    DGC_CHECK_MSG(msg.pinned_site == kInvalidSite,
                  "insert for reclaimed object " << msg.ref);
    return;
  }
  ++stats_.inserts_handled;
  if (const InrefEntry* flagged = tables_.FindInref(msg.ref);
      flagged != nullptr && flagged->garbage_flagged) {
    // A recovery-time re-registration may name an object that a completed
    // back trace condemned while the sender was down; the sender's stale
    // outref dies with its (garbage) holders at its next local trace. A
    // *pinned* insert for condemned garbage would mean a mutator holds a
    // reference to it — a safety bug.
    DGC_CHECK_MSG(msg.pinned_site == kInvalidSite,
                  "mutator-held insert for condemned object " << msg.ref);
    return;
  }
  // New sources start at the conservative distance of one (Section 3). If
  // that transitions the inref from suspected to clean, the clean rule must
  // fire for any trace active there (§6.4 — cleaning is cleaning, whether
  // by barrier override or by a distance drop).
  const InrefEntry* existing = tables_.FindInref(msg.ref);
  const bool was_clean =
      existing == nullptr || existing->clean(config_.suspicion_threshold);
  InrefEntry& entry = tables_.AddInrefSource(msg.ref, msg.new_source,
                                             msg.distance, scheduler_.now());
  if (!was_clean && entry.clean(config_.suspicion_threshold)) {
    back_tracer_.OnIorefCleaned(IorefKind::kInref, msg.ref);
  }
  // "(Also, the transfer barrier applies to inref z.)" — §6.1.2 case 4.
  ApplyTransferBarrier(msg.ref);
  if (msg.pinned_site != kInvalidSite) {
    transport_.Send(id_, msg.pinned_site, InsertAckMsg{msg.ref, msg.new_source});
  }
  (void)envelope;
}

void Site::HandleInsertAck(const InsertAckMsg& msg) {
  // Deferred-mode acks may arrive several times (resends); only the first
  // releases the pin.
  if (const auto deferred = deferred_inserts_.find(msg.ref);
      deferred != deferred_inserts_.end()) {
    deferred_inserts_.erase(deferred);
    OutrefEntry* entry = tables_.FindOutref(msg.ref);
    DGC_CHECK_MSG(entry != nullptr,
                  "insert ack for missing outref " << msg.ref);
    DGC_CHECK(entry->pin_count > 0);
    --entry->pin_count;
    return;
  }
  const auto it = pending_insert_acks_.find(msg.ref);
  if (it == pending_insert_acks_.end()) {
    // Duplicate or stale ack (a deferred resend's extra ack, or the pin was
    // zeroed by a crash-restart): the pin it would release is already gone.
    return;
  }
  OutrefEntry* entry = tables_.FindOutref(msg.ref);
  DGC_CHECK_MSG(entry != nullptr, "insert ack for missing outref " << msg.ref);
  DGC_CHECK(entry->pin_count > 0);
  --entry->pin_count;
  std::vector<std::function<void()>> continuations = std::move(it->second);
  pending_insert_acks_.erase(it);
  for (auto& continuation : continuations) continuation();
}

void Site::HandleUpdate(const Envelope& envelope, const UpdateMsg& msg) {
  for (const UpdateEntry& entry : msg.entries) {
    DGC_CHECK(entry.ref.site == id_);
    if (entry.removed) {
      tables_.RemoveInrefSource(entry.ref, envelope.from);
      continue;
    }
    InrefEntry* inref = tables_.FindInref(entry.ref);
    if (inref == nullptr) continue;  // stale update for a removed inref
    const auto source = inref->sources.find(envelope.from);
    if (source != inref->sources.end()) {
      const bool was_clean = inref->clean(config_.suspicion_threshold);
      source->second = SourceInfo{entry.distance, scheduler_.now()};
      if (!was_clean && inref->clean(config_.suspicion_threshold)) {
        // A distance drop cleaned the inref: clean rule (§6.4).
        back_tracer_.OnIorefCleaned(IorefKind::kInref, entry.ref);
      }
    }
  }
  // Note: no back-trace trigger rescan here. The trigger compares OUTREF
  // distances against back thresholds, and outref distances only change
  // when a local trace recomputes them — so the post-trace check in
  // ApplyTraceResult is already the earliest possible detection point.
}

// ---------------------------------------------------------------------------
// Barriers (Section 6.1).

void Site::ApplyTransferBarrier(ObjectId local_ref) {
  DGC_CHECK(local_ref.site == id_);
  InrefEntry* inref = tables_.FindInref(local_ref);
  if (inref == nullptr) return;  // no inref: purely local object
  DGC_CHECK_MSG(!inref->garbage_flagged,
                "mutator transferred a reference to condemned object "
                    << local_ref << " — safety violated");
  if (inref->clean(config_.suspicion_threshold)) return;
  ++stats_.transfer_barrier_hits;
  inref->clean_override = true;
  if (pending_trace_.has_value()) window_cleaned_inrefs_.insert(local_ref);
  back_tracer_.OnIorefCleaned(IorefKind::kInref, local_ref);
  // Clean the outrefs in i.outset, using the current (old) copy; the replay
  // into the new copy happens when the in-flight trace applies (§6.2).
  const auto outset = back_info_.inref_outsets.find(local_ref);
  if (outset != back_info_.inref_outsets.end()) {
    for (const ObjectId outref : outset->second) CleanOutref(outref);
  }
}

void Site::CleanOutref(ObjectId remote_ref) {
  if (pending_trace_.has_value()) window_cleaned_outrefs_.insert(remote_ref);
  OutrefEntry* entry = tables_.FindOutref(remote_ref);
  if (entry == nullptr) return;  // trimmed since the outset was computed
  const bool was_clean = entry->clean();
  entry->clean_override = true;
  if (!was_clean) {
    back_tracer_.OnIorefCleaned(IorefKind::kOutref, remote_ref);
  }
}

void Site::ReceiveReference(ObjectId ref, std::function<void()> done,
                            SiteId sender) {
  DGC_CHECK(ref.valid());
  DGC_CHECK(done != nullptr);
  if (ref.site == id_) {
    // Case 1: the object lives here; the transfer barrier applies.
    ApplyTransferBarrier(ref);
    done();
    return;
  }
  OutrefEntry* existing = tables_.FindOutref(ref);
  if (existing != nullptr) {
    if (!existing->clean()) {
      // Case 3: suspected outref — clean it.
      CleanOutref(ref);
    }  // Case 2: clean outref — nothing to do.
    done();
    return;
  }
  // Case 4: create a clean outref and register with the owner. The new
  // outref stays pinned clean until the owner acknowledges the insert, which
  // preserves the remote safety invariant (the owner's source list does not
  // yet include this site).
  auto [entry, created] = tables_.EnsureOutref(ref);
  DGC_CHECK(created);
  entry->clean_override = true;
  entry->pin_count += 1;
  entry->distance = 1;  // held by a mutator: conservatively root-adjacent
  if (config_.insert_mode == InsertMode::kDeferred && ref.site == sender) {
    // The owner itself sent us its reference: our insert departs now, ahead
    // of the operation's reply to that same owner, and FIFO delivery makes
    // the registration land before the sender's operation completes — no
    // protection gap, no ack wait. The pin still holds until the ack so the
    // outref stays clean and untrimmed meanwhile.
    deferred_inserts_.insert(ref);
    transport_.Send(id_, ref.site, InsertMsg{ref, id_, id_});
    done();
    return;
  }
  pending_insert_acks_[ref].push_back(std::move(done));
  transport_.Send(id_, ref.site, InsertMsg{ref, id_, id_});
}

void Site::FlushDeferredInserts() { ResendPendingInserts(); }

void Site::ResendPendingInserts() {
  // Both queues hold pinned outrefs awaiting the owner's ack; inserts are
  // idempotent, so resending recovers from any lost message.
  for (const ObjectId ref : deferred_inserts_) {
    transport_.Send(id_, ref.site, InsertMsg{ref, id_, id_});
  }
  for (const auto& [ref, continuations] : pending_insert_acks_) {
    (void)continuations;
    transport_.Send(id_, ref.site, InsertMsg{ref, id_, id_});
  }
}

// ---------------------------------------------------------------------------
// Application roots (Section 6.3).

void Site::AddAppRoot(ObjectId obj) {
  DGC_CHECK(obj.site == id_);
  DGC_CHECK_MSG(heap_.Exists(obj), "app root names missing object " << obj);
  app_roots_[obj] += 1;
}

void Site::RemoveAppRoot(ObjectId obj) {
  const auto it = app_roots_.find(obj);
  DGC_CHECK_MSG(it != app_roots_.end(), "not an app root: " << obj);
  if (--it->second == 0) app_roots_.erase(it);
}

void Site::PinOutref(ObjectId remote_ref) {
  OutrefEntry* entry = tables_.FindOutref(remote_ref);
  DGC_CHECK_MSG(entry != nullptr, "pin of missing outref " << remote_ref);
  entry->pin_count += 1;
  // Pinning makes it clean; fire the clean rule if that is a transition.
  if (entry->pin_count == 1 && !entry->clean_override &&
      !entry->traced_clean) {
    back_tracer_.OnIorefCleaned(IorefKind::kOutref, remote_ref);
  }
}

void Site::UnpinOutref(ObjectId remote_ref) {
  OutrefEntry* entry = tables_.FindOutref(remote_ref);
  DGC_CHECK_MSG(entry != nullptr, "unpin of missing outref " << remote_ref);
  DGC_CHECK(entry->pin_count > 0);
  entry->pin_count -= 1;
}

std::vector<ObjectId> Site::AppRootObjects() const {
  std::vector<ObjectId> roots;
  roots.reserve(app_roots_.size());
  for (const auto& [obj, count] : app_roots_) {
    (void)count;
    roots.push_back(obj);
  }
  return roots;
}

bool Site::IsRootObject(ObjectId obj) const {
  if (app_roots_.contains(obj)) return true;
  const auto& roots = heap_.persistent_roots();
  return std::find(roots.begin(), roots.end(), obj) != roots.end();
}

std::vector<ObjectId> Site::PinnedRemoteRefs() const {
  std::vector<ObjectId> pinned;
  for (const auto& [ref, entry] : tables_.outrefs()) {
    if (entry.pin_count > 0) pinned.push_back(ref);
  }
  return pinned;
}

// ---------------------------------------------------------------------------
// Mutator RPC server side.

void Site::HandleMutatorRead(const Envelope& envelope,
                             const MutatorReadMsg& msg) {
  DGC_CHECK(msg.target.site == id_);
  DGC_CHECK_MSG(heap_.Exists(msg.target),
                "mutator read of reclaimed object " << msg.target);
  // The reference `target` just arrived here: transfer barrier (§6.1.2 #1).
  ApplyTransferBarrier(msg.target);
  const ObjectId value = heap_.GetSlot(msg.target, msg.slot);
  // Sender retention (§2): "the sender Q retains its outref for c until R is
  // known to have received the insert message". A served reference is
  // retained here until the requester confirms it is safely recorded —
  // without this, a concurrent overwrite of the slot could let the target's
  // owner reclaim the object while our reply (and the requester's insert)
  // are still in flight. Remote references pin our outref; our own objects
  // are self-retained as temporary roots.
  if (value.valid()) RetainServedReference(value);
  transport_.Send(id_, envelope.from, MutatorReadReplyMsg{msg.session, value});
}

void Site::RetainServedReference(ObjectId ref) {
  if (ref.site == id_) {
    AddAppRoot(ref);
  } else {
    PinOutref(ref);
  }
}

void Site::HandlePinRelease(const PinReleaseMsg& msg) {
  if (msg.ref.site == id_) {
    // Releasing a self-retention on one of our own served objects. Tolerate
    // over-releases only after a crash-restart wiped the root set.
    if (app_roots_.contains(msg.ref)) RemoveAppRoot(msg.ref);
    return;
  }
  OutrefEntry* entry = tables_.FindOutref(msg.ref);
  // The pin guarantees the entry exists until released; tolerate a missing
  // entry only for pins zeroed by a crash-restart.
  if (entry == nullptr || entry->pin_count == 0) return;
  --entry->pin_count;
}

void Site::HandleMutatorReadReply(const Envelope& envelope,
                                  const MutatorReadReplyMsg& msg) {
  const auto it = session_continuations_.find(msg.session);
  if (it == session_continuations_.end()) {
    // Duplicate reply from a retried RPC: the first one won. Release the
    // server's (duplicate) retention so it does not leak.
    if (msg.value.valid()) {
      transport_.Send(id_, envelope.from, PinReleaseMsg{msg.value});
    }
    return;
  }
  auto continuation = std::move(it->second);
  session_continuations_.erase(it);
  if (!msg.value.valid()) {
    continuation(kInvalidObject);
    return;
  }
  // The reference arrived at this (home) site: §6.1.2 cases, then resume —
  // and release the server's sender-retention pin once safely recorded.
  const ObjectId value = msg.value;
  const SiteId server = envelope.from;
  ReceiveReference(
      value,
      [this, continuation = std::move(continuation), value, server] {
        // Release the server's retention (outref pin or self-root).
        transport_.Send(id_, server, PinReleaseMsg{value});
        continuation(value);
      },
      envelope.from);
}

void Site::HandleMutatorWrite(const Envelope& envelope,
                              const MutatorWriteMsg& msg) {
  DGC_CHECK(msg.target.site == id_);
  DGC_CHECK_MSG(heap_.Exists(msg.target),
                "mutator write to reclaimed object " << msg.target);
  ApplyTransferBarrier(msg.target);
  const SiteId requester = envelope.from;
  const auto finish = [this, msg, requester] {
    heap_.SetSlot(msg.target, msg.slot, msg.value);
    transport_.Send(id_, requester, MutatorWriteAckMsg{msg.session});
  };
  if (!msg.value.valid()) {
    finish();
    return;
  }
  // The value reference arrived here too; record it (possibly waiting for an
  // insert ack — synchronous inserts) before the write becomes visible.
  ReceiveReference(msg.value, finish, envelope.from);
}

void Site::HandleMutatorWriteAck(const MutatorWriteAckMsg& msg) {
  const auto it = session_continuations_.find(msg.session);
  if (it == session_continuations_.end()) return;  // duplicate (retried RPC)
  auto continuation = std::move(it->second);
  session_continuations_.erase(it);
  continuation(kInvalidObject);
}

void Site::RegisterSessionContinuation(
    std::uint64_t session, std::function<void(ObjectId)> continuation) {
  DGC_CHECK_MSG(!session_continuations_.contains(session),
                "session " << session << " already has an operation pending");
  session_continuations_.emplace(session, std::move(continuation));
}

void Site::RegisterFetchContinuation(
    std::uint64_t session,
    std::function<void(const std::vector<ObjectId>&)> continuation) {
  DGC_CHECK_MSG(!fetch_continuations_.contains(session),
                "session " << session << " already has a fetch pending");
  fetch_continuations_.emplace(session, std::move(continuation));
}

void Site::RegisterCommitContinuation(std::uint64_t session,
                                      std::set<SiteId> awaiting_owners,
                                      std::function<void()> continuation) {
  DGC_CHECK(!awaiting_owners.empty());
  DGC_CHECK_MSG(!commit_continuations_.contains(session),
                "session " << session << " already has a commit pending");
  commit_continuations_.emplace(
      session,
      PendingCommit{std::move(awaiting_owners), std::move(continuation)});
}

// ---------------------------------------------------------------------------
// Client-caching transactions (§6.1.1, last paragraph).

void Site::HandleFetch(const Envelope& envelope, const FetchMsg& msg) {
  DGC_CHECK(msg.target.site == id_);
  DGC_CHECK_MSG(heap_.Exists(msg.target),
                "fetch of reclaimed object " << msg.target);
  // The reference to the fetched object arrived here: transfer barrier.
  ApplyTransferBarrier(msg.target);
  // Sender retention (§2) for every reference handed out in the copy:
  // retained until the client's EndTransaction releases them. (Real
  // client-caching systems track this in a cache directory; a crashed
  // client's retentions are zeroed by this site's CrashRestart.)
  const std::vector<ObjectId>& slots = heap_.Get(msg.target).slots;
  for (const ObjectId ref : slots) {
    if (ref.valid()) RetainServedReference(ref);
  }
  transport_.Send(id_, envelope.from,
                FetchReplyMsg{msg.session, msg.target, slots});
}

void Site::HandleFetchReply(const FetchReplyMsg& msg) {
  const auto it = fetch_continuations_.find(msg.session);
  if (it == fetch_continuations_.end()) return;  // duplicate (retried RPC)
  auto continuation = std::move(it->second);
  fetch_continuations_.erase(it);
  continuation(msg.slots);
}

void Site::HandleCommit(const Envelope& envelope, const CommitMsg& msg) {
  // The §6.1.1 commit-time barrier check: every reference named in the
  // read-write log slice passes through the barriers before the writes
  // become visible, and the ack is withheld until any insert barrier the
  // new references require has been acknowledged (synchronous inserts).
  const SiteId requester = envelope.from;
  const std::uint64_t session = msg.session;
  for (const CommitWrite& write : msg.writes) {
    DGC_CHECK(write.target.site == id_);
    DGC_CHECK_MSG(heap_.Exists(write.target),
                  "commit write to reclaimed object " << write.target);
    ApplyTransferBarrier(write.target);
  }
  auto pending = std::make_shared<std::size_t>(0);
  auto writes = std::make_shared<std::vector<CommitWrite>>(msg.writes);
  const auto finish = [this, requester, session, writes] {
    for (const CommitWrite& write : *writes) {
      heap_.SetSlot(write.target, write.slot, write.value);
    }
    transport_.Send(id_, requester, CommitAckMsg{session});
  };
  for (const CommitWrite& write : msg.writes) {
    if (write.value.valid()) ++*pending;
  }
  if (*pending == 0) {
    finish();
    return;
  }
  for (const CommitWrite& write : msg.writes) {
    if (!write.value.valid()) continue;
    ReceiveReference(
        write.value, [pending, finish] { if (--*pending == 0) finish(); },
        requester);
  }
}

void Site::HandleCommitAck(const Envelope& envelope, const CommitAckMsg& msg) {
  const auto it = commit_continuations_.find(msg.session);
  if (it == commit_continuations_.end()) return;  // duplicate (retried RPC)
  it->second.awaiting.erase(envelope.from);
  if (it->second.awaiting.empty()) {
    auto continuation = std::move(it->second.continuation);
    commit_continuations_.erase(it);
    continuation();
  }
}

// ---------------------------------------------------------------------------
// Local tracing (Sections 2, 3, 5; non-atomic per Section 6.2).

void Site::StartLocalTrace() {
  CommitLocalTrace(ComputeLocalTrace());
}

TraceResult Site::ComputeLocalTrace() {
  DGC_CHECK_MSG(!pending_trace_.has_value(),
                "local trace already in flight at site " << id_);
  ++stats_.local_traces;

  // Optional source-lease expiry: drop sources whose holder has not
  // confirmed within the TTL (recovers from lost removal updates; see the
  // safety caveat in CollectorConfig).
  if (config_.source_lease_ttl > 0) {
    const SimTime now = scheduler_.now();
    std::vector<std::pair<ObjectId, SiteId>> expired;
    for (const auto& [obj, entry] : tables_.inrefs()) {
      for (const auto& [source, info] : entry.sources) {
        if (now - info.refreshed_at > config_.source_lease_ttl) {
          expired.emplace_back(obj, source);
        }
      }
    }
    for (const auto& [obj, source] : expired) {
      tables_.RemoveInrefSource(obj, source);
    }
  }
  TraceResult result = collector_.Run(AppRootObjects());
  stats_.trace_wall_ns += result.stats.trace_wall_ns;
  stats_.mark_wall_ns += result.stats.mark_wall_ns;
  stats_.mark_steals += result.stats.mark_steals;
  stats_.objects_marked += result.stats.objects_marked_clean +
                           result.stats.objects_marked_suspect;
  stats_.quiescent_skips += result.stats.quiescent_skips;
  stats_.objects_retraced += result.stats.objects_retraced;
  stats_.outsets_reused += result.stats.outsets_reused;
  stats_.distance_repairs += result.stats.distance_repairs;
  stats_.distance_fallbacks += result.stats.distance_fallbacks;
  stats_.objects_relabeled += result.stats.objects_relabeled;
  stats_.label_serves += result.stats.label_serves;
  return result;
}

void Site::CommitLocalTrace(TraceResult result) {
  if (config_.local_trace_duration <= 0) {
    ApplyTraceResult(std::move(result));
    return;
  }
  pending_trace_ = std::move(result);
  scheduler_.After(config_.local_trace_duration,
                   [this, generation = trace_generation_] {
                     if (generation != trace_generation_) return;  // crashed
                     DGC_CHECK(pending_trace_.has_value());
                     TraceResult result = std::move(*pending_trace_);
                     pending_trace_.reset();
                     ApplyTraceResult(std::move(result));
                   });
}

void Site::CrashRestart() {
  // The restarted process is a new incarnation: pre-crash wire traffic is
  // rejected at arrival and (with reliable delivery) every transport
  // channel touching this site is dead-lettered — its connection state died
  // with the process too.
  transport_.NoteSiteRestarted(id_);
  // Dead-lettering dropped the old incarnation's recovery listener with the
  // rest of its connection state; the new incarnation subscribes afresh.
  transport_.SetRecoveryListener(id_, [this](SiteId peer, bool restarted) {
    if (restarted) back_tracer_.OnPeerRestarted(peer);
    back_tracer_.OnPeerRecovered(peer);
  });
  // Volatile state dies with the process.
  ++trace_generation_;
  pending_trace_.reset();
  // The incremental-trace cache and the heap's dirty sets are volatile
  // acceleration state: the restarted collector must re-derive everything
  // from the durable heap and tables with a full trace.
  collector_.InvalidateCache();
  window_cleaned_inrefs_.clear();
  window_cleaned_outrefs_.clear();
  back_tracer_.DropVolatileState();
  session_continuations_.clear();
  fetch_continuations_.clear();
  commit_continuations_.clear();
  pending_insert_acks_.clear();
  deferred_inserts_.clear();
  app_roots_.clear();  // local sessions died with the site
  // Pins represent running client / in-flight insert state: all volatile.
  ReannounceOutrefs();
}

void Site::ReannounceOutrefs() {
  // Re-register every persistent outref with its owner (idempotent) so
  // source lists lost to crashed-out insert messages heal. Call this after
  // the network link is restored or the re-registrations are lost too.
  for (auto& [ref, entry] : tables_.outrefs()) {
    entry.pin_count = 0;
    const Distance carried =
        entry.distance == kDistanceInfinity ? 1 : entry.distance;
    transport_.Send(id_, ref.site,
                  InsertMsg{ref, id_, /*pinned_site=*/kInvalidSite, carried});
  }
}

void Site::ApplyTraceResult(TraceResult result) {
  // 1. Inref cleanliness: overrides drop, except those the transfer barrier
  //    set while this trace was in flight (remembered cleanings, §6.2).
  for (const ObjectId obj : result.snapshot_inrefs) {
    InrefEntry* entry = tables_.FindInref(obj);
    if (entry == nullptr) continue;
    if (!window_cleaned_inrefs_.contains(obj)) entry->clean_override = false;
  }

  // 2. Outrefs: apply distances and cleanliness; trim the unreached.
  // Periodically resend everything so state lost to dropped messages or
  // crashed sites heals once connectivity returns.
  const bool full_refresh =
      config_.update_refresh_period > 0 &&
      result.epoch % config_.update_refresh_period == 0;
  FlatMap<SiteId, UpdateMsg> updates;
  for (const ObjectId ref : result.snapshot_outrefs) {
    OutrefEntry* entry = tables_.FindOutref(ref);
    DGC_CHECK_MSG(entry != nullptr, "snapshot outref vanished: " << ref);
    const bool window_clean = window_cleaned_outrefs_.contains(ref);
    if (result.outrefs_untraced.contains(ref)) {
      if (entry->pin_count > 0 || window_clean) {
        // Kept alive by the insert barrier or a mid-trace transfer barrier:
        // stays clean; state untouched until the next trace sees the paths.
        continue;
      }
      updates[ref.site].entries.push_back(UpdateEntry{ref, true, 0});
      tables_.RemoveOutref(ref);
      ++stats_.outrefs_trimmed;
      continue;
    }
    entry->distance = result.outref_distances.at(ref);
    entry->traced_clean = result.outrefs_clean.contains(ref);
    if (!window_clean) entry->clean_override = false;
    if (entry->distance != entry->last_reported || full_refresh) {
      updates[ref.site].entries.push_back(
          UpdateEntry{ref, false, entry->distance});
      entry->last_reported = entry->distance;
    }
  }

  // 3. Swap in the new back information and replay remembered barrier
  //    cleanings against it (§6.2).
  back_info_ = std::move(result.back_info);
  for (const ObjectId inref_obj : window_cleaned_inrefs_) {
    if (InrefEntry* entry = tables_.FindInref(inref_obj)) {
      entry->clean_override = true;
      const auto outset = back_info_.inref_outsets.find(inref_obj);
      if (outset != back_info_.inref_outsets.end()) {
        for (const ObjectId outref : outset->second) {
          if (OutrefEntry* out = tables_.FindOutref(outref)) {
            if (!out->clean()) {
              back_tracer_.OnIorefCleaned(IorefKind::kOutref, outref);
            }
            out->clean_override = true;
          }
        }
      }
    }
  }
  window_cleaned_inrefs_.clear();
  window_cleaned_outrefs_.clear();

  // 4. Sweep. Everything here was unreachable when the trace began; garbage
  //    cannot be resurrected, so reclamation is safe at apply time.
  for (const ObjectId obj : result.objects_to_free) heap_.Free(obj);

  // 5. Update messages to target sites (Section 2).
  for (auto& [target, msg] : updates) {
    stats_.update_entries_sent += msg.entries.size();
    ++stats_.updates_sent;
    transport_.Send(id_, target, std::move(msg));
  }

  // 6. Post-trace housekeeping: retry unacknowledged deferred inserts,
  //    expire orphaned visit records, and start back traces from suspects
  //    past their back threshold (Section 4.3).
  FlushDeferredInserts();
  back_tracer_.OnLocalTraceApplied(result.epoch);
  back_tracer_.ExpireStaleRecords();
  back_tracer_.MaybeStartTraces();
}

// ---------------------------------------------------------------------------
// Direct graph construction.

void Site::WireSlotTo(ObjectId source, std::size_t slot, ObjectId target,
                      Site& target_site) {
  DGC_CHECK(source.site == id_);
  heap_.SetSlot(source, slot, target);
  if (!target.valid() || target.site == id_) return;
  DGC_CHECK(&target_site != this && target_site.id() == target.site);
  auto [entry, created] = tables_.EnsureOutref(target);
  if (created) entry->distance = 1;
  InrefEntry& inref = target_site.tables_.EnsureInref(target);
  if (!inref.sources.contains(id_)) {
    inref.sources.emplace(id_, SourceInfo{1, scheduler_.now()});
  }
}

}  // namespace dgc
