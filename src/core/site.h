// A site: one node of the distributed object store.
//
// Composes the substrates — heap, inref/outref tables, local collector, back
// tracer — and implements the distributed protocols that glue them together:
//
//   * the insert/update protocol of Section 2 (reference listing);
//   * the transfer barrier and insert barrier of Section 6.1;
//   * non-atomic local traces with double-buffered back information
//     (Section 6.2): while a trace is in flight, back traces are served from
//     the old copy and barrier cleanings are replayed into the new one;
//   * the server side of the mutator RPCs (reads/writes whose reference
//     arguments drive the barriers);
//   * application roots (Section 6.3): local objects held in mutator
//     variables are trace roots; remote references held in variables pin
//     their outrefs clean.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "backinfo/site_back_info.h"
#include "backtrace/back_tracer.h"
#include "common/config.h"
#include "common/flat_map.h"
#include "common/ids.h"
#include "localgc/local_collector.h"
#include "net/transport.h"
#include "refs/tables.h"
#include "sim/scheduler.h"
#include "store/heap.h"

namespace dgc {

/// Per-site counters. Explicitly single-writer: every field is accumulated
/// by the owning site's protocol handlers, which run on exactly one thread
/// at a time (the shared simulation thread under SimTransport; the site's
/// thread during a parallel phase under ThreadedTransport, ordered against
/// coordinator reads by the phase barrier). No field may be written from
/// another site or from the coordinator mid-phase.
struct SiteStats {
  std::uint64_t local_traces = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t update_entries_sent = 0;
  std::uint64_t inserts_handled = 0;
  std::uint64_t transfer_barrier_hits = 0;  // barrier found a suspected inref
  std::uint64_t outrefs_trimmed = 0;
  std::uint64_t trace_wall_ns = 0;     // cumulative real trace-compute time
  std::uint64_t mark_wall_ns = 0;      // cumulative clean-mark phase time
  std::uint64_t mark_steals = 0;       // work-stealing mark: batches stolen
  std::uint64_t objects_marked = 0;    // cumulative clean + suspect marks
  // Incremental-trace accounting (all zero while incremental_trace is off).
  std::uint64_t quiescent_skips = 0;   // traces served verbatim from cache
  std::uint64_t objects_retraced = 0;  // cumulative objects full traces visited
  std::uint64_t outsets_reused = 0;    // cumulative memoized outsets served
  // Incremental-distance accounting (zero while incremental_distance is off).
  std::uint64_t distance_repairs = 0;    // bounded label repairs applied
  std::uint64_t distance_fallbacks = 0;  // full propagations (stale plane)
  std::uint64_t objects_relabeled = 0;   // cumulative label writes
  std::uint64_t label_serves = 0;        // traces served off the label plane
  // Flat ref-table accounting, mirrored from RefTables when stats() is read:
  // inserts absorbed by spare vector capacity vs. reallocations, and live
  // entries over allocated slots. Steady-state churn should show reuses
  // climbing while grows stay flat.
  std::uint64_t table_slot_reuses = 0;
  std::uint64_t table_slot_grows = 0;
  std::size_t table_slot_capacity = 0;
  double table_occupancy = 1.0;
  // Transport accounting, mirrored from the transport when stats() is read
  // (all zero under SimTransport): envelopes handed to this site's inbox,
  // sends staged on its thread, and its inbox's high-water mark and lock
  // contention.
  std::uint64_t transport_handoffs = 0;
  std::uint64_t transport_staged_sends = 0;
  std::uint64_t transport_queue_peak = 0;
  std::uint64_t transport_queue_contention = 0;
  std::uint64_t transport_queue_overflows = 0;
};

class Site {
 public:
  Site(SiteId id, Transport& transport, const CollectorConfig& config);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  [[nodiscard]] SiteId id() const { return id_; }
  [[nodiscard]] Heap& heap() { return heap_; }
  [[nodiscard]] const Heap& heap() const { return heap_; }
  [[nodiscard]] RefTables& tables() { return tables_; }
  [[nodiscard]] const RefTables& tables() const { return tables_; }
  [[nodiscard]] BackTracer& back_tracer() { return back_tracer_; }
  [[nodiscard]] const BackTracer& back_tracer() const { return back_tracer_; }
  [[nodiscard]] const SiteBackInfo& back_info() const { return back_info_; }
  [[nodiscard]] const LocalCollector& collector() const { return collector_; }
  /// Refreshes the table-mirror fields (the tables mutate without passing
  /// through Site, so they are snapshotted at read time) and returns the
  /// stats block.
  [[nodiscard]] const SiteStats& stats() const {
    stats_.table_slot_reuses = tables_.slot_reuses();
    stats_.table_slot_grows = tables_.slot_grows();
    stats_.table_slot_capacity = tables_.slot_capacity();
    stats_.table_occupancy = tables_.occupancy();
    const SiteTransportCounters transport = transport_.site_counters(id_);
    stats_.transport_handoffs = transport.handoffs;
    stats_.transport_staged_sends = transport.staged_sends;
    stats_.transport_queue_peak = transport.queue_peak_depth;
    stats_.transport_queue_contention = transport.queue_contention;
    stats_.transport_queue_overflows = transport.queue_overflows;
    return stats_;
  }
  [[nodiscard]] const CollectorConfig& config() const { return config_; }

  /// Shares the system's persistent worker pool with this site's collector,
  /// enabling the intra-trace parallel phases (mark_threads > 1).
  void set_worker_pool(WorkerPool* pool) { collector_.set_worker_pool(pool); }

  // --- Network entry point -------------------------------------------

  void HandleMessage(const Envelope& envelope);

  /// Installs a handler consulted before built-in dispatch; returning true
  /// consumes the message. Used by the baseline collectors.
  void SetExtensionHandler(std::function<bool(const Envelope&)> handler) {
    extension_handler_ = std::move(handler);
  }

  // --- Local tracing ---------------------------------------------------

  /// Starts a local trace. With local_trace_duration == 0 it computes and
  /// applies atomically; otherwise the result applies after the configured
  /// duration (Section 6.2) and back traces meanwhile see the old copy.
  /// Equivalent to CommitLocalTrace(ComputeLocalTrace()).
  void StartLocalTrace();

  /// Compute half of a local trace: runs the collector against the current
  /// heap and tables and returns the result without applying it. Touches
  /// only this site's state (heap epoch stamps, lease expiry, collector
  /// epoch) — no network sends, no scheduler writes — which is what lets a
  /// ParallelTraceExecutor run many sites' computes concurrently.
  [[nodiscard]] TraceResult ComputeLocalTrace();

  /// Apply half of a local trace: applies immediately (atomic trace) or
  /// parks the result for the configured duration (Section 6.2). Must run on
  /// the simulation thread.
  void CommitLocalTrace(TraceResult result);

  [[nodiscard]] bool trace_in_flight() const {
    return pending_trace_.has_value();
  }

  /// Resends every registration still awaiting its owner's acknowledgement
  /// (both deferred and synchronous-path inserts). Runs automatically with
  /// each local trace; clients also call it when their blocking operation
  /// appears stalled (lost message). All inserts are idempotent.
  void ResendPendingInserts();

  /// Models a crash-restart: the persistent state (heap, inref/outref
  /// tables, back information — all durable in a persistent object store
  /// like Thor) survives; volatile state dies: back-trace frames and visit
  /// records, an in-flight local trace, pending insert continuations and
  /// RPC continuations. Call Network::SetSiteDown around the outage window;
  /// call this at the moment of the crash.
  void CrashRestart();

  // --- Snapshot restore (socket-mode site persistence) ------------------

  /// Installs restored back information. The snapshot stores only the
  /// inref-outset view; the inverse index is recomputed rather than
  /// trusted (SiteBackInfo keeps them exact inverses by construction).
  void RestoreBackInfo(OutsetMap inref_outsets) {
    back_info_.inref_outsets = std::move(inref_outsets);
    back_info_.RecomputeInsets();
  }

  /// Re-registers every outref with its owner — the same idempotent
  /// recovery-time InsertMsg resends CrashRestart performs — and zeroes
  /// pins (volatile client state). The snapshot-restore path calls this
  /// once heap, tables, and back info are loaded, so owner source lists
  /// and distance info lost with the crashed incarnation heal.
  void ReannounceOutrefs();

  // --- Barriers and reference arrival (Section 6.1) --------------------

  /// Transfer barrier: a reference to local object `local_ref` was
  /// transferred or traversed to this site. If the inref is suspected,
  /// cleans it and the outrefs in its outset.
  void ApplyTransferBarrier(ObjectId local_ref);

  /// A reference arrived at this site (RPC argument/result). Runs the
  /// appropriate case of Section 6.1.2 and invokes `done` once the reference
  /// is safely recorded (immediately, or after the insert ack for case 4).
  /// `sender` is the site the reference arrived from (kInvalidSite when
  /// unknown); under InsertMode::kDeferred, a reference owned by its own
  /// sender completes without waiting for the ack — the insert departs ahead
  /// of the operation's reply on the same FIFO channel.
  void ReceiveReference(ObjectId ref, std::function<void()> done,
                        SiteId sender = kInvalidSite);

  // --- Application roots (Section 6.3) ---------------------------------

  /// Registers a mutator variable holding local object `obj` as a root.
  void AddAppRoot(ObjectId obj);
  void RemoveAppRoot(ObjectId obj);

  /// Pins/unpins the outref for a remote reference held in a variable.
  /// The outref must already exist (the reference arrived via
  /// ReceiveReference).
  void PinOutref(ObjectId remote_ref);
  void UnpinOutref(ObjectId remote_ref);

  [[nodiscard]] std::vector<ObjectId> AppRootObjects() const;
  [[nodiscard]] bool IsRootObject(ObjectId obj) const;

  /// Remote references pinned by application variables or barriers —
  /// additional oracle roots.
  [[nodiscard]] std::vector<ObjectId> PinnedRemoteRefs() const;

  // --- Mutator RPC client plumbing --------------------------------------

  /// Registers the continuation for the session's next RPC completion on
  /// this (home) site. One outstanding operation per session.
  void RegisterSessionContinuation(std::uint64_t session,
                                   std::function<void(ObjectId)> continuation);

  /// Registers the continuation for a pending fetch (client caching); runs
  /// with the fetched copy's slots.
  void RegisterFetchContinuation(
      std::uint64_t session,
      std::function<void(const std::vector<ObjectId>&)> continuation);

  /// Registers the completion for a commit fanned out to the given owner
  /// sites; runs once every owner has acknowledged (duplicate acks from
  /// retried slices are ignored).
  void RegisterCommitContinuation(std::uint64_t session,
                                  std::set<SiteId> awaiting_owners,
                                  std::function<void()> continuation);

  // --- Direct graph construction (world building, not a protocol path) --

  /// Wires `source.slots[slot] = target`, keeping outref/inref tables
  /// consistent when the edge crosses sites. Bypasses barriers: use only to
  /// build initial worlds or in tests that script barrier timing themselves.
  void WireSlotTo(ObjectId source, std::size_t slot, ObjectId target,
                  Site& target_site);

 private:
  void HandleInsert(const Envelope& envelope, const InsertMsg& msg);
  void HandleInsertAck(const InsertAckMsg& msg);
  void HandleUpdate(const Envelope& envelope, const UpdateMsg& msg);
  void HandleMutatorRead(const Envelope& envelope, const MutatorReadMsg& msg);
  void HandleMutatorReadReply(const Envelope& envelope,
                              const MutatorReadReplyMsg& msg);
  void HandleMutatorWrite(const Envelope& envelope, const MutatorWriteMsg& msg);
  void HandleMutatorWriteAck(const MutatorWriteAckMsg& msg);
  void HandleFetch(const Envelope& envelope, const FetchMsg& msg);
  void HandleFetchReply(const FetchReplyMsg& msg);
  void HandleCommit(const Envelope& envelope, const CommitMsg& msg);
  void HandleCommitAck(const Envelope& envelope, const CommitAckMsg& msg);
  void HandlePinRelease(const PinReleaseMsg& msg);

  /// §2 sender retention for a reference this site is about to hand out in
  /// a reply: pins the outref (remote ref) or self-roots the object (own
  /// ref) until the requester's PinReleaseMsg.
  void RetainServedReference(ObjectId ref);

  void ApplyTraceResult(TraceResult result);

  /// Marks an outref clean (clean rule fires if it was suspected) and
  /// records the cleaning for replay into an in-flight trace's new copy.
  void CleanOutref(ObjectId remote_ref);

  SiteId id_;
  Transport& transport_;
  /// This site's own scheduler (== the control scheduler under
  /// SimTransport; the site thread's private scheduler under
  /// ThreadedTransport).
  Scheduler& scheduler_;
  CollectorConfig config_;

  Heap heap_;
  RefTables tables_;
  LocalCollector collector_;
  SiteBackInfo back_info_;
  BackTracer back_tracer_;

  /// Non-atomic local trace state (Section 6.2).
  std::optional<TraceResult> pending_trace_;
  std::set<ObjectId> window_cleaned_inrefs_;
  std::set<ObjectId> window_cleaned_outrefs_;
  /// Bumped by CrashRestart so a stale scheduled trace-apply is discarded.
  std::uint64_t trace_generation_ = 0;

  /// Application roots: local object -> hold count. Flat sorted map — read
  /// every trace (root enumeration) and mutated only at session boundaries.
  FlatMap<ObjectId, int> app_roots_;

  /// Insert barrier: continuations awaiting the owner's ack, per reference.
  /// Flat sorted map: iteration order (ResendPendingInserts) matches the
  /// std::map original, keeping resend message order bit-identical.
  FlatMap<ObjectId, std::vector<std::function<void()>>> pending_insert_acks_;

  /// Deferred-insert mode: references whose inserts are queued or sent but
  /// not yet acknowledged; resent on every flush until the ack lands. The
  /// outrefs stay pinned clean throughout (the insert-barrier retention).
  std::set<ObjectId> deferred_inserts_;

  void FlushDeferredInserts();

  /// Mutator RPC continuations keyed by session id.
  std::unordered_map<std::uint64_t, std::function<void(ObjectId)>>
      session_continuations_;
  std::unordered_map<std::uint64_t,
                     std::function<void(const std::vector<ObjectId>&)>>
      fetch_continuations_;
  struct PendingCommit {
    std::set<SiteId> awaiting;
    std::function<void()> continuation;
  };
  std::unordered_map<std::uint64_t, PendingCommit> commit_continuations_;

  std::function<bool(const Envelope&)> extension_handler_;
  /// Mutable only so the const stats() accessor can refresh the
  /// table-mirror fields; every other write happens on non-const paths.
  mutable SiteStats stats_;
};

}  // namespace dgc
