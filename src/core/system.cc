#include "core/system.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/parallel_trace.h"

namespace dgc {

namespace {

/// Caller threads participate in pool batches, so a pool of N - 1 workers
/// puts N threads on the work. Zero workers when neither knob asks for
/// parallelism — no threads are spawned and every phase runs inline.
std::size_t PoolWorkersFor(const CollectorConfig& config) {
  const std::size_t want =
      std::max(config.trace_threads, config.mark_threads);
  return want <= 1 ? 0 : want - 1;
}

/// Tells the transport how much nested per-site parallelism the sites will
/// fork on its pool, so a pool-owning backend (ThreadedTransport) can size
/// itself for mark_threads-way shard batches inside each site step.
NetworkConfig WithNestedParallelism(NetworkConfig net,
                                    const CollectorConfig& collector) {
  if (net.transport_nested_threads == 0) {
    net.transport_nested_threads =
        std::max<std::size_t>(1, collector.mark_threads);
  }
  return net;
}

}  // namespace

System::System(std::size_t site_count, const CollectorConfig& collector_config,
               const NetworkConfig& network_config, std::uint64_t seed)
    : collector_config_(collector_config),
      rng_(seed),
      transport_(CreateTransport(site_count, scheduler_,
                                 WithNestedParallelism(network_config,
                                                       collector_config),
                                 rng_.Fork())),
      pool_(PoolWorkersFor(collector_config)),
      trace_executor_(pool_, collector_config.trace_threads) {
  DGC_CHECK(site_count >= 1);
  // With retransmission, "0 disables timeouts" would let one exhausted
  // retransmit budget strand a trace forever; derive protocol timeouts
  // from the network's timing instead (shared with SocketWorld so both
  // coordinators compute identical values — see config.h for the rule).
  DeriveReliabilityTimeouts(collector_config_, network_config);
  // A pool-owning transport (ThreadedTransport) hosts the sites' nested
  // mark/sweep shard batches itself: site steps already run on its pool
  // threads, and WorkerPool's caller-participates nesting makes the
  // fork-from-a-pool-task shape deadlock-free. Everything else (sim) keeps
  // the System pool, bit for bit.
  WorkerPool* site_pool = transport_->site_worker_pool();
  if (site_pool == nullptr) site_pool = &pool_;
  sites_.reserve(site_count);
  for (std::size_t i = 0; i < site_count; ++i) {
    sites_.push_back(std::make_unique<Site>(static_cast<SiteId>(i),
                                            *transport_, collector_config_));
    sites_.back()->set_worker_pool(site_pool);
  }
}

ObjectId System::NewObject(SiteId site_id, std::size_t slots) {
  return site(site_id).heap().Allocate(slots);
}

void System::SetPersistentRoot(ObjectId obj) {
  site(obj.site).heap().AddPersistentRoot(obj);
}

void System::Wire(ObjectId source, std::size_t slot, ObjectId target) {
  Site& source_site = site(source.site);
  if (target.valid() && target.site != source.site) {
    source_site.WireSlotTo(source, slot, target, site(target.site));
  } else {
    source_site.WireSlotTo(source, slot, target, source_site);
  }
}

void System::Unwire(ObjectId source, std::size_t slot) {
  site(source.site).heap().SetSlot(source, slot, kInvalidObject);
}

void System::RunRound() {
  if (collector_config_.trace_threads > 1) {
    RunRoundParallel();
    return;
  }
  for (auto& s : sites_) {
    if (!s->trace_in_flight()) s->StartLocalTrace();
    SettleNetwork();
  }
  ++rounds_;
}

void System::RunRoundParallel() {
  // Compute phase: every eligible site traces concurrently against the same
  // snapshot of the world (no messages move, so no site observes another's
  // results mid-round — the racy-but-safe schedule of Section 6).
  std::vector<Site*> tracing;
  tracing.reserve(sites_.size());
  for (auto& s : sites_) {
    if (!s->trace_in_flight()) tracing.push_back(s.get());
  }
  std::vector<TraceResult> results = trace_executor_.ComputeAll(tracing);
  // Merge phase: commit in site order, settling in between, so message
  // interleaving is as deterministic as the sequential schedule.
  for (std::size_t i = 0; i < tracing.size(); ++i) {
    tracing[i]->CommitLocalTrace(std::move(results[i]));
    SettleNetwork();
  }
  ++rounds_;
}

void System::RunRoundStaggered(SimTime stagger) {
  // Schedule each site's trace on its own scheduler: under the sim
  // transport every SchedulerFor is the shared scheduler and the At calls
  // reproduce the historical After(offset) schedule exactly; under the
  // threaded transport the traces run on the site threads — with stagger 0
  // they all land in one parallel phase, which is where the backend's
  // speedup comes from.
  const SimTime base = transport_->now();
  SimTime offset = 0;
  for (auto& s : sites_) {
    Site* raw = s.get();
    transport_->SchedulerFor(raw->id()).At(base + offset, [raw] {
      if (!raw->trace_in_flight()) raw->StartLocalTrace();
    });
    offset += stagger;
  }
  SettleNetwork();
  ++rounds_;
}

void System::RunRounds(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) RunRound();
}

void System::SettleNetwork() { transport_->Settle(); }

void System::ArmFaultPlan(const FaultPlan& plan) {
  FaultHooks hooks;
  hooks.set_site_down = [this](SiteId site, bool down) {
    DGC_CHECK(site < sites_.size());
    network().SetSiteDown(site, down);
  };
  hooks.set_link_down = [this](SiteId a, SiteId b, bool down) {
    DGC_CHECK(a < sites_.size() && b < sites_.size());
    network().SetLinkDown(a, b, down);
  };
  hooks.crash_restart = [this](SiteId site) {
    DGC_CHECK(site < sites_.size());
    sites_[site]->CrashRestart();
  };
  // Overlapping windows stack: the overrides restore only when the last
  // open window closes (the nested values themselves do not compose — the
  // strongest recent burst/spike wins, which chaos testing does not care
  // about).
  const auto open_bursts = std::make_shared<int>(0);
  hooks.begin_drop_burst = [this, open_bursts](double p) {
    ++*open_bursts;
    network().set_drop_probability_override(p);
  };
  hooks.end_drop_burst = [this, open_bursts] {
    if (--*open_bursts == 0) network().set_drop_probability_override(-1.0);
  };
  const auto open_spikes = std::make_shared<int>(0);
  hooks.begin_latency_spike = [this, open_spikes](SimTime extra) {
    ++*open_spikes;
    network().set_extra_latency(extra);
  };
  hooks.end_latency_spike = [this, open_spikes] {
    if (--*open_spikes == 0) network().set_extra_latency(0);
  };
  plan.Schedule(scheduler_, std::move(hooks));
}

std::set<ObjectId> System::ComputeLiveSet() const {
  std::vector<ObjectId> stack;
  std::set<ObjectId> live;
  const auto push = [&](ObjectId id) {
    if (!id.valid()) return;
    if (!ObjectExists(id)) return;  // dangling root/pin: ignore here,
                                    // CheckSafety reports real violations
    if (live.insert(id).second) stack.push_back(id);
  };
  for (const auto& s : sites_) {
    for (const ObjectId root : s->heap().persistent_roots()) push(root);
    for (const ObjectId root : s->AppRootObjects()) push(root);
    for (const ObjectId pinned : s->PinnedRemoteRefs()) push(pinned);
  }
  while (!stack.empty()) {
    const ObjectId current = stack.back();
    stack.pop_back();
    for (const ObjectId target : site(current.site).heap().Get(current).slots) {
      push(target);
    }
  }
  return live;
}

std::size_t System::TotalObjects() const {
  std::size_t total = 0;
  for (const auto& s : sites_) total += s->heap().object_count();
  return total;
}

bool System::ObjectExists(ObjectId id) const {
  if (!id.valid() || id.site >= sites_.size()) return false;
  return sites_[id.site]->heap().Exists(id);
}

std::string System::CheckSafety() const {
  // A live object that was reclaimed would be unreachable via existing
  // objects, so walk roots without the existence filter and report any edge
  // into a missing object.
  std::vector<ObjectId> stack;
  std::set<ObjectId> seen;
  std::ostringstream violation;
  const auto push = [&](ObjectId id, const char* why,
                        ObjectId holder) -> bool {
    if (!id.valid()) return true;
    if (!ObjectExists(id)) {
      violation << "live object " << id << " (" << why << " of " << holder
                << ") was reclaimed";
      return false;
    }
    if (seen.insert(id).second) stack.push_back(id);
    return true;
  };
  for (const auto& s : sites_) {
    for (const ObjectId root : s->heap().persistent_roots()) {
      if (!push(root, "persistent root", root)) return violation.str();
    }
    for (const ObjectId root : s->AppRootObjects()) {
      if (!push(root, "app root", root)) return violation.str();
    }
    for (const ObjectId pinned : s->PinnedRemoteRefs()) {
      if (!push(pinned, "pinned ref", pinned)) return violation.str();
    }
  }
  while (!stack.empty()) {
    const ObjectId current = stack.back();
    stack.pop_back();
    for (const ObjectId target : site(current.site).heap().Get(current).slots) {
      if (!push(target, "slot", current)) return violation.str();
    }
  }
  return {};
}

std::string System::CheckCompleteness() const {
  const std::set<ObjectId> live = ComputeLiveSet();
  std::ostringstream violation;
  for (const auto& s : sites_) {
    std::string found;
    s->heap().ForEach([&](ObjectId id, const Object&) {
      if (found.empty() && !live.contains(id)) {
        std::ostringstream os;
        os << "garbage object " << id << " still stored";
        found = os.str();
      }
    });
    if (!found.empty()) return found;
  }
  return {};
}

std::string System::CheckReferentialIntegrity() const {
  std::ostringstream violation;
  const std::set<ObjectId> live = ComputeLiveSet();
  // Every cross-site reference held by a live object must be covered by an
  // outref at the holder's site, and every outref by an inref source entry.
  for (const auto& s : sites_) {
    for (const ObjectId id : live) {
      if (id.site != s->id()) continue;
      for (const ObjectId target : s->heap().Get(id).slots) {
        if (!target.valid() || target.site == s->id()) continue;
        if (s->tables().FindOutref(target) == nullptr) {
          violation << "live object " << id << " holds " << target
                    << " with no outref at site " << s->id();
          return violation.str();
        }
      }
    }
    for (const auto& [ref, entry] : s->tables().outrefs()) {
      (void)entry;
      const Site& owner = site(ref.site);
      const InrefEntry* inref = owner.tables().FindInref(ref);
      if (inref == nullptr || !inref->sources.contains(s->id())) {
        violation << "outref " << ref << " at site " << s->id()
                  << " missing from owner's inref sources";
        return violation.str();
      }
      if (!owner.heap().Exists(ref)) {
        violation << "outref " << ref << " at site " << s->id()
                  << " names a reclaimed object";
        return violation.str();
      }
    }
  }
  return {};
}

std::string System::CheckLocalSafetyInvariant() const {
  std::ostringstream violation;
  for (const auto& s : sites_) {
    // True local reachability: from each live inref's object, which remote
    // references (outrefs) does the local heap reach?
    for (const auto& [inref_obj, inref_entry] : s->tables().inrefs()) {
      if (inref_entry.garbage_flagged) continue;
      if (!s->heap().Exists(inref_obj)) continue;
      // BFS over local objects from inref_obj.
      std::set<std::uint64_t> seen{inref_obj.index};
      std::vector<ObjectId> stack{inref_obj};
      std::set<ObjectId> reached_remote;
      while (!stack.empty()) {
        const ObjectId current = stack.back();
        stack.pop_back();
        for (const ObjectId target : s->heap().Get(current).slots) {
          if (!target.valid()) continue;
          if (target.site != s->id()) {
            reached_remote.insert(target);
            continue;
          }
          if (!s->heap().Exists(target)) continue;  // racing sweep
          if (seen.insert(target.index).second) stack.push_back(target);
        }
      }
      for (const ObjectId outref : reached_remote) {
        const OutrefEntry* entry = s->tables().FindOutref(outref);
        if (entry == nullptr || entry->clean()) continue;  // clean: exempt
        const auto inset = s->back_info().outref_insets.find(outref);
        const bool listed =
            inset != s->back_info().outref_insets.end() &&
            std::binary_search(inset->second.begin(), inset->second.end(),
                               inref_obj);
        if (!listed) {
          violation << "site " << s->id() << ": suspected outref " << outref
                    << " is locally reachable from inref " << inref_obj
                    << " but its inset omits it";
          return violation.str();
        }
      }
    }
  }
  return {};
}

std::string System::CheckAllInvariants() const {
  if (std::string v = CheckSafety(); !v.empty()) return "safety: " + v;
  if (std::string v = CheckReferentialIntegrity(); !v.empty()) {
    return "integrity: " + v;
  }
  return {};
}

BackTracerStats System::AggregateBackTracerStats() const {
  BackTracerStats total;
  for (const auto& s : sites_) {
    const BackTracerStats& stats = s->back_tracer().stats();
    total.traces_started += stats.traces_started;
    total.traces_completed_garbage += stats.traces_completed_garbage;
    total.traces_completed_live += stats.traces_completed_live;
    total.frames_created += stats.frames_created;
    total.calls_handled += stats.calls_handled;
    total.clean_rule_hits += stats.clean_rule_hits;
    total.timeouts += stats.timeouts;
    total.inrefs_flagged += stats.inrefs_flagged;
    total.records_expired += stats.records_expired;
    total.records_scrubbed += stats.records_scrubbed;
    total.verdicts_recorded += stats.verdicts_recorded;
    total.cache_hits += stats.cache_hits;
    total.cache_misses += stats.cache_misses;
    total.trace_starts_skipped += stats.trace_starts_skipped;
    total.branches_coalesced += stats.branches_coalesced;
    total.waiters_resolved += stats.waiters_resolved;
    total.waiters_requeued += stats.waiters_requeued;
    total.calls_batched += stats.calls_batched;
    total.call_batches_sent += stats.call_batches_sent;
    total.calls_parked += stats.calls_parked;
    total.calls_unparked += stats.calls_unparked;
  }
  return total;
}

std::uint64_t System::TotalObjectsReclaimed() const {
  std::uint64_t total = 0;
  for (const auto& s : sites_) total += s->heap().stats().reclaimed;
  return total;
}

System::TraceThroughput System::AggregateTraceThroughput() const {
  TraceThroughput total;
  for (const auto& s : sites_) {
    total.wall_ns += s->stats().trace_wall_ns;
    total.objects_marked += s->stats().objects_marked;
    total.traces += s->stats().local_traces;
  }
  return total;
}

System::HeapOccupancy System::AggregateHeapOccupancy() const {
  HeapOccupancy total;
  for (const auto& s : sites_) {
    total.slabs += s->heap().slab_count();
    total.slot_capacity += s->heap().slot_capacity();
    total.live_objects += s->heap().object_count();
    total.free_slots += s->heap().free_slot_count();
  }
  return total;
}

}  // namespace dgc
