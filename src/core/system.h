// The whole simulated world: scheduler + network + sites, plus the global
// reachability oracle that tests and benches check the collector against.
//
// The oracle computes true liveness by tracing the union of all heaps from
// every root (persistent roots, application roots, and remote references
// pinned by mutator variables or the insert barrier) — knowledge no real
// site has, used only for validation.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/worker_pool.h"
#include "core/parallel_trace.h"
#include "core/site.h"
#include "net/transport.h"
#include "sim/fault_plan.h"
#include "sim/scheduler.h"

namespace dgc {

class System {
 public:
  System(std::size_t site_count, const CollectorConfig& collector_config = {},
         const NetworkConfig& network_config = {}, std::uint64_t seed = 1);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] Site& site(SiteId id) {
    DGC_CHECK(id < sites_.size());
    return *sites_[id];
  }
  [[nodiscard]] const Site& site(SiteId id) const {
    DGC_CHECK(id < sites_.size());
    return *sites_[id];
  }
  /// The control scheduler (== every site's scheduler under the sim
  /// transport). Driving it directly bypasses the threaded engine; prefer
  /// now()/RunUntilTime()/SettleNetwork() in transport-agnostic code.
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] Network& network() { return transport_->network(); }
  [[nodiscard]] const Network& network() const {
    return transport_->network();
  }
  [[nodiscard]] Transport& transport() { return *transport_; }
  [[nodiscard]] const Transport& transport() const { return *transport_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Global simulated time (all schedulers agree whenever the world is
  /// settled).
  [[nodiscard]] SimTime now() const { return transport_->now(); }

  /// The scheduler a given site's timers live on (the shared scheduler
  /// under the sim transport; the site's private one under threaded).
  [[nodiscard]] Scheduler& SchedulerFor(SiteId site) {
    return transport_->SchedulerFor(site);
  }

  // --- World building (god mode; bypasses the mutator protocol) --------

  ObjectId NewObject(SiteId site, std::size_t slots);
  void SetPersistentRoot(ObjectId obj);

  /// Wires source.slots[slot] = target, maintaining outref/inref tables for
  /// cross-site edges.
  void Wire(ObjectId source, std::size_t slot, ObjectId target);

  /// Clears a slot. Reference deletion needs no eager bookkeeping
  /// (Section 6.1 ignores deletions); the next local traces notice.
  void Unwire(ObjectId source, std::size_t slot);

  // --- Driving the simulation ------------------------------------------

  /// One round (Section 3's unit of progress): every site runs one local
  /// trace, in site order, letting all resulting messages and back traces
  /// settle in between. With collector_config.trace_threads > 1 the per-site
  /// trace *computations* run concurrently on a thread pool (the paper's
  /// locality property makes them independent) and the results are applied
  /// deterministically in site order; trace_threads == 1 preserves the
  /// historical sequential schedule exactly.
  void RunRound();

  /// A round where site i starts its trace at now + i * stagger without
  /// settling in between — the racy schedule for concurrency experiments.
  void RunRoundStaggered(SimTime stagger);

  void RunRounds(std::size_t n);

  /// Drains all schedulers (message deliveries, back traces, timeouts).
  void SettleNetwork();

  /// Advances the simulated clock by `delta`, running any events that fall
  /// due. Useful for timeout/lease experiments in otherwise-quiet worlds,
  /// where no events would otherwise move time forward.
  void AdvanceTime(SimTime delta) { RunUntilTime(now() + delta); }

  /// Runs every event (on every scheduler) with time <= t, then advances
  /// all clocks to t.
  void RunUntilTime(SimTime t) { transport_->RunUntilTime(t); }

  [[nodiscard]] std::size_t rounds_run() const { return rounds_; }

  /// Arms a chaos plan against this system: site outages flip
  /// Network::SetSiteDown (crash-restart variants additionally call
  /// Site::CrashRestart at heal), link flaps flip SetLinkDown, and
  /// drop-burst / latency-spike windows drive the network's chaos
  /// overrides with reference counting, so overlapping windows restore the
  /// configured values only when the last one ends. The plan's events then
  /// interleave with protocol traffic as the scheduler reaches them (e.g.
  /// during SettleNetwork or RunUntil).
  void ArmFaultPlan(const FaultPlan& plan);

  // --- Oracle and invariant checks --------------------------------------

  /// Objects truly reachable from some root anywhere, right now.
  [[nodiscard]] std::set<ObjectId> ComputeLiveSet() const;

  /// Total objects currently stored across all sites.
  [[nodiscard]] std::size_t TotalObjects() const;

  [[nodiscard]] bool ObjectExists(ObjectId id) const;

  /// Safety: every truly live object still exists. Returns a description of
  /// the first violation, or an empty string.
  [[nodiscard]] std::string CheckSafety() const;

  /// Completeness: no stored object is garbage. Empty string when clean.
  [[nodiscard]] std::string CheckCompleteness() const;

  /// Referential integrity between outrefs, inrefs and live heap contents.
  /// Only meaningful when the network is idle. Empty string when clean.
  [[nodiscard]] std::string CheckReferentialIntegrity() const;

  /// The Local Safety Invariant of Section 6.1.1: for any suspected outref
  /// o, o.inset includes every inref o is locally reachable from. Only
  /// meaningful at quiescence (network idle, no trace in flight) — between
  /// a mutation and the next local trace the invariant is maintained by
  /// the transfer barrier cleaning o instead, which the check honours by
  /// skipping clean outrefs. Empty string when the invariant holds.
  [[nodiscard]] std::string CheckLocalSafetyInvariant() const;

  /// Runs all three checks; returns first violation or empty string.
  [[nodiscard]] std::string CheckAllInvariants() const;

  // --- Aggregate statistics ---------------------------------------------

  [[nodiscard]] BackTracerStats AggregateBackTracerStats() const;
  [[nodiscard]] std::uint64_t TotalObjectsReclaimed() const;

  /// Cumulative local-trace throughput across all sites: real compute time,
  /// objects marked, traces run. objects/sec marked = marked / wall.
  struct TraceThroughput {
    std::uint64_t wall_ns = 0;
    std::uint64_t objects_marked = 0;
    std::uint64_t traces = 0;
    [[nodiscard]] double objects_per_sec() const {
      return wall_ns == 0 ? 0.0
                          : static_cast<double>(objects_marked) * 1e9 /
                                static_cast<double>(wall_ns);
    }
  };
  [[nodiscard]] TraceThroughput AggregateTraceThroughput() const;

  /// Aggregate slab occupancy across all heaps: live objects over storage
  /// slots ever used, plus free-list depth.
  struct HeapOccupancy {
    std::size_t slabs = 0;
    std::size_t slot_capacity = 0;
    std::size_t live_objects = 0;
    std::size_t free_slots = 0;
    [[nodiscard]] double occupancy() const {
      return slot_capacity == 0 ? 1.0
                                : static_cast<double>(live_objects) /
                                      static_cast<double>(slot_capacity);
    }
  };
  [[nodiscard]] HeapOccupancy AggregateHeapOccupancy() const;

  /// The persistent pool behind both parallelism levels (occupancy metrics).
  [[nodiscard]] const WorkerPool& worker_pool() const { return pool_; }

  /// The persistent per-site trace executor (batch counts, wall time).
  [[nodiscard]] const ParallelTraceExecutor& trace_executor() const {
    return trace_executor_;
  }

 private:
  /// The trace_threads > 1 round: compute all sites' traces concurrently
  /// from one snapshot, then commit in site order, settling in between.
  void RunRoundParallel();

  CollectorConfig collector_config_;
  Scheduler scheduler_;
  Rng rng_;
  /// The pluggable message/time engine (owns the Network). Declared in the
  /// old Network member's position so rng_.Fork() order — and with it every
  /// seeded run — is unchanged.
  std::unique_ptr<Transport> transport_;
  /// Persistent worker pool shared by both scheduling levels: per-site trace
  /// computations (coarse tasks, capped at trace_threads) and intra-site
  /// mark/sweep/refold shards (fine tasks, capped at mark_threads). Sized so
  /// caller + pool = max(trace_threads, mark_threads); spawns no threads at
  /// all when both knobs are 1. Declared before sites_ so it outlives them.
  WorkerPool pool_;
  ParallelTraceExecutor trace_executor_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::size_t rounds_ = 0;
};

}  // namespace dgc
