#include "localgc/distance_labels.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace dgc {

void DistanceLabels::EnsureCapacity() {
  const std::size_t n = heap_.slot_capacity();
  if (label_.size() >= n) return;
  label_.resize(n, kDistanceInfinity);
  contrib_.resize(n, kDistanceInfinity);
  succs_.resize(n);
  preds_.resize(n);
  remote_targets_.resize(n);
  cone_stamp_.resize(n, 0);
}

void DistanceLabels::AddSupport(ObjectId target, Distance label,
                                std::uint32_t count) {
  support_[target][label] += count;
}

void DistanceLabels::SubSupport(ObjectId target, Distance label,
                                std::uint32_t count) {
  const auto it = support_.find(target);
  DGC_CHECK_MSG(it != support_.end(), "no support entry for " << target);
  const auto jt = it->second.find(label);
  DGC_CHECK_MSG(jt != it->second.end() && jt->second >= count,
                "support underflow for " << target << " at label " << label);
  jt->second -= count;
  if (jt->second == 0) it->second.erase(jt);
  if (it->second.empty()) support_.erase(it);
}

void DistanceLabels::Relabel(std::uint64_t slot, Distance value) {
  const Distance old = label_[slot];
  if (old == value) return;
  // Keep the remote-support index keyed by the holder's label across the
  // change (a holder is support only while label <= threshold).
  const auto& remotes = remote_targets_[slot];
  if (!remotes.empty()) {
    for (const auto& [target, count] : remotes) {
      if (old <= threshold_) SubSupport(target, old, count);
      if (value <= threshold_) AddSupport(target, value, count);
    }
  }
  label_[slot] = value;
  ++stats_.objects_relabeled;
  ++writes_this_event_;
  if (budget_ != 0 && writes_this_event_ > budget_) MarkStale();
}

Distance DistanceLabels::FloorOf(std::uint64_t slot) const {
  Distance floor = contrib_[slot];
  for (const auto& [pred, count] : preds_[slot]) {
    (void)count;
    floor = std::min(floor, label_[pred]);
  }
  return floor;
}

void DistanceLabels::RepairAt(std::uint64_t slot) {
  if (!fresh_) return;
  const Distance floor = FloorOf(slot);
  if (floor < label_[slot]) {
    RippleDown(slot, floor);
    return;
  }
  // floor >= label: the label may need to rise. A contribution equal to the
  // label anchors the slot independently of every predecessor; an
  // equal-labeled predecessor does NOT — it may sit on a cycle through this
  // very slot and be about to rise with it. Anything short of a
  // contribution anchor walks the dependent cone (exact, possibly a no-op).
  if (label_[slot] == kDistanceInfinity) return;
  if (contrib_[slot] == label_[slot]) return;
  Refloor(slot);
}

void DistanceLabels::RippleDown(std::uint64_t slot, Distance value) {
  if (!fresh_) return;
  // Exact: every slot reached here had label > value, and edges cost zero,
  // so its new minimum is exactly value.
  Relabel(slot, value);
  bfs_stack_.clear();
  bfs_stack_.push_back(slot);
  while (!bfs_stack_.empty() && fresh_) {
    const std::uint64_t current = bfs_stack_.back();
    bfs_stack_.pop_back();
    for (const auto& [succ, count] : succs_[current]) {
      (void)count;
      if (label_[succ] <= value) continue;
      Relabel(succ, value);
      bfs_stack_.push_back(succ);
    }
  }
}

void DistanceLabels::Refloor(std::uint64_t slot) {
  if (!fresh_) return;
  const Distance level = label_[slot];
  // The dependent cone: slots labeled `level` reachable from the change
  // through slots labeled `level`. Anything labeled lower has support
  // independent of this slot; any equal-labeled slot reachable only through
  // lower-labeled ones keeps its label through them.
  ++cone_epoch_;
  cone_members_.clear();
  bfs_stack_.clear();
  cone_stamp_[slot] = cone_epoch_;
  cone_members_.push_back(slot);
  bfs_stack_.push_back(slot);
  while (!bfs_stack_.empty()) {
    const std::uint64_t current = bfs_stack_.back();
    bfs_stack_.pop_back();
    for (const auto& [succ, count] : succs_[current]) {
      (void)count;
      if (label_[succ] != level || cone_stamp_[succ] == cone_epoch_) continue;
      cone_stamp_[succ] = cone_epoch_;
      cone_members_.push_back(succ);
      bfs_stack_.push_back(succ);
    }
  }
  // Invalidate the cone, then re-seed each member from its contribution and
  // its out-of-cone predecessors (whose labels are independent of the cone)
  // and settle best-first. Members no seed reaches stay at infinity.
  for (const std::uint64_t member : cone_members_) {
    Relabel(member, kDistanceInfinity);
    if (!fresh_) return;
  }
  using Entry = std::pair<Distance, std::uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> frontier;
  for (const std::uint64_t member : cone_members_) {
    Distance seed = contrib_[member];
    for (const auto& [pred, count] : preds_[member]) {
      (void)count;
      if (cone_stamp_[pred] != cone_epoch_) seed = std::min(seed, label_[pred]);
    }
    if (seed != kDistanceInfinity) frontier.emplace(seed, member);
  }
  while (!frontier.empty() && fresh_) {
    const auto [value, current] = frontier.top();
    frontier.pop();
    if (label_[current] <= value) continue;
    Relabel(current, value);
    for (const auto& [succ, count] : succs_[current]) {
      (void)count;
      if (label_[succ] > value) frontier.emplace(value, succ);
    }
  }
}

void DistanceLabels::SetContribution(std::uint64_t slot, Distance value) {
  const Distance old = contrib_[slot];
  if (old == value) return;
  // Suspicion-threshold breach: a distance report lifted a clean root to a
  // finite suspect distance. Rare (it means the inref's remote holders all
  // ripened past the threshold at once), and the fallback trigger the paper
  // calls for. A removal (-> infinity) stays on the exact re-floor path:
  // root churn is the dominant soak workload.
  if (old <= threshold_ && value > threshold_ && value != kDistanceInfinity) {
    ++stats_.threshold_breaches;
    MarkStale();
    return;
  }
  contrib_[slot] = value;
  if (value == kDistanceInfinity) {
    contrib_map_.erase(slot);
  } else {
    contrib_map_[slot] = value;
  }
  if (value < label_[slot]) {
    RippleDown(slot, value);
  } else if (old == label_[slot]) {
    // The old contribution was (possibly) what held the label down; repair.
    // When it sat above the label it never mattered and nothing moves.
    RepairAt(slot);
  }
}

void DistanceLabels::ReconcileContributions(const ContributionMap& contribs) {
  DGC_DCHECK(fresh_);
  EnsureCapacity();
  // Collect the diff before applying: SetContribution edits contrib_map_.
  std::vector<std::pair<std::uint64_t, Distance>> changes;
  for (const auto& [slot, value] : contribs) {
    if (slot < contrib_.size() && contrib_[slot] == value) continue;
    changes.emplace_back(slot, value);
  }
  for (const auto& [slot, value] : contrib_map_) {
    (void)value;
    if (!contribs.contains(slot)) {
      changes.emplace_back(slot, kDistanceInfinity);
    }
  }
  for (const auto& [slot, value] : changes) {
    BeginEvent();
    SetContribution(slot, value);
    EndEvent();
    if (!fresh_) return;
  }
}

void DistanceLabels::OnAllocate(ObjectId id) {
  if (!fresh_) return;
  EnsureCapacity();
  const std::uint64_t slot = Heap::SlotOfIndex(id.index);
  // A fresh object has null slots, no edges and no contribution yet. A
  // recycled slot was fully unlinked by OnFree; reset defensively anyway.
  label_[slot] = kDistanceInfinity;
  contrib_[slot] = kDistanceInfinity;
  contrib_map_.erase(slot);
  DGC_DCHECK(succs_[slot].empty() && preds_[slot].empty() &&
             remote_targets_[slot].empty());
}

void DistanceLabels::OnSlotWrite(ObjectId source, ObjectId previous,
                                 ObjectId next) {
  if (!fresh_) return;
  if (previous == next) return;
  BeginEvent();
  const std::uint64_t src = Heap::SlotOfIndex(source.index);
  const SiteId self = heap_.site();
  if (previous.valid()) {
    if (previous.site != self) {
      auto& remotes = remote_targets_[src];
      const auto it = remotes.find(previous);
      DGC_CHECK_MSG(it != remotes.end(),
                    "severed remote edge " << previous << " not mirrored");
      if (--it->second == 0) remotes.erase(it);
      if (label_[src] <= threshold_) SubSupport(previous, label_[src], 1);
    } else if (heap_.Exists(previous)) {
      const std::uint64_t prev_slot = Heap::SlotOfIndex(previous.index);
      auto& out = succs_[src];
      const auto oit = out.find(prev_slot);
      DGC_CHECK_MSG(oit != out.end(),
                    "severed local edge to slot " << prev_slot
                                                  << " not mirrored");
      if (--oit->second == 0) out.erase(oit);
      auto& in = preds_[prev_slot];
      const auto iit = in.find(src);
      DGC_CHECK(iit != in.end());
      if (--iit->second == 0) in.erase(iit);
      // The severed edge mattered to the target only if the source sat at
      // the target's level (the invariant rules out sitting below it).
      if (label_[src] <= label_[prev_slot]) RepairAt(prev_slot);
    }
    // Local but nonexistent: a dangling id whose edge was already unlinked
    // when its target was freed.
  }
  if (next.valid() && fresh_) {
    if (next.site != self) {
      ++remote_targets_[src][next];
      if (label_[src] <= threshold_) AddSupport(next, label_[src], 1);
    } else if (heap_.Exists(next)) {
      const std::uint64_t next_slot = Heap::SlotOfIndex(next.index);
      ++succs_[src][next_slot];
      ++preds_[next_slot][src];
      // A new edge can only lower the target's minimum; the source's own
      // label is unaffected by its out-edges.
      if (label_[src] < label_[next_slot]) {
        RippleDown(next_slot, label_[src]);
      }
    }
  }
  EndEvent();
}

void DistanceLabels::OnFree(ObjectId id) {
  if (!fresh_) return;
  BeginEvent();
  const std::uint64_t slot = Heap::SlotOfIndex(id.index);
  if (contrib_[slot] != kDistanceInfinity) {
    contrib_[slot] = kDistanceInfinity;
    contrib_map_.erase(slot);
  }
  if (label_[slot] <= threshold_) {
    for (const auto& [target, count] : remote_targets_[slot]) {
      SubSupport(target, label_[slot], count);
    }
  }
  remote_targets_[slot].clear();
  // Unlink out-edges both ways, then repair each former successor (its floor
  // may have risen). Former predecessors just drop the edge: a slot's label
  // never depends on its own out-edges.
  std::vector<std::uint64_t> former_succs;
  former_succs.reserve(succs_[slot].size());
  for (const auto& [succ, count] : succs_[slot]) {
    (void)count;
    former_succs.push_back(succ);
    preds_[succ].erase(slot);
  }
  succs_[slot].clear();
  for (const auto& [pred, count] : preds_[slot]) {
    (void)count;
    succs_[pred].erase(slot);
  }
  preds_[slot].clear();
  const Distance freed_label = label_[slot];
  label_[slot] = kDistanceInfinity;  // dead slot; not a relabel
  for (const std::uint64_t succ : former_succs) {
    if (!fresh_) break;
    // Same pruning as a severed edge: a higher-labeled holder never
    // supported the successor's label in the first place.
    if (freed_label <= label_[succ]) RepairAt(succ);
  }
  EndEvent();
}

DistanceLabels::Propagated DistanceLabels::FullPropagation(
    const Heap& heap, Distance threshold, const ContributionMap& contribs) {
  Propagated out;
  const std::size_t capacity = heap.slot_capacity();
  out.labels.assign(capacity, kDistanceInfinity);

  // Sources in increasing contribution order: the first touch of a slot
  // writes its final (minimum) label, so every slot is written at most once.
  std::vector<std::pair<Distance, std::uint64_t>> sources;
  sources.reserve(contribs.size());
  for (const auto& [slot, value] : contribs) {
    sources.emplace_back(value, slot);
  }
  std::sort(sources.begin(), sources.end());

  const SiteId self = heap.site();
  std::vector<std::uint64_t> stack;
  for (const auto& [value, source] : sources) {
    if (value == kDistanceInfinity) continue;
    if (!heap.SlotLive(source) || out.labels[source] <= value) continue;
    out.labels[source] = value;
    ++out.writes;
    stack.clear();
    stack.push_back(source);
    while (!stack.empty()) {
      const std::uint64_t current = stack.back();
      stack.pop_back();
      for (const ObjectId target : heap.ObjectAtSlot(current).slots) {
        if (!target.valid() || target.site != self) continue;
        if (!heap.Exists(target)) continue;
        const std::uint64_t slot = Heap::SlotOfIndex(target.index);
        if (out.labels[slot] <= value) continue;
        out.labels[slot] = value;
        ++out.writes;
        stack.push_back(slot);
      }
    }
  }

  for (std::uint64_t slot = 0; slot < capacity; ++slot) {
    if (!heap.SlotLive(slot) || out.labels[slot] > threshold) continue;
    for (const ObjectId target : heap.ObjectAtSlot(slot).slots) {
      if (target.valid() && target.site != self) {
        ++out.support[target][out.labels[slot]];
      }
    }
  }
  return out;
}

void DistanceLabels::RebuildFromScratch(const ContributionMap& contribs) {
  const std::size_t capacity = heap_.slot_capacity();
  contrib_.assign(capacity, kDistanceInfinity);
  succs_.assign(capacity, {});
  preds_.assign(capacity, {});
  remote_targets_.assign(capacity, {});
  cone_stamp_.assign(capacity, 0);
  cone_epoch_ = 0;
  contrib_map_ = contribs;
  for (const auto& [slot, value] : contribs) {
    DGC_DCHECK(slot < capacity);
    contrib_[slot] = value;
  }
  const SiteId self = heap_.site();
  heap_.ForEach([&](ObjectId id, const Object& object) {
    const std::uint64_t slot = Heap::SlotOfIndex(id.index);
    for (const ObjectId target : object.slots) {
      if (!target.valid()) continue;
      if (target.site != self) {
        ++remote_targets_[slot][target];
      } else if (heap_.Exists(target)) {
        const std::uint64_t target_slot = Heap::SlotOfIndex(target.index);
        ++succs_[slot][target_slot];
        ++preds_[target_slot][slot];
      }
    }
  });
  Propagated propagated = FullPropagation(heap_, threshold_, contribs);
  label_ = std::move(propagated.labels);
  support_ = std::move(propagated.support);
  // The propagation's writes count toward objects_relabeled: falling back is
  // part of the maintenance cost, not free.
  stats_.objects_relabeled += propagated.writes;
  ++stats_.rebuilds;
  fresh_ = true;
}

void DistanceLabels::VerifyAgainstFullPropagation(
    const ContributionMap& contribs) const {
  DGC_CHECK_MSG(fresh_, "verifying a stale label plane");
  const Propagated oracle = FullPropagation(heap_, threshold_, contribs);
  DGC_CHECK_MSG(label_.size() == oracle.labels.size(),
                "label plane size diverged: " << label_.size() << " vs "
                                              << oracle.labels.size());
  for (std::size_t slot = 0; slot < label_.size(); ++slot) {
    DGC_CHECK_MSG(label_[slot] == oracle.labels[slot],
                  "label diverged at slot " << slot << ": repaired "
                                            << label_[slot] << ", full "
                                            << oracle.labels[slot]);
  }
  DGC_CHECK_MSG(support_ == oracle.support,
                "outref support index diverged from full propagation");
}

}  // namespace dgc
