// Incremental distance-label maintenance (Section 3's heuristic under
// edge-level repair).
//
// The classic collector re-derives every object's distance estimate with a
// full forward trace each round — Θ(heap) per topology change. This
// maintainer keeps a per-storage-slot *label* standing invariant instead:
//
//   label(o) = min over contribution sources s that reach o of contrib(s)
//
// where a contribution source is a persistent/application root (contrib 0)
// or a non-garbage-flagged inref (contrib = its estimated distance, with an
// unreached inref — empty source list, distance infinity — pinned at
// kDistanceUnreachedRoot so what it retains stays distinguishable from
// garbage). Intra-site edges cost nothing, so the label plane is a
// reachability-min, not a weighted shortest path, and it reproduces the full
// trace's verdicts exactly:
//
//   clean-marked(o)      <=>  label(o) <= suspicion_threshold
//   swept(o)             <=>  label(o) == infinity
//   clean outref dist(r) ==   NextDistance(min label over holders of r
//                                          with label <= threshold)
//
// Repairs are bounded and exact, never approximate:
//
//   * decrease (new edge, contribution drop): a ripple — BFS from the change
//     setting label = the new floor on every reachable slot whose label
//     exceeds it. Exact because min(old, f) = f there.
//   * increase/delete (severed edge, contribution removal): invalidate and
//     re-floor the affected *cone* — exactly the slots with the old label
//     reachable from the change through slots of that same label (anything
//     labeled lower has support independent of the change; anything equal
//     but unreachable through equals is supported elsewhere). The cone is
//     re-seeded from contributions and out-of-cone predecessors and settled
//     with a best-first (min-heap) pass.
//
// Heap mutations arrive eagerly through HeapMutationListener; the maintainer
// keeps its OWN adjacency mirror (succs/preds/remote targets per slot),
// updated transactionally per event, because during a slot overwrite the
// physical array necessarily disagrees with one of the two semantic states.
// Root/inref contribution changes are reconciled lazily at trace time by
// diffing the desired contribution map against the stored one.
//
// The plane goes *stale* — and the next trace falls back to one full forward
// propagation (RebuildFromScratch) — on crash-restart (MarkStale from the
// collector), on a repair exceeding the configured budget, and on a distance
// report crossing the suspicion threshold upward to a finite value (the
// paper's "suspicion threshold breach": rare, and cheaper to re-propagate
// than to repair precisely). While stale every event is ignored; the rebuild
// re-derives labels, adjacency and support from the heap wholesale.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/distance.h"
#include "common/ids.h"
#include "store/heap.h"

namespace dgc {

class DistanceLabels : public HeapMutationListener {
 public:
  /// Desired contribution per storage slot (min over the sources naming that
  /// slot); slots absent from the map contribute infinity.
  using ContributionMap = std::map<std::uint64_t, Distance>;

  /// Remote target -> (holder label -> number of (holder, slot) pairs with
  /// that label), holders restricted to label <= threshold. The minimum key
  /// plus one is the target's clean outref distance.
  using SupportIndex = std::map<ObjectId, std::map<Distance, std::uint32_t>>;

  /// Cumulative counters (never reset; consumers report deltas).
  struct Stats {
    /// Mutation/contribution events that relabeled at least one slot.
    std::uint64_t repairs = 0;
    /// Full forward propagations (initial build, post-stale rebuilds).
    std::uint64_t rebuilds = 0;
    /// Label writes, by repairs AND by rebuild propagation — the honest
    /// total cost of keeping the plane current.
    std::uint64_t objects_relabeled = 0;
    /// Contribution changes that crossed the suspicion threshold upward to a
    /// finite value and staled the plane.
    std::uint64_t threshold_breaches = 0;
  };

  /// `repair_budget` caps label writes per repair event (0 = unlimited);
  /// exceeding it stales the plane mid-repair, which is safe because stale
  /// state is never read again before a rebuild.
  DistanceLabels(Heap& heap, Distance suspicion_threshold,
                 std::size_t repair_budget)
      : heap_(heap), threshold_(suspicion_threshold), budget_(repair_budget) {}

  DistanceLabels(const DistanceLabels&) = delete;
  DistanceLabels& operator=(const DistanceLabels&) = delete;

  // --- HeapMutationListener --------------------------------------------

  void OnAllocate(ObjectId id) override;
  void OnSlotWrite(ObjectId source, ObjectId previous, ObjectId next) override;
  void OnFree(ObjectId id) override;

  // --- Trace-time interface --------------------------------------------

  /// False until the first rebuild and again after any staleness trigger;
  /// labels and support must not be read while stale.
  [[nodiscard]] bool fresh() const { return fresh_; }

  /// Drops the plane (crash-restart, external invalidation). Idempotent.
  void MarkStale() { fresh_ = false; }

  /// Full forward propagation: re-derives adjacency, labels and support from
  /// the heap and `contribs`. The only way to leave the stale state.
  void RebuildFromScratch(const ContributionMap& contribs);

  /// Diffs `contribs` against the stored contribution map and repairs each
  /// difference (or stales the plane on a threshold breach). Requires
  /// fresh(); may leave the plane stale — re-check fresh() after.
  void ReconcileContributions(const ContributionMap& contribs);

  [[nodiscard]] Distance LabelOfSlot(std::uint64_t slot) const {
    DGC_DCHECK(fresh_ && slot < label_.size());
    return label_[slot];
  }

  [[nodiscard]] const SupportIndex& outref_support() const {
    DGC_DCHECK(fresh_);
    return support_;
  }

  /// Differential oracle: recomputes labels and support with the full
  /// forward propagation and aborts unless both match the maintained state
  /// bit for bit.
  void VerifyAgainstFullPropagation(const ContributionMap& contribs) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// Writes one label, maintaining the remote-support index across the
  /// change and charging the repair budget. May stale the plane.
  void Relabel(std::uint64_t slot, Distance value);

  /// min(contribution, min over predecessor labels) — the value the slot's
  /// label must equal for the invariant to hold at it.
  [[nodiscard]] Distance FloorOf(std::uint64_t slot) const;

  /// Re-establishes the invariant at `slot` after its floor changed:
  /// ripple down on decrease, cone re-floor on increase.
  void RepairAt(std::uint64_t slot);
  void RippleDown(std::uint64_t slot, Distance value);
  void Refloor(std::uint64_t slot);

  /// Applies one contribution change (staling on a threshold breach).
  void SetContribution(std::uint64_t slot, Distance value);

  void AddSupport(ObjectId target, Distance label, std::uint32_t count);
  void SubSupport(ObjectId target, Distance label, std::uint32_t count);

  /// Grows the per-slot arrays to the heap's current capacity.
  void EnsureCapacity();

  /// Shared by RebuildFromScratch and VerifyAgainstFullPropagation: one full
  /// forward propagation over the heap as it stands.
  struct Propagated {
    std::vector<Distance> labels;
    SupportIndex support;
    std::uint64_t writes = 0;
  };
  [[nodiscard]] static Propagated FullPropagation(
      const Heap& heap, Distance threshold, const ContributionMap& contribs);

  // Event bracket: counts the event as one repair if it relabeled anything
  // and resets the per-event budget.
  void BeginEvent() { writes_this_event_ = 0; }
  void EndEvent() {
    if (writes_this_event_ > 0) ++stats_.repairs;
  }

  Heap& heap_;
  const Distance threshold_;
  const std::size_t budget_;

  bool fresh_ = false;
  std::vector<Distance> label_;
  std::vector<Distance> contrib_;
  /// Non-infinite contributions only (the diff surface for reconcile).
  ContributionMap contrib_map_;
  /// Adjacency mirror over LOCAL live edges, by storage slot, with
  /// multiplicity (an object may hold the same target in several slots).
  std::vector<std::map<std::uint64_t, std::uint32_t>> succs_;
  std::vector<std::map<std::uint64_t, std::uint32_t>> preds_;
  /// Remote slot targets per holder slot, with multiplicity.
  std::vector<std::map<ObjectId, std::uint32_t>> remote_targets_;
  SupportIndex support_;
  /// Cone membership stamps for Refloor (epoch-tagged to avoid clearing).
  std::vector<std::uint64_t> cone_stamp_;
  std::uint64_t cone_epoch_ = 0;
  /// Scratch buffers reused across repairs.
  std::vector<std::uint64_t> bfs_stack_;
  std::vector<std::uint64_t> cone_members_;

  std::size_t writes_this_event_ = 0;
  Stats stats_;
};

}  // namespace dgc
