#include "localgc/local_collector.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "backinfo/suspect_trace.h"
#include "common/logging.h"
#include "localgc/parallel_mark.h"

namespace dgc {

namespace {

/// Policy the suspect tracer uses to see this trace's clean results and to
/// mark suspect objects live for the sweep.
class SuspectEnv {
 public:
  SuspectEnv(Heap& heap, const RefTables& tables, std::uint64_t epoch,
             const TraceResult& result)
      : heap_(heap), tables_(tables), epoch_(epoch), result_(result) {}

  [[nodiscard]] bool ObjectIsCleanMarked(ObjectId id) const {
    return heap_.clean_epoch(id) == epoch_;
  }

  /// Clean for the purposes of outset membership: reached by this trace's
  /// clean phase, or pinned (insert barrier / mutator variable), which makes
  /// it forcibly clean until released.
  [[nodiscard]] bool OutrefIsClean(ObjectId remote_ref) const {
    if (result_.outrefs_clean.contains(remote_ref)) return true;
    const OutrefEntry* entry = tables_.FindOutref(remote_ref);
    DGC_CHECK_MSG(entry != nullptr,
                  "object holds remote ref " << remote_ref
                                             << " with no outref");
    return entry->pin_count > 0;
  }

  void OnSuspectMarked(ObjectId id) { heap_.set_mark_epoch(id, epoch_); }

 private:
  Heap& heap_;
  const RefTables& tables_;
  std::uint64_t epoch_;
  const TraceResult& result_;
};

/// Suspect-tracer policy for the label-served trace: cleanliness is read off
/// the distance-label plane instead of this epoch's mark stamps (no marking
/// pass ran), and suspect marking is a no-op (the sweep reads labels too).
class LabelEnv {
 public:
  LabelEnv(const DistanceLabels& labels, const RefTables& tables,
           Distance threshold, const TraceResult& result)
      : labels_(labels),
        tables_(tables),
        threshold_(threshold),
        result_(result) {}

  [[nodiscard]] bool ObjectIsCleanMarked(ObjectId id) const {
    return labels_.LabelOfSlot(Heap::SlotOfIndex(id.index)) <= threshold_;
  }

  [[nodiscard]] bool OutrefIsClean(ObjectId remote_ref) const {
    if (result_.outrefs_clean.contains(remote_ref)) return true;
    const OutrefEntry* entry = tables_.FindOutref(remote_ref);
    DGC_CHECK_MSG(entry != nullptr,
                  "object holds remote ref " << remote_ref
                                             << " with no outref");
    return entry->pin_count > 0;
  }

  void OnSuspectMarked(ObjectId) {}

 private:
  const DistanceLabels& labels_;
  const RefTables& tables_;
  Distance threshold_;
  const TraceResult& result_;
};

std::uint64_t WallNanosSince(
    const std::chrono::steady_clock::time_point& start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

void LocalCollector::MarkCleanFrom(ObjectId root, Distance distance,
                                   TraceResult& result) {
  if (!heap_.Exists(root)) return;  // stale app root; defensive
  const Heap::Cell root_cell = heap_.GetCell(root);
  if (*root_cell.clean_epoch == epoch_) return;
  *root_cell.mark_epoch = epoch_;
  *root_cell.clean_epoch = epoch_;
  ++result.stats.objects_marked_clean;
  std::vector<ObjectId>& stack = mark_stack_;
  stack.clear();
  stack.push_back(root);
  const SiteId self = heap_.site();
  const Distance outref_distance = NextDistance(distance);
  while (!stack.empty()) {
    const ObjectId current = stack.back();
    stack.pop_back();
    // One id decode per pop; the slot scan then walks the cached object.
    const Object& object = *heap_.GetCell(current).object;
    for (const ObjectId target : object.slots) {
      if (!target.valid()) continue;
      ++result.stats.edges_scanned_clean;
      if (target.site != self) {
        // First touch wins the minimum distance because roots are processed
        // in increasing distance order.
        auto [it, inserted] =
            result.outref_distances.emplace(target, outref_distance);
        if (!inserted) it->second = std::min(it->second, outref_distance);
        result.outrefs_clean.insert(target);
        continue;
      }
      const Heap::Cell cell = heap_.GetCell(target);
      if (*cell.clean_epoch == epoch_) continue;
      *cell.mark_epoch = epoch_;
      *cell.clean_epoch = epoch_;
      ++result.stats.objects_marked_clean;
      stack.push_back(target);
    }
  }
}

LocalCollector::TraceInputs LocalCollector::SnapshotInputs(
    const std::vector<ObjectId>& app_roots) const {
  TraceInputs inputs;
  inputs.heap_mutation_epoch = heap_.mutation_epoch();
  inputs.persistent_roots = heap_.persistent_roots();
  inputs.app_roots = app_roots;
  inputs.inrefs.reserve(tables_.inrefs().size());
  for (const auto& [obj, entry] : tables_.inrefs()) {
    inputs.inrefs.push_back(
        TraceInputs::Inref{obj, entry.distance(), entry.garbage_flagged});
  }
  inputs.outrefs.reserve(tables_.outrefs().size());
  for (const auto& [ref, entry] : tables_.outrefs()) {
    inputs.outrefs.push_back(TraceInputs::Outref{ref, entry.pin_count > 0});
  }
  return inputs;
}

LocalCollector::ReuseLevel LocalCollector::ClassifyReuse(
    const TraceInputs& inputs) const {
  if (!cache_.valid) return ReuseLevel::kNone;
  if (inputs == cache_.inputs) return ReuseLevel::kQuiescent;
  // Level 1 requires everything except suspected-inref distances to be
  // identical: the clean phase then reruns bit-identically (same roots, same
  // clean inrefs at the same distances, same heap), the suspect SET and its
  // outsets are unchanged (outsets do not depend on suspect distances), and
  // only the distance fold over those outsets needs redoing.
  if (inputs.heap_mutation_epoch != cache_.inputs.heap_mutation_epoch ||
      inputs.persistent_roots != cache_.inputs.persistent_roots ||
      inputs.app_roots != cache_.inputs.app_roots ||
      inputs.outrefs != cache_.inputs.outrefs ||
      inputs.inrefs.size() != cache_.inputs.inrefs.size()) {
    return ReuseLevel::kNone;
  }
  const Distance threshold = tables_.config().suspicion_threshold;
  for (std::size_t i = 0; i < inputs.inrefs.size(); ++i) {
    const TraceInputs::Inref& past = cache_.inputs.inrefs[i];
    const TraceInputs::Inref& now = inputs.inrefs[i];
    if (past.obj != now.obj || past.garbage_flagged != now.garbage_flagged) {
      return ReuseLevel::kNone;
    }
    const bool was_clean = past.distance <= threshold;
    const bool is_clean = now.distance <= threshold;
    // Classification flips change the root set / suspect set; a *clean*
    // inref's distance feeds the clean phase's first-touch minima, so it
    // must match exactly. Suspect distances are free to drift.
    if (was_clean != is_clean) return ReuseLevel::kNone;
    if (is_clean && past.distance != now.distance) return ReuseLevel::kNone;
  }
  return ReuseLevel::kRefold;
}

TraceResult LocalCollector::RefoldDistances(const TraceInputs& inputs) const {
  TraceResult result = cache_.result;
  result.epoch = epoch_;
  result.outref_distances = cache_.clean_distances;
  result.stats.objects_retraced = 0;
  result.stats.quiescent_skips = 0;
  // No marking happened this run; the cached trace's schedule-dependent
  // mark accounting must not be re-reported.
  result.stats.mark_wall_ns = 0;
  result.stats.mark_steals = 0;
  result.stats.mark_batches = 0;
  const Distance threshold = tables_.config().suspicion_threshold;
  std::vector<std::pair<Distance, const std::vector<ObjectId>*>> jobs;
  for (const TraceInputs::Inref& in : inputs.inrefs) {
    if (in.garbage_flagged || in.distance <= threshold) continue;
    // Suspects absent from the cached back info contributed nothing to the
    // fold last time either: they were clean-marked by phase 1 (dropped by
    // the auxiliary invariant of §6.1.1) or their outset was empty.
    const auto it = cache_.result.back_info.inref_outsets.find(in.obj);
    if (it == cache_.result.back_info.inref_outsets.end()) continue;
    jobs.emplace_back(NextDistance(in.distance), &it->second);
  }
  result.stats.outsets_reused = jobs.size();
  // Partitioning has fixed pool overhead; only worth it past a handful of
  // suspects (the min-merge is identical either way).
  constexpr std::size_t kParallelFoldMin = 16;
  const std::size_t mark_threads = tables_.config().mark_threads;
  if (mark_threads > 1 && pool_ != nullptr && jobs.size() >= kParallelFoldMin) {
    ParallelFoldOutsets(jobs, *pool_, mark_threads, result.outref_distances);
  } else {
    for (const auto& [outref_distance, outset] : jobs) {
      for (const ObjectId outref : *outset) {
        auto [dit, inserted] =
            result.outref_distances.emplace(outref, outref_distance);
        if (!inserted) dit->second = std::min(dit->second, outref_distance);
      }
    }
  }
  return result;
}

void LocalCollector::CheckEquivalent(const TraceResult& reused,
                                     const TraceResult& full) const {
  const SiteId site = heap_.site();
#define DGC_DIFF_FIELD(field)                                               \
  DGC_CHECK_MSG(reused.field == full.field,                                 \
                "incremental trace diverged from full trace on site "       \
                    << site << " epoch " << epoch_ << ": field " << #field)
  DGC_DIFF_FIELD(epoch);
  DGC_DIFF_FIELD(snapshot_outrefs);
  DGC_DIFF_FIELD(snapshot_inrefs);
  DGC_DIFF_FIELD(outref_distances);
  DGC_DIFF_FIELD(outrefs_clean);
  DGC_DIFF_FIELD(outrefs_untraced);
  DGC_DIFF_FIELD(objects_to_free);
  DGC_DIFF_FIELD(back_info);
#undef DGC_DIFF_FIELD
}

void LocalCollector::InvalidateCache() {
  cache_.valid = false;
  cache_.result = TraceResult{};
  cache_.inputs = TraceInputs{};
  cache_.clean_distances.clear();
  heap_.InvalidateDirtyTracking();
  // The label plane is volatile acceleration state too: after a crash
  // restart the next trace must re-derive it with a full propagation.
  labels_.MarkStale();
}

TraceResult LocalCollector::RunFullTrace(
    const std::vector<ObjectId>& app_roots,
    const TraceInputs* inputs_for_cache) {
  const CollectorConfig& config = tables_.config();
  const bool incremental = config.incremental_trace;
  TraceResult result;
  result.epoch = epoch_;

  // Worst-case mark-stack depth is the live-object count; reserving up front
  // keeps the hot loop free of reallocation (the buffer persists across
  // traces, so this is amortised to nothing in steady state).
  mark_stack_.reserve(heap_.object_count());

  for (const auto& [ref, entry] : tables_.outrefs()) {
    result.snapshot_outrefs.insert(ref);
    // A pinned outref is an application root / insert-barrier retention:
    // clean, distance 1, regardless of whether the heap reaches it.
    if (entry.pin_count > 0) {
      result.outref_distances.emplace(ref, 1);
      result.outrefs_clean.insert(ref);
    }
  }
  for (const auto& [obj, entry] : tables_.inrefs()) {
    (void)entry;
    result.snapshot_inrefs.insert(obj);
  }

  // ---- Phase 1: clean marking, roots in increasing distance order. ----
  const auto mark_start = std::chrono::steady_clock::now();

  std::vector<std::pair<Distance, ObjectId>> ordered_inrefs;
  for (const auto& [obj, entry] : tables_.inrefs()) {
    if (entry.garbage_flagged) continue;  // confirmed garbage: not a root
    ordered_inrefs.emplace_back(entry.distance(), obj);
  }
  std::sort(ordered_inrefs.begin(), ordered_inrefs.end());
  auto clean_limit = std::partition_point(
      ordered_inrefs.begin(), ordered_inrefs.end(), [&](const auto& pair) {
        return pair.first <= config.suspicion_threshold;
      });

  const bool parallel = config.mark_threads > 1 && pool_ != nullptr;
  if (!parallel) {
    for (const ObjectId root : heap_.persistent_roots()) {
      MarkCleanFrom(root, 0, result);
    }
    for (const ObjectId root : app_roots) {
      MarkCleanFrom(root, 0, result);
    }
    for (auto it = ordered_inrefs.begin(); it != clean_limit; ++it) {
      MarkCleanFrom(it->second, it->first, result);
    }
  } else {
    // Distance layers: the sequential loop's increasing-distance order means
    // every object is claimed for the minimum root distance that reaches it.
    // A barrier between distinct distances preserves exactly that, and
    // within one layer every claim carries the same distance, so claim
    // interleaving cannot change the merged result.
    ParallelMarker marker(heap_, *pool_, config.mark_threads);
    std::vector<ObjectId> layer = heap_.persistent_roots();
    layer.insert(layer.end(), app_roots.begin(), app_roots.end());
    auto it = ordered_inrefs.begin();
    while (it != clean_limit && it->first == 0) {
      layer.push_back((it++)->second);  // distance-0 inrefs join the roots
    }
    marker.MarkLayer(layer, 0, epoch_, result);
    while (it != clean_limit) {
      const Distance layer_distance = it->first;
      layer.clear();
      while (it != clean_limit && it->first == layer_distance) {
        layer.push_back((it++)->second);
      }
      marker.MarkLayer(layer, layer_distance, epoch_, result);
    }
    result.stats.mark_steals = marker.stats().steals;
    result.stats.mark_batches = marker.stats().batches_published;
  }
  result.stats.mark_wall_ns = WallNanosSince(mark_start);

  // The refold reuse level rebuilds distances from this phase-1 base, so
  // capture it before suspect contributions land on top.
  std::map<ObjectId, Distance> clean_distances;
  if (inputs_for_cache != nullptr) clean_distances = result.outref_distances;

  // ---- Phase 2: suspected inrefs — bottom-up outset computation (§5.2).
  // store_ persists across traces: recurring outsets intern to their old
  // ids and previously memoized unions stay hits, so intern_bytes_saved
  // accumulates across epochs.
  store_.Reserve(
      static_cast<std::size_t>(ordered_inrefs.end() - clean_limit));
  SuspectEnv env(heap_, tables_, epoch_, result);
  BottomUpOutsetComputer<SuspectEnv> computer(heap_, store_, env);
  for (auto it = clean_limit; it != ordered_inrefs.end(); ++it) {
    const auto [distance, obj] = *it;
    ++result.stats.suspected_inrefs;
    DGC_CHECK_MSG(heap_.Exists(obj), "inref names a swept object " << obj);
    const OutsetStore::OutsetId outset_id = computer.TraceFrom(obj);
    const std::vector<ObjectId>& outset = store_.Get(outset_id);
    // An inref whose object was reached by the clean phase contributes an
    // empty outset and is dropped from the back information: it can never
    // appear in a suspected outref's inset (auxiliary invariant of §6.1.1).
    if (heap_.clean_epoch(obj) == epoch_) continue;
    const Distance outref_distance = NextDistance(distance);
    for (const ObjectId outref : outset) {
      auto [dit, inserted] =
          result.outref_distances.emplace(outref, outref_distance);
      if (!inserted) dit->second = std::min(dit->second, outref_distance);
    }
    if (!outset.empty()) {
      result.back_info.inref_outsets.emplace(obj, outset);
    }
  }

  // Inverse (inset) view: with a cached previous trace, patch it forward by
  // the per-inref outset deltas instead of rebuilding it — O(changed
  // memberships) plus two flat copies, and it counts how many suspects kept
  // their outset verbatim (outsets_reused).
  if (incremental && cache_.valid && inputs_for_cache != nullptr) {
    result.back_info =
        SiteBackInfo::PatchedFrom(cache_.result.back_info,
                                  result.back_info.inref_outsets,
                                  &result.stats.outsets_reused);
  } else {
    result.back_info.RecomputeInsets();
  }

  result.stats.suspect_objects_traced = computer.stats().objects_traced;
  result.stats.suspect_edges_scanned = computer.stats().edges_scanned;
  result.stats.objects_marked_suspect = computer.stats().objects_traced;
  result.stats.outset_stats = store_.stats();
  result.stats.distinct_outsets = store_.distinct_outsets();
  result.stats.back_info_elements = result.back_info.stored_elements();
  result.stats.suspected_outrefs = result.back_info.outref_insets.size();
  if (incremental) {
    result.stats.objects_retraced = result.stats.objects_marked_clean +
                                    result.stats.objects_marked_suspect;
  }

  // ---- Phase 3: sweep list and untraced outrefs. ----
  if (parallel) {
    result.objects_to_free =
        ParallelSweepUnmarked(heap_, *pool_, config.mark_threads, epoch_);
  } else {
    heap_.ForEachWithEpochs([&](ObjectId id, const Object&, std::uint64_t mark,
                                std::uint64_t) {
      if (mark != epoch_) result.objects_to_free.push_back(id);
    });
  }
  result.stats.objects_swept = result.objects_to_free.size();
  for (const ObjectId ref : result.snapshot_outrefs) {
    if (!result.outref_distances.contains(ref)) {
      result.outrefs_untraced.insert(ref);
    }
  }

  if (inputs_for_cache != nullptr) {
    // This trace observed the whole heap: the dirty sets are consumed, and
    // the cache now describes the present input state exactly.
    heap_.ClearDirty();
    cache_.valid = true;
    cache_.inputs = *inputs_for_cache;
    cache_.result = result;
    cache_.clean_distances = std::move(clean_distances);
  }
  return result;
}

DistanceLabels::ContributionMap LocalCollector::DesiredContributions(
    const TraceInputs& inputs) const {
  DistanceLabels::ContributionMap contribs;
  const auto add = [&](ObjectId obj, Distance value) {
    if (!heap_.Exists(obj)) return;  // stale app root; defensive
    const std::uint64_t slot = Heap::SlotOfIndex(obj.index);
    auto [it, inserted] = contribs.emplace(slot, value);
    if (!inserted) it->second = std::min(it->second, value);
  };
  for (const ObjectId root : inputs.persistent_roots) add(root, 0);
  for (const ObjectId root : inputs.app_roots) add(root, 0);
  for (const TraceInputs::Inref& in : inputs.inrefs) {
    if (in.garbage_flagged) continue;
    // An inref with no sources reports distance infinity but still retains
    // what it reaches; the sentinel keeps that retained set distinguishable
    // from garbage (label infinity) while staying suspect.
    add(in.obj, in.distance == kDistanceInfinity ? kDistanceUnreachedRoot
                                                 : in.distance);
  }
  return contribs;
}

TraceResult LocalCollector::ServeFromLabels(
    const TraceInputs& inputs,
    std::map<ObjectId, Distance>* clean_distances_out) {
  const CollectorConfig& config = tables_.config();
  const Distance threshold = config.suspicion_threshold;
  TraceResult result;
  result.epoch = epoch_;

  for (const TraceInputs::Outref& out : inputs.outrefs) {
    result.snapshot_outrefs.insert(out.ref);
    if (out.pinned) {
      result.outref_distances.emplace(out.ref, 1);
      result.outrefs_clean.insert(out.ref);
    }
  }
  for (const TraceInputs::Inref& in : inputs.inrefs) {
    result.snapshot_inrefs.insert(in.obj);
  }

  // Phase-1 equivalent, no marking: a clean outref's distance is one past
  // the minimum label over its clean holders — exactly the support index's
  // minimum key (phase 1 scans every object once, during the traversal of
  // its minimum-distance claiming root).
  for (const auto& [ref, by_label] : labels_.outref_support()) {
    const Distance distance = NextDistance(by_label.begin()->first);
    auto [it, inserted] = result.outref_distances.emplace(ref, distance);
    if (!inserted) it->second = std::min(it->second, distance);
    result.outrefs_clean.insert(ref);
  }
  if (clean_distances_out != nullptr) {
    *clean_distances_out = result.outref_distances;
  }

  // Phase-2 equivalent: recompute suspect outsets with cleanliness read off
  // the labels. Same computer, same increasing-distance order.
  std::vector<std::pair<Distance, ObjectId>> suspects;
  for (const TraceInputs::Inref& in : inputs.inrefs) {
    if (in.garbage_flagged || in.distance <= threshold) continue;
    suspects.emplace_back(in.distance, in.obj);
  }
  std::sort(suspects.begin(), suspects.end());
  store_.Reserve(suspects.size());
  LabelEnv env(labels_, tables_, threshold, result);
  BottomUpOutsetComputer<LabelEnv> computer(heap_, store_, env);
  struct Traced {
    Distance outref_distance;
    ObjectId obj;
    OutsetStore::OutsetId outset;
  };
  std::vector<Traced> traced;
  traced.reserve(suspects.size());
  for (const auto& [distance, obj] : suspects) {
    ++result.stats.suspected_inrefs;
    DGC_CHECK_MSG(heap_.Exists(obj), "inref names a swept object " << obj);
    const OutsetStore::OutsetId outset_id = computer.TraceFrom(obj);
    // Drop rule: label <= threshold iff the clean phase would have reached
    // this inref's object (auxiliary invariant of §6.1.1).
    if (labels_.LabelOfSlot(Heap::SlotOfIndex(obj.index)) <= threshold) {
      continue;
    }
    traced.push_back(Traced{NextDistance(distance), obj, outset_id});
  }
  // Resolve outset storage only now: TraceFrom may grow the store and
  // invalidate earlier references.
  std::vector<std::pair<Distance, const std::vector<ObjectId>*>> jobs;
  jobs.reserve(traced.size());
  for (const Traced& t : traced) {
    const std::vector<ObjectId>& outset = store_.Get(t.outset);
    if (outset.empty()) continue;
    jobs.emplace_back(t.outref_distance, &outset);
    result.back_info.inref_outsets.emplace(t.obj, outset);
  }
  constexpr std::size_t kParallelFoldMin = 16;
  const std::size_t mark_threads = config.mark_threads;
  if (mark_threads > 1 && pool_ != nullptr && jobs.size() >= kParallelFoldMin) {
    ParallelFoldOutsets(jobs, *pool_, mark_threads, result.outref_distances);
  } else {
    for (const auto& [outref_distance, outset] : jobs) {
      for (const ObjectId outref : *outset) {
        auto [dit, inserted] =
            result.outref_distances.emplace(outref, outref_distance);
        if (!inserted) dit->second = std::min(dit->second, outref_distance);
      }
    }
  }

  if (config.incremental_trace && cache_.valid) {
    SiteBackInfo patched =
        SiteBackInfo::PatchedFrom(cache_.result.back_info,
                                  result.back_info.inref_outsets,
                                  &result.stats.outsets_reused);
    result.back_info = std::move(patched);
  } else {
    result.back_info.RecomputeInsets();
  }

  // Phase-3 equivalent: the sweep reads labels in storage-slot order — the
  // same order ForEachWithEpochs visits.
  const std::size_t capacity = heap_.slot_capacity();
  for (std::uint64_t slot = 0; slot < capacity; ++slot) {
    if (!heap_.SlotLive(slot)) continue;
    const Distance label = labels_.LabelOfSlot(slot);
    if (label == kDistanceInfinity) {
      result.objects_to_free.push_back(heap_.IdAtSlot(slot));
    } else if (label <= threshold) {
      ++result.stats.objects_marked_clean;
    }
  }
  result.stats.objects_swept = result.objects_to_free.size();
  for (const ObjectId ref : result.snapshot_outrefs) {
    if (!result.outref_distances.contains(ref)) {
      result.outrefs_untraced.insert(ref);
    }
  }

  result.stats.suspect_objects_traced = computer.stats().objects_traced;
  result.stats.suspect_edges_scanned = computer.stats().edges_scanned;
  result.stats.objects_marked_suspect = computer.stats().objects_traced;
  result.stats.outset_stats = store_.stats();
  result.stats.distinct_outsets = store_.distinct_outsets();
  result.stats.back_info_elements = result.back_info.stored_elements();
  result.stats.suspected_outrefs = result.back_info.outref_insets.size();
  // Only the suspect subgraph was walked; that is the whole point.
  result.stats.objects_retraced = computer.stats().objects_traced;
  return result;
}

TraceResult LocalCollector::RunWithLabels(
    const std::vector<ObjectId>& app_roots) {
  const CollectorConfig& config = tables_.config();
  TraceInputs inputs = SnapshotInputs(app_roots);
  const DistanceLabels::ContributionMap contribs = DesiredContributions(inputs);
  if (labels_.fresh()) labels_.ReconcileContributions(contribs);

  TraceResult result;
  bool served = false;
  if (!labels_.fresh()) {
    // Fallback: one classic full trace, and the label plane re-derives
    // itself with a full forward propagation (charged to objects_relabeled).
    result = RunFullTrace(app_roots,
                          config.incremental_trace ? &inputs : nullptr);
    labels_.RebuildFromScratch(contribs);
  } else {
    const ReuseLevel level = config.incremental_trace
                                 ? ClassifyReuse(inputs)
                                 : ReuseLevel::kNone;
    std::map<ObjectId, Distance> clean_distances;
    switch (level) {
      case ReuseLevel::kQuiescent:
        result = cache_.result;
        result.epoch = epoch_;
        result.stats.objects_retraced = 0;
        result.stats.outsets_reused = result.back_info.inref_outsets.size();
        result.stats.quiescent_skips = 1;
        result.stats.mark_wall_ns = 0;
        result.stats.mark_steals = 0;
        result.stats.mark_batches = 0;
        break;
      case ReuseLevel::kRefold:
        result = RefoldDistances(inputs);
        break;
      case ReuseLevel::kNone:
        result = ServeFromLabels(
            inputs, config.incremental_trace ? &clean_distances : nullptr);
        served = true;
        break;
    }
    const bool shadow_check =
        (config.incremental_trace && config.incremental_differential &&
         level != ReuseLevel::kNone) ||
        config.incremental_distance_differential;
    if (shadow_check) {
      // Shadow full trace at the same epoch (mark stamps are scratch);
      // must not clobber the cache the reuse was built from.
      const TraceResult full = RunFullTrace(app_roots, nullptr);
      CheckEquivalent(result, full);
    }
    if (config.incremental_trace) {
      cache_.inputs = std::move(inputs);
      cache_.result = result;
      if (served) {
        // The label serve observed the whole heap (through the labels), so
        // the cache now describes the present input state exactly.
        cache_.clean_distances = std::move(clean_distances);
        cache_.valid = true;
        heap_.ClearDirty();
      }
      // Quiescent/refold keep clean_distances: both require an identical
      // clean phase.
    }
  }

  if (config.incremental_distance_differential && labels_.fresh()) {
    labels_.VerifyAgainstFullPropagation(contribs);
  }

  // Per-trace deltas against the cumulative label-plane counters (repairs
  // accumulate between traces, at the mutation barrier).
  const DistanceLabels::Stats& ls = labels_.stats();
  result.stats.distance_repairs = ls.repairs - last_label_stats_.repairs;
  result.stats.distance_fallbacks = ls.rebuilds - last_label_stats_.rebuilds;
  result.stats.objects_relabeled =
      ls.objects_relabeled - last_label_stats_.objects_relabeled;
  result.stats.label_serves = served ? 1 : 0;
  last_label_stats_ = ls;
  return result;
}

TraceResult LocalCollector::Run(const std::vector<ObjectId>& app_roots) {
  const auto wall_start = std::chrono::steady_clock::now();
  const CollectorConfig& config = tables_.config();
  ++epoch_;

  TraceResult result;
  if (config.incremental_distance) {
    result = RunWithLabels(app_roots);
  } else if (!config.incremental_trace) {
    result = RunFullTrace(app_roots, nullptr);
  } else {
    TraceInputs inputs = SnapshotInputs(app_roots);
    const ReuseLevel level = ClassifyReuse(inputs);
    switch (level) {
      case ReuseLevel::kQuiescent:
        result = cache_.result;
        result.epoch = epoch_;
        result.stats.objects_retraced = 0;
        result.stats.outsets_reused = result.back_info.inref_outsets.size();
        result.stats.quiescent_skips = 1;
        result.stats.mark_wall_ns = 0;
        result.stats.mark_steals = 0;
        result.stats.mark_batches = 0;
        break;
      case ReuseLevel::kRefold:
        result = RefoldDistances(inputs);
        break;
      case ReuseLevel::kNone:
        result = RunFullTrace(app_roots, &inputs);
        break;
    }
    if (level != ReuseLevel::kNone) {
      if (config.incremental_differential) {
        // Shadow full trace at the same epoch (mark stamps are scratch);
        // must not clobber the cache the reuse was built from.
        const TraceResult full = RunFullTrace(app_roots, nullptr);
        CheckEquivalent(result, full);
      }
      cache_.inputs = std::move(inputs);
      cache_.result = result;
      // clean_distances is unchanged: both reuse levels require an
      // identical clean phase.
    }
  }

  result.stats.trace_wall_ns = WallNanosSince(wall_start);

  DGC_LOG_DEBUG("site " << heap_.site() << " trace " << epoch_ << ": "
                        << result.stats.objects_marked_clean << " clean, "
                        << result.stats.objects_marked_suspect << " suspect, "
                        << result.stats.objects_swept << " swept, "
                        << result.stats.suspected_inrefs << " suspected inrefs, "
                        << result.stats.suspected_outrefs
                        << " suspected outrefs"
                        << (result.stats.quiescent_skips != 0
                                ? " (quiescent reuse)"
                                : ""));
  return result;
}

}  // namespace dgc
