#include "localgc/local_collector.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "backinfo/suspect_trace.h"
#include "common/logging.h"

namespace dgc {

namespace {

/// Policy the suspect tracer uses to see this trace's clean results and to
/// mark suspect objects live for the sweep.
class SuspectEnv {
 public:
  SuspectEnv(Heap& heap, const RefTables& tables, std::uint64_t epoch,
             const TraceResult& result)
      : heap_(heap), tables_(tables), epoch_(epoch), result_(result) {}

  [[nodiscard]] bool ObjectIsCleanMarked(ObjectId id) const {
    return heap_.clean_epoch(id) == epoch_;
  }

  /// Clean for the purposes of outset membership: reached by this trace's
  /// clean phase, or pinned (insert barrier / mutator variable), which makes
  /// it forcibly clean until released.
  [[nodiscard]] bool OutrefIsClean(ObjectId remote_ref) const {
    if (result_.outrefs_clean.contains(remote_ref)) return true;
    const OutrefEntry* entry = tables_.FindOutref(remote_ref);
    DGC_CHECK_MSG(entry != nullptr,
                  "object holds remote ref " << remote_ref
                                             << " with no outref");
    return entry->pin_count > 0;
  }

  void OnSuspectMarked(ObjectId id) { heap_.set_mark_epoch(id, epoch_); }

 private:
  Heap& heap_;
  const RefTables& tables_;
  std::uint64_t epoch_;
  const TraceResult& result_;
};

}  // namespace

void LocalCollector::MarkCleanFrom(ObjectId root, Distance distance,
                                   TraceResult& result) {
  if (!heap_.Exists(root)) return;  // stale app root; defensive
  const Heap::Cell root_cell = heap_.GetCell(root);
  if (*root_cell.clean_epoch == epoch_) return;
  *root_cell.mark_epoch = epoch_;
  *root_cell.clean_epoch = epoch_;
  ++result.stats.objects_marked_clean;
  std::vector<ObjectId>& stack = mark_stack_;
  stack.clear();
  stack.push_back(root);
  const SiteId self = heap_.site();
  const Distance outref_distance = NextDistance(distance);
  while (!stack.empty()) {
    const ObjectId current = stack.back();
    stack.pop_back();
    // One id decode per pop; the slot scan then walks the cached object.
    const Object& object = *heap_.GetCell(current).object;
    for (const ObjectId target : object.slots) {
      if (!target.valid()) continue;
      ++result.stats.edges_scanned_clean;
      if (target.site != self) {
        // First touch wins the minimum distance because roots are processed
        // in increasing distance order.
        auto [it, inserted] =
            result.outref_distances.emplace(target, outref_distance);
        if (!inserted) it->second = std::min(it->second, outref_distance);
        result.outrefs_clean.insert(target);
        continue;
      }
      const Heap::Cell cell = heap_.GetCell(target);
      if (*cell.clean_epoch == epoch_) continue;
      *cell.mark_epoch = epoch_;
      *cell.clean_epoch = epoch_;
      ++result.stats.objects_marked_clean;
      stack.push_back(target);
    }
  }
}

TraceResult LocalCollector::Run(const std::vector<ObjectId>& app_roots) {
  const auto wall_start = std::chrono::steady_clock::now();
  const CollectorConfig& config = tables_.config();
  TraceResult result;
  result.epoch = ++epoch_;

  // Worst-case mark-stack depth is the live-object count; reserving up front
  // keeps the hot loop free of reallocation (the buffer persists across
  // traces, so this is amortised to nothing in steady state).
  mark_stack_.reserve(heap_.object_count());

  for (const auto& [ref, entry] : tables_.outrefs()) {
    result.snapshot_outrefs.insert(ref);
    // A pinned outref is an application root / insert-barrier retention:
    // clean, distance 1, regardless of whether the heap reaches it.
    if (entry.pin_count > 0) {
      result.outref_distances.emplace(ref, 1);
      result.outrefs_clean.insert(ref);
    }
  }
  for (const auto& [obj, entry] : tables_.inrefs()) {
    (void)entry;
    result.snapshot_inrefs.insert(obj);
  }

  // ---- Phase 1: clean marking, roots in increasing distance order. ----
  for (const ObjectId root : heap_.persistent_roots()) {
    MarkCleanFrom(root, 0, result);
  }
  for (const ObjectId root : app_roots) {
    MarkCleanFrom(root, 0, result);
  }

  std::vector<std::pair<Distance, ObjectId>> ordered_inrefs;
  for (const auto& [obj, entry] : tables_.inrefs()) {
    if (entry.garbage_flagged) continue;  // confirmed garbage: not a root
    ordered_inrefs.emplace_back(entry.distance(), obj);
  }
  std::sort(ordered_inrefs.begin(), ordered_inrefs.end());

  auto clean_limit = std::partition_point(
      ordered_inrefs.begin(), ordered_inrefs.end(), [&](const auto& pair) {
        return pair.first <= config.suspicion_threshold;
      });
  for (auto it = ordered_inrefs.begin(); it != clean_limit; ++it) {
    MarkCleanFrom(it->second, it->first, result);
  }

  // ---- Phase 2: suspected inrefs — bottom-up outset computation (§5.2).
  OutsetStore store;
  store.Reserve(
      static_cast<std::size_t>(ordered_inrefs.end() - clean_limit));
  SuspectEnv env(heap_, tables_, epoch_, result);
  BottomUpOutsetComputer<SuspectEnv> computer(heap_, store, env);
  for (auto it = clean_limit; it != ordered_inrefs.end(); ++it) {
    const auto [distance, obj] = *it;
    ++result.stats.suspected_inrefs;
    DGC_CHECK_MSG(heap_.Exists(obj), "inref names a swept object " << obj);
    const OutsetStore::OutsetId outset_id = computer.TraceFrom(obj);
    const std::vector<ObjectId>& outset = store.Get(outset_id);
    // An inref whose object was reached by the clean phase contributes an
    // empty outset and is dropped from the back information: it can never
    // appear in a suspected outref's inset (auxiliary invariant of §6.1.1).
    if (heap_.clean_epoch(obj) == epoch_) continue;
    const Distance outref_distance = NextDistance(distance);
    for (const ObjectId outref : outset) {
      auto [dit, inserted] =
          result.outref_distances.emplace(outref, outref_distance);
      if (!inserted) dit->second = std::min(dit->second, outref_distance);
    }
    if (!outset.empty()) {
      result.back_info.inref_outsets.emplace(obj, outset);
    }
  }
  result.back_info.RecomputeInsets();
  result.stats.suspect_objects_traced = computer.stats().objects_traced;
  result.stats.suspect_edges_scanned = computer.stats().edges_scanned;
  result.stats.objects_marked_suspect = computer.stats().objects_traced;
  result.stats.outset_stats = store.stats();
  result.stats.distinct_outsets = store.distinct_outsets();
  result.stats.back_info_elements = result.back_info.stored_elements();
  result.stats.suspected_outrefs = result.back_info.outref_insets.size();

  // ---- Phase 3: sweep list and untraced outrefs. ----
  heap_.ForEachWithEpochs([&](ObjectId id, const Object&, std::uint64_t mark,
                              std::uint64_t) {
    if (mark != epoch_) result.objects_to_free.push_back(id);
  });
  result.stats.objects_swept = result.objects_to_free.size();
  for (const ObjectId ref : result.snapshot_outrefs) {
    if (!result.outref_distances.contains(ref)) {
      result.outrefs_untraced.insert(ref);
    }
  }

  result.stats.trace_wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());

  DGC_LOG_DEBUG("site " << heap_.site() << " trace " << epoch_ << ": "
                        << result.stats.objects_marked_clean << " clean, "
                        << result.stats.objects_marked_suspect << " suspect, "
                        << result.stats.objects_swept << " swept, "
                        << result.stats.suspected_inrefs << " suspected inrefs, "
                        << result.stats.suspected_outrefs
                        << " suspected outrefs");
  return result;
}

}  // namespace dgc
