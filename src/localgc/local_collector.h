// The local tracing collector (Sections 2, 3 and 5).
//
// Each site traces independently, treating persistent roots, application
// roots and incoming inter-site references (inrefs) as roots. The trace:
//
//   1. marks objects reachable from roots and *clean* inrefs (estimated
//      distance <= the suspicion threshold), processing inrefs in increasing
//      distance order so that the first touch of an outref yields its minimum
//      distance (Section 3's distance propagation);
//   2. traces the remaining, *suspected* inrefs with the SCC-aware bottom-up
//      outset computation of Section 5.2, producing the back information used
//      by back traces;
//   3. records the objects and outrefs reached by neither phase for sweeping
//      and trimming.
//
// Garbage-flagged inrefs (confirmed by a completed back trace) are not roots,
// which is how a confirmed cycle actually dies (Section 4.5).
//
// Incremental traces (CollectorConfig::incremental_trace): a trace is a pure
// function of a small, exactly snapshotable input set — heap contents +
// persistent/application roots, each inref's (distance, garbage_flagged),
// and each outref's pinned bit. Nothing else feeds Run: barrier overrides,
// visited marks and back thresholds are consumed elsewhere. The collector
// snapshots those inputs every run and compares them with the previous
// trace's snapshot (heap equality is one integer — the Heap's monotone
// mutation epoch, maintained by the dirty-tracking barriers):
//
//   * all inputs identical  -> quiescent skip: the cached TraceResult is
//     re-served verbatim with only the epoch bumped;
//   * only *suspected* inref distances drifted (the steady ripening the
//     distance heuristic produces every epoch) -> marks, sweep set, back
//     information and memoized outsets are reused and only the distance
//     aggregation is re-folded from the cached outsets;
//   * anything else -> full trace (conservative), which also delta-patches
//     the inverse inset view from the previous back info instead of
//     rebuilding it, and refreshes the cache.
//
// Both reuse levels are exact, not approximate: phase-2 outsets are
// graph-theoretic (order-independent), so every reused field is what the
// full trace would have computed — incremental_differential asserts exactly
// that by running both and comparing.
#pragma once

#include <map>
#include <vector>

#include "backinfo/outset_store.h"
#include "localgc/distance_labels.h"
#include "localgc/trace_result.h"
#include "refs/tables.h"
#include "store/heap.h"

namespace dgc {

class WorkerPool;

class LocalCollector {
 public:
  LocalCollector(Heap& heap, RefTables& tables)
      : heap_(heap),
        tables_(tables),
        labels_(heap, tables.config().suspicion_threshold,
                tables.config().distance_repair_budget) {
    if (tables_.config().incremental_distance) {
      heap_.SetMutationListener(&labels_);
    }
  }

  ~LocalCollector() { heap_.SetMutationListener(nullptr); }

  LocalCollector(const LocalCollector&) = delete;
  LocalCollector& operator=(const LocalCollector&) = delete;

  /// Computes one local trace against the current heap. `app_roots` are the
  /// local objects held in mutator variables (Section 6.3); remote references
  /// held in variables are covered by their pinned outrefs. Pure computation:
  /// mutates only per-object mark stamps, never tables or heap membership.
  TraceResult Run(const std::vector<ObjectId>& app_roots);

  /// Epoch of the most recent trace (0 before the first).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Everything the trace's outcome depends on, captured exactly. Two equal
  /// snapshots prove two traces would compute identical results.
  struct TraceInputs {
    std::uint64_t heap_mutation_epoch = 0;
    std::vector<ObjectId> persistent_roots;
    std::vector<ObjectId> app_roots;
    struct Inref {
      ObjectId obj;
      Distance distance = 0;
      bool garbage_flagged = false;
      friend bool operator==(const Inref&, const Inref&) = default;
    };
    std::vector<Inref> inrefs;  // table order (sorted by object id)
    struct Outref {
      ObjectId ref;
      bool pinned = false;
      friend bool operator==(const Outref&, const Outref&) = default;
    };
    std::vector<Outref> outrefs;  // table order (sorted by ref id)
    friend bool operator==(const TraceInputs&, const TraceInputs&) = default;
  };

  /// Drops the previous-trace cache and the heap's dirty tracking (crash
  /// restart: both are volatile acceleration state; the persistent
  /// OutsetStore is a pure content-keyed memo and survives).
  void InvalidateCache();

  /// True when a previous trace is cached and eligible for reuse checks.
  [[nodiscard]] bool cache_valid() const { return cache_.valid; }

  /// The persistent outset store (interning/memo tables survive across
  /// traces, so intern_bytes_saved accumulates across epochs).
  [[nodiscard]] const OutsetStore& outset_store() const { return store_; }

  /// The incremental distance-label plane (a registered heap-mutation
  /// listener when CollectorConfig::incremental_distance is on; an inert
  /// member otherwise). Exposed for tests and instrumentation.
  [[nodiscard]] const DistanceLabels& distance_labels() const {
    return labels_;
  }

  /// Shares a persistent worker pool with the intra-trace parallel phases
  /// (work-stealing mark, per-slab sweep, partitioned refold). With a null
  /// pool or CollectorConfig::mark_threads <= 1 every phase runs the
  /// historical sequential code path bit for bit.
  void set_worker_pool(WorkerPool* pool) { pool_ = pool; }

 private:
  enum class ReuseLevel {
    kNone,        // inputs changed: full trace
    kRefold,      // only suspected-inref distances drifted
    kQuiescent,   // all inputs identical
  };

  /// Marks everything reachable from `root` as clean, recording first-touch
  /// distances of outrefs. `distance` is the root's estimated distance.
  void MarkCleanFrom(ObjectId root, Distance distance, TraceResult& result);

  [[nodiscard]] TraceInputs SnapshotInputs(
      const std::vector<ObjectId>& app_roots) const;
  [[nodiscard]] ReuseLevel ClassifyReuse(const TraceInputs& inputs) const;

  /// The classic three-phase trace. When `inputs_for_cache` is non-null the
  /// run also refreshes the reuse cache (and consumes the heap's dirty sets);
  /// null = plain run (incremental off, or the differential shadow trace).
  TraceResult RunFullTrace(const std::vector<ObjectId>& app_roots,
                           const TraceInputs* inputs_for_cache);

  /// Level-1 reuse: cached marks/outsets/back info, distances re-folded from
  /// the cached clean-phase distances plus each suspect's cached outset.
  [[nodiscard]] TraceResult RefoldDistances(const TraceInputs& inputs) const;

  /// Differential harness: aborts unless the two results agree on every
  /// semantic field (snapshots, distances, cleanliness, sweep, back info).
  void CheckEquivalent(const TraceResult& reused,
                       const TraceResult& full) const;

  /// The contribution map the label plane must reflect for this trace's
  /// inputs: persistent/application roots at 0, each non-garbage-flagged
  /// inref at its estimated distance (an unreached inref — distance
  /// infinity — contributes kDistanceUnreachedRoot), minimum per slot.
  [[nodiscard]] DistanceLabels::ContributionMap DesiredContributions(
      const TraceInputs& inputs) const;

  /// Serves a full-trace-identical TraceResult directly from the fresh
  /// label plane: no marking pass — clean set and sweep read off the labels,
  /// clean outref distances off the support index, suspect outsets
  /// recomputed against the labels. Requires labels_.fresh(). When
  /// `clean_distances_out` is non-null it receives the phase-1-equivalent
  /// distance base (pins + clean holders) for the reuse cache.
  TraceResult ServeFromLabels(const TraceInputs& inputs,
                              std::map<ObjectId, Distance>* clean_distances_out);

  /// Run() body when incremental_distance is on: reconcile -> fallback or
  /// reuse ladder (with ServeFromLabels replacing the full trace) ->
  /// differential checks -> cache refresh -> per-trace stat deltas.
  TraceResult RunWithLabels(const std::vector<ObjectId>& app_roots);

  Heap& heap_;
  RefTables& tables_;
  DistanceLabels labels_;
  /// labels_.stats() as of the previous trace — the baseline for the
  /// per-trace deltas reported in LocalTraceStats.
  DistanceLabels::Stats last_label_stats_;
  WorkerPool* pool_ = nullptr;
  std::uint64_t epoch_ = 0;
  /// Scratch mark stack, reused across traces so the hot loop never
  /// reallocates once the heap's size has been seen.
  std::vector<ObjectId> mark_stack_;
  /// Persistent across traces: suspects with outsets already seen in any
  /// earlier epoch intern to the same id, and union memo hits carry over.
  OutsetStore store_;

  struct TraceCache {
    bool valid = false;
    TraceInputs inputs;
    TraceResult result;
    /// outref_distances as of the end of phase 1 (pins + clean marking),
    /// before suspect contributions — the base the refold starts from.
    std::map<ObjectId, Distance> clean_distances;
  };
  TraceCache cache_;
};

}  // namespace dgc
