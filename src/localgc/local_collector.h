// The local tracing collector (Sections 2, 3 and 5).
//
// Each site traces independently, treating persistent roots, application
// roots and incoming inter-site references (inrefs) as roots. The trace:
//
//   1. marks objects reachable from roots and *clean* inrefs (estimated
//      distance <= the suspicion threshold), processing inrefs in increasing
//      distance order so that the first touch of an outref yields its minimum
//      distance (Section 3's distance propagation);
//   2. traces the remaining, *suspected* inrefs with the SCC-aware bottom-up
//      outset computation of Section 5.2, producing the back information used
//      by back traces;
//   3. records the objects and outrefs reached by neither phase for sweeping
//      and trimming.
//
// Garbage-flagged inrefs (confirmed by a completed back trace) are not roots,
// which is how a confirmed cycle actually dies (Section 4.5).
#pragma once

#include <vector>

#include "localgc/trace_result.h"
#include "refs/tables.h"
#include "store/heap.h"

namespace dgc {

class LocalCollector {
 public:
  LocalCollector(Heap& heap, RefTables& tables)
      : heap_(heap), tables_(tables) {}

  LocalCollector(const LocalCollector&) = delete;
  LocalCollector& operator=(const LocalCollector&) = delete;

  /// Computes one local trace against the current heap. `app_roots` are the
  /// local objects held in mutator variables (Section 6.3); remote references
  /// held in variables are covered by their pinned outrefs. Pure computation:
  /// mutates only per-object mark stamps, never tables or heap membership.
  TraceResult Run(const std::vector<ObjectId>& app_roots);

  /// Epoch of the most recent trace (0 before the first).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  /// Marks everything reachable from `root` as clean, recording first-touch
  /// distances of outrefs. `distance` is the root's estimated distance.
  void MarkCleanFrom(ObjectId root, Distance distance, TraceResult& result);

  Heap& heap_;
  RefTables& tables_;
  std::uint64_t epoch_ = 0;
  /// Scratch mark stack, reused across traces so the hot loop never
  /// reallocates once the heap's size has been seen.
  std::vector<ObjectId> mark_stack_;
};

}  // namespace dgc
