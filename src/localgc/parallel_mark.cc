#include "localgc/parallel_mark.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "localgc/trace_result.h"

namespace dgc {

ParallelMarker::ParallelMarker(Heap& heap, WorkerPool& pool,
                               std::size_t workers)
    : heap_(heap),
      pool_(pool),
      workers_(workers == 0 ? 1 : workers),
      site_(heap.site()),
      states_(workers_),
      deques_(workers_) {
  const std::size_t shards = Heap::ShardOfSlot(
      heap.slot_capacity() == 0 ? 0 : heap.slot_capacity() - 1) + 1;
  for (WorkerState& ws : states_) ws.open.resize(shards);
}

void ParallelMarker::Publish(std::size_t w, std::vector<std::uint32_t>&& batch) {
  SharedDeque& d = deques_[w];
  std::lock_guard<std::mutex> lock(d.mu);
  d.batches.push_back(std::move(batch));
  ++states_[w].published;
}

bool ParallelMarker::PopOwn(std::size_t w, std::vector<std::uint32_t>& into) {
  SharedDeque& d = deques_[w];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.batches.empty()) return false;
  into = std::move(d.batches.back());
  d.batches.pop_back();
  return true;
}

bool ParallelMarker::FlushOpen(std::size_t w, WorkerState& ws) {
  if (ws.open_shards.empty()) return false;
  SharedDeque& d = deques_[w];
  std::lock_guard<std::mutex> lock(d.mu);
  for (const std::uint32_t shard : ws.open_shards) {
    if (ws.open[shard].empty()) continue;
    d.batches.push_back(std::move(ws.open[shard]));
    ws.open[shard].clear();
    ++ws.published;
  }
  ws.open_shards.clear();
  return !d.batches.empty();
}

bool ParallelMarker::Steal(std::size_t w, std::vector<std::uint32_t>& into) {
  for (std::size_t k = 1; k < workers_; ++k) {
    SharedDeque& d = deques_[(w + k) % workers_];
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.batches.empty()) continue;
    // Steal the oldest batch (FIFO end): it is the furthest from the owner's
    // working set, so contention on warm shards stays low.
    into = std::move(d.batches.front());
    d.batches.pop_front();
    return true;
  }
  return false;
}

void ParallelMarker::ScanSlot(WorkerState& ws, std::size_t w,
                              std::uint64_t slot, std::uint64_t epoch) {
  const Object& object = heap_.ObjectAtSlot(slot);
  const std::size_t my_shard = Heap::ShardOfSlot(slot);
  for (const ObjectId target : object.slots) {
    if (!target.valid()) continue;
    ++ws.edges;
    if (target.site != site_) {
      // Same first-touch bookkeeping as the sequential mark; the layer's
      // single distance is applied at merge time.
      ws.outrefs_touched.insert(target);
      continue;
    }
    DGC_CHECK_MSG(heap_.Exists(target),
                  "no object " << target << " on site " << site_);
    const std::uint64_t tslot = Heap::SlotOfIndex(target.index);
    if (!heap_.TryClaimCleanSlot(tslot, epoch)) continue;
    ++ws.marked;
    unscanned_.fetch_add(1, std::memory_order_acq_rel);
    if (Heap::ShardOfSlot(tslot) == my_shard) {
      ws.local.push_back(static_cast<std::uint32_t>(tslot));
      if (ws.local.size() > kLocalLimit) {
        // Donate the oldest half so idle workers can steal it; the newest
        // (cache-warm) entries stay on the fast path.
        std::vector<std::uint32_t> batch(ws.local.begin(),
                                         ws.local.begin() + kBatchSlots);
        ws.local.erase(ws.local.begin(), ws.local.begin() + kBatchSlots);
        Publish(w, std::move(batch));
      }
    } else {
      const std::size_t shard = Heap::ShardOfSlot(tslot);
      std::vector<std::uint32_t>& open = ws.open[shard];
      if (open.empty()) ws.open_shards.push_back(static_cast<std::uint32_t>(shard));
      open.push_back(static_cast<std::uint32_t>(tslot));
      if (open.size() >= kBatchSlots) {
        std::vector<std::uint32_t> batch = std::move(open);
        open.clear();
        Publish(w, std::move(batch));
        // shard stays listed in open_shards; FlushOpen skips empty batches.
      }
    }
  }
  unscanned_.fetch_sub(1, std::memory_order_acq_rel);
}

void ParallelMarker::WorkerRun(std::size_t w, std::uint64_t epoch) {
  WorkerState& ws = states_[w];
  for (;;) {
    if (!ws.local.empty()) {
      const std::uint64_t slot = ws.local.back();
      ws.local.pop_back();
      ScanSlot(ws, w, slot, epoch);
      continue;
    }
    if (PopOwn(w, ws.local)) continue;
    if (FlushOpen(w, ws)) continue;  // republished; next PopOwn takes it
    if (Steal(w, ws.local)) {
      ++ws.steals;
      continue;
    }
    // No visible work anywhere. The claimed-but-unscanned count is the
    // exact termination condition: every queued or in-scan slot holds a
    // +1, and new work only appears from scans — once it reads zero it is
    // zero forever.
    if (unscanned_.load(std::memory_order_acquire) == 0) return;
    std::this_thread::yield();
  }
}

void ParallelMarker::MarkLayer(const std::vector<ObjectId>& roots,
                               Distance root_distance, std::uint64_t epoch,
                               TraceResult& result) {
  // Seed phase (caller thread): claim the layer's roots and distribute them
  // round-robin so workers start spread across the heap.
  std::uint64_t seeded_marks = 0;
  std::vector<std::uint32_t> seeds;
  seeds.reserve(roots.size());
  for (const ObjectId root : roots) {
    if (!heap_.Exists(root)) continue;  // stale app root; defensive
    const std::uint64_t slot = Heap::SlotOfIndex(root.index);
    if (!heap_.TryClaimCleanSlot(slot, epoch)) continue;
    ++seeded_marks;
    unscanned_.fetch_add(1, std::memory_order_relaxed);
    seeds.push_back(static_cast<std::uint32_t>(slot));
  }
  result.stats.objects_marked_clean += seeded_marks;
  if (seeds.empty()) return;
  ++stats_.layers;

  const std::size_t chunk =
      std::max<std::size_t>(1, (seeds.size() + workers_ - 1) / workers_);
  for (std::size_t w = 0, i = 0; i < seeds.size(); ++w, i += chunk) {
    const std::size_t end = std::min(seeds.size(), i + chunk);
    Publish(w % workers_,
            std::vector<std::uint32_t>(seeds.begin() + i, seeds.begin() + end));
  }

  pool_.RunBatch(workers_, [this, epoch](std::size_t w) { WorkerRun(w, epoch); },
                 workers_);
  DGC_DCHECK(unscanned_.load() == 0);

  // Deterministic merge, in worker order. Claim interleaving decides only
  // *which* worker holds a given count or outref touch; sums and min/union
  // merges are invariant under that partition.
  const Distance outref_distance = NextDistance(root_distance);
  for (WorkerState& ws : states_) {
    DGC_DCHECK(ws.local.empty());
    result.stats.objects_marked_clean += ws.marked;
    result.stats.edges_scanned_clean += ws.edges;
    for (const ObjectId outref : ws.outrefs_touched) {
      auto [it, inserted] =
          result.outref_distances.emplace(outref, outref_distance);
      if (!inserted) it->second = std::min(it->second, outref_distance);
      result.outrefs_clean.insert(outref);
    }
    stats_.steals += ws.steals;
    stats_.batches_published += ws.published;
    ws.outrefs_touched.clear();
    ws.marked = ws.edges = ws.steals = ws.published = 0;
    ws.open_shards.clear();
  }
}

std::vector<ObjectId> ParallelSweepUnmarked(const Heap& heap, WorkerPool& pool,
                                            std::size_t workers,
                                            std::uint64_t epoch) {
  const std::uint64_t used = heap.slot_capacity();
  if (used == 0) return {};
  const std::size_t shards = Heap::ShardOfSlot(used - 1) + 1;
  std::vector<std::vector<ObjectId>> parts(shards);
  pool.RunBatch(
      shards,
      [&](std::size_t s) {
        const std::uint64_t begin = s * Heap::kSlabSize;
        const std::uint64_t end =
            std::min<std::uint64_t>(used, begin + Heap::kSlabSize);
        std::vector<ObjectId>& out = parts[s];
        for (std::uint64_t slot = begin; slot < end; ++slot) {
          if (!heap.SlotLive(slot)) continue;
          if (heap.MarkEpochAtSlot(slot) != epoch) {
            out.push_back(heap.IdAtSlot(slot));
          }
        }
      },
      workers);
  std::size_t total = 0;
  for (const std::vector<ObjectId>& p : parts) total += p.size();
  std::vector<ObjectId> swept;
  swept.reserve(total);
  for (std::vector<ObjectId>& p : parts) {
    swept.insert(swept.end(), p.begin(), p.end());
  }
  return swept;
}

void ParallelFoldOutsets(
    const std::vector<std::pair<Distance, const std::vector<ObjectId>*>>& jobs,
    WorkerPool& pool, std::size_t workers, std::map<ObjectId, Distance>& into) {
  if (jobs.empty()) return;
  workers = std::max<std::size_t>(1, std::min(workers, jobs.size()));
  std::vector<std::map<ObjectId, Distance>> parts(workers);
  const std::size_t chunk = (jobs.size() + workers - 1) / workers;
  pool.RunBatch(
      workers,
      [&](std::size_t w) {
        const std::size_t begin = w * chunk;
        const std::size_t end = std::min(jobs.size(), begin + chunk);
        std::map<ObjectId, Distance>& local = parts[w];
        for (std::size_t j = begin; j < end; ++j) {
          const auto& [distance, outset] = jobs[j];
          for (const ObjectId outref : *outset) {
            auto [it, inserted] = local.emplace(outref, distance);
            if (!inserted) it->second = std::min(it->second, distance);
          }
        }
      },
      workers);
  for (const std::map<ObjectId, Distance>& part : parts) {
    for (const auto& [outref, distance] : part) {
      auto [it, inserted] = into.emplace(outref, distance);
      if (!inserted) it->second = std::min(it->second, distance);
    }
  }
}

}  // namespace dgc
