// Intra-site parallel marking, sweeping, and distance refolding.
//
// The slab heap's dense slot layout turns one site's forward trace into
// shardable work: storage slots partition into slab shards that never move
// while a trace computes, so a mark worker can own a shard-local batch of
// claimed slots and scan it without touching another worker's cache lines.
//
// ParallelMarker runs the clean-marking phase as a work-stealing traversal:
//
//   * each logical worker owns a deque of shard-local slot batches plus a
//     same-shard fast-path stack; claims landing in another shard are routed
//     into an open batch for that shard and published to the worker's deque
//     when full ("push to the owner shard"), where idle workers steal them;
//   * clean stamps are claimed with first-claim-wins relaxed atomics
//     (Heap::TryClaimCleanSlot); a slot is scanned exactly once, by whichever
//     worker won it;
//   * the traversal is driven in *distance layers*: all roots of one
//     estimated distance mark together, layers run in increasing distance
//     order with a barrier between them. Within a layer every claim carries
//     the same outref distance, so the min-merge of per-worker outref
//     touches is independent of claim interleaving — the merged TraceResult
//     is bit-identical to the sequential mark no matter the thread count or
//     schedule (see ClassifyReuse-style reasoning in local_collector.cc).
//
// ParallelSweepUnmarked and ParallelFoldOutsets are the two embarrassingly
// parallel passes: the sweep partitions slots by slab and splices per-slab
// reclaim lists back in slot order; the fold partitions suspected-inref
// outsets and min-merges per-worker distance maps in worker order.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "common/distance.h"
#include "common/ids.h"
#include "common/worker_pool.h"
#include "store/heap.h"

namespace dgc {

struct TraceResult;

struct ParallelMarkStats {
  std::uint64_t steals = 0;          // batches taken from another worker
  std::uint64_t batches_published = 0;  // batches pushed to deques
  std::uint64_t layers = 0;          // distance layers marked
};

class ParallelMarker {
 public:
  /// `workers` logical workers (>= 1); they run on `pool` via a
  /// caller-participates batch, so `workers` may exceed the pool's thread
  /// count — excess workers simply find the traversal finished.
  ParallelMarker(Heap& heap, WorkerPool& pool, std::size_t workers);

  /// Marks everything reachable from `roots` — all roots estimated at
  /// `root_distance` — that is not already clean-stamped for `epoch`.
  /// Folds objects-marked / edges-scanned counts, first-touch outref
  /// distances (NextDistance(root_distance), min-merged), and clean-outref
  /// touches into `result`, exactly as the sequential MarkCleanFrom would.
  /// Call once per distinct root distance, in increasing order.
  void MarkLayer(const std::vector<ObjectId>& roots, Distance root_distance,
                 std::uint64_t epoch, TraceResult& result);

  [[nodiscard]] const ParallelMarkStats& stats() const { return stats_; }

 private:
  /// Slots per published batch; also the donation size when a worker's
  /// fast-path stack overflows.
  static constexpr std::size_t kBatchSlots = 256;
  static constexpr std::size_t kLocalLimit = 2 * kBatchSlots;

  struct WorkerState {
    /// Same-shard fast path (LIFO, cache-warm).
    std::vector<std::uint32_t> local;
    /// Open (not yet published) batch per destination shard.
    std::vector<std::vector<std::uint32_t>> open;
    std::vector<std::uint32_t> open_shards;  // shards with a non-empty batch
    /// Per-layer accumulators, merged deterministically after the join.
    std::set<ObjectId> outrefs_touched;
    std::uint64_t marked = 0;
    std::uint64_t edges = 0;
    std::uint64_t steals = 0;
    std::uint64_t published = 0;
  };

  struct SharedDeque {
    std::mutex mu;
    std::deque<std::vector<std::uint32_t>> batches;
  };

  void WorkerRun(std::size_t w, std::uint64_t epoch);
  void ScanSlot(WorkerState& ws, std::size_t w, std::uint64_t slot,
                std::uint64_t epoch);
  bool PopOwn(std::size_t w, std::vector<std::uint32_t>& into);
  bool FlushOpen(std::size_t w, WorkerState& ws);
  bool Steal(std::size_t w, std::vector<std::uint32_t>& into);
  void Publish(std::size_t w, std::vector<std::uint32_t>&& batch);

  Heap& heap_;
  WorkerPool& pool_;
  const std::size_t workers_;
  const SiteId site_;
  std::vector<WorkerState> states_;
  std::vector<SharedDeque> deques_;
  std::atomic<std::int64_t> unscanned_{0};
  ParallelMarkStats stats_;
};

/// Phase-3 sweep, parallel over slabs: returns the ids of live slots whose
/// mark stamp is not `epoch`, in storage-slot order (per-slab lists spliced
/// back in slab order), exactly as Heap::ForEachWithEpochs would yield them.
std::vector<ObjectId> ParallelSweepUnmarked(const Heap& heap, WorkerPool& pool,
                                            std::size_t workers,
                                            std::uint64_t epoch);

/// Level-1 incremental reuse, parallel over suspects: folds each job's
/// outset into `into` at the job's (already NextDistance'd) distance with a
/// min-merge. Partitioned across `workers`; per-worker maps are merged in
/// worker order, so the result is independent of scheduling.
void ParallelFoldOutsets(
    const std::vector<std::pair<Distance, const std::vector<ObjectId>*>>& jobs,
    WorkerPool& pool, std::size_t workers, std::map<ObjectId, Distance>& into);

}  // namespace dgc
