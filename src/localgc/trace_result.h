// The outcome of one local trace, computed as a snapshot.
//
// To model non-atomic local tracing (Section 6.2), the collector *computes*
// everything against the heap as of the trace's start, and the site *applies*
// the result when the trace's simulated duration elapses. In between, back
// traces are served from the old back information and transfer-barrier
// cleanings are recorded for replay into this new copy.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "backinfo/outset_store.h"
#include "backinfo/site_back_info.h"
#include "common/distance.h"
#include "common/ids.h"

namespace dgc {

struct LocalTraceStats {
  std::uint64_t objects_marked_clean = 0;
  std::uint64_t objects_marked_suspect = 0;
  std::uint64_t objects_swept = 0;
  std::uint64_t edges_scanned_clean = 0;
  std::uint64_t suspect_objects_traced = 0;
  std::uint64_t suspect_edges_scanned = 0;
  std::uint64_t suspected_inrefs = 0;
  std::uint64_t suspected_outrefs = 0;
  OutsetStore::Stats outset_stats;
  std::size_t distinct_outsets = 0;
  std::size_t back_info_elements = 0;
  /// Real (wall-clock) duration of the trace computation, for throughput
  /// instrumentation only — never fed back into simulated time.
  std::uint64_t trace_wall_ns = 0;
  /// Wall time of the clean-mark phase (phase 1) alone, sequential or
  /// parallel. Zero when a reuse level skipped marking entirely.
  std::uint64_t mark_wall_ns = 0;
  /// Work-stealing mark only (mark_threads > 1): batches taken from another
  /// worker's deque, and batches published to deques. Schedule-dependent —
  /// excluded from determinism comparisons, like the wall times.
  std::uint64_t mark_steals = 0;
  std::uint64_t mark_batches = 0;

  // --- Incremental-trace accounting (zero when incremental_trace is off) --
  /// Objects actually visited by this trace. A full trace re-traces every
  /// live object; a level-1 reuse re-traces none (marks are reused); a
  /// quiescent skip re-traces none and also bumps quiescent_skips.
  std::uint64_t objects_retraced = 0;
  /// Suspect outsets served from the previous trace's memoized back info
  /// instead of being recomputed.
  std::uint64_t outsets_reused = 0;
  /// 1 when this result is a verbatim reuse of the previous epoch's trace
  /// on a provably quiescent site (sites aggregate it into a counter).
  std::uint64_t quiescent_skips = 0;

  // --- Incremental distance accounting (zero unless incremental_distance) --
  /// Mutation/contribution events since the previous trace whose bounded
  /// repair relabeled at least one object.
  std::uint64_t distance_repairs = 0;
  /// 1 when this trace found the label plane stale and fell back to a full
  /// forward propagation (crash-restart, threshold breach, budget blowout,
  /// or the very first trace).
  std::uint64_t distance_fallbacks = 0;
  /// Label writes since the previous trace — bounded repairs plus any
  /// fallback propagation's writes. The full-recompute equivalent is one
  /// write per live object per trace; the ratio is the tentpole's win.
  std::uint64_t objects_relabeled = 0;
  /// 1 when this trace's result was served from the repaired label plane
  /// instead of a marking pass.
  std::uint64_t label_serves = 0;
};

struct TraceResult {
  std::uint64_t epoch = 0;

  /// Outrefs that existed when the trace started (apply only touches these;
  /// outrefs created mid-trace keep their fresh clean state untouched).
  std::set<ObjectId> snapshot_outrefs;
  std::set<ObjectId> snapshot_inrefs;

  /// New distance per surviving (reached) outref.
  std::map<ObjectId, Distance> outref_distances;

  /// Outrefs reached from a root or clean inref ("traced clean").
  std::set<ObjectId> outrefs_clean;

  /// Snapshot outrefs reached by no trace: to be dropped at apply time
  /// (unless pinned or barrier-cleaned meanwhile).
  std::set<ObjectId> outrefs_untraced;

  /// Objects unreachable at the start of the trace, to be swept at apply.
  std::vector<ObjectId> objects_to_free;

  /// The new back information (outsets of suspected inrefs + inverse).
  SiteBackInfo back_info;

  LocalTraceStats stats;
};

}  // namespace dgc
