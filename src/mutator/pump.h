// Blocking-style wait loop for mutator clients, with idempotent retry.
//
// The clients' blocking wrappers drive the world until their operation
// completes — one Transport::StepOne at a time, which is one event under the
// sim transport (the historical RunOne, bit for bit) and one engine timestep
// under the threaded and socket backends, where deliveries land in site
// inboxes that only the engine drains. The continuation's `done` write
// happens on whatever thread runs the destination site's handler; the
// engine's fork/join (or reply-absorb) barrier orders it before StepOne
// returns, so the loop's read is race-free. Under message loss a request or
// its reply may vanish; when the world drains with the operation still
// pending, the client retries (every RPC and insert in the system is
// idempotent and every ack path is duplicate-tolerant). A retry cap turns a
// permanently unreachable peer into a crisp invariant failure instead of a
// silent hang.
#pragma once

#include <functional>

#include "common/check.h"
#include "core/system.h"

namespace dgc {

inline void PumpUntil(System& system, const bool& done,
                      const std::function<void()>& retry,
                      int max_retries = 64) {
  int retries = 0;
  while (!done) {
    if (system.transport().StepOne()) continue;
    // World went idle with the operation still pending: a message was lost.
    DGC_CHECK_MSG(retry != nullptr && retries < max_retries,
                  "mutator operation stalled (peer unreachable?) after "
                      << retries << " retries");
    ++retries;
    retry();
  }
}

}  // namespace dgc
