// Blocking-style wait loop for mutator clients, with idempotent retry.
//
// The clients' blocking wrappers drive the scheduler until their operation
// completes. Under message loss a request or its reply may vanish; when the
// scheduler drains with the operation still pending, the client retries
// (every RPC and insert in the system is idempotent and every ack path is
// duplicate-tolerant). A retry cap turns a permanently unreachable peer
// into a crisp invariant failure instead of a silent hang.
#pragma once

#include <functional>

#include "common/check.h"
#include "core/system.h"

namespace dgc {

inline void PumpUntil(System& system, const bool& done,
                      const std::function<void()>& retry,
                      int max_retries = 64) {
  int retries = 0;
  while (!done) {
    if (system.scheduler().RunOne()) continue;
    // World went idle with the operation still pending: a message was lost.
    DGC_CHECK_MSG(retry != nullptr && retries < max_retries,
                  "mutator operation stalled (peer unreachable?) after "
                      << retries << " retries");
    ++retries;
    retry();
  }
}

}  // namespace dgc
