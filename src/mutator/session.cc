#include "mutator/session.h"

#include <utility>

#include "common/check.h"
#include "mutator/pump.h"

namespace dgc {

Session::Session(System& system, SiteId home, std::uint64_t id)
    : system_(system), home_(home), id_(id) {
  DGC_CHECK(home < system.site_count());
}

Session::~Session() { ReleaseAll(); }

void Session::Hold(ObjectId ref) {
  DGC_CHECK(ref.valid());
  Site& home_site = system_.site(home_);
  if (ref.site == home_) {
    home_site.AddAppRoot(ref);
  } else {
    home_site.PinOutref(ref);
  }
  holds_[ref] += 1;
}

void Session::Release(ObjectId ref) {
  const auto it = holds_.find(ref);
  DGC_CHECK_MSG(it != holds_.end(), "session does not hold " << ref);
  Site& home_site = system_.site(home_);
  if (ref.site == home_) {
    home_site.RemoveAppRoot(ref);
  } else {
    home_site.UnpinOutref(ref);
  }
  if (--it->second == 0) holds_.erase(it);
}

void Session::ReleaseAll() {
  while (!holds_.empty()) Release(holds_.begin()->first);
}

void Session::Abandon() {
  holds_.clear();
  busy_ = false;
}

ObjectId Session::Create(std::size_t slots) {
  const ObjectId obj = system_.site(home_).heap().Allocate(slots);
  Hold(obj);
  return obj;
}

void Session::StartLoadRoot(ObjectId root, std::function<void(ObjectId)> done) {
  DGC_CHECK(!busy_);
  if (root.site == home_) {
    Hold(root);
    done(root);
    return;
  }
  busy_ = true;
  // The name server hands this site the reference: §6.1.2 arrival cases,
  // then pin it as a variable.
  system_.site(home_).ReceiveReference(
      root, [this, root, done = std::move(done)] {
        Hold(root);
        busy_ = false;
        done(root);
      });
}

ObjectId Session::LoadRoot(ObjectId root) {
  ObjectId result = kInvalidObject;
  bool completed = false;
  StartLoadRoot(root, [&](ObjectId obj) {
    result = obj;
    completed = true;
  });
  // A stall here means the case-4 insert (or its ack) was lost.
  PumpUntil(system_, completed,
            [this] { system_.site(home_).ResendPendingInserts(); });
  return result;
}

void Session::StartRead(ObjectId target, std::size_t slot,
                        std::function<void(ObjectId)> done) {
  DGC_CHECK(!busy_);
  DGC_CHECK_MSG(Holds(target), "read of unheld reference " << target);
  Site& home_site = system_.site(home_);
  if (target.site == home_) {
    // Local navigation: no inter-site transfer, no barrier.
    const ObjectId value = home_site.heap().GetSlot(target, slot);
    if (value.valid()) Hold(value);
    done(value);
    return;
  }
  busy_ = true;
  home_site.RegisterSessionContinuation(
      id_, [this, done = std::move(done)](ObjectId value) {
        if (value.valid()) Hold(value);
        busy_ = false;
        done(value);
      });
  system_.network().Send(home_, target.site,
                         MutatorReadMsg{id_, target,
                                        static_cast<std::uint32_t>(slot)});
}

ObjectId Session::Read(ObjectId target, std::size_t slot) {
  ObjectId result = kInvalidObject;
  bool completed = false;
  StartRead(target, slot, [&](ObjectId value) {
    result = value;
    completed = true;
  });
  PumpUntil(system_, completed, [this, target, slot] {
    // Re-issue the read RPC and nudge pending inserts; both are idempotent
    // and duplicate replies are tolerated.
    system_.site(home_).ResendPendingInserts();
    if (target.site != home_) {
      system_.network().Send(home_, target.site,
                             MutatorReadMsg{id_, target,
                                            static_cast<std::uint32_t>(slot)});
    }
  });
  return result;
}

void Session::StartWrite(ObjectId target, std::size_t slot, ObjectId value,
                         std::function<void()> done) {
  DGC_CHECK(!busy_);
  DGC_CHECK_MSG(Holds(target), "write to unheld reference " << target);
  DGC_CHECK_MSG(!value.valid() || Holds(value),
                "write of unheld reference " << value
                    << " — a mutator must traverse a path to a reference "
                       "before copying it (Section 6.1)");
  Site& home_site = system_.site(home_);
  if (target.site == home_) {
    // Local copy (§6.1.1): safe without a barrier here because obtaining
    // `value` already applied the transfer barrier on arrival, and variables
    // are roots. SetSlot is also the incremental collector's write barrier:
    // it dirties the written object and the overwritten target, so every
    // mutator write (this local path, the remote MutatorWriteMsg path, and
    // transaction commit slices) is observed without extra hooks here.
    home_site.heap().SetSlot(target, slot, value);
    done();
    return;
  }
  busy_ = true;
  home_site.RegisterSessionContinuation(id_,
                                        [this, done = std::move(done)](
                                            ObjectId) {
                                          busy_ = false;
                                          done();
                                        });
  system_.network().Send(
      home_, target.site,
      MutatorWriteMsg{id_, target, static_cast<std::uint32_t>(slot), value});
}

void Session::Write(ObjectId target, std::size_t slot, ObjectId value) {
  bool completed = false;
  StartWrite(target, slot, value, [&] { completed = true; });
  PumpUntil(system_, completed, [this, target, slot, value] {
    system_.site(home_).ResendPendingInserts();
    if (target.site != home_) {
      system_.network().Send(
          home_, target.site,
          MutatorWriteMsg{id_, target, static_cast<std::uint32_t>(slot),
                          value});
    }
  });
}

}  // namespace dgc
