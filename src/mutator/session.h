// Mutator sessions (Sections 2 and 6).
//
// A session models an application running at a *home* site. It holds
// references in variables — the application roots of Section 6.3: a variable
// naming a local object registers it as a trace root; one naming a remote
// object pins the corresponding outref clean. Operations on remote objects
// are RPCs whose reference-carrying messages drive the transfer barrier at
// the receiving site and the insert barrier for newly created outrefs
// (Section 6.1.2) — the session never touches another site's state directly.
//
// Operations come in two flavors: Start* (asynchronous, completion callback;
// used by the concurrency scenarios of Figures 5 and 6) and blocking-style
// wrappers that drive the scheduler until the operation completes (used by
// examples and straight-line tests; the rest of the world keeps running
// in the meantime).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/ids.h"
#include "core/system.h"

namespace dgc {

class Session {
 public:
  Session(System& system, SiteId home, std::uint64_t id);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] SiteId home() const { return home_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool busy() const { return busy_; }

  // --- Variable management (application roots) -------------------------

  /// Declares that a variable now holds `ref`. Local objects become app
  /// roots; remote references pin their (existing) outrefs.
  void Hold(ObjectId ref);

  /// Drops one hold of `ref`.
  void Release(ObjectId ref);

  /// Drops every hold (also done by the destructor).
  void ReleaseAll();

  /// Forgets every hold without releasing it: the home site crashed, so the
  /// pins and app roots these holds refer to are already gone. Releasing
  /// them normally would unpin state the restarted site never re-created.
  void Abandon();

  [[nodiscard]] bool Holds(ObjectId ref) const {
    return holds_.contains(ref);
  }

  // --- Operations --------------------------------------------------------

  /// Allocates a fresh object at the home site and holds it.
  ObjectId Create(std::size_t slots);

  /// Obtains a reference to a persistent root (name-server lookup) and
  /// holds it. Runs §6.1.2 reference arrival if the root is remote.
  ObjectId LoadRoot(ObjectId root);
  void StartLoadRoot(ObjectId root, std::function<void(ObjectId)> done);

  /// Reads target.slots[slot]; the result (if any) is held. A remote read
  /// transfers `target` to its owner (transfer barrier) and the result back
  /// here (§6.1.2 cases).
  ObjectId Read(ObjectId target, std::size_t slot);
  void StartRead(ObjectId target, std::size_t slot,
                 std::function<void(ObjectId)> done);

  /// Writes `value` (which must be held, or invalid to clear) into
  /// target.slots[slot].
  void Write(ObjectId target, std::size_t slot, ObjectId value);
  void StartWrite(ObjectId target, std::size_t slot, ObjectId value,
                  std::function<void()> done);

 private:
  void RunUntilIdleOp();

  System& system_;
  SiteId home_;
  std::uint64_t id_;
  bool busy_ = false;
  std::map<ObjectId, int> holds_;
};

}  // namespace dgc
