#include "mutator/transaction.h"

#include <algorithm>

#include "common/check.h"
#include "mutator/pump.h"

namespace dgc {

TransactionClient::TransactionClient(System& system, SiteId home,
                                     std::uint64_t id)
    : system_(system), home_(home), id_(id) {
  DGC_CHECK(home < system.site_count());
}

TransactionClient::~TransactionClient() { EndTransaction(); }

void TransactionClient::Hold(ObjectId ref) {
  DGC_CHECK(ref.valid());
  Site& home_site = system_.site(home_);
  const auto it = holds_.find(ref);
  if (it != holds_.end()) {
    // Nested hold: bump the site-side count too, so releases balance.
    if (ref.site == home_) {
      home_site.AddAppRoot(ref);
    } else {
      home_site.PinOutref(ref);
    }
    ++it->second;
    return;
  }
  if (ref.site == home_) {
    home_site.AddAppRoot(ref);
  } else {
    // First arrival of this reference at the client: §6.1.2 cases (possibly
    // a synchronous insert), then the variable pin.
    bool done = false;
    home_site.ReceiveReference(ref, [&] { done = true; });
    PumpUntil(system_, done,
              [&home_site] { home_site.ResendPendingInserts(); });
    home_site.PinOutref(ref);
  }
  holds_.emplace(ref, 1);
}

void TransactionClient::Fetch(ObjectId obj) {
  if (cache_.contains(obj)) return;
  Hold(obj);
  if (obj.site == home_) {
    cache_.emplace(obj, system_.site(home_).heap().Get(obj).slots);
    return;
  }
  bool done = false;
  std::vector<ObjectId> slots;
  system_.site(home_).RegisterFetchContinuation(
      id_, [&](const std::vector<ObjectId>& fetched) {
        slots = fetched;
        done = true;
      });
  system_.network().Send(home_, obj.site, FetchMsg{id_, obj});
  PumpUntil(system_, done, [this, obj] {
    system_.site(home_).ResendPendingInserts();
    system_.network().Send(home_, obj.site, FetchMsg{id_, obj});
  });
  // The serving site retained every reference in the copy on our behalf
  // (§2 sender retention); remember them for release.
  std::vector<ObjectId> pinned;
  for (const ObjectId ref : slots) {
    if (ref.valid()) pinned.push_back(ref);
  }
  if (!pinned.empty()) fetch_pins_.emplace(obj, std::move(pinned));
  cache_.emplace(obj, std::move(slots));
}

ObjectId TransactionClient::ReadCached(ObjectId obj, std::size_t slot) {
  const auto it = cache_.find(obj);
  DGC_CHECK_MSG(it != cache_.end(), "read of unfetched object " << obj);
  DGC_CHECK_MSG(slot < it->second.size(),
                "slot " << slot << " out of range for cached " << obj);
  // Write-log overlay: the latest buffered write to this slot wins.
  ObjectId value = it->second[slot];
  for (const CommitWrite& write : log_) {
    if (write.target == obj && write.slot == slot) value = write.value;
  }
  if (value.valid()) Hold(value);
  return value;
}

void TransactionClient::Write(ObjectId obj, std::size_t slot, ObjectId value) {
  DGC_CHECK_MSG(cache_.contains(obj), "write to unfetched object " << obj);
  DGC_CHECK_MSG(!value.valid() || holds_.contains(value),
                "write of unheld reference "
                    << value << " — fetch, read or create it first");
  log_.push_back(
      CommitWrite{obj, static_cast<std::uint32_t>(slot), value});
}

ObjectId TransactionClient::Create(std::size_t slots) {
  const ObjectId obj = system_.site(home_).heap().Allocate(slots);
  system_.site(home_).AddAppRoot(obj);
  holds_.emplace(obj, 1);
  cache_.emplace(obj, std::vector<ObjectId>(slots, kInvalidObject));
  return obj;
}

void TransactionClient::Commit() {
  if (log_.empty()) return;
  // Group the write log by owning site (the per-owner slices).
  std::map<SiteId, CommitMsg> slices;
  for (const CommitWrite& write : log_) {
    CommitMsg& slice = slices[write.target.site];
    slice.session = id_;
    slice.writes.push_back(write);
  }
  bool done = false;
  std::set<SiteId> owners;
  for (const auto& [owner, slice] : slices) owners.insert(owner);
  system_.site(home_).RegisterCommitContinuation(id_, owners,
                                                 [&] { done = true; });
  for (auto& [owner, slice] : slices) {
    system_.network().Send(home_, owner, CommitMsg(slice));
  }
  PumpUntil(system_, done, [this, &slices] {
    system_.site(home_).ResendPendingInserts();
    for (auto& [owner, slice] : slices) {
      system_.network().Send(home_, owner, CommitMsg(slice));
    }
  });
  // Fold committed writes into the cached copies, then clear the log.
  for (const CommitWrite& write : log_) {
    cache_.at(write.target)[write.slot] = write.value;
  }
  log_.clear();
}

void TransactionClient::Abort() { log_.clear(); }

void TransactionClient::EndTransaction() {
  log_.clear();
  cache_.clear();
  // Release the serving sites' sender-retention pins.
  for (const auto& [obj, refs] : fetch_pins_) {
    for (const ObjectId ref : refs) {
      system_.network().Send(home_, obj.site, PinReleaseMsg{ref});
    }
  }
  fetch_pins_.clear();
  Site& home_site = system_.site(home_);
  for (const auto& [ref, count] : holds_) {
    for (int i = 0; i < count; ++i) {
      if (ref.site == home_) {
        home_site.RemoveAppRoot(ref);
      } else {
        home_site.UnpinOutref(ref);
      }
    }
  }
  holds_.clear();
}

}  // namespace dgc
