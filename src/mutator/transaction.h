// Client-caching transactional mutator — the Thor model the paper was
// designed for (LAC+96), per §6.1.1's closing remark: "In client-caching
// systems where objects from multiple servers may be fetched into a client
// cache, the barrier may be implemented by checking the transaction's
// read-write log at commit time."
//
// A TransactionClient runs at a home site. It *fetches* objects (the fetch
// transfers the reference to the owner — transfer barrier — and pins it at
// the client), reads and writes the cached copies locally (writes buffer in
// a write log and never touch the owners), and *commits* by shipping the
// per-owner slices of the write log; each owner runs the barrier checks over
// the slice's references and applies the writes atomically with respect to
// its own message handling.
//
// Cache coherence is out of scope (as in the paper): a cached slot read is
// valid only while no other client has overwritten that slot since the
// fetch. Refetch after conflicting commits.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "core/system.h"

namespace dgc {

class TransactionClient {
 public:
  TransactionClient(System& system, SiteId home, std::uint64_t id);
  ~TransactionClient();

  TransactionClient(const TransactionClient&) = delete;
  TransactionClient& operator=(const TransactionClient&) = delete;

  [[nodiscard]] SiteId home() const { return home_; }

  /// Fetches an object into the cache (pinning it). Blocking-style: drives
  /// the scheduler until the copy arrives. Idempotent per object.
  void Fetch(ObjectId obj);

  [[nodiscard]] bool IsCached(ObjectId obj) const {
    return cache_.contains(obj);
  }

  /// Reads a slot from the cached copy (write-log overlay applied). A valid
  /// result is pinned so it stays collectable-proof until EndTransaction.
  ObjectId ReadCached(ObjectId obj, std::size_t slot);

  /// Buffers a write in the transaction log; visible to subsequent
  /// ReadCached calls, invisible to everyone else until Commit. `value`
  /// must be fetched/created/read by this client (or invalid to clear).
  void Write(ObjectId obj, std::size_t slot, ObjectId value);

  /// Creates a fresh object at the home site, cached and pinned.
  ObjectId Create(std::size_t slots);

  /// Ships the write log to the owning sites; blocks until every owner has
  /// acknowledged (which includes any insert barriers the new references
  /// required). The log clears; the cache and pins remain.
  void Commit();

  /// Discards buffered writes (cached copies revert to fetched state).
  void Abort();

  /// Drops every pin and the cache (end of the client's session).
  void EndTransaction();

  [[nodiscard]] std::size_t pending_writes() const { return log_.size(); }

 private:
  void Hold(ObjectId ref);  // pin/app-root, blocking for remote case 4

  System& system_;
  SiteId home_;
  std::uint64_t id_;

  /// Fetched copies: object -> slots as of fetch time.
  std::map<ObjectId, std::vector<ObjectId>> cache_;
  /// Sender-retention pins the serving sites hold on our behalf: fetched
  /// object -> the remote references in its served copy. Released (one
  /// message per reference) at EndTransaction.
  std::map<ObjectId, std::vector<ObjectId>> fetch_pins_;
  /// Buffered writes, in program order.
  std::vector<CommitWrite> log_;
  /// Pin/app-root counts per held reference.
  std::map<ObjectId, int> holds_;
};

}  // namespace dgc
