#include "net/messages.h"

#include <array>

#include "common/check.h"

namespace dgc {

namespace {

constexpr std::array<const char*, kPayloadKinds> kNames = {
    "Insert",          "InsertAck",       "Update",
    "BackLocalCall",   "BackRemoteCall",  "BackReply",
    "BackReport",      "BackCallBatch",   "MutatorRead",
    "MutatorReadReply", "MutatorWrite",   "MutatorWriteAck",
    "Fetch",           "FetchReply",      "Commit",
    "CommitAck",       "PinRelease",      "GlobalGcControl",
    "GlobalGcGray",    "TimestampUpdate", "Migrate",
    "Patch",           "ReachabilitySummary", "Condemn",
};

// Rough per-field wire costs: 8 bytes per object id or 64-bit field, 4 bytes
// per site id or small integer, matching the paper's observation that
// protocol messages are "small and can be piggybacked".
constexpr std::size_t kRefBytes = 8;
constexpr std::size_t kSiteBytes = 4;
constexpr std::size_t kHeaderBytes = kEnvelopeHeaderBytes;

struct SizeVisitor {
  std::size_t operator()(const InsertMsg&) const {
    return kHeaderBytes + kRefBytes + 2 * kSiteBytes;
  }
  std::size_t operator()(const InsertAckMsg&) const {
    return kHeaderBytes + kRefBytes + kSiteBytes;
  }
  std::size_t operator()(const UpdateMsg& m) const {
    return kHeaderBytes + m.entries.size() * (kRefBytes + 1 + 4);
  }
  std::size_t operator()(const BackLocalCallMsg&) const {
    return kHeaderBytes + 2 * kRefBytes + 12;
  }
  std::size_t operator()(const BackRemoteCallMsg&) const {
    return kHeaderBytes + 2 * kRefBytes + 12;
  }
  std::size_t operator()(const BackReplyMsg& m) const {
    return kHeaderBytes + kRefBytes + 12 + 1 +
           m.participants.size() * kSiteBytes;
  }
  std::size_t operator()(const BackReportMsg&) const {
    return kHeaderBytes + 8 + 1;
  }
  std::size_t operator()(const BackCallBatchMsg& m) const {
    // One header for the batch; each target pays its field bytes only.
    return kHeaderBytes + m.calls.size() * (2 * kRefBytes + 12);
  }
  std::size_t operator()(const MutatorReadMsg&) const {
    return kHeaderBytes + 8 + kRefBytes + 4;
  }
  std::size_t operator()(const MutatorReadReplyMsg&) const {
    return kHeaderBytes + 8 + kRefBytes;
  }
  std::size_t operator()(const MutatorWriteMsg&) const {
    return kHeaderBytes + 8 + 2 * kRefBytes + 4;
  }
  std::size_t operator()(const MutatorWriteAckMsg&) const {
    return kHeaderBytes + 8;
  }
  std::size_t operator()(const FetchMsg&) const {
    return kHeaderBytes + 8 + kRefBytes;
  }
  std::size_t operator()(const FetchReplyMsg& m) const {
    return kHeaderBytes + 8 + kRefBytes + m.slots.size() * kRefBytes;
  }
  std::size_t operator()(const CommitMsg& m) const {
    return kHeaderBytes + 8 + m.writes.size() * (2 * kRefBytes + 4);
  }
  std::size_t operator()(const CommitAckMsg&) const {
    return kHeaderBytes + 8;
  }
  std::size_t operator()(const PinReleaseMsg&) const {
    return kHeaderBytes + kRefBytes;
  }
  std::size_t operator()(const GlobalGcControlMsg&) const {
    return kHeaderBytes + 9;
  }
  std::size_t operator()(const GlobalGcGrayMsg& m) const {
    return kHeaderBytes + 8 + m.targets.size() * kRefBytes;
  }
  std::size_t operator()(const TimestampUpdateMsg& m) const {
    return kHeaderBytes + 8 + m.entries.size() * (kRefBytes + 8);
  }
  std::size_t operator()(const MigrateMsg& m) const {
    std::size_t total = kHeaderBytes;
    for (const auto& obj : m.objects) {
      total += kRefBytes + 8 + obj.refs.size() * kRefBytes;
    }
    return total;
  }
  std::size_t operator()(const PatchMsg&) const {
    return kHeaderBytes + 2 * kRefBytes;
  }
  std::size_t operator()(const ReachabilitySummaryMsg& m) const {
    std::size_t total = kHeaderBytes + 8 +
                        m.root_reachable_outrefs.size() * kRefBytes;
    for (const auto& info : m.inrefs) {
      total += kRefBytes + 4 + info.outset.size() * kRefBytes;
    }
    return total;
  }
  std::size_t operator()(const CondemnMsg& m) const {
    return kHeaderBytes + 8 + m.inrefs.size() * kRefBytes;
  }
};

}  // namespace

const char* PayloadKindName(std::size_t index) {
  DGC_CHECK(index < kPayloadKinds);
  return kNames[index];
}

std::size_t ApproxWireSize(const Payload& payload) {
  return std::visit(SizeVisitor{}, payload);
}

}  // namespace dgc
