// Message vocabulary of the distributed protocols.
//
// Everything the sites say to each other is one of these structs, carried in
// an Envelope by the simulated Network. The first group implements the
// inter-site reference-listing protocol of Section 2 (insert/update), the
// second group the back-tracing protocol of Section 4, the third group the
// mutator's RPCs (whose reference-carrying fields drive the transfer and
// insert barriers of Section 6), and the last group the baseline collectors
// used as comparators (Section 7).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/distance.h"
#include "common/ids.h"

namespace dgc {

// ---------------------------------------------------------------------------
// Reference-listing protocol (Section 2).

/// Sent by a site that newly holds reference `ref` to the owner of `ref`:
/// "add `new_source` to the source list of inref `ref`". `pinned_site` is the
/// site holding a clean outref pinned by the insert barrier until the owner
/// acknowledges (kInvalidSite when no pin is held). `distance` is the
/// conservative 1 for fresh mutator-held references (Section 3) or the
/// sender's current outref distance for recovery-time re-registrations.
struct InsertMsg {
  ObjectId ref;
  SiteId new_source = kInvalidSite;
  SiteId pinned_site = kInvalidSite;
  Distance distance = 1;
};

/// Owner's acknowledgement of an InsertMsg, releasing the insert-barrier pin.
struct InsertAckMsg {
  ObjectId ref;
  SiteId new_source = kInvalidSite;
};

/// One outref's worth of news in an update message: either the source no
/// longer holds the reference (removed) or its estimated distance changed.
struct UpdateEntry {
  ObjectId ref;
  bool removed = false;
  Distance distance = kDistanceInfinity;
};

/// Sent by a source site to a target site after a local trace (Section 2):
/// dropped outrefs and changed outref distances.
struct UpdateMsg {
  std::vector<UpdateEntry> entries;
};

// ---------------------------------------------------------------------------
// Back tracing (Section 4).

enum class BackResult : std::uint8_t { kGarbage = 0, kLive = 1 };

/// BackStepLocal request: "run a local back step on your outref `ref`",
/// sent by the owner of inref `ref` to one of its source sites. This is the
/// only back-trace message that crosses sites, so each traversed inter-site
/// reference costs exactly one call plus one reply (the 2E term of §4.6).
struct BackLocalCallMsg {
  TraceId trace;
  ObjectId ref;
  FrameId caller;
};

/// BackStepRemote request: "run a remote back step on inref `ref`". Local
/// steps stay on one site, so this is always a self-delivery; it exists as a
/// message only to keep every back step asynchronous and uniformly ordered.
struct BackRemoteCallMsg {
  TraceId trace;
  ObjectId ref;
  FrameId caller;
};

/// Reply to either back-step call. Participants accumulate the ids of all
/// sites reached in the subtree so the initiator can run the report phase.
struct BackReplyMsg {
  TraceId trace;
  FrameId to;
  BackResult result = BackResult::kGarbage;
  std::vector<SiteId> participants;
};

/// Report-phase message from the initiator to every participant (§4.5):
/// on Garbage, flag the inrefs visited by `trace`; on Live, clear the marks.
struct BackReportMsg {
  TraceId trace;
  BackResult outcome = BackResult::kGarbage;
};

/// Multi-target back call: every BackStepLocal request queued for the same
/// destination site during one simulated instant rides one payload instead
/// of one message per (inref, source-site) pair. The targets may belong to
/// different frames and even different traces; the receiver handles each
/// exactly as a standalone BackLocalCallMsg. Batches of one are sent as the
/// plain message, so the per-trace counts of §4.6 are unchanged.
struct BackCallBatchMsg {
  std::vector<BackLocalCallMsg> calls;
};

// ---------------------------------------------------------------------------
// Mutator RPCs (Section 6).
//
// A mutator session "at" a home site operates on remote objects through
// read/write RPCs. Every reference that arrives at a site in one of these
// messages passes through the transfer barrier, and newly created outrefs
// follow the insert barrier (§6.1).

/// Read slot `slot` of object `target`; the reference `target` itself is
/// transferred to its owner (transfer barrier case 1 of §6.1.2).
struct MutatorReadMsg {
  std::uint64_t session = 0;
  ObjectId target;
  std::uint32_t slot = 0;
};

/// Reply carrying the read reference back to the session's home site, where
/// it is received as a transferred reference (cases 1-4 of §6.1.2).
struct MutatorReadReplyMsg {
  std::uint64_t session = 0;
  ObjectId value;  // invalid when the slot was null
};

/// Write `value` into slot `slot` of `target`. Both `target` and `value`
/// arrive at the owner of `target` and pass through the barriers there.
struct MutatorWriteMsg {
  std::uint64_t session = 0;
  ObjectId target;
  std::uint32_t slot = 0;
  ObjectId value;  // invalid to clear the slot
};

/// Completion of a MutatorWriteMsg (sent only after any insert barrier the
/// write triggered has been acknowledged, modelling synchronous inserts).
struct MutatorWriteAckMsg {
  std::uint64_t session = 0;
};

// ---------------------------------------------------------------------------
// Client-caching transactions (the Thor model of §6.1.1's last paragraph:
// barriers are applied by checking the transaction's read-write log at
// commit time).

/// Fetch an object's contents into a client cache. The reference `target`
/// arrives at its owner: transfer barrier.
struct FetchMsg {
  std::uint64_t session = 0;
  ObjectId target;
};

/// The fetched copy: the object's reference slots, cached verbatim.
struct FetchReplyMsg {
  std::uint64_t session = 0;
  ObjectId target;
  std::vector<ObjectId> slots;
};

/// One buffered write of a transaction.
struct CommitWrite {
  ObjectId target;
  std::uint32_t slot = 0;
  ObjectId value;  // invalid clears the slot
};

/// The per-owner slice of a transaction's write log, shipped at commit.
/// Every `target` and `value` reference arrives at the owner: the commit-
/// time barrier check of §6.1.1.
struct CommitMsg {
  std::uint64_t session = 0;
  std::vector<CommitWrite> writes;
};

/// Owner's acknowledgement that its slice is applied (after any insert
/// barriers its new references required).
struct CommitAckMsg {
  std::uint64_t session = 0;
};

/// Releases one sender-retention pin (Section 2: "the sender Q retains its
/// outref for c until R is known to have received the insert message").
/// Sent by the site that received reference `ref` in a read reply or fetch,
/// back to the site that served it, once the reference is safely recorded
/// (or no longer cached).
struct PinReleaseMsg {
  ObjectId ref;
};

// ---------------------------------------------------------------------------
// Baseline collectors (Section 7 comparators).

/// Central-service baseline (Beckerle & Ekanadham / Ladin & Liskov): each
/// site ships its full inref-to-outref reachability to a fixed service site.
/// Note the size: one entry per inref with its complete outset — the space
/// and bandwidth the paper's scheme avoids by computing insets for
/// *suspected* iorefs only.
struct ReachabilitySummaryMsg {
  struct InrefInfo {
    ObjectId inref;
    std::vector<ObjectId> outset;  // outrefs locally reachable from it
  };
  std::uint64_t epoch = 0;
  std::vector<InrefInfo> inrefs;
  /// Outrefs reachable from this site's persistent/application roots.
  std::vector<ObjectId> root_reachable_outrefs;
};

/// Service -> site: these inrefs of yours are part of inter-site garbage;
/// flag them (the next local traces reclaim the cycles).
struct CondemnMsg {
  std::uint64_t epoch = 0;
  std::vector<ObjectId> inrefs;
};

/// Control-plane message of the coordinated global mark-sweep baseline.
struct GlobalGcControlMsg {
  enum class Phase : std::uint8_t {
    kStartMark,   // coordinator -> site: begin marking from your roots
    kProbe,       // coordinator -> site: any marking since the last probe?
    kProbeReply,  // site -> coordinator: value = work since last probe
    kSweep,       // coordinator -> site: marking done everywhere, sweep
    kSweepDone,   // site -> coordinator: value = objects swept
  };
  std::uint64_t epoch = 0;
  Phase phase = Phase::kStartMark;
  std::uint64_t value = 0;
};

/// Cross-site gray propagation for the global mark-sweep baseline: "these
/// objects of yours are reachable; mark them".
struct GlobalGcGrayMsg {
  std::uint64_t epoch = 0;
  std::vector<ObjectId> targets;
};

/// Hughes-style timestamp propagation (one entry per outref) plus the
/// sender's local-trace clock, used to compute the global threshold.
struct TimestampUpdateMsg {
  struct Entry {
    ObjectId ref;
    std::int64_t stamp = 0;
  };
  std::vector<Entry> entries;
  std::int64_t sender_trace_clock = 0;
};

/// Object migration for the migration-based cycle collector (ML95 baseline):
/// the payload carries whole objects (identity plus reference slots).
struct MigrateMsg {
  struct MovedObject {
    ObjectId id;
    std::vector<ObjectId> refs;
  };
  std::vector<MovedObject> objects;
};

/// Reference patch after a migration: every site holding `old_id` must
/// rewrite it to `new_id` (the cost the paper charges migration schemes
/// for "updating references to migrated objects").
struct PatchMsg {
  ObjectId old_id;
  ObjectId new_id;
};

// ---------------------------------------------------------------------------

using Payload =
    std::variant<InsertMsg, InsertAckMsg, UpdateMsg, BackLocalCallMsg,
                 BackRemoteCallMsg, BackReplyMsg, BackReportMsg,
                 BackCallBatchMsg, MutatorReadMsg,
                 MutatorReadReplyMsg, MutatorWriteMsg, MutatorWriteAckMsg,
                 FetchMsg, FetchReplyMsg, CommitMsg, CommitAckMsg,
                 PinReleaseMsg, GlobalGcControlMsg, GlobalGcGrayMsg,
                 TimestampUpdateMsg, MigrateMsg, PatchMsg,
                 ReachabilitySummaryMsg, CondemnMsg>;

inline constexpr std::size_t kPayloadKinds = std::variant_size_v<Payload>;

/// Per-wire-message framing overhead assumed by ApproxWireSize. When the
/// network batches several payloads into one wire message (piggybacking,
/// §4.6), the batch pays this once instead of per payload.
inline constexpr std::size_t kEnvelopeHeaderBytes = 16;

/// Human-readable payload-type name, indexed by Payload::index().
const char* PayloadKindName(std::size_t index);

/// Approximate wire size in bytes, for bandwidth accounting in benches.
std::size_t ApproxWireSize(const Payload& payload);

/// A message in flight.
struct Envelope {
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;
  Payload payload;
};

}  // namespace dgc
