// Bounded multi-producer single-consumer queue for the threaded transport's
// per-site inboxes.
//
// The engine's strict phase alternation means the common case is even
// narrower than MPSC — the coordinator is the only producer (control phase)
// and the owning site thread the only consumer (parallel phase), never
// concurrently — but the queue is built to the full MPSC contract so the
// invariant is belt-and-braces rather than load-bearing, and so the data-race
// smoke test can hammer it from many threads at once.
//
// Bounding is soft: a Push past `soft_capacity` is admitted and *counted*
// (overflows) instead of blocking. A hard bound would let a full inbox block
// the delivering coordinator inside a barrier phase and deadlock the engine;
// the overflow counter is the back-pressure signal instead, surfaced through
// TransportCounters / SiteStats / inspect.
//
// Counter discipline: pushes/pops/peak_depth/overflows are guarded by the
// queue mutex; contention (try_lock misses) is an atomic because it is
// recorded while NOT holding the lock. The size mirror is an atomic so the
// coordinator's Empty() polls between phases never take the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace dgc {

template <typename T>
class MpscQueue {
 public:
  struct Stats {
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t peak_depth = 0;  // max items resident at once
    std::uint64_t contention = 0;  // lock acquisitions that had to wait
    std::uint64_t overflows = 0;   // pushes past the soft capacity bound
  };

  /// soft_capacity 0 = unbounded (no overflow counting).
  explicit MpscQueue(std::size_t soft_capacity = 0)
      : soft_capacity_(soft_capacity) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  void Push(T value) {
    std::unique_lock<std::mutex> lock = Acquire();
    items_.push_back(std::move(value));
    ++stats_.pushes;
    const std::size_t depth = items_.size();
    if (depth > stats_.peak_depth) stats_.peak_depth = depth;
    if (soft_capacity_ > 0 && depth > soft_capacity_) ++stats_.overflows;
    size_.store(depth, std::memory_order_release);
  }

  /// Pops the oldest item into `out`; false when empty. FIFO per producer
  /// (and globally, under the engine's single-producer phases — which is
  /// what keeps per-site delivery order identical to the simulator's).
  bool TryPop(T& out) {
    std::unique_lock<std::mutex> lock = Acquire();
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    size_.store(items_.size(), std::memory_order_release);
    return true;
  }

  /// Lock-free size mirror: exact between phases (quiescent producers),
  /// approximate only while pushes race it — good enough for the
  /// coordinator's involvement scan and the depth counters.
  [[nodiscard]] bool Empty() const {
    return size_.load(std::memory_order_acquire) == 0;
  }
  [[nodiscard]] std::size_t depth() const {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] Stats stats() const {
    std::unique_lock<std::mutex> lock(mu_);
    Stats snapshot = stats_;
    snapshot.contention = contention_.load(std::memory_order_relaxed);
    return snapshot;
  }

 private:
  [[nodiscard]] std::unique_lock<std::mutex> Acquire() const {
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
      contention_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    return lock;
  }

  const std::size_t soft_capacity_;
  mutable std::mutex mu_;
  std::deque<T> items_;
  Stats stats_;  // guarded by mu_ (except contention)
  mutable std::atomic<std::uint64_t> contention_{0};
  std::atomic<std::size_t> size_{0};
};

}  // namespace dgc
