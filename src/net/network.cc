#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace dgc {

Network::Network(Scheduler& scheduler, NetworkConfig config, Rng rng)
    : scheduler_(scheduler), config_(config), rng_(rng) {
  DGC_CHECK(config_.latency >= 0);
  DGC_CHECK(config_.latency_jitter >= 0);
  DGC_CHECK(config_.drop_probability >= 0.0 && config_.drop_probability <= 1.0);
}

void Network::RegisterSite(SiteId site, Handler handler) {
  DGC_CHECK(handler != nullptr);
  const bool inserted = handlers_.emplace(site, std::move(handler)).second;
  DGC_CHECK_MSG(inserted, "site " << site << " registered twice");
}

void Network::Send(SiteId from, SiteId to, Payload payload) {
  DGC_CHECK_MSG(handlers_.contains(to), "send to unregistered site " << to);

  Envelope envelope{from, to, std::move(payload)};

  if (from == to) {
    // Intra-site asynchrony: delivered on the next tick, immune to faults,
    // not counted as network traffic.
    ++stats_.self_deliveries;
    ++in_flight_;
    scheduler_.After(0, [this, envelope = std::move(envelope)]() mutable {
      Deliver(std::move(envelope));
    });
    return;
  }

  ++stats_.inter_site_sent;
  ++stats_.per_kind[envelope.payload.index()];
  stats_.approx_bytes += ApproxWireSize(envelope.payload);
  ++in_flight_;  // until delivered or dropped (including while batched)

  if (config_.batch_window > 0) {
    // Piggybacking: hold the payload briefly; everything queued on this
    // channel ships as one wire message when the window closes.
    PendingBatch& batch = pending_batches_[ChannelKey(from, to)];
    batch.envelopes.push_back(std::move(envelope));
    if (batch.envelopes.size() == 1) {
      scheduler_.After(config_.batch_window,
                       [this, from, to] { FlushChannel(from, to); });
    }
    return;
  }
  ShipBatch(from, to, {std::move(envelope)});
}

void Network::FlushChannel(SiteId from, SiteId to) {
  const auto it = pending_batches_.find(ChannelKey(from, to));
  if (it == pending_batches_.end()) return;
  std::vector<Envelope> batch = std::move(it->second.envelopes);
  // The window closed and the channel went quiet: erase the entry rather
  // than parking an empty slot forever — Send re-creates it (and re-arms the
  // flush timer) on the channel's next payload, so long-running sims track
  // active channels instead of every pair that ever talked.
  pending_batches_.erase(it);
  if (batch.empty()) return;
  ShipBatch(from, to, std::move(batch));
}

void Network::ShipBatch(SiteId from, SiteId to, std::vector<Envelope> batch) {
  DGC_CHECK(!batch.empty());
  ++stats_.wire_messages;
  std::size_t payload_bytes = 0;
  for (const Envelope& envelope : batch) {
    payload_bytes += ApproxWireSize(envelope.payload) - kEnvelopeHeaderBytes;
  }
  stats_.wire_bytes += kEnvelopeHeaderBytes + payload_bytes;

  // Faults and loss hit the wire message as a whole. Look the link up with
  // find(): operator[] would insert an entry for every channel ever used,
  // growing the map with traffic instead of with explicitly severed links.
  const auto link_it = link_down_.find(LinkKey(from, to));
  const bool faulted = IsSiteDown(from) || IsSiteDown(to) ||
                       (link_it != link_down_.end() && link_it->second);
  if (faulted || (config_.drop_probability > 0.0 &&
                  rng_.NextBool(config_.drop_probability))) {
    stats_.dropped += batch.size();
    DGC_CHECK(in_flight_ >= batch.size());
    in_flight_ -= batch.size();
    DGC_LOG_TRACE("net: drop batch of " << batch.size() << " s" << from
                                        << "->s" << to);
    return;
  }

  SimTime latency = config_.latency;
  if (config_.latency_jitter > 0) {
    latency += static_cast<SimTime>(
        rng_.NextBelow(static_cast<std::uint64_t>(config_.latency_jitter) + 1));
  }
  // Amortized purge of inert FIFO-clamp entries: a channel whose last
  // delivery is in the past can never lift max(now + latency, last), so its
  // entry is dead weight until the channel speaks again.
  if (stats_.wire_messages % kChannelPurgePeriod == 0) {
    const SimTime now = scheduler_.now();
    std::erase_if(channel_last_delivery_,
                  [now](const auto& entry) { return entry.second <= now; });
  }

  // Clamp to preserve per-channel FIFO order (assumption R1 of Section 6.4).
  SimTime& last = channel_last_delivery_[ChannelKey(from, to)];
  const SimTime deliver_at = std::max(scheduler_.now() + latency, last);
  last = deliver_at;

  scheduler_.At(deliver_at, [this, batch = std::move(batch)]() mutable {
    for (Envelope& envelope : batch) {
      Deliver(std::move(envelope));
    }
  });
}

void Network::SetSiteDown(SiteId site, bool down) { site_down_[site] = down; }

bool Network::IsSiteDown(SiteId site) const {
  const auto it = site_down_.find(site);
  return it != site_down_.end() && it->second;
}

void Network::SetLinkDown(SiteId a, SiteId b, bool down) {
  link_down_[LinkKey(a, b)] = down;
}

void Network::Deliver(Envelope envelope) {
  DGC_CHECK(in_flight_ > 0);
  --in_flight_;
  // A site that crashed after the message was scheduled still loses it.
  if (envelope.from != envelope.to && IsSiteDown(envelope.to)) {
    ++stats_.dropped;
    return;
  }
  if (envelope.from != envelope.to) ++stats_.inter_site_delivered;
  DGC_LOG_TRACE("net: deliver " << PayloadKindName(envelope.payload.index())
                                << " s" << envelope.from << "->s"
                                << envelope.to);
  handlers_.at(envelope.to)(envelope);
}

}  // namespace dgc
