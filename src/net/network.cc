#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace dgc {

Network::Network(Scheduler& scheduler, NetworkConfig config, Rng rng)
    : scheduler_(scheduler), config_(config), rng_(rng) {
  DGC_CHECK(config_.latency >= 0);
  DGC_CHECK(config_.latency_jitter >= 0);
  DGC_CHECK(config_.drop_probability >= 0.0 && config_.drop_probability <= 1.0);
  DGC_CHECK(config_.retransmit_base >= 0);
  DGC_CHECK(config_.max_retransmit_attempts >= 1);
  DGC_CHECK(config_.heartbeat_period >= 0);
  DGC_CHECK(config_.heartbeat_timeout >= 0);
}

void Network::RegisterSite(SiteId site, Handler handler) {
  DGC_CHECK(handler != nullptr);
  if (handlers_.size() <= site) {
    handlers_.resize(static_cast<std::size_t>(site) + 1);
  }
  DGC_CHECK_MSG(handlers_[site] == nullptr, "site " << site
                                                    << " registered twice");
  handlers_[site] = std::move(handler);
}

void Network::Send(SiteId from, SiteId to, Payload payload) {
  DGC_CHECK_MSG(to < handlers_.size() && handlers_[to] != nullptr,
                "send to unregistered site " << to);

  Envelope envelope{from, to, std::move(payload)};

  if (from == to) {
    // Intra-site asynchrony: delivered on the next tick, immune to faults,
    // not counted as network traffic.
    ++stats_.self_deliveries;
    ++in_flight_;
    scheduler_.After(0, [this, envelope = std::move(envelope)]() mutable {
      Deliver(std::move(envelope));
    });
    return;
  }

  ++stats_.inter_site_sent;
  ++stats_.per_kind[envelope.payload.index()];
  stats_.approx_bytes += ApproxWireSize(envelope.payload);
  ++in_flight_;  // until delivered or dropped (including while batched)

  if (config_.batch_window > 0) {
    // Piggybacking: hold the payload briefly; everything queued on this
    // channel ships as one wire message when the window closes.
    auto [it, created] = Shard(pending_batches_, from).try_emplace(to);
    PendingBatch& batch = it->second;
    if (created) batch.envelopes = AcquireBatchBuffer();
    batch.envelopes.push_back(std::move(envelope));
    if (batch.envelopes.size() == 1) {
      scheduler_.After(config_.batch_window,
                       [this, from, to] { FlushChannel(from, to); });
    }
    return;
  }
  std::vector<Envelope> batch = AcquireBatchBuffer();
  batch.push_back(std::move(envelope));
  ShipBatch(from, to, std::move(batch));
}

void Network::FlushChannel(SiteId from, SiteId to) {
  auto& shard = Shard(pending_batches_, from);
  const auto it = shard.find(to);
  if (it == shard.end()) return;
  std::vector<Envelope> batch = std::move(it->second.envelopes);
  // The window closed and the channel went quiet: erase the entry rather
  // than parking an empty slot forever — Send re-creates it (and re-arms the
  // flush timer) on the channel's next payload, so long-running sims track
  // active channels instead of every pair that ever talked.
  shard.erase(it);
  if (batch.empty()) {
    ReleaseBatchBuffer(std::move(batch));
    return;
  }
  ShipBatch(from, to, std::move(batch));
}

std::vector<Envelope> Network::AcquireBatchBuffer() {
  if (batch_pool_.empty()) return {};
  std::vector<Envelope> buffer = std::move(batch_pool_.back());
  batch_pool_.pop_back();
  ++batch_pool_hits_;
  return buffer;
}

void Network::ReleaseBatchBuffer(std::vector<Envelope>&& buffer) {
  buffer.clear();
  // Bounded: past this the extra buffers' allocations are not worth keeping.
  if (batch_pool_.size() < 1024) batch_pool_.push_back(std::move(buffer));
}

SimTime Network::DrawLatency() {
  SimTime latency = config_.latency + extra_latency_;
  if (config_.latency_jitter > 0) {
    latency += static_cast<SimTime>(
        rng_.NextBelow(static_cast<std::uint64_t>(config_.latency_jitter) + 1));
  }
  return latency;
}

bool Network::TransmissionLost(SiteId from, SiteId to) {
  // Faults and loss hit the wire message as a whole.
  const bool faulted = IsSiteDown(from) || IsSiteDown(to) ||
                       link_down_.contains(LinkKey(from, to));
  const double drop = effective_drop_probability();
  return faulted || (drop > 0.0 && rng_.NextBool(drop));
}

void Network::ShipBatch(SiteId from, SiteId to, std::vector<Envelope> batch) {
  DGC_CHECK(!batch.empty());
  ++stats_.wire_messages;
  std::size_t payload_bytes = 0;
  for (const Envelope& envelope : batch) {
    payload_bytes += ApproxWireSize(envelope.payload) - kEnvelopeHeaderBytes;
  }
  stats_.wire_bytes += kEnvelopeHeaderBytes + payload_bytes;

  if (config_.reliable_delivery) {
    // Enroll in the channel's retransmit queue; the entry is retired by a
    // cumulative ack (delivered), attempt exhaustion or an incarnation
    // purge (dropped).
    SenderChannel& channel = Shard(sender_channels_, from)[to];
    if (channel.epoch == 0) channel.epoch = next_channel_epoch_++;
    channel.unacked.push_back(SenderEntry{channel.next_seq++, std::move(batch),
                                          incarnation(from), incarnation(to),
                                          0});
    TransmitWire(from, to, channel.unacked.back());
    ArmRetransmitTimer(from, to);
    return;
  }

  if (TransmissionLost(from, to)) {
    stats_.dropped += batch.size();
    DGC_CHECK(in_flight_ >= batch.size());
    in_flight_ -= batch.size();
    DGC_LOG_TRACE("net: drop batch of " << batch.size() << " s" << from
                                        << "->s" << to);
    ReleaseBatchBuffer(std::move(batch));
    return;
  }

  const SimTime latency = DrawLatency();
  // Amortized purge of inert FIFO-clamp entries: a channel whose last
  // delivery is in the past can never lift max(now + latency, last), so its
  // entry is dead weight until the channel speaks again. The trigger is
  // global (every shard is swept) so a shard whose sender went quiet is
  // still purged by other sites' traffic.
  if (stats_.wire_messages % kChannelPurgePeriod == 0) {
    PurgeInertClampEntries();
  }

  // Clamp to preserve per-channel FIFO order (assumption R1 of Section 6.4).
  SimTime& last = Shard(channel_last_delivery_, from)[to];
  const SimTime deliver_at = std::max(scheduler_.now() + latency, last);
  last = deliver_at;

  scheduler_.At(deliver_at, [this, batch = std::move(batch)]() mutable {
    for (Envelope& envelope : batch) {
      Deliver(std::move(envelope));
    }
    ReleaseBatchBuffer(std::move(batch));
  });
}

// --- Parallel staged-send replay -------------------------------------------

void Network::ReserveSenderShards(std::size_t site_count) {
  if (channel_last_delivery_.size() < site_count) {
    channel_last_delivery_.resize(site_count);
  }
}

void Network::PrepareSend(SiteId from, SiteId to, Payload payload,
                          ReplayShard& shard) {
  DGC_CHECK_MSG(to < handlers_.size() && handlers_[to] != nullptr,
                "send to unregistered site " << to);
  Envelope envelope{from, to, std::move(payload)};

  if (from == to) {
    ++shard.stats.self_deliveries;
    ++shard.admitted;
    shard.prepared.push_back(PreparedSend{std::move(envelope), 0, true});
    return;
  }

  ++shard.stats.inter_site_sent;
  ++shard.stats.per_kind[envelope.payload.index()];
  const std::size_t wire_size = ApproxWireSize(envelope.payload);
  shard.stats.approx_bytes += wire_size;
  // SupportsParallelReplay implies batch_window == 0: every payload is its
  // own wire message, so the batch-of-one ShipBatch accounting collapses to
  // the payload's own wire size.
  ++shard.stats.wire_messages;
  shard.stats.wire_bytes += wire_size;

  // The fault decision reads state only the quiescent coordinator mutates
  // (down-sets, chaos overrides); with zero effective drop probability no
  // RNG is drawn, exactly as in the serial path.
  const bool faulted = IsSiteDown(from) || IsSiteDown(to) ||
                       link_down_.contains(LinkKey(from, to));
  if (faulted) {
    ++shard.stats.dropped;
    return;
  }

  // Zero jitter: DrawLatency without the RNG draw. The FIFO clamp mutates
  // only this sender's pre-reserved shard, so distinct senders never touch
  // the same entry.
  const SimTime latency = config_.latency + extra_latency_;
  DGC_CHECK(from < channel_last_delivery_.size());
  SimTime& last = channel_last_delivery_[from][to];
  const SimTime deliver_at = std::max(scheduler_.now() + latency, last);
  last = deliver_at;
  ++shard.admitted;
  shard.prepared.push_back(PreparedSend{std::move(envelope), deliver_at, false});
}

void Network::CommitPrepared(ReplayShard& shard) {
  const std::uint64_t purge_marks = stats_.wire_messages / kChannelPurgePeriod;
  stats_.inter_site_sent += shard.stats.inter_site_sent;
  stats_.dropped += shard.stats.dropped;
  stats_.self_deliveries += shard.stats.self_deliveries;
  stats_.approx_bytes += shard.stats.approx_bytes;
  stats_.wire_messages += shard.stats.wire_messages;
  stats_.wire_bytes += shard.stats.wire_bytes;
  for (std::size_t k = 0; k < kPayloadKinds; ++k) {
    stats_.per_kind[k] += shard.stats.per_kind[k];
  }
  in_flight_ += shard.admitted;

  for (PreparedSend& send : shard.prepared) {
    if (send.self) {
      scheduler_.After(0,
                       [this, envelope = std::move(send.envelope)]() mutable {
                         Deliver(std::move(envelope));
                       });
      continue;
    }
    std::vector<Envelope> batch = AcquireBatchBuffer();
    batch.push_back(std::move(send.envelope));
    scheduler_.At(send.deliver_at, [this, batch = std::move(batch)]() mutable {
      for (Envelope& envelope : batch) {
        Deliver(std::move(envelope));
      }
      ReleaseBatchBuffer(std::move(batch));
    });
  }

  shard.prepared.clear();
  shard.stats = NetworkStats{};
  shard.admitted = 0;
  // The serial path purges mid-stream every kChannelPurgePeriod wire
  // messages; purging at the commit boundary instead is neutral (an inert
  // entry can never raise a future clamp) and keeps PrepareSend read-only
  // on other senders' shards.
  if (stats_.wire_messages / kChannelPurgePeriod != purge_marks) {
    PurgeInertClampEntries();
  }
}

void Network::PurgeInertClampEntries() {
  const SimTime now = scheduler_.now();
  for (auto& shard : channel_last_delivery_) {
    shard.erase_if([now](const auto& entry) { return entry.second <= now; });
  }
}

// --- Reliable channels -----------------------------------------------------

SimTime Network::RetransmitBase() const {
  if (config_.retransmit_base > 0) return config_.retransmit_base;
  // Just past one worst-case round trip: an ack already in flight usually
  // beats the timer, so a healthy channel rarely retransmits.
  return 2 * (config_.latency + config_.latency_jitter) +
         config_.batch_window + 1;
}

void Network::TransmitWire(SiteId from, SiteId to, SenderEntry& entry) {
  ++entry.attempts;
  if (entry.attempts > 1) {
    ++stats_.retransmits;
    ++stats_.wire_messages;  // first attempt was counted by ShipBatch
    std::size_t payload_bytes = 0;
    for (const Envelope& envelope : entry.envelopes) {
      payload_bytes += ApproxWireSize(envelope.payload) - kEnvelopeHeaderBytes;
    }
    stats_.wire_bytes += kEnvelopeHeaderBytes + payload_bytes;
  }
  if (TransmissionLost(from, to)) {
    // Recoverable: the retransmit timer covers it.
    ++stats_.transmissions_lost;
    DGC_LOG_TRACE("net: lose transmission seq " << entry.seq << " s" << from
                                                << "->s" << to << " (attempt "
                                                << entry.attempts << ")");
    return;
  }
  const SimTime latency = DrawLatency();
  if (stats_.wire_messages % kChannelPurgePeriod == 0) {
    PurgeInertClampEntries();
  }
  // The R1 FIFO clamp applies to every transmission; sequence numbers then
  // restore order across retransmissions the clamp cannot see.
  SimTime& last = Shard(channel_last_delivery_, from)[to];
  const SimTime deliver_at = std::max(scheduler_.now() + latency, last);
  last = deliver_at;
  // Oldest outstanding seq at transmission time: everything below it is
  // delivered or abandoned, so the receiver may skip past gaps below it
  // (otherwise one exhausted retransmit budget wedges the channel forever).
  auto& sender_shard = Shard(sender_channels_, from);
  const auto channel_it = sender_shard.find(to);
  const std::uint64_t base_seq =
      channel_it != sender_shard.end() && !channel_it->second.unacked.empty()
          ? channel_it->second.unacked.front().seq
          : entry.seq;
  scheduler_.At(deliver_at,
                [this, from, to, seq = entry.seq, base_seq,
                 from_inc = entry.from_inc, to_inc = entry.to_inc,
                 envelopes = entry.envelopes]() mutable {
                  OnWireArrival(from, to, seq, base_seq, from_inc, to_inc,
                                std::move(envelopes));
                });
}

void Network::ArmRetransmitTimer(SiteId from, SiteId to) {
  auto& shard = Shard(sender_channels_, from);
  const auto it = shard.find(to);
  if (it == shard.end()) return;
  SenderChannel& channel = it->second;
  if (channel.timer_armed || channel.unacked.empty()) return;
  channel.timer_armed = true;
  // Exponential backoff on the oldest entry's attempt count, plus
  // deterministic jitter so colliding channels desynchronize.
  const int attempts = channel.unacked.front().attempts;
  const int shift = std::min(attempts > 0 ? attempts - 1 : 0, 10);
  SimTime delay = RetransmitBase() << shift;
  delay += static_cast<SimTime>(
      rng_.NextBelow(static_cast<std::uint64_t>(delay / 4) + 1));
  scheduler_.After(delay, [this, from, to, epoch = channel.epoch] {
    auto& timer_shard = Shard(sender_channels_, from);
    const auto timer_it = timer_shard.find(to);
    if (timer_it == timer_shard.end() || timer_it->second.epoch != epoch) {
      return;  // channel purged (restart) since the timer was armed
    }
    SenderChannel& ch = timer_it->second;
    ch.timer_armed = false;
    // Abandon entries out of attempts (permanent drop: the protocol
    // timeouts recover exactly as for an unreliable loss). The front is
    // always the most-attempted entry, so popping from the front suffices.
    while (!ch.unacked.empty() &&
           ch.unacked.front().attempts >= config_.max_retransmit_attempts) {
      ++stats_.retransmits_exhausted;
      RetireEntry(ch.unacked.front(), /*delivered=*/false);
      ch.unacked.pop_front();
    }
    for (SenderEntry& entry : ch.unacked) {
      TransmitWire(from, to, entry);
    }
    ArmRetransmitTimer(from, to);
  });
}

void Network::AdvanceReceiverTo(SiteId from, SiteId to,
                                std::uint64_t base_seq) {
  // The sender vouches that every seq below base_seq is delivered or
  // abandoned. Deliver any stashed in-order messages below it, skip the
  // abandoned gaps, and move next_expected up so the channel cannot wait
  // forever for a wire message nobody will retransmit. Handlers may send
  // (mutating receiver state), so re-find the channel after each batch.
  for (;;) {
    ReceiverChannel& channel = Shard(receiver_channels_, from)[to];
    if (channel.next_expected >= base_seq) return;
    const auto next = channel.stashed.begin();
    if (next == channel.stashed.end() || next->first >= base_seq) {
      channel.next_expected = base_seq;
      return;
    }
    channel.next_expected = next->first + 1;
    std::vector<Envelope> envelopes = std::move(next->second);
    channel.stashed.erase(next);
    for (Envelope& envelope : envelopes) {
      ++stats_.inter_site_delivered;
      Dispatch(std::move(envelope));
    }
  }
}

void Network::OnWireArrival(SiteId from, SiteId to, std::uint64_t seq,
                            std::uint64_t base_seq, std::uint32_t from_inc,
                            std::uint32_t to_inc,
                            std::vector<Envelope> envelopes) {
  if (IsSiteDown(to)) {
    // Arrived at a crashed receiver: lost, but the sender entry survives and
    // retransmission resumes delivery after the restart (or the incarnation
    // purge dead-letters it).
    ++stats_.transmissions_lost;
    return;
  }
  if (from_inc != incarnation(from) || to_inc != incarnation(to)) {
    // Pre-restart traffic addressed to (or sent by) a dead incarnation must
    // not corrupt the scrubbed post-restart state (visited marks were
    // cleared; a stale back call could resurrect a completed trace's
    // frame). The matching sender entry was purged by NoteSiteRestarted, so
    // nothing keeps retransmitting this.
    ++stats_.stale_incarnation_rejected;
    DGC_LOG_TRACE("net: reject stale incarnation seq " << seq << " s" << from
                                                       << "->s" << to);
    return;
  }
  if (base_seq > Shard(receiver_channels_, from)[to].next_expected) {
    AdvanceReceiverTo(from, to, base_seq);
  }
  {
    ReceiverChannel& channel = Shard(receiver_channels_, from)[to];
    if (seq < channel.next_expected) {
      // Duplicate of an already delivered wire message (its ack was lost).
      // Discard, but re-ack so the sender stops retransmitting.
      ++stats_.dup_suppressed;
      SendAck(from, to);
      return;
    }
    if (seq > channel.next_expected) {
      // Out of order: stash until the gap fills, preserving R1's FIFO
      // delivery. emplace keeps the first copy if a duplicate races in.
      if (!channel.stashed.emplace(seq, std::move(envelopes)).second) {
        ++stats_.dup_suppressed;
      }
      SendAck(from, to);
      return;
    }
  }
  // In order: deliver it plus any stash the gap was holding back. Handlers
  // may send messages (mutating sender state), so re-find the receiver
  // channel after each batch instead of holding a reference across calls.
  for (;;) {
    Shard(receiver_channels_, from)[to].next_expected = seq + 1;
    for (Envelope& envelope : envelopes) {
      ++stats_.inter_site_delivered;
      Dispatch(std::move(envelope));
    }
    ReceiverChannel& channel = Shard(receiver_channels_, from)[to];
    const auto next = channel.stashed.find(channel.next_expected);
    if (next == channel.stashed.end()) break;
    seq = next->first;
    envelopes = std::move(next->second);
    channel.stashed.erase(next);
  }
  SendAck(from, to);
}

void Network::SendAck(SiteId from, SiteId to) {
  // Cumulative ack for data channel (from -> to), sent to -> from: "I have
  // delivered every wire message with seq < cumulative." Control frames
  // ride the same lossy medium but are not themselves retransmitted — the
  // ack after the next (re)transmission repairs a lost one.
  const std::uint64_t cumulative =
      Shard(receiver_channels_, from)[to].next_expected;
  ++stats_.acks_sent;
  ++stats_.wire_messages;
  stats_.wire_bytes += kEnvelopeHeaderBytes;
  if (TransmissionLost(to, from)) {
    ++stats_.transmissions_lost;
    return;
  }
  const SimTime deliver_at = scheduler_.now() + DrawLatency();
  // No FIFO clamp: cumulative acks are order-insensitive (a late smaller
  // ack is a no-op at the sender).
  scheduler_.At(deliver_at, [this, from, to, cumulative,
                             from_inc = incarnation(from),
                             to_inc = incarnation(to)] {
    OnAckArrival(from, to, cumulative, from_inc, to_inc);
  });
}

void Network::OnAckArrival(SiteId from, SiteId to, std::uint64_t cumulative,
                           std::uint32_t from_inc, std::uint32_t to_inc) {
  if (from_inc != incarnation(from) || to_inc != incarnation(to)) {
    // A restart reset the channel's sequence space; an old ack could
    // otherwise retire fresh entries that happen to reuse low seqs.
    return;
  }
  auto& shard = Shard(sender_channels_, from);
  const auto it = shard.find(to);
  if (it == shard.end()) return;
  SenderChannel& channel = it->second;
  while (!channel.unacked.empty() &&
         channel.unacked.front().seq < cumulative) {
    RetireEntry(channel.unacked.front(), /*delivered=*/true);
    channel.unacked.pop_front();
  }
}

void Network::RetireEntry(SenderEntry& entry, bool delivered) {
  DGC_CHECK(in_flight_ >= entry.envelopes.size());
  in_flight_ -= entry.envelopes.size();
  if (!delivered) stats_.dropped += entry.envelopes.size();
  ReleaseBatchBuffer(std::move(entry.envelopes));
}

std::size_t Network::unacked_wire_messages() const {
  std::size_t total = 0;
  for (const auto& shard : sender_channels_) {
    for (const auto& [to, channel] : shard) {
      (void)to;
      total += channel.unacked.size();
    }
  }
  return total;
}

std::size_t Network::pending_batch_channels() const {
  std::size_t total = 0;
  for (const auto& shard : pending_batches_) total += shard.size();
  return total;
}

std::size_t Network::channel_clamp_entries() const {
  std::size_t total = 0;
  for (const auto& shard : channel_last_delivery_) total += shard.size();
  return total;
}

// --- Incarnations ----------------------------------------------------------

std::uint32_t Network::incarnation(SiteId site) const {
  return site < incarnations_.size() ? incarnations_[site] : 0;
}

void Network::NoteSiteRestarted(SiteId site) {
  if (incarnations_.size() <= site) {
    incarnations_.resize(static_cast<std::size_t>(site) + 1, 0);
  }
  ++incarnations_[site];
  // If the restart happened inside a tracked outage, tag the fault record:
  // the eventual recovery notification then tells observers the peer is a
  // new incarnation (everything volatile it held is gone for certain).
  if (failure_detection_enabled()) {
    const auto it = site_fault_records_.find(site);
    if (it != site_fault_records_.end() && it->second.down) {
      it->second.restarted_during_outage = true;
    }
  }
  // The dead incarnation's recovery subscription dies with the rest of its
  // connection state — without this, a long run with restarting sites grows
  // the listener map with stale closures. The new incarnation re-registers
  // (Site::CrashRestart does so immediately after this call).
  recovery_listeners_.erase(site);
  if (!config_.reliable_delivery) return;
  // The restarted process shares no transport state with its previous life:
  // dead-letter every channel touching the site, in both directions. Wire
  // messages already in the scheduler still arrive, but carry the old
  // incarnation and are rejected; with their sender entries gone, nothing
  // retransmits them. Sharding makes this O(sites), not O(all channel
  // pairs): the site's own shard, plus its key in every other shard.
  if (site < sender_channels_.size()) {
    for (auto& [to, channel] : sender_channels_[site]) {
      (void)to;
      for (SenderEntry& entry : channel.unacked) {
        RetireEntry(entry, /*delivered=*/false);
      }
    }
    sender_channels_[site].clear();
  }
  for (SiteId from = 0; from < sender_channels_.size(); ++from) {
    if (from == site) continue;
    auto& shard = sender_channels_[from];
    const auto it = shard.find(site);
    if (it == shard.end()) continue;
    for (SenderEntry& entry : it->second.unacked) {
      RetireEntry(entry, /*delivered=*/false);
    }
    shard.erase(it);
  }
  // Stashed receiver payloads were never delivered, so their sender entries
  // (just retired above when the sender or receiver is `site`) carried the
  // in-flight account; the stash itself holds none.
  if (site < receiver_channels_.size()) receiver_channels_[site].clear();
  for (SiteId from = 0; from < receiver_channels_.size(); ++from) {
    if (from == site) continue;
    receiver_channels_[from].erase(site);
  }
}

// --- Faults and failure detection ------------------------------------------

void Network::SetSiteDown(SiteId site, bool down) {
  if (down) {
    if (!site_down_.insert(site).second) return;  // already down
    if (failure_detection_enabled()) {
      FaultRecord& record = site_fault_records_[site];
      record.down = true;
      record.down_since = scheduler_.now();
    }
  } else {
    if (site_down_.erase(site) == 0) return;  // was not down
    if (failure_detection_enabled()) {
      HealRecord(site_fault_records_[site], site, kInvalidSite);
    }
  }
}

bool Network::IsSiteDown(SiteId site) const {
  return site_down_.contains(site);
}

void Network::SetLinkDown(SiteId a, SiteId b, bool down) {
  const std::uint64_t key = LinkKey(a, b);
  if (down) {
    if (!link_down_.insert(key).second) return;
    if (failure_detection_enabled()) {
      FaultRecord& record = link_fault_records_[key];
      record.down = true;
      record.down_since = scheduler_.now();
    }
  } else {
    if (link_down_.erase(key) == 0) return;
    if (failure_detection_enabled()) {
      HealRecord(link_fault_records_[key], a, b);
    }
  }
}

bool Network::IsLinkDown(SiteId a, SiteId b) const {
  return link_down_.contains(LinkKey(a, b));
}

bool Network::RecordSuspected(const FaultRecord& record, SimTime now) const {
  if (record.down) return now - record.down_since >= SuspectAfter();
  // Healed, but the detector has not seen a fresh heartbeat yet.
  return record.healed_at >= 0 && record.last_stretch >= SuspectAfter() &&
         now < record.healed_at + RecoverDelay();
}

bool Network::IsPeerSuspected(SiteId observer, SiteId peer) const {
  if (!failure_detection_enabled()) return false;
  const SimTime now = scheduler_.now();
  const auto site_it = site_fault_records_.find(peer);
  if (site_it != site_fault_records_.end() &&
      RecordSuspected(site_it->second, now)) {
    return true;
  }
  const auto link_it = link_fault_records_.find(LinkKey(observer, peer));
  return link_it != link_fault_records_.end() &&
         RecordSuspected(link_it->second, now);
}

void Network::SetRecoveryListener(SiteId observer, RecoveryListener listener) {
  DGC_CHECK(listener != nullptr);
  recovery_listeners_[observer] = std::move(listener);
}

void Network::HealRecord(FaultRecord& record, SiteId a, SiteId b) {
  const SimTime now = scheduler_.now();
  record.down = false;
  record.healed_at = now;
  record.last_stretch = now - record.down_since;
  const bool restarted = record.restarted_during_outage;
  record.restarted_during_outage = false;
  if (record.last_stretch < SuspectAfter()) return;  // never detected
  // The outage was long enough that every detector suspected it (any call
  // parked on it was parked *because* suspicion had set in, which implies
  // the stretch outlasted the heartbeat timeout). Recovery becomes visible
  // one heartbeat period + round trip after heal.
  ++stats_.fd_suspicions;
  scheduler_.After(RecoverDelay(),
                   [this, a, b, restarted] { NotifyRecovered(a, b, restarted); });
}

void Network::NotifyRecovered(SiteId a, SiteId b, bool restarted) {
  ++stats_.fd_recoveries;
  if (b == kInvalidSite) {
    // Site heal: every observer learns `a` is back.
    for (const auto& [observer, listener] : recovery_listeners_) {
      if (observer != a) listener(a, restarted);
    }
    return;
  }
  // Link heal: only the endpoints' view of each other changed (and neither
  // process died — a severed link never loses volatile state).
  const auto a_it = recovery_listeners_.find(a);
  if (a_it != recovery_listeners_.end()) a_it->second(b, restarted);
  const auto b_it = recovery_listeners_.find(b);
  if (b_it != recovery_listeners_.end()) b_it->second(a, restarted);
}

// --- Delivery --------------------------------------------------------------

void Network::Deliver(Envelope envelope) {
  DGC_CHECK(in_flight_ > 0);
  --in_flight_;
  // A site that crashed after the message was scheduled still loses it.
  if (envelope.from != envelope.to && IsSiteDown(envelope.to)) {
    ++stats_.dropped;
    return;
  }
  if (envelope.from != envelope.to) ++stats_.inter_site_delivered;
  Dispatch(std::move(envelope));
}

void Network::Dispatch(Envelope envelope) {
  DGC_LOG_TRACE("net: deliver " << PayloadKindName(envelope.payload.index())
                                << " s" << envelope.from << "->s"
                                << envelope.to);
  DGC_CHECK_MSG(
      envelope.to < handlers_.size() && handlers_[envelope.to] != nullptr,
      "deliver to unregistered site " << envelope.to);
  if (dispatcher_) {
    // Transport interposition (ThreadedTransport inbox routing); the
    // registered-handler check above still applies so an unregistered
    // destination fails identically under either backend.
    dispatcher_(std::move(envelope));
    return;
  }
  handlers_[envelope.to](envelope);
}

}  // namespace dgc
