// Simulated network connecting the sites.
//
// Guarantees the paper's delivery assumption R1 — in-order delivery between
// any pair of sites — by clamping each channel's delivery times to be
// monotone, even under latency jitter. Supports the fault injection the
// paper's locality argument needs (crashed sites, severed links, message
// drops) and keeps per-payload-type counters so benches can report message
// complexity (e.g. the 2E + P bound of Section 4.6).
//
// Self-addressed messages model intra-site asynchrony (e.g. the local steps
// of a back trace); they are delivered on the next scheduler tick and are
// *not* counted as inter-site traffic.
//
// Two opt-in fault-tolerance layers (both inert by default, preserving the
// unreliable datagram transport bit-for-bit):
//
//   * reliable channels (NetworkConfig::reliable_delivery): every wire
//     message carries a per-channel sequence number and the endpoints'
//     incarnation numbers; the receiver delivers strictly in sequence order
//     (stashing out-of-order arrivals, suppressing duplicates) and returns
//     cumulative acks, while the sender retransmits unacked messages with
//     exponential backoff + jitter up to a bounded attempt count. The R1
//     FIFO clamp still applies to every transmission. A site restart bumps
//     its incarnation (Site::CrashRestart calls NoteSiteRestarted), so
//     stale pre-crash traffic is rejected at arrival instead of corrupting
//     the scrubbed post-restart state;
//
//   * a failure detector (NetworkConfig::heartbeat_period): modeled
//     analytically from the injected fault timeline rather than with
//     literal heartbeat messages (perpetual timers would keep the
//     drain-to-idle simulation from going idle). IsPeerSuspected answers
//     what a real heartbeat detector would know: an outage is visible once
//     it has lasted heartbeat_timeout, and recovery is visible one
//     heartbeat period plus a round trip after heal. Per-site recovery
//     listeners fire at that moment so parked work (see
//     CollectorConfig::park_on_suspected_failure) can resume.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "net/messages.h"
#include "sim/scheduler.h"

namespace dgc {

namespace detail {
template <typename T, typename Variant>
struct VariantIndex;

template <typename T, typename... Ts>
struct VariantIndex<T, std::variant<Ts...>> {
  static constexpr std::size_t value = [] {
    constexpr bool matches[] = {std::is_same_v<T, Ts>...};
    for (std::size_t i = 0; i < sizeof...(Ts); ++i) {
      if (matches[i]) return i;
    }
    return sizeof...(Ts);
  }();
  static_assert(value < sizeof...(Ts), "type not in variant");
};
}  // namespace detail

struct NetworkStats {
  /// Logical messages (protocol payloads), independent of batching.
  std::uint64_t inter_site_sent = 0;
  std::uint64_t inter_site_delivered = 0;
  std::uint64_t dropped = 0;          // payloads permanently lost
  std::uint64_t self_deliveries = 0;  // intra-site, not counted as traffic
  std::uint64_t approx_bytes = 0;     // logical bytes (header per payload)
  /// Physical messages on the wire: equals inter_site_sent without batching;
  /// with piggybacking, several payloads share one wire message. With
  /// reliable delivery, retransmissions and acks count here too.
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_bytes = 0;
  // Reliable-channel accounting (all zero while reliable_delivery is off).
  std::uint64_t retransmits = 0;          // wire messages sent again
  std::uint64_t retransmits_exhausted = 0;  // abandoned after max attempts
  std::uint64_t transmissions_lost = 0;   // attempts lost (recoverable)
  std::uint64_t dup_suppressed = 0;       // duplicate wire msgs discarded
  std::uint64_t acks_sent = 0;            // cumulative-ack control frames
  std::uint64_t stale_incarnation_rejected = 0;  // pre-restart msgs refused
  // Failure-detector accounting (zero while heartbeat_period is 0).
  std::uint64_t fd_suspicions = 0;  // outages long enough to be detected
  std::uint64_t fd_recoveries = 0;  // heal notifications delivered
  std::array<std::uint64_t, kPayloadKinds> per_kind{};

  /// Count of inter-site messages of payload type T, e.g.
  /// stats.count_of<BackLocalCallMsg>().
  template <typename T>
  [[nodiscard]] std::uint64_t count_of() const {
    return per_kind[detail::VariantIndex<T, Payload>::value];
  }
};

// Thread-confinement note (transport seam, satellite audit): every mutable
// member of Network — the FIFO-clamp shards (channel_last_delivery_), the
// reliable sender/receiver channels (whose out-of-order stash is a std::map
// mutated while being iterated by AdvanceReceiverTo/OnWireArrival), the
// pending-batch shards, incarnations, fault records, and stats — is written
// with NO internal synchronization. The class is single-writer by contract:
// under SimTransport everything runs on the caller's thread; under
// ThreadedTransport the whole Network object is confined to the coordinator
// thread (sites *stage* sends on their own threads and the coordinator
// replays them into Send between parallel phases, see
// net/threaded_transport.h). Concurrent enqueue into Send/ShipBatch would
// invalidate FlatMap iterators mid-shard and corrupt the stash maps — the
// seam keeps that structurally impossible instead of guarding it with locks.
// The one sanctioned concurrency is the PrepareSend/CommitPrepared replay
// split below: distinct senders prepare concurrently against pre-reserved
// per-sender shards while the coordinator is quiescent, and everything
// global is still committed serially by the coordinator.
class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;
  /// Invoked (per observer site) when the failure detector reports a
  /// previously suspected peer healed. `restarted` is true when the peer
  /// crashed and came back as a new incarnation during the outage — its
  /// volatile state (activation frames, in particular) is certainly gone,
  /// so observers may scrub trace state rooted at the old incarnation
  /// instead of waiting out report timeouts.
  using RecoveryListener = std::function<void(SiteId peer, bool restarted)>;
  /// Delivery interposer (see set_dispatcher).
  using Dispatcher = std::function<void(Envelope&&)>;

  Network(Scheduler& scheduler, NetworkConfig config, Rng rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the message handler for a site. Must be called once per site
  /// before any message addressed to it is delivered.
  void RegisterSite(SiteId site, Handler handler);

  /// Sends a message. Delivery is asynchronous; per-channel FIFO order is
  /// preserved. Messages to or from a down site, or across a severed link,
  /// are silently dropped (the protocols recover via timeouts) — unless
  /// reliable delivery is on, in which case they are retransmitted until
  /// the attempt budget runs out.
  void Send(SiteId from, SiteId to, Payload payload);

  /// Crashes or restores a site: while down, all its traffic is dropped.
  /// Restoring erases the entry (the down-sets track only currently faulted
  /// sites/links, not every one ever faulted) and, when the failure
  /// detector is on, schedules the recovery notification.
  void SetSiteDown(SiteId site, bool down);
  [[nodiscard]] bool IsSiteDown(SiteId site) const;

  /// Severs or restores the (bidirectional) link between two sites.
  void SetLinkDown(SiteId a, SiteId b, bool down);
  [[nodiscard]] bool IsLinkDown(SiteId a, SiteId b) const;

  /// Sites currently marked down / links currently severed (not cumulative
  /// counts of every fault ever injected).
  [[nodiscard]] std::size_t site_down_entries() const {
    return site_down_.size();
  }
  [[nodiscard]] std::size_t link_down_entries() const {
    return link_down_.size();
  }

  // --- Incarnations and restart ---------------------------------------

  /// Records that `site` crashed and restarted: bumps its incarnation so
  /// pre-crash wire traffic is rejected at arrival, and (with reliable
  /// delivery) dead-letters all transport state on channels touching the
  /// site — the restarted process shares no connection state with its
  /// previous life.
  void NoteSiteRestarted(SiteId site);
  [[nodiscard]] std::uint32_t incarnation(SiteId site) const;

  // --- Failure detection ----------------------------------------------

  [[nodiscard]] bool failure_detection_enabled() const {
    return config_.heartbeat_period > 0;
  }

  /// What `observer`'s heartbeat failure detector currently believes about
  /// `peer`: true while an outage (site down, or the observer-peer link
  /// severed) has lasted at least the heartbeat timeout and for one
  /// heartbeat period + round trip after it heals.
  [[nodiscard]] bool IsPeerSuspected(SiteId observer, SiteId peer) const;

  /// Installs `observer`'s recovery listener (at most one per site).
  void SetRecoveryListener(SiteId observer, RecoveryListener listener);

  /// Interposes on final delivery: when set, every envelope that would be
  /// handed to its destination handler goes to `dispatcher` instead (after
  /// all transport processing — FIFO clamp, reliable reassembly, incarnation
  /// checks, stats). ThreadedTransport uses this to route deliveries into
  /// per-site inboxes so the handler runs on the destination site's thread;
  /// null (default) calls the registered handler directly, bit-identical to
  /// the historical path.
  void set_dispatcher(Dispatcher dispatcher) {
    dispatcher_ = std::move(dispatcher);
  }

  // --- Chaos-injection overrides --------------------------------------

  /// Overrides the configured drop probability (negative restores it).
  /// Drives the chaos harness's drop bursts without touching config.
  void set_drop_probability_override(double p) { drop_override_ = p; }
  /// Extra latency added to every transmission (latency spikes).
  void set_extra_latency(SimTime extra) { extra_latency_ = extra; }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  /// Number of payloads handed to the scheduler but not yet delivered (with
  /// reliable delivery: not yet known-delivered via ack, nor abandoned).
  [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }

  /// Channels currently holding a batching window open. Flushing erases the
  /// entry, so in steady state this tracks active channels, not every
  /// channel pair ever used.
  [[nodiscard]] std::size_t pending_batch_channels() const;
  /// FIFO-clamp entries currently retained (inert ones are purged
  /// periodically).
  [[nodiscard]] std::size_t channel_clamp_entries() const;
  /// Wire messages awaiting acknowledgement across all reliable channels.
  [[nodiscard]] std::size_t unacked_wire_messages() const;
  /// Installed recovery listeners (a restart dead-letters the restarted
  /// site's listener; the new incarnation re-registers).
  [[nodiscard]] std::size_t recovery_listener_entries() const {
    return recovery_listeners_.size();
  }
  /// Batch buffers parked in the envelope pool, and how many ShipBatch
  /// buffers were served from it instead of a fresh allocation.
  [[nodiscard]] std::size_t batch_pool_size() const {
    return batch_pool_.size();
  }
  [[nodiscard]] std::uint64_t batch_pool_hits() const {
    return batch_pool_hits_;
  }

  /// Every this-many wire messages, FIFO-clamp entries whose delivery time
  /// has passed (<= now) are purged: they can never raise a future
  /// max(now + latency, last) and only grow the map with every channel pair
  /// ever used.
  static constexpr std::uint64_t kChannelPurgePeriod = 1024;

  // --- Parallel staged-send replay (engine coordinators) -----------------
  //
  // The engine backends replay site-staged sends into the Network between
  // parallel phases. When the configuration makes each send's outcome
  // independent of coordinator-global mutable state — no RNG draw (zero
  // drop probability, zero jitter), no batching window, no retransmit
  // machinery — the per-sender half of Send (stats accounting, fault
  // checks, latency, and the sender-confined FIFO clamp) can run
  // concurrently across DISTINCT sender sites, leaving only the scheduler
  // insertions to a serial commit. CommitPrepared must then run on the
  // coordinator thread once per sender, in ascending sender order: the
  // insertions happen in exactly the order the serial replay would produce,
  // so the scheduler's tie-breaking sequence numbers — and with them every
  // seeded verdict and reclaim set — stay bit-identical.

  /// One send whose delivery is fully decided but not yet scheduled.
  struct PreparedSend {
    Envelope envelope;
    SimTime deliver_at = 0;  // ignored for self sends (next-tick semantics)
    bool self = false;
  };

  /// Per-sender scratch for one parallel replay phase. Reusable across
  /// phases — CommitPrepared resets it but keeps vector capacity.
  struct ReplayShard {
    NetworkStats stats;          // deltas, folded in by CommitPrepared
    std::uint64_t admitted = 0;  // sends that will reach the scheduler
    std::vector<PreparedSend> prepared;
  };

  /// True while the current configuration (including the chaos drop
  /// override) makes PrepareSend exact. Re-check before every parallel
  /// phase: chaos plans flip the drop override mid-run.
  [[nodiscard]] bool SupportsParallelReplay() const {
    return !config_.reliable_delivery && config_.batch_window == 0 &&
           config_.latency_jitter == 0 && effective_drop_probability() == 0.0;
  }

  /// Pre-sizes the sender-indexed FIFO-clamp shards so concurrent
  /// PrepareSend calls from distinct senders never resize the shard vector
  /// under each other. Call before the first parallel phase.
  void ReserveSenderShards(std::size_t site_count);

  /// The thread-safe half of Send for one sender's staged traffic: stats,
  /// the fault drop decision, latency, and the FIFO clamp, accumulated into
  /// `shard`. Requires SupportsParallelReplay() and ReserveSenderShards();
  /// calls for distinct `from` values may run concurrently, calls for one
  /// sender must stay on one thread in staged order.
  void PrepareSend(SiteId from, SiteId to, Payload payload, ReplayShard& shard);

  /// Folds one sender's prepared phase into the Network and schedules its
  /// deliveries. Coordinator thread only; ascending sender order.
  void CommitPrepared(ReplayShard& shard);

 private:
  [[nodiscard]] std::uint64_t ChannelKey(SiteId from, SiteId to) const {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  [[nodiscard]] std::uint64_t LinkKey(SiteId a, SiteId b) const {
    return a < b ? ChannelKey(a, b) : ChannelKey(b, a);
  }

  /// Per-channel state is sharded by sender: a vector indexed by the from
  /// site, each slot a small sorted map keyed by the to site. Lookups touch
  /// only the sender's shard (O(log active peers), not O(all channel pairs)),
  /// and a site restart dead-letters one shard plus one key in each other
  /// shard instead of scanning every channel ever used. FlatMap's pointer
  /// discipline applies: an insert into a shard invalidates references into
  /// that shard.
  template <typename T>
  using ChannelShards = std::vector<FlatMap<SiteId, T>>;

  template <typename T>
  [[nodiscard]] FlatMap<SiteId, T>& Shard(ChannelShards<T>& shards,
                                          SiteId from) {
    if (shards.size() <= from) shards.resize(static_cast<std::size_t>(from) + 1);
    return shards[from];
  }

  void Deliver(Envelope envelope);
  /// Hands one envelope to its destination handler (shared tail of the
  /// unreliable and reliable delivery paths).
  void Dispatch(Envelope envelope);

  /// Ships one wire message (a batch of >= 1 payloads) on a channel:
  /// applies faults/loss once, schedules in-order delivery of the contents.
  /// With reliable delivery, enrolls the batch in the channel's retransmit
  /// queue instead.
  void ShipBatch(SiteId from, SiteId to, std::vector<Envelope> batch);
  void FlushChannel(SiteId from, SiteId to);

  // --- Reliable-channel internals -------------------------------------

  /// One wire message awaiting acknowledgement.
  struct SenderEntry {
    std::uint64_t seq = 0;
    std::vector<Envelope> envelopes;
    std::uint32_t from_inc = 0;  // endpoint incarnations when first sent
    std::uint32_t to_inc = 0;
    int attempts = 0;  // transmissions so far
  };
  struct SenderChannel {
    std::uint64_t next_seq = 0;
    /// Distinguishes this channel object from any prior one on the same
    /// site pair, so a retransmit timer armed before a restart purge cannot
    /// act on the purged channel's successor.
    std::uint64_t epoch = 0;
    std::deque<SenderEntry> unacked;  // ordered by seq
    bool timer_armed = false;
  };
  struct ReceiverChannel {
    std::uint64_t next_expected = 0;
    /// Out-of-order arrivals parked until the gap fills (map: delivered in
    /// seq order).
    std::map<std::uint64_t, std::vector<Envelope>> stashed;
  };

  [[nodiscard]] SimTime RetransmitBase() const;
  [[nodiscard]] SimTime DrawLatency();
  [[nodiscard]] bool TransmissionLost(SiteId from, SiteId to);
  [[nodiscard]] double effective_drop_probability() const {
    return drop_override_ >= 0.0 ? drop_override_ : config_.drop_probability;
  }

  /// One physical transmission of a sender entry (first send or retransmit):
  /// applies faults/loss, the FIFO clamp, and schedules OnWireArrival.
  void TransmitWire(SiteId from, SiteId to, SenderEntry& entry);
  void ArmRetransmitTimer(SiteId from, SiteId to);
  /// `base_seq` is the sender's oldest outstanding seq at transmission
  /// time: every seq below it was either acked or abandoned, so the
  /// receiver may skip past gaps below it (an abandoned wire message must
  /// not wedge the channel forever).
  void OnWireArrival(SiteId from, SiteId to, std::uint64_t seq,
                     std::uint64_t base_seq, std::uint32_t from_inc,
                     std::uint32_t to_inc, std::vector<Envelope> envelopes);
  /// Delivers stashed in-order prefixes below `base_seq` and skips the
  /// abandoned gaps, advancing next_expected to at least base_seq.
  void AdvanceReceiverTo(SiteId from, SiteId to, std::uint64_t base_seq);
  /// Sends the receiver's cumulative ack for channel (from -> to) back to
  /// the sender. Acks are unreliable control frames: a lost ack is repaired
  /// by the one after the next (re)transmission.
  void SendAck(SiteId from, SiteId to);
  void OnAckArrival(SiteId from, SiteId to, std::uint64_t cumulative,
                    std::uint32_t from_inc, std::uint32_t to_inc);
  /// Retires a sender entry's payloads from the in-flight account and
  /// returns its batch buffer to the pool; `delivered` false means the
  /// payloads are permanently lost (counted dropped).
  void RetireEntry(SenderEntry& entry, bool delivered);

  // --- Envelope batch-buffer pool -------------------------------------

  /// Hands out a cleared batch buffer, reusing a retired one's allocation
  /// when available (delivery-rate allocations otherwise dominate the
  /// per-message cost at scale).
  [[nodiscard]] std::vector<Envelope> AcquireBatchBuffer();
  void ReleaseBatchBuffer(std::vector<Envelope>&& buffer);

  /// Sweeps every clamp shard for inert entries (delivery time <= now).
  void PurgeInertClampEntries();

  // --- Failure-detector internals -------------------------------------

  /// Ground-truth fault timeline for one site or link, from which the
  /// analytic heartbeat detector derives suspicion on demand.
  struct FaultRecord {
    bool down = false;
    SimTime down_since = 0;
    SimTime healed_at = -1;
    SimTime last_stretch = 0;  // duration of the last completed outage
    /// The site restarted (incarnation bump) while this outage was open;
    /// carried into the recovery notification so observers learn the peer
    /// they see again is a replacement, not the process they lost.
    bool restarted_during_outage = false;
  };
  [[nodiscard]] SimTime SuspectAfter() const {
    return config_.heartbeat_timeout > 0 ? config_.heartbeat_timeout
                                         : 4 * config_.heartbeat_period;
  }
  [[nodiscard]] SimTime RecoverDelay() const {
    return config_.heartbeat_period +
           2 * (config_.latency + config_.latency_jitter);
  }
  [[nodiscard]] bool RecordSuspected(const FaultRecord& record,
                                     SimTime now) const;
  /// Marks a fault record healed; if the outage was long enough to have
  /// been detected, schedules the recovery notification.
  void HealRecord(FaultRecord& record, SiteId a, SiteId b);
  void NotifyRecovered(SiteId a, SiteId b, bool restarted);

  struct PendingBatch {
    std::vector<Envelope> envelopes;
  };
  ChannelShards<PendingBatch> pending_batches_;

  Scheduler& scheduler_;
  NetworkConfig config_;
  Rng rng_;
  /// Indexed by SiteId (sites register densely from 0); empty slots are
  /// unregistered.
  std::vector<Handler> handlers_;
  /// When set, Dispatch routes here instead of handlers_ (see
  /// set_dispatcher).
  Dispatcher dispatcher_;
  std::unordered_set<SiteId> site_down_;
  std::unordered_set<std::uint64_t> link_down_;
  ChannelShards<SimTime> channel_last_delivery_;
  // Reliable-channel state (empty while reliable_delivery is off).
  ChannelShards<SenderChannel> sender_channels_;
  ChannelShards<ReceiverChannel> receiver_channels_;
  /// Indexed by SiteId; sites beyond the vector are implicitly incarnation 0.
  std::vector<std::uint32_t> incarnations_;
  std::uint64_t next_channel_epoch_ = 1;
  // Failure-detector state (empty while heartbeat_period is 0). Sorted
  // listener map: recovery notifications fire in site order, keeping the
  // resumed traffic deterministic. Listeners must not (de)register from
  // inside a notification — NotifyRecovered iterates the map.
  std::unordered_map<SiteId, FaultRecord> site_fault_records_;
  std::unordered_map<std::uint64_t, FaultRecord> link_fault_records_;
  FlatMap<SiteId, RecoveryListener> recovery_listeners_;
  /// Retired batch buffers awaiting reuse (capacity kept, contents cleared).
  std::vector<std::vector<Envelope>> batch_pool_;
  std::uint64_t batch_pool_hits_ = 0;
  // Chaos overrides (negative / zero = none).
  double drop_override_ = -1.0;
  SimTime extra_latency_ = 0;
  NetworkStats stats_;
  std::uint64_t in_flight_ = 0;
};

}  // namespace dgc
