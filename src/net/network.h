// Simulated network connecting the sites.
//
// Guarantees the paper's delivery assumption R1 — in-order delivery between
// any pair of sites — by clamping each channel's delivery times to be
// monotone, even under latency jitter. Supports the fault injection the
// paper's locality argument needs (crashed sites, severed links, message
// drops) and keeps per-payload-type counters so benches can report message
// complexity (e.g. the 2E + P bound of Section 4.6).
//
// Self-addressed messages model intra-site asynchrony (e.g. the local steps
// of a back trace); they are delivered on the next scheduler tick and are
// *not* counted as inter-site traffic.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "net/messages.h"
#include "sim/scheduler.h"

namespace dgc {

namespace detail {
template <typename T, typename Variant>
struct VariantIndex;

template <typename T, typename... Ts>
struct VariantIndex<T, std::variant<Ts...>> {
  static constexpr std::size_t value = [] {
    constexpr bool matches[] = {std::is_same_v<T, Ts>...};
    for (std::size_t i = 0; i < sizeof...(Ts); ++i) {
      if (matches[i]) return i;
    }
    return sizeof...(Ts);
  }();
  static_assert(value < sizeof...(Ts), "type not in variant");
};
}  // namespace detail

struct NetworkStats {
  /// Logical messages (protocol payloads), independent of batching.
  std::uint64_t inter_site_sent = 0;
  std::uint64_t inter_site_delivered = 0;
  std::uint64_t dropped = 0;          // by loss injection or faults
  std::uint64_t self_deliveries = 0;  // intra-site, not counted as traffic
  std::uint64_t approx_bytes = 0;     // logical bytes (header per payload)
  /// Physical messages on the wire: equals inter_site_sent without batching;
  /// with piggybacking, several payloads share one wire message.
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_bytes = 0;
  std::array<std::uint64_t, kPayloadKinds> per_kind{};

  /// Count of inter-site messages of payload type T, e.g.
  /// stats.count_of<BackLocalCallMsg>().
  template <typename T>
  [[nodiscard]] std::uint64_t count_of() const {
    return per_kind[detail::VariantIndex<T, Payload>::value];
  }
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;

  Network(Scheduler& scheduler, NetworkConfig config, Rng rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the message handler for a site. Must be called once per site
  /// before any message addressed to it is delivered.
  void RegisterSite(SiteId site, Handler handler);

  /// Sends a message. Delivery is asynchronous; per-channel FIFO order is
  /// preserved. Messages to or from a down site, or across a severed link,
  /// are silently dropped (the protocols recover via timeouts).
  void Send(SiteId from, SiteId to, Payload payload);

  /// Crashes or restores a site: while down, all its traffic is dropped.
  void SetSiteDown(SiteId site, bool down);
  [[nodiscard]] bool IsSiteDown(SiteId site) const;

  /// Severs or restores the (bidirectional) link between two sites.
  void SetLinkDown(SiteId a, SiteId b, bool down);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  /// Number of messages handed to the scheduler but not yet delivered.
  [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }

  /// Channels currently holding a batching window open. Flushing erases the
  /// entry, so in steady state this tracks active channels, not every
  /// channel pair ever used.
  [[nodiscard]] std::size_t pending_batch_channels() const {
    return pending_batches_.size();
  }
  /// FIFO-clamp entries currently retained (inert ones are purged
  /// periodically).
  [[nodiscard]] std::size_t channel_clamp_entries() const {
    return channel_last_delivery_.size();
  }

  /// Every this-many wire messages, FIFO-clamp entries whose delivery time
  /// has passed (<= now) are purged: they can never raise a future
  /// max(now + latency, last) and only grow the map with every channel pair
  /// ever used.
  static constexpr std::uint64_t kChannelPurgePeriod = 1024;

 private:
  [[nodiscard]] std::uint64_t ChannelKey(SiteId from, SiteId to) const {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  [[nodiscard]] std::uint64_t LinkKey(SiteId a, SiteId b) const {
    return a < b ? ChannelKey(a, b) : ChannelKey(b, a);
  }

  void Deliver(Envelope envelope);

  /// Ships one wire message (a batch of >= 1 payloads) on a channel:
  /// applies faults/loss once, schedules in-order delivery of the contents.
  void ShipBatch(SiteId from, SiteId to, std::vector<Envelope> batch);
  void FlushChannel(SiteId from, SiteId to);

  struct PendingBatch {
    std::vector<Envelope> envelopes;
  };
  std::unordered_map<std::uint64_t, PendingBatch> pending_batches_;

  Scheduler& scheduler_;
  NetworkConfig config_;
  Rng rng_;
  std::unordered_map<SiteId, Handler> handlers_;
  std::unordered_map<SiteId, bool> site_down_;
  std::unordered_map<std::uint64_t, bool> link_down_;
  std::unordered_map<std::uint64_t, SimTime> channel_last_delivery_;
  NetworkStats stats_;
  std::uint64_t in_flight_ = 0;
};

}  // namespace dgc
