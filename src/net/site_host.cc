#include "net/site_host.h"

#include <stdio.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include "common/worker_pool.h"
#include "core/site.h"
#include "refs/tables.h"

namespace dgc {
namespace {

using wire::FrameType;
using wire::IoStatus;
using wire::WireReader;
using wire::WireWriter;

/// Snapshot file magic ("DGCS") and version, distinct from the socket
/// protocol's so a snapshot can never be mistaken for a frame.
constexpr std::uint32_t kSnapshotMagic = 0x44474353;
constexpr std::uint16_t kSnapshotVersion = 1;

}  // namespace

// ---------------------------------------------------------------------------
// Snapshot capture / apply.

SiteSnapshot CaptureSiteSnapshot(const Site& site, std::uint32_t incarnation) {
  SiteSnapshot snap;
  snap.site = site.id();
  snap.incarnation = incarnation;
  snap.heap = site.heap().CaptureImage();
  for (const auto& [ref, entry] : site.tables().inrefs()) {
    SiteSnapshot::InrefImage image;
    image.ref = ref;
    for (const auto& [source, info] : entry.sources) {
      image.sources.push_back({source, info.distance, info.refreshed_at});
    }
    image.garbage_flagged = entry.garbage_flagged;
    image.clean_override = entry.clean_override;
    image.back_threshold = entry.back_threshold;
    snap.inrefs.push_back(std::move(image));
  }
  for (const auto& [ref, entry] : site.tables().outrefs()) {
    SiteSnapshot::OutrefImage image;
    image.ref = ref;
    image.distance = entry.distance;
    image.traced_clean = entry.traced_clean;
    image.clean_override = entry.clean_override;
    image.last_reported = entry.last_reported;
    image.back_threshold = entry.back_threshold;
    snap.outrefs.push_back(image);
  }
  for (const auto& [inref, outset] : site.back_info().inref_outsets) {
    snap.inref_outsets.emplace_back(inref, outset);
  }
  return snap;
}

void ApplySiteSnapshot(Site& site, const SiteSnapshot& snapshot) {
  DGC_CHECK(snapshot.site == site.id());
  site.heap().RestoreImage(snapshot.heap);
  for (const auto& image : snapshot.inrefs) {
    InrefEntry& entry = site.tables().EnsureInref(image.ref);
    for (const auto& source : image.sources) {
      site.tables().AddInrefSource(image.ref, source.site, source.distance,
                                   source.refreshed_at);
    }
    entry.garbage_flagged = image.garbage_flagged;
    entry.clean_override = image.clean_override;
    entry.back_threshold = image.back_threshold;
  }
  for (const auto& image : snapshot.outrefs) {
    auto [entry, created] = site.tables().EnsureOutref(image.ref);
    (void)created;
    entry->distance = image.distance;
    entry->traced_clean = image.traced_clean;
    entry->clean_override = image.clean_override;
    entry->last_reported = image.last_reported;
    entry->back_threshold = image.back_threshold;
    entry->pin_count = 0;  // pins are volatile; the crash released them
  }
  OutsetMap outsets;
  for (const auto& [inref, outset] : snapshot.inref_outsets) {
    outsets[inref] = outset;
  }
  site.RestoreBackInfo(std::move(outsets));
}

// ---------------------------------------------------------------------------
// Snapshot codec. Reuses the wire primitives; same defensive posture (every
// count guarded, trailing bytes rejected) because a half-written or stale
// file must fail cleanly, not crash the replacement process.

std::vector<std::uint8_t> EncodeSiteSnapshot(const SiteSnapshot& snapshot) {
  WireWriter w;
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u32(snapshot.site);
  w.u32(snapshot.incarnation);

  const HeapImage& heap = snapshot.heap;
  w.u64(heap.slots.size());
  for (const HeapImage::SlotImage& slot : heap.slots) {
    w.u32(slot.generation);
    w.boolean(slot.live);
    if (!slot.live) continue;
    w.u32(static_cast<std::uint32_t>(slot.slots.size()));
    for (const ObjectId& id : slot.slots) w.object_id(id);
  }
  w.u32(static_cast<std::uint32_t>(heap.free_slots.size()));
  for (std::uint32_t slot : heap.free_slots) w.u32(slot);
  w.u32(static_cast<std::uint32_t>(heap.persistent_roots.size()));
  for (const ObjectId& id : heap.persistent_roots) w.object_id(id);
  w.u64(heap.stats.allocated);
  w.u64(heap.stats.reclaimed);

  w.u32(static_cast<std::uint32_t>(snapshot.inrefs.size()));
  for (const SiteSnapshot::InrefImage& in : snapshot.inrefs) {
    w.object_id(in.ref);
    w.u32(static_cast<std::uint32_t>(in.sources.size()));
    for (const SiteSnapshot::InrefSource& source : in.sources) {
      w.u32(source.site);
      w.u32(source.distance);
      w.i64(source.refreshed_at);
    }
    w.boolean(in.garbage_flagged);
    w.boolean(in.clean_override);
    w.u32(in.back_threshold);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.outrefs.size()));
  for (const SiteSnapshot::OutrefImage& out : snapshot.outrefs) {
    w.object_id(out.ref);
    w.u32(out.distance);
    w.boolean(out.traced_clean);
    w.boolean(out.clean_override);
    w.u32(out.last_reported);
    w.u32(out.back_threshold);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.inref_outsets.size()));
  for (const auto& [inref, outset] : snapshot.inref_outsets) {
    w.object_id(inref);
    w.u32(static_cast<std::uint32_t>(outset.size()));
    for (const ObjectId& id : outset) w.object_id(id);
  }
  return w.take();
}

bool DecodeSiteSnapshot(const std::vector<std::uint8_t>& bytes,
                        SiteSnapshot& out) {
  WireReader r(bytes);
  if (r.u32() != kSnapshotMagic || r.u16() != kSnapshotVersion) return false;
  out.site = r.u32();
  out.incarnation = r.u32();

  const std::uint64_t slot_count = r.u64();
  // Each slot image needs at least 5 bytes (generation + live flag); divide
  // rather than multiply so a garbage count cannot overflow the check.
  if (slot_count > r.remaining() / 5) return false;
  out.heap.slots.resize(static_cast<std::size_t>(slot_count));
  for (HeapImage::SlotImage& slot : out.heap.slots) {
    slot.generation = r.u32();
    slot.live = r.boolean();
    if (!slot.live) continue;
    const std::uint32_t n = r.seq_count(12);
    slot.slots.resize(n);
    for (ObjectId& id : slot.slots) id = r.object_id();
  }
  const std::uint32_t free_count = r.seq_count(4);
  out.heap.free_slots.resize(free_count);
  for (std::uint32_t& slot : out.heap.free_slots) slot = r.u32();
  const std::uint32_t root_count = r.seq_count(12);
  out.heap.persistent_roots.resize(root_count);
  for (ObjectId& id : out.heap.persistent_roots) id = r.object_id();
  out.heap.stats.allocated = r.u64();
  out.heap.stats.reclaimed = r.u64();

  const std::uint32_t inref_count = r.seq_count(12);
  out.inrefs.resize(inref_count);
  for (SiteSnapshot::InrefImage& in : out.inrefs) {
    in.ref = r.object_id();
    const std::uint32_t sources = r.seq_count(16);
    in.sources.resize(sources);
    for (SiteSnapshot::InrefSource& source : in.sources) {
      source.site = r.u32();
      source.distance = r.u32();
      source.refreshed_at = r.i64();
    }
    in.garbage_flagged = r.boolean();
    in.clean_override = r.boolean();
    in.back_threshold = r.u32();
  }
  const std::uint32_t outref_count = r.seq_count(12);
  out.outrefs.resize(outref_count);
  for (SiteSnapshot::OutrefImage& image : out.outrefs) {
    image.ref = r.object_id();
    image.distance = r.u32();
    image.traced_clean = r.boolean();
    image.clean_override = r.boolean();
    image.last_reported = r.u32();
    image.back_threshold = r.u32();
  }
  const std::uint32_t outset_count = r.seq_count(12);
  out.inref_outsets.resize(outset_count);
  for (auto& [inref, outset] : out.inref_outsets) {
    inref = r.object_id();
    const std::uint32_t n = r.seq_count(12);
    outset.resize(n);
    for (ObjectId& id : outset) id = r.object_id();
  }
  return r.exhausted();
}

bool WriteSnapshotFile(const std::string& path, const SiteSnapshot& snapshot) {
  const std::vector<std::uint8_t> bytes = EncodeSiteSnapshot(snapshot);
  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      bytes.empty() || fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  // No fsync: the failure model is PROCESS death (kill -9), which the page
  // cache survives. The write-temp-then-rename keeps the snapshot atomic;
  // durability across host crashes is out of scope and fsync-per-step on a
  // disk-backed state dir would dominate step latency.
  const bool flushed = fflush(f) == 0;
  fclose(f);
  if (!wrote || !flushed) {
    remove(tmp.c_str());
    return false;
  }
  return rename(tmp.c_str(), path.c_str()) == 0;
}

bool ReadSnapshotFile(const std::string& path, SiteSnapshot& out) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[64 * 1024];
  std::size_t n = 0;
  while ((n = fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  fclose(f);
  return DecodeSiteSnapshot(bytes, out);
}

// ---------------------------------------------------------------------------
// Process main loop.

namespace {

int DialOnce(const std::string& path) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

/// Retries the dial until the budget elapses — the coordinator may still be
/// binding (first start) or busy accepting other sites (restart storm).
int DialWithRetry(const SiteHostOptions& options) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options.dial_timeout_ms);
  for (;;) {
    const int fd = DialOnce(options.socket_path);
    if (fd >= 0) return fd;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.dial_retry_ms));
  }
}

/// Sends the Hello and reads the ack. Returns false on any transport or
/// protocol failure; `ack` is valid (with a possibly rejecting verdict)
/// only on true. `carry` is the connection's persistent receive buffer:
/// the coordinator pipelines the first request right behind the HelloAck,
/// so one recv may pull both frames — the surplus must survive this call.
bool PerformHandshake(int fd, SiteId site, std::uint32_t incarnation,
                      const SiteHostOptions& options,
                      std::vector<std::uint8_t>& carry,
                      wire::HelloAckFrame& ack) {
  wire::HelloFrame hello;
  hello.site = site;
  hello.incarnation = incarnation;
  WireWriter w;
  wire::EncodeHello(w, hello);
  if (wire::WriteFrame(fd, FrameType::kHello, w.data()) != IoStatus::kOk) {
    return false;
  }
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> body;
  if (wire::ReadFrameBuffered(fd, options.dial_timeout_ms, carry, type,
                              body) != IoStatus::kOk ||
      type != FrameType::kHelloAck) {
    return false;
  }
  WireReader r(body);
  return wire::DecodeHelloAck(r, ack);
}

}  // namespace

int RunSiteProcess(const SiteHostOptions& options) {
  DGC_CHECK(options.site != kInvalidSite);
  // The coordinator may vanish mid-write (severed socket chaos, coordinator
  // crash); that must surface as EPIPE, not kill this process.
  std::signal(SIGPIPE, SIG_IGN);

  // A replacement process finds its predecessor's snapshot and runs as the
  // next incarnation; a first-start finds nothing and runs as incarnation 0.
  std::uint32_t incarnation = 0;
  SiteSnapshot snapshot;
  bool have_snapshot = false;
  if (!options.snapshot_path.empty() &&
      ReadSnapshotFile(options.snapshot_path, snapshot) &&
      snapshot.site == options.site) {
    have_snapshot = true;
    incarnation = snapshot.incarnation + 1;
  }

  int fd = DialWithRetry(options);
  if (fd < 0) return 2;
  // Receive carry buffer for the life of each connection: frames the kernel
  // hands us together with an earlier frame's bytes wait here. Reset on
  // redial — a new connection is a new stream.
  std::vector<std::uint8_t> carry;
  wire::HelloAckFrame ack;
  if (!PerformHandshake(fd, options.site, incarnation, options, carry, ack)) {
    close(fd);
    return 3;
  }
  if (!wire::HandshakeAccepted(ack.verdict)) {
    close(fd);
    return 3;
  }

  SiteAgentTransport agent(options.site, ack.failure_detection_enabled);
  Site site(options.site, agent, ack.config);
  // mark_threads-way shard marking runs inside this process: a site process
  // owns its own pool (the coordinator's threads are in another address
  // space). Zero workers when marking is serial — RunBatch then degenerates
  // to the caller's loop with no threads ever spawned.
  WorkerPool mark_pool(
      ack.config.mark_threads > 1 ? ack.config.mark_threads - 1 : 0);
  site.set_worker_pool(&mark_pool);
  if (have_snapshot) {
    ApplySiteSnapshot(site, snapshot);
    // The tail of Site::CrashRestart: stage the re-registration InsertMsgs.
    // They ride to the coordinator in the first reply after the handshake
    // (which issues a resync step to every newly accepted connection).
    site.ReannounceOutrefs();
  }
  // Catch the site clock up to the coordinator (a restart joins mid-run).
  // Constructor-scheduled periodic timers fire compressed into this catch-up;
  // their sends are staged like any others.
  agent.RunUntilTime(ack.now);

  const auto maybe_snapshot = [&] {
    if (options.snapshot_path.empty() || !options.snapshot_each_step) return;
    // Failure to persist is not fatal to the running site; the next crash
    // simply restores an older image and re-announces from further back.
    (void)WriteSnapshotFile(options.snapshot_path,
                            CaptureSiteSnapshot(site, incarnation));
  };
  if (have_snapshot) maybe_snapshot();  // persist the new incarnation

  for (;;) {
    FrameType type = FrameType::kHello;
    std::vector<std::uint8_t> body;
    const IoStatus status =
        wire::ReadFrameBuffered(fd, /*timeout_ms=*/-1, carry, type, body);
    if (status == IoStatus::kClosed) {
      // Severed socket: the process (and its state) survives; redial at the
      // SAME incarnation so the coordinator classifies a reconnect, not a
      // restart. Unsent staged traffic is retained and ships after resync.
      close(fd);
      carry.clear();
      fd = DialWithRetry(options);
      if (fd < 0) return 2;
      if (!PerformHandshake(fd, options.site, incarnation, options, carry,
                            ack) ||
          !wire::HandshakeAccepted(ack.verdict)) {
        close(fd);
        return 3;
      }
      continue;
    }
    if (status != IoStatus::kOk) {
      close(fd);
      return 4;
    }
    WireReader r(body);
    switch (type) {
      case FrameType::kStepRequest: {
        wire::StepRequestFrame req;
        if (!wire::DecodeStepRequest(r, req)) {
          close(fd);
          return 4;
        }
        agent.SetSuspected(std::move(req.suspected));
        // Restart notices first: a peer in both lists must scrub the dead
        // incarnation's traces before parked calls resume toward it.
        for (SiteId peer : req.restarted) {
          agent.NotifyRecovered(peer, /*restarted=*/true);
        }
        for (SiteId peer : req.recovered) {
          agent.NotifyRecovered(peer, /*restarted=*/false);
        }
        // Mirror ThreadedTransport::SiteStep: own timers first, then the
        // delivered envelopes, then anything the handlers scheduled at <= t.
        agent.RunUntilTime(req.target_time);
        for (const Envelope& env : req.envelopes) agent.Deliver(env);
        agent.RunUntilTime(req.target_time);
        agent.NoteStep();

        wire::StepReplyFrame reply;
        reply.seq = req.seq;
        reply.next_event_time = agent.control_scheduler().next_event_time();
        reply.handled = req.envelopes.size();
        reply.staged = agent.TakeStaged();
        WireWriter out;
        wire::EncodeStepReply(out, reply);
        // Persist BEFORE acknowledging: once the reply is on the wire the
        // coordinator treats the step as done (delivered envelopes are
        // forgotten), so a kill -9 in an ack-then-persist gap would strand
        // state the rest of the world believes exists. Dying after the
        // snapshot but before the reply is safe — the coordinator times the
        // step out and resyncs the replacement from the post-step image.
        maybe_snapshot();
        if (wire::WriteFrame(fd, FrameType::kStepReply, out.data()) !=
            IoStatus::kOk) {
          // Severed mid-step: keep the sends for the post-reconnect resync
          // reply; the read at the top of the loop observes the close.
          agent.Restage(std::move(reply.staged));
          break;
        }
        break;
      }
      case FrameType::kBuildOp: {
        wire::BuildOpFrame op;
        if (!wire::DecodeBuildOp(r, op)) {
          close(fd);
          return 4;
        }
        agent.RunUntilTime(op.time);
        ObjectId result = kInvalidObject;
        switch (op.op) {
          case wire::BuildOpKind::kNewObject:
            result = site.heap().Allocate(static_cast<std::size_t>(op.n));
            break;
          case wire::BuildOpKind::kSetRoot:
            site.heap().AddPersistentRoot(op.a);
            break;
          case wire::BuildOpKind::kWireLocal:
            site.heap().SetSlot(op.a, op.slot, op.b);
            break;
          case wire::BuildOpKind::kWireSource: {
            // Source half of Site::WireSlotTo: write the slot, ensure the
            // outref at distance 1.
            site.heap().SetSlot(op.a, op.slot, op.b);
            auto [entry, created] = site.tables().EnsureOutref(op.b);
            if (created) entry->distance = 1;
            break;
          }
          case wire::BuildOpKind::kWireTarget: {
            // Target half: register the inref for local object b held by
            // source site a.site (a's index is unused).
            InrefEntry& inref = site.tables().EnsureInref(op.b);
            if (!inref.sources.contains(op.a.site)) {
              inref.sources.emplace(op.a.site, SourceInfo{1, agent.now()});
            }
            break;
          }
          case wire::BuildOpKind::kUnwire:
            site.heap().SetSlot(op.a, op.slot, kInvalidObject);
            break;
          case wire::BuildOpKind::kStartTrace:
            if (!site.trace_in_flight()) site.StartLocalTrace();
            break;
        }
        wire::BuildReplyFrame reply;
        reply.seq = op.seq;
        reply.result = result;
        reply.next_event_time = agent.control_scheduler().next_event_time();
        reply.staged = agent.TakeStaged();
        WireWriter out;
        wire::EncodeBuildReply(out, reply);
        // Persist-then-ack, as in the step path: an acknowledged mutation
        // (an Unwire severing a cycle, say) must survive a kill -9 landing
        // right after the ack — the driver will never reissue it.
        maybe_snapshot();
        if (wire::WriteFrame(fd, FrameType::kBuildReply, out.data()) !=
            IoStatus::kOk) {
          agent.Restage(std::move(reply.staged));
          break;
        }
        break;
      }
      case FrameType::kQuery: {
        wire::QueryFrame query;
        if (!wire::DecodeQuery(r, query)) {
          close(fd);
          return 4;
        }
        agent.RunUntilTime(query.time);
        wire::QueryReplyFrame reply;
        reply.seq = query.seq;
        site.heap().ForEach([&](ObjectId id, const Object& /*object*/) {
          reply.survivors.push_back(id);
        });
        std::sort(reply.survivors.begin(), reply.survivors.end());
        reply.objects = reply.survivors.size();
        reply.reclaimed = site.heap().stats().reclaimed;
        const BackTracerStats& stats = site.back_tracer().stats();
        reply.traces_started = stats.traces_started;
        reply.traces_garbage = stats.traces_completed_garbage;
        reply.traces_live = stats.traces_completed_live;
        reply.trace_in_flight = site.trace_in_flight();
        reply.incarnation = incarnation;
        WireWriter out;
        wire::EncodeQueryReply(out, reply);
        (void)wire::WriteFrame(fd, FrameType::kQueryReply, out.data());
        break;
      }
      case FrameType::kShutdown: {
        WireWriter out;
        (void)wire::WriteFrame(fd, FrameType::kShutdownAck, out.data());
        close(fd);
        return 0;
      }
      default:
        close(fd);
        return 4;
    }
  }
}

}  // namespace dgc
