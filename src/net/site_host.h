// The site-process side of the socket transport.
//
// Under `--transport socket` every site is its own OS process. The process
// hosts one ordinary Site over a SiteAgentTransport — a Transport whose
// "network" is the coordinator at the far end of a Unix-domain socket: sends
// are staged locally and shipped back in the next StepReply/BuildReply, and
// the failure-detector queries answer from suspicion state the coordinator
// ships inside each StepRequest (the site process has no Network of its own).
//
// Crash durability: after every step the host serializes the site's durable
// state — heap image, ref tables, back-info outsets, incarnation — to a
// snapshot file (write-temp-then-rename, so a kill -9 mid-write leaves the
// previous snapshot intact). A replacement process restores the snapshot,
// dials in at incarnation + 1 (the handshake classifies it kAcceptRestart,
// which triggers PR 4's NoteSiteRestarted stale-traffic fencing coordinator-
// side), and re-announces its outrefs exactly like Site::CrashRestart does:
// volatile state — in-flight traces, barriers, pins, visited marks — is
// gone, and the re-registration InsertMsgs rebuild the distributed picture.
//
// A severed socket (the process survives, only the connection drops) redials
// at the *same* incarnation and resumes: kAcceptReconnect, no fencing.
//
// The snapshot codec and SiteAgentTransport are exposed separately from the
// process main loop so net_test can exercise capture/encode/decode/apply
// round-trips without forking.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/config.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/network.h"
#include "net/transport.h"
#include "net/wire.h"
#include "sim/scheduler.h"
#include "store/heap.h"

namespace dgc {

class Site;

/// Transport implementation a site process runs its Site over. Single
/// threaded: the host's frame loop calls RunUntilTime / handler / TakeStaged
/// in strict alternation, so no synchronization is needed anywhere.
class SiteAgentTransport final : public Transport {
 public:
  SiteAgentTransport(SiteId site, bool failure_detection)
      : site_(site),
        failure_detection_(failure_detection),
        stub_network_(scheduler_, NetworkConfig{}, Rng(0)) {}

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kSocket;
  }
  /// The stub exists only so the accessor has a referent; nothing in the
  /// site-side protocol path consults it (fault switches, channels and
  /// incarnations all live in the coordinator's real Network).
  [[nodiscard]] Network& network() override { return stub_network_; }
  [[nodiscard]] const Network& network() const override {
    return stub_network_;
  }
  [[nodiscard]] Scheduler& control_scheduler() override { return scheduler_; }
  [[nodiscard]] Scheduler& SchedulerFor(SiteId /*site*/) override {
    return scheduler_;
  }

  void RegisterSite(SiteId site, Network::Handler handler) override {
    DGC_CHECK(site == site_);
    handler_ = std::move(handler);
  }
  /// Stages the send for the next reply to the coordinator, self-sends
  /// included (they take a network round trip in every backend).
  void Send(SiteId from, SiteId to, Payload payload) override {
    DGC_CHECK(from == site_);
    staged_.push_back(Envelope{from, to, std::move(payload)});
    ++counters_.staged_sends;
  }

  void SetRecoveryListener(SiteId observer,
                           Network::RecoveryListener l) override {
    DGC_CHECK(observer == site_);
    recovery_listener_ = std::move(l);
  }
  /// Incarnations are coordinator state; a site process never restarts
  /// in-process (a crash is a real process death), so this cannot be
  /// reached from the hosted Site.
  void NoteSiteRestarted(SiteId /*site*/) override {}
  [[nodiscard]] bool IsPeerSuspected(SiteId observer,
                                     SiteId peer) const override {
    DGC_CHECK(observer == site_);
    return std::binary_search(suspected_.begin(), suspected_.end(), peer);
  }
  [[nodiscard]] bool failure_detection_enabled() const override {
    return failure_detection_;
  }

  [[nodiscard]] SimTime now() const override { return scheduler_.now(); }
  void RunUntilTime(SimTime t) override { scheduler_.RunUntil(t); }
  bool StepOne() override { return scheduler_.RunOne(); }
  void Settle() override { scheduler_.RunUntilIdle(); }
  [[nodiscard]] TransportCounters counters() const override {
    return counters_;
  }
  [[nodiscard]] SiteTransportCounters site_counters(
      SiteId /*site*/) const override {
    SiteTransportCounters c;
    c.handoffs = counters_.handoffs;
    c.staged_sends = counters_.staged_sends;
    c.steps = counters_.site_steps;
    return c;
  }

  // --- Host-facing surface ----------------------------------------------

  /// Installs the suspected-peer set shipped in a StepRequest (sorted).
  void SetSuspected(std::vector<SiteId> suspected) {
    suspected_ = std::move(suspected);
    std::sort(suspected_.begin(), suspected_.end());
  }
  /// Fires the site's recovery listener (park/unpark machinery) for a peer
  /// the coordinator reports as recovered; `restarted` marks the peer a new
  /// incarnation (the site scrubs the dead incarnation's traces first).
  void NotifyRecovered(SiteId peer, bool restarted) {
    if (recovery_listener_) recovery_listener_(peer, restarted);
  }
  /// Hands one coordinator-delivered envelope to the site's handler.
  void Deliver(const Envelope& env) {
    DGC_CHECK(handler_ != nullptr);
    ++counters_.handoffs;
    handler_(env);
  }
  [[nodiscard]] std::vector<Envelope> TakeStaged() {
    return std::exchange(staged_, {});
  }
  /// Puts taken sends back at the FRONT of the staged queue — used when the
  /// reply carrying them could not be written (socket severed mid-step), so
  /// they ship after the reconnect instead of being silently dropped.
  void Restage(std::vector<Envelope> envelopes) {
    envelopes.insert(envelopes.end(),
                     std::make_move_iterator(staged_.begin()),
                     std::make_move_iterator(staged_.end()));
    staged_ = std::move(envelopes);
  }
  void NoteStep() {
    ++counters_.site_steps;
    ++counters_.timesteps;
  }

 private:
  SiteId site_;
  bool failure_detection_;
  Scheduler scheduler_;
  Network stub_network_;
  Network::Handler handler_;
  Network::RecoveryListener recovery_listener_;
  std::vector<SiteId> suspected_;  // sorted
  std::vector<Envelope> staged_;
  TransportCounters counters_;
};

// ---------------------------------------------------------------------------
// Durable snapshot: exactly the state Site::CrashRestart preserves.

struct SiteSnapshot {
  SiteId site = kInvalidSite;
  /// Incarnation the snapshotting process ran as; a replacement process
  /// dials in at incarnation + 1.
  std::uint32_t incarnation = 0;
  HeapImage heap;

  struct InrefSource {
    SiteId site = kInvalidSite;
    Distance distance = 1;
    SimTime refreshed_at = 0;
  };
  struct InrefImage {
    ObjectId ref;
    std::vector<InrefSource> sources;
    bool garbage_flagged = false;
    bool clean_override = false;
    Distance back_threshold = 0;
    // `visited` is deliberately absent: trace marks are volatile.
  };
  struct OutrefImage {
    ObjectId ref;
    Distance distance = kDistanceInfinity;
    bool traced_clean = false;
    bool clean_override = false;
    Distance last_reported = kDistanceInfinity;
    Distance back_threshold = 0;
    // pin_count is volatile (pins die with the mutator sessions).
  };
  std::vector<InrefImage> inrefs;    // table iteration order (sorted by id)
  std::vector<OutrefImage> outrefs;  // likewise

  /// Back info: the suspected-inref outsets; insets are recomputed on
  /// restore (they are always the exact inverse).
  std::vector<std::pair<ObjectId, std::vector<ObjectId>>> inref_outsets;
};

[[nodiscard]] SiteSnapshot CaptureSiteSnapshot(const Site& site,
                                               std::uint32_t incarnation);
[[nodiscard]] std::vector<std::uint8_t> EncodeSiteSnapshot(
    const SiteSnapshot& snapshot);
[[nodiscard]] bool DecodeSiteSnapshot(const std::vector<std::uint8_t>& bytes,
                                      SiteSnapshot& out);
/// Restores a snapshot into a freshly constructed Site (heap, tables, back
/// info). Does NOT re-announce outrefs — callers decide when the
/// re-registration traffic flows (the host does it right after the restart
/// handshake, mirroring the tail of Site::CrashRestart).
void ApplySiteSnapshot(Site& site, const SiteSnapshot& snapshot);

/// Write-temp-then-rename so a crash mid-write never corrupts the previous
/// snapshot. Returns false on I/O failure.
[[nodiscard]] bool WriteSnapshotFile(const std::string& path,
                                     const SiteSnapshot& snapshot);
[[nodiscard]] bool ReadSnapshotFile(const std::string& path,
                                    SiteSnapshot& out);

// ---------------------------------------------------------------------------
// Process main loop.

struct SiteHostOptions {
  std::string socket_path;
  SiteId site = kInvalidSite;
  /// Durable snapshot location; empty runs the site without crash
  /// durability (a restart then rejoins empty, like a disk-less node).
  std::string snapshot_path;
  /// Re-serialize the snapshot after every step/build op. Off trades crash
  /// fidelity for throughput.
  bool snapshot_each_step = true;
  /// Budget for the initial dial and for each redial after a severed
  /// socket, retried every dial_retry_ms until the budget runs out.
  int dial_timeout_ms = 10'000;
  int dial_retry_ms = 20;
};

/// Runs a site process to completion: dial, handshake, optional snapshot
/// restore, then the frame loop until Shutdown or a dead coordinator.
/// Returns the process exit code (0 = clean shutdown, 2 = could not dial,
/// 3 = handshake rejected, 4 = protocol error).
int RunSiteProcess(const SiteHostOptions& options);

}  // namespace dgc
