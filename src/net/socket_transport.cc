#include "net/socket_transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/check.h"

namespace dgc {

using wire::FrameType;
using wire::IoStatus;
using wire::WireReader;
using wire::WireWriter;

SocketTransport::SocketTransport(std::size_t site_count, Scheduler& control,
                                 NetworkConfig config, Rng rng,
                                 std::string socket_path)
    : control_(control),
      network_(control, config, rng),
      socket_config_(config.socket),
      socket_path_(std::move(socket_path)) {
  DGC_CHECK(site_count > 0);
  conns_.resize(site_count);
  for (SiteId s = 0; s < site_count; ++s) {
    // Placeholder handler: the Network's delivery path insists every
    // destination is registered, but the dispatcher below intercepts every
    // finished delivery before a handler would run.
    network_.RegisterSite(s, [](const Envelope&) {});
    InstallRecoveryListener(s);
  }
  network_.set_dispatcher([this](Envelope&& envelope) {
    DGC_CHECK(envelope.to < conns_.size());
    conns_[envelope.to].outbound.push_back(std::move(envelope));
  });
  serial_replay_ = config.transport_serial_replay;
  std::size_t replay_workers = config.transport_pool_threads;
  if (replay_workers == 0) {
    // The coordinator is otherwise idle while sites compute, so size the
    // replay pool to the machine but never past useful sender parallelism.
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    replay_workers = std::min(hw, site_count) - 1;
  }
  replay_pool_ = std::make_unique<WorkerPool>(replay_workers);
  BindListener();
}

SocketTransport::~SocketTransport() {
  for (Conn& conn : conns_) {
    if (conn.fd >= 0) close(conn.fd);
    conn.fd = -1;
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  unlink(socket_path_.c_str());
}

void SocketTransport::BindListener() {
  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  DGC_CHECK_MSG(listen_fd_ >= 0, "socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DGC_CHECK_MSG(socket_path_.size() < sizeof addr.sun_path,
                "socket path too long: " << socket_path_);
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  unlink(socket_path_.c_str());
  DGC_CHECK_MSG(bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr) == 0,
                "bind(" << socket_path_ << ") failed");
  DGC_CHECK_MSG(listen(listen_fd_, 64) == 0, "listen failed");
  // Non-blocking accepts let the engine poll for redials at its own pace;
  // accepted connections stay blocking (frame I/O uses poll timeouts).
  const int flags = fcntl(listen_fd_, F_GETFL, 0);
  fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
}

void SocketTransport::InstallRecoveryListener(SiteId site) {
  network_.SetRecoveryListener(site, [this, site](SiteId peer, bool restarted) {
    conns_[site].recovered_pending.push_back(peer);
    if (restarted) QueueRestartNotice(conns_[site], peer);
  });
}

void SocketTransport::QueueRestartNotice(Conn& conn, SiteId peer) {
  if (std::find(conn.restarted_pending.begin(), conn.restarted_pending.end(),
                peer) == conn.restarted_pending.end()) {
    conn.restarted_pending.push_back(peer);
  }
}

void SocketTransport::RegisterSite(SiteId /*site*/,
                                   Network::Handler /*handler*/) {
  DGC_CHECK_MSG(false,
                "socket transport sites are separate processes; there is "
                "nothing to register in the coordinator");
}

void SocketTransport::Send(SiteId from, SiteId to, Payload payload) {
  network_.Send(from, to, std::move(payload));
}

// ---------------------------------------------------------------------------
// Connection management.

void SocketTransport::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / EWOULDBLOCK: nothing pending
    CompleteHandshake(fd);
  }
}

void SocketTransport::CompleteHandshake(int fd) {
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> body;
  // A dialing site writes its Hello immediately; a short bounded read keeps
  // a wedged dialer from stalling the engine.
  if (wire::ReadFrame(fd, /*timeout_ms=*/1000, type, body) != IoStatus::kOk ||
      type != FrameType::kHello) {
    ++socket_counters_.handshakes_rejected;
    close(fd);
    return;
  }
  wire::HelloFrame hello;
  WireReader r(body);
  if (!wire::DecodeHello(r, hello)) {
    ++socket_counters_.handshakes_rejected;
    close(fd);
    return;
  }
  const bool known = hello.site < conns_.size();
  const wire::HandshakeVerdict verdict = wire::EvaluateHandshake(
      hello, conns_.size(), known ? conns_[hello.site].incarnation : 0,
      known && conns_[hello.site].seen_before);

  wire::HelloAckFrame ack;
  ack.verdict = verdict;
  ack.site_count = static_cast<std::uint32_t>(conns_.size());
  ack.now = global_now_;
  ack.failure_detection_enabled = network_.failure_detection_enabled();
  ack.config = site_config_;
  WireWriter w;
  wire::EncodeHelloAck(w, ack);
  const IoStatus wrote = wire::WriteFrame(fd, FrameType::kHelloAck, w.data());

  if (!wire::HandshakeAccepted(verdict) || wrote != IoStatus::kOk) {
    ++socket_counters_.handshakes_rejected;
    close(fd);
    return;
  }

  Conn& conn = conns_[hello.site];
  if (conn.fd >= 0) close(conn.fd);  // stale link superseded by the redial
  conn.fd = fd;
  conn.seen_before = true;
  conn.responsive = true;
  conn.needs_resync = true;
  conn.awaiting_seq = 0;
  conn.rx.clear();
  conn.cached_next = Scheduler::kNoPendingEvent;
  ++socket_counters_.handshakes_accepted;

  switch (verdict) {
    case wire::HandshakeVerdict::kAcceptNew:
      break;
    case wire::HandshakeVerdict::kAcceptReconnect:
      // Same process, new socket: everything in flight is still valid.
      ++socket_counters_.reconnects;
      break;
    case wire::HandshakeVerdict::kAcceptRestart:
      // A replacement process. Deliveries addressed to the dead incarnation
      // died with it; the Network fences its stale traffic and dead-letters
      // its channels, and forgets its recovery listener (re-armed here for
      // the new incarnation).
      conn.incarnation = hello.incarnation;
      conn.outbound.clear();
      conn.recovered_pending.clear();
      // Pending notices were addressed to the dead incarnation; the
      // replacement restored from a snapshot and holds no volatile trace
      // state that a restart notice could scrub.
      conn.restarted_pending.clear();
      network_.NoteSiteRestarted(hello.site);
      InstallRecoveryListener(hello.site);
      // Tell every surviving site directly that this peer is a replacement.
      // The Network's fault-record path carries the same fact only when the
      // outage spanned enough *sim* time to be detected — a kill-to-redial
      // that completes within one simulated instant (the common case here:
      // restarts run on the real-time supervisor clock) would never be
      // reported, leaving survivors to wait out report_timeout before the
      // dead incarnation's traces release their visited marks.
      for (SiteId s = 0; s < conns_.size(); ++s) {
        if (s != hello.site && conns_[s].seen_before) {
          QueueRestartNotice(conns_[s], hello.site);
        }
      }
      ++socket_counters_.restarts_accepted;
      break;
    default:
      DGC_CHECK(false);
  }
  network_.SetSiteDown(hello.site, false);
}

void SocketTransport::Disconnect(Conn& conn, SiteId site) {
  if (conn.fd >= 0) close(conn.fd);
  conn.fd = -1;
  conn.rx.clear();
  conn.awaiting_seq = 0;
  conn.responsive = false;
  ++socket_counters_.disconnects;
  // Keep `outbound`: a severed-but-alive process reconnects at the same
  // incarnation and should still receive it; a genuine restart clears it in
  // CompleteHandshake. Mark the site down meanwhile so the heartbeat /
  // suspicion machinery sees the outage.
  network_.SetSiteDown(site, true);
}

void SocketTransport::AbsorbLateReplies() {
  for (SiteId s = 0; s < conns_.size(); ++s) {
    Conn& conn = conns_[s];
    if (conn.fd < 0 || conn.awaiting_seq == 0 || conn.responsive) continue;
    FrameType type = FrameType::kStepReply;
    std::vector<std::uint8_t> body;
    const IoStatus status =
        wire::ReadFrameBuffered(conn.fd, /*timeout_ms=*/0, conn.rx, type,
                                body);
    if (status == IoStatus::kTimeout) continue;  // still dark
    if (status != IoStatus::kOk || type != conn.awaiting_type) {
      Disconnect(conn, s);
      continue;
    }
    WireReader r(body);
    bool ok = false;
    // The owed reply finally arrived (the process was resumed). Its staged
    // sends enter the Network now — from the world's point of view the
    // paused site's work happens late, which is exactly what a stalled
    // process looks like to its peers.
    if (conn.awaiting_type == FrameType::kStepReply) {
      wire::StepReplyFrame reply;
      ok = wire::DecodeStepReply(r, reply) && reply.seq == conn.awaiting_seq;
      if (ok) {
        conn.cached_next = reply.next_event_time;
        ReplayStaged(conn, std::move(reply.staged));
      }
    } else if (conn.awaiting_type == FrameType::kBuildReply) {
      wire::BuildReplyFrame reply;
      ok = wire::DecodeBuildReply(r, reply) && reply.seq == conn.awaiting_seq;
      if (ok) {
        conn.cached_next = reply.next_event_time;
        ReplayStaged(conn, std::move(reply.staged));
      }
    } else if (conn.awaiting_type == FrameType::kQueryReply) {
      wire::QueryReplyFrame reply;
      ok = wire::DecodeQueryReply(r, reply) && reply.seq == conn.awaiting_seq;
    }
    if (!ok) {
      Disconnect(conn, s);
      continue;
    }
    conn.awaiting_seq = 0;
    conn.responsive = true;
    ++socket_counters_.late_replies;
    network_.SetSiteDown(s, false);
  }
}

void SocketTransport::DetectPeerFailures() {
  // A site that owes us nothing is never read by the engine, so a kill -9
  // between steps would otherwise go unnoticed until the next request.
  // A zero-timeout poll surfaces the hangup immediately, which flips the
  // site to disconnected and keeps Settle patient while the supervisor
  // arranges the replacement. (Awaiting conns are AbsorbLateReplies' job.)
  for (SiteId s = 0; s < conns_.size(); ++s) {
    Conn& conn = conns_[s];
    if (conn.fd < 0 || conn.awaiting_seq != 0) continue;
    pollfd p{conn.fd, POLLIN, 0};
    if (poll(&p, 1, 0) <= 0) continue;
    if ((p.revents & (POLLHUP | POLLERR)) != 0) {
      Disconnect(conn, s);
      continue;
    }
    if ((p.revents & POLLIN) == 0) continue;
    // Readable while nothing is owed: either EOF (dead peer) or a protocol
    // violation; a zero-timeout read distinguishes a partial frame (left in
    // the carry) from either.
    FrameType type = FrameType::kHello;
    std::vector<std::uint8_t> body;
    const IoStatus status =
        wire::ReadFrameBuffered(conn.fd, /*timeout_ms=*/0, conn.rx, type,
                                body);
    if (status == IoStatus::kTimeout) continue;  // partial frame, keep
    Disconnect(conn, s);  // EOF, or an unsolicited frame — both fatal
  }
}

bool SocketTransport::PollIo() {
  const std::uint64_t accepted = socket_counters_.handshakes_accepted;
  const std::uint64_t late = socket_counters_.late_replies;
  const std::uint64_t dropped = socket_counters_.disconnects;
  AcceptPending();
  AbsorbLateReplies();
  DetectPeerFailures();
  bool changed = socket_counters_.handshakes_accepted != accepted ||
                 socket_counters_.late_replies != late ||
                 socket_counters_.disconnects != dropped;
  if (hooks_.poll && hooks_.poll()) changed = true;
  return changed;
}

bool SocketTransport::WaitForAllConnected(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    PollIo();
    const bool all = std::all_of(conns_.begin(), conns_.end(),
                                 [](const Conn& c) { return c.fd >= 0; });
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---------------------------------------------------------------------------
// Engine.

std::vector<SiteId> SocketTransport::SuspectedBy(SiteId site) const {
  std::vector<SiteId> suspected;
  if (!network_.failure_detection_enabled()) return suspected;
  for (SiteId peer = 0; peer < conns_.size(); ++peer) {
    if (peer != site && network_.IsPeerSuspected(site, peer)) {
      suspected.push_back(peer);
    }
  }
  return suspected;
}

SimTime SocketTransport::NextEventTime() const {
  SimTime next = control_.next_event_time();
  for (const Conn& conn : conns_) {
    // Down or paused sites cannot act; their timers resume mattering when
    // the process rejoins (PollIo marks them responsive again).
    if (conn.fd < 0 || !conn.responsive || conn.awaiting_seq != 0) continue;
    if (conn.needs_resync || !conn.outbound.empty()) {
      next = std::min(next, global_now_);
    } else {
      next = std::min(next, conn.cached_next);
    }
  }
  return next;
}

void SocketTransport::SendStepRequest(SiteId site, SimTime t) {
  Conn& conn = conns_[site];
  wire::StepRequestFrame req;
  req.seq = next_seq_++;
  req.target_time = t;
  req.suspected = SuspectedBy(site);
  req.recovered = std::move(conn.recovered_pending);
  conn.recovered_pending.clear();
  req.restarted = std::move(conn.restarted_pending);
  conn.restarted_pending.clear();
  req.envelopes = std::move(conn.outbound);
  conn.outbound.clear();

  WireWriter w;
  wire::EncodeStepRequest(w, req);
  // writev: header + body gathered in one syscall, no frame-buffer copy of
  // what may be a large envelope batch.
  if (wire::WriteFrameV(conn.fd, FrameType::kStepRequest, w.data()) !=
      IoStatus::kOk) {
    // Link died as we wrote. Re-queue the deliveries for after the redial
    // (a restarting site drops them in CompleteHandshake anyway).
    conn.outbound = std::move(req.envelopes);
    conn.recovered_pending = std::move(req.recovered);
    conn.restarted_pending = std::move(req.restarted);
    Disconnect(conn, site);
    return;
  }
  if (conn.needs_resync) {
    conn.needs_resync = false;
    ++socket_counters_.resync_steps;
  }
  conn.awaiting_seq = req.seq;
  conn.awaiting_type = FrameType::kStepReply;
  conn.handoffs += req.envelopes.size();
  counters_.handoffs += req.envelopes.size();
  ++conn.steps;
  ++socket_counters_.step_requests;
}

void SocketTransport::ReplayStaged(Conn& conn, std::vector<Envelope> staged) {
  for (Envelope& env : staged) {
    ++counters_.staged_sends;
    ++conn.staged_sends;
    network_.Send(env.from, env.to, std::move(env.payload));
  }
}

void SocketTransport::AwaitStepReply(SiteId site) {
  Conn& conn = conns_[site];
  if (conn.fd < 0 || conn.awaiting_seq == 0) return;  // write already failed
  FrameType type = FrameType::kStepReply;
  std::vector<std::uint8_t> body;
  const IoStatus status = wire::ReadFrameBuffered(
      conn.fd, socket_config_.step_timeout_ms, conn.rx, type, body);
  if (status == IoStatus::kTimeout) {
    // The process is dark but (as far as we know) alive — SIGSTOP chaos or
    // a real stall. Leave the request outstanding; the reply is absorbed
    // whenever it surfaces. Meanwhile the site is down to the failure
    // detector, exactly like a crashed site, and the world moves on.
    ++socket_counters_.step_timeouts;
    conn.responsive = false;
    network_.SetSiteDown(site, true);
    return;
  }
  if (status != IoStatus::kOk || type != FrameType::kStepReply) {
    Disconnect(conn, site);
    return;
  }
  wire::StepReplyFrame reply;
  WireReader r(body);
  if (!wire::DecodeStepReply(r, reply) || reply.seq != conn.awaiting_seq) {
    Disconnect(conn, site);
    return;
  }
  conn.awaiting_seq = 0;
  conn.cached_next = reply.next_event_time;
  ReplayStaged(conn, std::move(reply.staged));
}

void SocketTransport::CollectStepReplies() {
  reply_state_.assign(conns_.size(), ReplySlot::kIdle);
  reply_frames_.resize(conns_.size());
  std::vector<SiteId> pending;
  pending.reserve(involved_.size());
  for (SiteId s : involved_) {
    const Conn& conn = conns_[s];
    if (conn.fd >= 0 && conn.awaiting_seq != 0) {
      reply_state_[s] = ReplySlot::kPending;
      pending.push_back(s);
    }
  }
  // One deadline for the whole wave: every request is already in flight, so
  // each site enjoys the full step_timeout_ms of real computing time — what
  // the serial loop only granted site k after sites 0..k-1 answered.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(socket_config_.step_timeout_ms);
  std::vector<pollfd> pfds;
  while (!pending.empty()) {
    // Drain pass, non-blocking: complete frames (including any already
    // sitting in a carry buffer) decode now; partial frames stay pending
    // with their bytes kept in the carry.
    for (std::size_t i = 0; i < pending.size();) {
      const SiteId s = pending[i];
      Conn& conn = conns_[s];
      FrameType type = FrameType::kStepReply;
      std::vector<std::uint8_t> body;
      const IoStatus status = wire::ReadFrameBuffered(
          conn.fd, /*timeout_ms=*/0, conn.rx, type, body);
      if (status == IoStatus::kTimeout) {
        ++i;
        continue;
      }
      bool ok = false;
      if (status == IoStatus::kOk && type == FrameType::kStepReply) {
        WireReader r(body);
        ok = wire::DecodeStepReply(r, reply_frames_[s]) &&
             reply_frames_[s].seq == conn.awaiting_seq;
      }
      reply_state_[s] = ok ? ReplySlot::kOk : ReplySlot::kFailed;
      pending[i] = pending.back();
      pending.pop_back();
    }
    if (pending.empty()) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const int wait = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1);
    pfds.clear();
    for (SiteId s : pending) pfds.push_back({conns_[s].fd, POLLIN, 0});
    const int rc = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), wait);
    if (rc < 0 && errno != EINTR) break;
  }
  // Whatever is still pending missed the shared deadline; ResolveStepReplies
  // applies the serial loop's exact timeout handling.
}

void SocketTransport::ResolveStepReplies() {
  bool all_ok = true;
  std::size_t busy_senders = 0;
  for (SiteId s : involved_) {
    const ReplySlot slot = reply_state_[s];
    if (slot == ReplySlot::kIdle) continue;  // write failed; no reply owed
    if (slot != ReplySlot::kOk) {
      all_ok = false;
    } else if (!reply_frames_[s].staged.empty()) {
      ++busy_senders;
    }
  }
  // Sharded replay only for fault-free waves: a timeout or disconnect in
  // the wave mutates fault state between earlier and later sites' replays
  // under the serial contract, which a parallel prepare would not observe.
  const bool parallel = all_ok && !serial_replay_ && busy_senders >= 2 &&
                        replay_pool_->worker_threads() > 0 &&
                        network_.SupportsParallelReplay();
  if (parallel) {
    network_.ReserveSenderShards(conns_.size());
    if (replay_shards_.size() < conns_.size()) {
      replay_shards_.resize(conns_.size());
    }
    replay_pool_->RunBatch(
        involved_.size(),
        [this](std::size_t i) {
          const SiteId s = involved_[i];
          if (reply_state_[s] != ReplySlot::kOk) return;
          Network::ReplayShard& shard = replay_shards_[s];
          for (Envelope& env : reply_frames_[s].staged) {
            network_.PrepareSend(env.from, env.to, std::move(env.payload),
                                 shard);
          }
        },
        involved_.size());
    ++counters_.parallel_replays;
  }
  for (SiteId s : involved_) {
    Conn& conn = conns_[s];
    switch (reply_state_[s]) {
      case ReplySlot::kIdle:
        break;
      case ReplySlot::kOk:
        conn.awaiting_seq = 0;
        conn.cached_next = reply_frames_[s].next_event_time;
        if (parallel) {
          const std::size_t n = reply_frames_[s].staged.size();
          counters_.staged_sends += n;
          conn.staged_sends += n;
          network_.CommitPrepared(replay_shards_[s]);
        } else {
          ReplayStaged(conn, std::move(reply_frames_[s].staged));
        }
        break;
      case ReplySlot::kFailed:
        Disconnect(conn, s);
        break;
      case ReplySlot::kPending:
        // Exact serial-timeout semantics: the process is dark but (as far
        // as we know) alive. Leave the request outstanding for
        // AbsorbLateReplies; the failure detector sees the site down.
        ++socket_counters_.step_timeouts;
        conn.responsive = false;
        network_.SetSiteDown(s, true);
        break;
    }
    reply_frames_[s] = wire::StepReplyFrame{};  // release envelope buffers
  }
}

void SocketTransport::AdvanceWorldTo(SimTime t) {
  DGC_CHECK(t >= global_now_);
  global_now_ = t;
  ++counters_.timesteps;
  std::uint64_t phases_this_step = 0;
  for (;;) {
    // Control phase: deliveries (into outbound buffers via the dispatcher),
    // retransmit timers, fault-plan hooks — single-threaded, same as the
    // threaded backend's coordinator.
    control_.RunUntil(t);

    involved_.clear();
    for (SiteId s = 0; s < conns_.size(); ++s) {
      const Conn& conn = conns_[s];
      if (conn.fd < 0 || !conn.responsive || conn.awaiting_seq != 0) continue;
      if (conn.needs_resync || !conn.outbound.empty() ||
          conn.cached_next <= t) {
        involved_.push_back(s);
      }
    }
    if (involved_.empty()) break;  // quiescent at t

    DGC_CHECK_MSG(++phases_this_step <= kMaxPhasesPerTimestep,
                  "transport livelock: " << phases_this_step
                                         << " phases at t=" << t);
    ++counters_.parallel_phases;
    counters_.site_steps += involved_.size();

    // Fan the requests out first (sites compute concurrently for real).
    // Replies are then either collected in arrival order and applied in
    // site order (pipelined, the default) or awaited one site at a time
    // (serial, the differential baseline) — both fix the order staged
    // sends enter the Network to involved-site order, the same determinism
    // contract the threaded backend's replay loop provides.
    for (SiteId s : involved_) SendStepRequest(s, t);
    if (socket_config_.pipelined_steps) {
      CollectStepReplies();
      ResolveStepReplies();
    } else {
      for (SiteId s : involved_) AwaitStepReply(s);
    }
  }
}

void SocketTransport::SyncClocksTo(SimTime t) {
  control_.RunUntil(t);
  global_now_ = t;
  // Site clocks catch up from the next frame each receives (step, build, or
  // query frames all carry the instant).
}

void SocketTransport::RunUntilTime(SimTime t) {
  DGC_CHECK(t >= global_now_);
  for (;;) {
    PollIo();
    const SimTime next = NextEventTime();
    if (next > t) break;  // covers kNoPendingEvent
    AdvanceWorldTo(std::max(next, global_now_));
  }
  SyncClocksTo(t);
}

bool SocketTransport::StepOne() {
  PollIo();
  const SimTime next = NextEventTime();
  if (next == Scheduler::kNoPendingEvent) return false;
  AdvanceWorldTo(std::max(next, global_now_));
  return true;
}

bool SocketTransport::ExternalProgressPossible() const {
  for (const Conn& conn : conns_) {
    if (conn.fd < 0) return true;  // a redial or restart may arrive
    if (conn.awaiting_seq != 0 && !conn.responsive) return true;  // owed
  }
  if (hooks_.restart_pending && hooks_.restart_pending()) return true;
  return false;
}

void SocketTransport::Settle() {
  // Simulated work first; when the visible world is idle, grant bounded
  // real time for external progress — supervisor restart backoff, a paused
  // process resuming, a severed process redialing. Any observed progress
  // resets the patience.
  int waited_ms = 0;
  while (true) {
    const bool changed = PollIo();
    if (changed) waited_ms = 0;
    const SimTime next = NextEventTime();
    if (next != Scheduler::kNoPendingEvent) {
      AdvanceWorldTo(std::max(next, global_now_));
      waited_ms = 0;
      continue;
    }
    if (!ExternalProgressPossible()) break;
    if (waited_ms >= socket_config_.settle_grace_ms) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    waited_ms += 2;
  }
  SyncClocksTo(global_now_);
}

// ---------------------------------------------------------------------------
// God-mode operations (SocketWorld).

bool SocketTransport::RunBuildOp(SiteId site, wire::BuildOpFrame op,
                                 wire::BuildReplyFrame& out) {
  PollIo();
  Conn& conn = conns_[site];
  if (conn.fd < 0 || !conn.responsive || conn.awaiting_seq != 0) return false;
  op.seq = next_seq_++;
  op.time = global_now_;
  WireWriter w;
  wire::EncodeBuildOp(w, op);
  if (wire::WriteFrame(conn.fd, FrameType::kBuildOp, w.data()) !=
      IoStatus::kOk) {
    Disconnect(conn, site);
    return false;
  }
  FrameType type = FrameType::kBuildReply;
  std::vector<std::uint8_t> body;
  const IoStatus status = wire::ReadFrameBuffered(
      conn.fd, socket_config_.step_timeout_ms, conn.rx, type, body);
  if (status == IoStatus::kTimeout) {
    // The process went dark mid-op (SIGSTOP chaos). Same handling as a step
    // timeout: mark it paused, remember the owed reply; AbsorbLateReplies
    // replays its staged sends whenever it resumes.
    ++socket_counters_.step_timeouts;
    conn.responsive = false;
    conn.awaiting_seq = op.seq;
    conn.awaiting_type = FrameType::kBuildReply;
    network_.SetSiteDown(site, true);
    return false;
  }
  if (status != IoStatus::kOk || type != FrameType::kBuildReply) {
    Disconnect(conn, site);
    return false;
  }
  WireReader r(body);
  if (!wire::DecodeBuildReply(r, out) || out.seq != op.seq) {
    Disconnect(conn, site);
    return false;
  }
  ++socket_counters_.build_ops;
  conn.cached_next = out.next_event_time;
  ReplayStaged(conn, std::move(out.staged));
  return true;
}

bool SocketTransport::RunQuery(SiteId site, wire::QueryReplyFrame& out) {
  PollIo();
  Conn& conn = conns_[site];
  if (conn.fd < 0 || !conn.responsive || conn.awaiting_seq != 0) return false;
  wire::QueryFrame query;
  query.seq = next_seq_++;
  query.time = global_now_;
  WireWriter w;
  wire::EncodeQuery(w, query);
  if (wire::WriteFrame(conn.fd, FrameType::kQuery, w.data()) !=
      IoStatus::kOk) {
    Disconnect(conn, site);
    return false;
  }
  FrameType type = FrameType::kQueryReply;
  std::vector<std::uint8_t> body;
  const IoStatus status = wire::ReadFrameBuffered(
      conn.fd, socket_config_.step_timeout_ms, conn.rx, type, body);
  if (status == IoStatus::kTimeout) {
    ++socket_counters_.step_timeouts;
    conn.responsive = false;
    conn.awaiting_seq = query.seq;
    conn.awaiting_type = FrameType::kQueryReply;
    network_.SetSiteDown(site, true);
    return false;
  }
  if (status != IoStatus::kOk || type != FrameType::kQueryReply) {
    Disconnect(conn, site);
    return false;
  }
  WireReader r(body);
  if (!wire::DecodeQueryReply(r, out) || out.seq != query.seq) {
    Disconnect(conn, site);
    return false;
  }
  ++socket_counters_.queries;
  return true;
}

void SocketTransport::SeverConnection(SiteId site) {
  DGC_CHECK(site < conns_.size());
  Conn& conn = conns_[site];
  if (conn.fd < 0) return;
  ++socket_counters_.severed;
  Disconnect(conn, site);
}

void SocketTransport::ShutdownAll() {
  for (SiteId s = 0; s < conns_.size(); ++s) {
    Conn& conn = conns_[s];
    if (conn.fd < 0) continue;
    WireWriter w;
    if (wire::WriteFrame(conn.fd, FrameType::kShutdown, w.data()) ==
        IoStatus::kOk) {
      FrameType type = FrameType::kShutdownAck;
      std::vector<std::uint8_t> body;
      (void)wire::ReadFrameBuffered(conn.fd, /*timeout_ms=*/500, conn.rx,
                                    type, body);
    }
    close(conn.fd);
    conn.fd = -1;
  }
}

// ---------------------------------------------------------------------------
// Counters.

TransportCounters SocketTransport::counters() const {
  return counters_;
}

SiteTransportCounters SocketTransport::site_counters(SiteId site) const {
  DGC_CHECK(site < conns_.size());
  const Conn& conn = conns_[site];
  SiteTransportCounters out;
  out.handoffs = conn.handoffs;
  out.staged_sends = conn.staged_sends;
  out.steps = conn.steps;
  return out;
}

}  // namespace dgc
