// Coordinator side of the socket transport: real-process sites over
// Unix-domain stream sockets.
//
// The engine is ThreadedTransport's conservative time-stepped fixpoint with
// the parallel phase replaced by StepRequest/StepReply round trips: the
// coordinator owns the control Scheduler and the ONE Network (so the whole
// reliable-delivery / incarnation / failure-detector machinery from PR 4
// applies to real links unchanged), intercepts finished deliveries with the
// Network dispatcher into per-site outbound buffers, ships them to the site
// processes inside StepRequests, and replays the staged sends that come back
// in StepReplies into the Network in site order — the same fixed,
// interleaving-free order the threaded backend uses, so seeded runs under
// the default jitter-free network produce verdicts and reclaim sets
// identical to SimTransport.
//
// The step loop is PIPELINED by default (socket.pipelined_steps): one
// StepRequest is in flight to every involved site simultaneously, replies
// are absorbed in whatever order they arrive under a single shared
// real-time deadline, and the wave is applied in involved-site order — so
// N sites overlap their computing instead of serializing behind the
// slowest, while the Network still observes the serial loop's exact
// mutation order. Fault-free waves additionally shard staged-send replay
// across senders on a coordinator worker pool (Network::PrepareSend /
// CommitPrepared), committing per site in order.
//
// Failure handling is where this backend earns its keep:
//
//   * step timeout, process alive  -> the site is PAUSED (SIGSTOP chaos, GC
//     stall): it is marked down in the Network (heartbeat/suspicion
//     machinery degrades gracefully), excluded from the involved set, its
//     outbound is retained, and its owed reply is absorbed whenever it
//     arrives — strictly one outstanding request per site, so a resumed
//     process never sees interleaved frames;
//   * EOF / dead process           -> CRASHED: outbound to the dead
//     incarnation is dropped, the supervisor restarts the process with
//     backoff, and the replacement dials back in at incarnation + 1 — the
//     handshake classifies kAcceptRestart, NoteSiteRestarted fences stale
//     traffic and dead-letters the old channels, and a resync step collects
//     the restored site's re-registration InsertMsgs;
//   * severed socket, process alive-> the site redials at the SAME
//     incarnation (kAcceptReconnect): no fencing, outbound retained.
//
// Addressing is a single Unix-domain listening socket; nothing in the
// protocol depends on it (frames are a plain byte stream, TCP-ready).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/worker_pool.h"
#include "net/network.h"
#include "net/transport.h"
#include "net/wire.h"
#include "sim/scheduler.h"

namespace dgc {

struct SocketCounters {
  std::uint64_t handshakes_accepted = 0;
  std::uint64_t handshakes_rejected = 0;  // bad magic/version/site/stale
  std::uint64_t reconnects = 0;           // same-incarnation re-dials
  std::uint64_t restarts_accepted = 0;    // incarnation+1 replacements
  std::uint64_t step_requests = 0;
  std::uint64_t step_timeouts = 0;  // replies not received in time
  std::uint64_t late_replies = 0;   // owed replies absorbed after a timeout
  std::uint64_t resync_steps = 0;   // first step after a (re)connection
  std::uint64_t build_ops = 0;
  std::uint64_t queries = 0;
  std::uint64_t severed = 0;      // connections closed by chaos
  std::uint64_t disconnects = 0;  // EOF/EPIPE observed on a site link
};

class SocketTransport final : public Transport {
 public:
  /// Binds the listening socket at `socket_path` (must not exist yet; the
  /// caller owns the directory). Site processes are spawned by the caller
  /// and dial in; WaitForAllConnected gates the first engine call.
  SocketTransport(std::size_t site_count, Scheduler& control,
                  NetworkConfig config, Rng rng, std::string socket_path);
  ~SocketTransport() override;

  // --- Transport interface ----------------------------------------------

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kSocket;
  }
  [[nodiscard]] Network& network() override { return network_; }
  [[nodiscard]] const Network& network() const override { return network_; }
  [[nodiscard]] Scheduler& control_scheduler() override { return control_; }
  /// There are no in-process sites; every site-side scheduler lives in its
  /// own process. God-mode callers get the control scheduler.
  [[nodiscard]] Scheduler& SchedulerFor(SiteId /*site*/) override {
    return control_;
  }

  /// Sites are remote processes; nothing in this process may register one.
  void RegisterSite(SiteId site, Network::Handler handler) override;

  /// God-mode send from the coordinator: straight into the Network, same as
  /// the other backends between engine calls.
  void Send(SiteId from, SiteId to, Payload payload) override;

  [[nodiscard]] SimTime now() const override { return global_now_; }
  void RunUntilTime(SimTime t) override;
  /// One engine timestep: poll I/O, then advance to the earliest pending
  /// instant (coordinator timer or a site's cached next event). Returns
  /// false when the visible world is idle.
  bool StepOne() override;
  void Settle() override;

  [[nodiscard]] TransportCounters counters() const override;
  [[nodiscard]] SiteTransportCounters site_counters(
      SiteId site) const override;

  // --- Coordinator surface (SocketWorld) --------------------------------

  /// Hooks into the process supervisor. `poll` reaps exits and executes due
  /// restarts (returns true when anything changed); `restart_pending` is
  /// true while a replacement process is scheduled or a site may still come
  /// back — it keeps Settle patient across real-time restart backoff.
  struct ExternalHooks {
    std::function<bool()> poll;
    std::function<bool()> restart_pending;
  };
  void set_hooks(ExternalHooks hooks) { hooks_ = std::move(hooks); }

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }
  /// The CollectorConfig shipped in every HelloAck (sites build their Site
  /// from it, so coordinator and site must agree on derived timeouts).
  void set_site_config(const CollectorConfig& config) {
    site_config_ = config;
  }

  /// Accepts handshakes until every site is connected (or the real-time
  /// budget runs out). Returns false on timeout.
  [[nodiscard]] bool WaitForAllConnected(int timeout_ms);

  /// Accepts pending connections (handshakes), absorbs owed late replies,
  /// and runs the supervisor poll hook. Called internally at every engine
  /// boundary; exposed so the world can pump between god-mode calls.
  /// Returns true when anything changed (Settle's patience resets).
  bool PollIo();

  /// Applies one god-mode operation on a remote site and replays the sends
  /// it staged. Returns false without applying when the site is down,
  /// paused, or goes dark mid-op (the owed late reply is then absorbed by
  /// PollIo like a step timeout's).
  [[nodiscard]] bool RunBuildOp(SiteId site, wire::BuildOpFrame op,
                                wire::BuildReplyFrame& out);

  /// Fetches a site's census. Returns false when the site is not currently
  /// answerable (down, paused, restart pending).
  [[nodiscard]] bool RunQuery(SiteId site, wire::QueryReplyFrame& out);

  /// Chaos: closes the coordinator end of the site's connection mid-run.
  /// The surviving process redials and reconnects at the same incarnation.
  void SeverConnection(SiteId site);

  /// Clean shutdown: sends Shutdown to every connected site and closes.
  void ShutdownAll();

  [[nodiscard]] const SocketCounters& socket_counters() const {
    return socket_counters_;
  }
  /// Incarnation currently registered for a site (bumped by accepted
  /// restart handshakes, in lockstep with the Network's).
  [[nodiscard]] std::uint32_t incarnation(SiteId site) const {
    return conns_[site].incarnation;
  }
  [[nodiscard]] bool connected(SiteId site) const {
    return conns_[site].fd >= 0;
  }
  [[nodiscard]] bool responsive(SiteId site) const {
    return conns_[site].fd >= 0 && conns_[site].responsive;
  }

  /// Phase-alternation budget per timestep (same livelock guard as the
  /// threaded backend).
  static constexpr std::uint64_t kMaxPhasesPerTimestep = 1'000'000;

 private:
  struct Conn {
    int fd = -1;
    bool seen_before = false;  // ever completed a handshake
    std::uint32_t incarnation = 0;
    bool responsive = true;
    bool needs_resync = false;  // first step after a (re)connect
    /// Outstanding request the site owes a reply for (0 = none). Strictly
    /// one outstanding frame per site, so a paused process resumes into a
    /// clean request/reply cadence.
    std::uint64_t awaiting_seq = 0;
    wire::FrameType awaiting_type = wire::FrameType::kStepReply;
    /// Deliveries finished by the Network, awaiting shipment.
    std::vector<Envelope> outbound;
    /// Site's next pending timer instant from its last reply.
    SimTime cached_next = Scheduler::kNoPendingEvent;
    /// Peers whose recovery the site must be told about (queued by the
    /// coordinator's per-site Network recovery listener).
    std::vector<SiteId> recovered_pending;
    /// Peers that rejoined as a new incarnation; shipped in the next
    /// StepRequest so the site scrubs back traces the dead incarnation
    /// initiated (queued directly from the restart handshake — the
    /// fault-record path can miss restarts that heal within a sim instant).
    std::vector<SiteId> restarted_pending;
    /// Receive carry buffer: partial frames survive poll timeouts.
    std::vector<std::uint8_t> rx;
    // Per-site accounting (mirrors into SiteStats via site_counters()).
    std::uint64_t handoffs = 0;
    std::uint64_t staged_sends = 0;
    std::uint64_t steps = 0;
  };

  void BindListener();
  void AcceptPending();
  /// Reads the Hello off a fresh connection, classifies it, replies, and on
  /// acceptance installs the fd into the site's Conn.
  void CompleteHandshake(int fd);
  void InstallRecoveryListener(SiteId site);
  /// Queues "peer restarted" for `conn`'s next StepRequest (deduplicated: a
  /// peer flapping between two of the observer's steps is one notice).
  static void QueueRestartNotice(Conn& conn, SiteId peer);
  void Disconnect(Conn& conn, SiteId site);
  void AbsorbLateReplies();
  /// Zero-timeout poll over idle connections: surfaces kill -9 hangups the
  /// moment they happen instead of at the next request to that site.
  void DetectPeerFailures();

  [[nodiscard]] SimTime NextEventTime() const;
  void AdvanceWorldTo(SimTime t);
  /// Ships a StepRequest at time t (envelopes + FD state) to one site.
  void SendStepRequest(SiteId site, SimTime t);
  /// Awaits the site's owed StepReply; classifies timeout (paused) vs EOF
  /// (crashed/severed) and replays staged sends on success. The serial
  /// (one-site-at-a-time) collection path; the pipelined engine uses
  /// CollectStepReplies + ResolveStepReplies instead.
  void AwaitStepReply(SiteId site);
  /// Pipelined collection: with a StepRequest already in flight to every
  /// involved site, polls all owed connections under ONE shared real-time
  /// deadline (step_timeout_ms for the whole wave — fair, since the
  /// requests fanned out together), draining readable fds without blocking
  /// so replies absorb as they land, in any arrival order. Decoded frames
  /// park in per-site slots; nothing touches the Network here.
  void CollectStepReplies();
  /// Applies the collected wave strictly in involved-site order — success
  /// (clear awaiting, cache next event, replay staged), protocol failure
  /// (Disconnect), or still-pending at the deadline (exact serial timeout
  /// handling: the site is paused, its owed reply absorbs late). Site-order
  /// replay keeps scheduler insertion order — and therefore verdicts and
  /// reclaim sets — bit-identical to the serial loop. Fault-free waves with
  /// two or more busy senders prepare their sends in parallel on the replay
  /// pool and commit per site in order (the threaded backend's sharded
  /// replay, reused over the wire).
  void ResolveStepReplies();
  /// Replays a reply's staged sends into the Network, in call order.
  void ReplayStaged(Conn& conn, std::vector<Envelope> staged);
  void SyncClocksTo(SimTime t);
  [[nodiscard]] std::vector<SiteId> SuspectedBy(SiteId site) const;
  /// True while any real-time external event may still produce simulated
  /// work: a pending restart, a disconnected-but-recoverable site, or an
  /// owed late reply.
  [[nodiscard]] bool ExternalProgressPossible() const;

  Scheduler& control_;
  Network network_;
  SocketConfig socket_config_;
  std::string socket_path_;
  int listen_fd_ = -1;
  CollectorConfig site_config_;
  ExternalHooks hooks_;
  std::vector<Conn> conns_;
  std::uint64_t next_seq_ = 1;
  SimTime global_now_ = 0;
  std::vector<SiteId> involved_;  // scratch for the phase loop

  /// Per-site outcome of a pipelined collection wave.
  enum class ReplySlot : std::uint8_t {
    kIdle,     // nothing owed (write failed before the wave)
    kPending,  // no complete reply by the shared deadline: paused
    kOk,       // decoded reply parked in reply_frames_
    kFailed,   // EOF / garbage / seq mismatch: disconnect
  };
  std::vector<ReplySlot> reply_state_;             // scratch, per site
  std::vector<wire::StepReplyFrame> reply_frames_; // scratch, per site

  bool serial_replay_ = false;
  /// Shards staged-send replay across senders for fault-free waves; sized
  /// from transport_pool_threads (auto: min(hardware, sites) - 1).
  std::unique_ptr<WorkerPool> replay_pool_;
  std::vector<Network::ReplayShard> replay_shards_;

  TransportCounters counters_;
  SocketCounters socket_counters_;
};

}  // namespace dgc
