#include "net/socket_world.h"

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"
#include "net/site_host.h"

namespace dgc {

SocketWorld::SocketWorld(SocketWorldOptions options)
    : options_(std::move(options)) {
  DGC_CHECK(options_.site_count > 0);
  options_.network.transport = TransportKind::kSocket;
  // Same derivation System's constructor applies, so the CollectorConfig
  // shipped to site processes carries identical protocol timeouts.
  DeriveReliabilityTimeouts(options_.collector, options_.network);

  if (options_.state_dir.empty()) {
    char tmpl[] = "/tmp/dgc_socket_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    DGC_CHECK_MSG(dir != nullptr, "mkdtemp failed");
    state_dir_ = dir;
    owns_state_dir_ = true;
  } else {
    state_dir_ = options_.state_dir;
  }

  transport_ = std::make_unique<SocketTransport>(
      options_.site_count, control_, options_.network, Rng(options_.seed),
      state_dir_ + "/coordinator.sock");
  transport_->set_site_config(options_.collector);

  Supervisor::Options sup;
  sup.backoff_initial_ms = options_.network.socket.restart_backoff_initial_ms;
  sup.backoff_max_ms = options_.network.socket.restart_backoff_max_ms;
  sup.max_restarts = options_.network.socket.max_restarts;
  sup.healthy_uptime_reset_ms =
      options_.network.socket.restart_backoff_reset_ms;
  supervisor_ = std::make_unique<Supervisor>(sup);

  for (SiteId s = 0; s < options_.site_count; ++s) {
    Supervisor::SiteSpec spec;
    if (options_.site_exec_argv.empty()) {
      SiteHostOptions host;
      host.socket_path = transport_->socket_path();
      host.site = s;
      host.snapshot_path = SnapshotPathFor(s);
      host.snapshot_each_step = options_.network.socket.snapshot_each_step;
      spec.run = [host] { return RunSiteProcess(host); };
    } else {
      spec.exec_argv = options_.site_exec_argv;
      spec.exec_argv.insert(spec.exec_argv.end(),
                            {"--role", "site", "--site", std::to_string(s),
                             "--socket", transport_->socket_path(),
                             "--snapshot", SnapshotPathFor(s)});
    }
    supervisor_->AddSite(std::move(spec));
  }

  transport_->set_hooks({
      /*poll=*/[this] { return supervisor_->Poll(); },
      /*restart_pending=*/[this] { return supervisor_->AnyRestartPending(); },
  });

  supervisor_->StartAll();
  DGC_CHECK_MSG(transport_->WaitForAllConnected(options_.connect_timeout_ms),
                "site processes did not all connect within "
                    << options_.connect_timeout_ms << "ms");
}

SocketWorld::~SocketWorld() {
  transport_->ShutdownAll();
  supervisor_->TerminateAll();
  transport_.reset();
  if (owns_state_dir_) {
    // Best-effort cleanup of the snapshots; the (now unlinked) socket and
    // the directory itself.
    for (SiteId s = 0; s < options_.site_count; ++s) {
      unlink(SnapshotPathFor(s).c_str());
      unlink((SnapshotPathFor(s) + ".tmp").c_str());
    }
    rmdir(state_dir_.c_str());
  }
}

std::string SocketWorld::SnapshotPathFor(SiteId site) const {
  return state_dir_ + "/site_" + std::to_string(site) + ".snap";
}

// ---------------------------------------------------------------------------
// Build surface.

// Build ops are god-mode test scaffolding: issuing one against a site that
// is down or paused is a driver bug, hence the DGC_CHECKs here. RunRound is
// the exception — a round must tolerate a faulted site (see below).
ObjectId SocketWorld::NewObject(SiteId site, std::size_t slots) {
  wire::BuildOpFrame op;
  op.op = wire::BuildOpKind::kNewObject;
  op.n = slots;
  wire::BuildReplyFrame reply;
  DGC_CHECK_MSG(transport_->RunBuildOp(site, op, reply),
                "NewObject on unreachable site " << site);
  DGC_CHECK(reply.result.valid() && reply.result.site == site);
  return reply.result;
}

void SocketWorld::SetPersistentRoot(ObjectId obj) {
  wire::BuildOpFrame op;
  op.op = wire::BuildOpKind::kSetRoot;
  op.a = obj;
  wire::BuildReplyFrame reply;
  DGC_CHECK_MSG(transport_->RunBuildOp(obj.site, op, reply),
                "SetPersistentRoot on unreachable site " << obj.site);
}

void SocketWorld::Wire(ObjectId source, std::size_t slot, ObjectId target) {
  wire::BuildReplyFrame reply;
  if (!target.valid() || target.site == source.site) {
    wire::BuildOpFrame op;
    op.op = wire::BuildOpKind::kWireLocal;
    op.a = source;
    op.b = target;
    op.slot = static_cast<std::uint32_t>(slot);
    DGC_CHECK_MSG(transport_->RunBuildOp(source.site, op, reply),
                  "Wire on unreachable site " << source.site);
    return;
  }
  // Cross-site: the two halves of Site::WireSlotTo, applied in the same
  // order (source slot + outref first, then the target-side inref).
  wire::BuildOpFrame src;
  src.op = wire::BuildOpKind::kWireSource;
  src.a = source;
  src.b = target;
  src.slot = static_cast<std::uint32_t>(slot);
  DGC_CHECK_MSG(transport_->RunBuildOp(source.site, src, reply),
                "Wire on unreachable site " << source.site);

  wire::BuildOpFrame dst;
  dst.op = wire::BuildOpKind::kWireTarget;
  dst.a = ObjectId{source.site, 0};  // only the site half is meaningful
  dst.b = target;
  DGC_CHECK_MSG(transport_->RunBuildOp(target.site, dst, reply),
                "Wire on unreachable site " << target.site);
}

void SocketWorld::Unwire(ObjectId source, std::size_t slot) {
  wire::BuildOpFrame op;
  op.op = wire::BuildOpKind::kUnwire;
  op.a = source;
  op.slot = static_cast<std::uint32_t>(slot);
  wire::BuildReplyFrame reply;
  DGC_CHECK_MSG(transport_->RunBuildOp(source.site, op, reply),
                "Unwire on unreachable site " << source.site);
}

void SocketWorld::RunRound() {
  for (SiteId s = 0; s < options_.site_count; ++s) {
    if (transport_->responsive(s)) {
      wire::BuildOpFrame op;
      op.op = wire::BuildOpKind::kStartTrace;
      // A site may go dark (or die) mid-round; the round continues without
      // it — exactly how System's RunRound behaves under a SiteOutage.
      wire::BuildReplyFrame reply;
      (void)transport_->RunBuildOp(s, op, reply);
    }
    SettleNetwork();
  }
}

void SocketWorld::RunRounds(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) RunRound();
}

void SocketWorld::SettleNetwork() { transport_->Settle(); }

// ---------------------------------------------------------------------------
// Census.

bool SocketWorld::QuerySite(SiteId site, wire::QueryReplyFrame& out) {
  return transport_->RunQuery(site, out);
}

std::vector<ObjectId> SocketWorld::SurvivingObjects() {
  std::vector<ObjectId> survivors;
  for (SiteId s = 0; s < options_.site_count; ++s) {
    wire::QueryReplyFrame reply;
    if (QuerySite(s, reply)) {
      survivors.insert(survivors.end(), reply.survivors.begin(),
                       reply.survivors.end());
    }
  }
  std::sort(survivors.begin(), survivors.end());
  return survivors;
}

std::uint64_t SocketWorld::TotalObjects() {
  std::uint64_t total = 0;
  for (SiteId s = 0; s < options_.site_count; ++s) {
    wire::QueryReplyFrame reply;
    if (QuerySite(s, reply)) total += reply.objects;
  }
  return total;
}

std::uint64_t SocketWorld::TotalObjectsReclaimed() {
  std::uint64_t total = 0;
  for (SiteId s = 0; s < options_.site_count; ++s) {
    wire::QueryReplyFrame reply;
    if (QuerySite(s, reply)) total += reply.reclaimed;
  }
  return total;
}

bool SocketWorld::ObjectExists(ObjectId id) {
  if (!id.valid() || id.site >= options_.site_count) return false;
  wire::QueryReplyFrame reply;
  if (!QuerySite(id.site, reply)) return false;
  return std::binary_search(reply.survivors.begin(), reply.survivors.end(),
                            id);
}

// ---------------------------------------------------------------------------
// Chaos.

void SocketWorld::ArmFaultPlan(const FaultPlan& plan) {
  FaultHooks hooks;
  Network& net = transport_->network();
  hooks.set_site_down = [&net](SiteId site, bool down) {
    net.SetSiteDown(site, down);
  };
  hooks.set_link_down = [&net](SiteId a, SiteId b, bool down) {
    net.SetLinkDown(a, b, down);
  };
  const auto open_bursts = std::make_shared<int>(0);
  hooks.begin_drop_burst = [&net, open_bursts](double p) {
    ++*open_bursts;
    net.set_drop_probability_override(p);
  };
  hooks.end_drop_burst = [&net, open_bursts] {
    if (--*open_bursts == 0) net.set_drop_probability_override(-1.0);
  };
  const auto open_spikes = std::make_shared<int>(0);
  hooks.begin_latency_spike = [&net, open_spikes](SimTime extra) {
    ++*open_spikes;
    net.set_extra_latency(extra);
  };
  hooks.end_latency_spike = [&net, open_spikes] {
    if (--*open_spikes == 0) net.set_extra_latency(0);
  };
  // Process-level chaos: real signals and real socket closes. No
  // crash_restart hook — a killed process's supervised restart IS the
  // crash-restart under this transport.
  hooks.kill_process = [this](SiteId site) { supervisor_->Kill(site); };
  hooks.pause_process = [this](SiteId site) { supervisor_->Pause(site); };
  hooks.resume_process = [this](SiteId site) { supervisor_->Resume(site); };
  hooks.sever_socket = [this](SiteId site) {
    transport_->SeverConnection(site);
  };
  plan.Schedule(control_, std::move(hooks));
}

}  // namespace dgc
