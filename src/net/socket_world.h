// Coordinator-process driver for socket-transport runs: the process-mode
// analogue of System.
//
// System cannot host TransportKind::kSocket (its Sites are in-process
// objects; socket sites live in their own OS processes), so SocketWorld
// owns the coordinator half instead: the control Scheduler, the
// SocketTransport (one Network + the per-connection engine), the Supervisor
// that spawns/restarts the site processes, and a god-mode build/query
// surface that mirrors System's — NewObject, SetPersistentRoot, Wire,
// Unwire, RunRound, census queries — implemented as BuildOp/Query frames.
// Timeout derivation is shared with System (DeriveReliabilityTimeouts), so
// a seeded run under the socket transport makes exactly the protocol-level
// decisions the simulator makes.
//
// Chaos: ArmFaultPlan wires the process-level fault kinds to real signals
// (KillProcess -> SIGKILL + supervised restart, PauseProcess -> SIGSTOP/
// SIGCONT, SeverSocket -> coordinator-side close) alongside the familiar
// network-level faults, all scheduled on the control scheduler in simulated
// time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/ids.h"
#include "common/rng.h"
#include "net/socket_transport.h"
#include "net/supervisor.h"
#include "sim/fault_plan.h"
#include "sim/scheduler.h"

namespace dgc {

struct SocketWorldOptions {
  std::size_t site_count = 4;
  CollectorConfig collector;
  /// transport is forced to kSocket; socket.* tunes timeouts and backoff.
  NetworkConfig network;
  std::uint64_t seed = 1;
  /// Exec mode: argv template for site processes; SocketWorld appends
  /// `--role site --site N --socket PATH --snapshot PATH`. Empty spawns
  /// sites by fork (callback mode) — the test-friendly default.
  std::vector<std::string> site_exec_argv;
  /// Working directory for the coordinator socket and site snapshots.
  /// Empty creates (and owns) a fresh temp directory.
  std::string state_dir;
  int connect_timeout_ms = 15'000;
};

class SocketWorld {
 public:
  explicit SocketWorld(SocketWorldOptions options);
  ~SocketWorld();

  SocketWorld(const SocketWorld&) = delete;
  SocketWorld& operator=(const SocketWorld&) = delete;

  [[nodiscard]] std::size_t site_count() const {
    return options_.site_count;
  }
  [[nodiscard]] const std::string& state_dir() const { return state_dir_; }
  [[nodiscard]] SocketTransport& transport() { return *transport_; }
  [[nodiscard]] Supervisor& supervisor() { return *supervisor_; }
  [[nodiscard]] Scheduler& control_scheduler() { return control_; }

  // --- God-mode build surface (mirrors System) --------------------------

  ObjectId NewObject(SiteId site, std::size_t slots);
  void SetPersistentRoot(ObjectId obj);
  void Wire(ObjectId source, std::size_t slot, ObjectId target);
  void Unwire(ObjectId source, std::size_t slot);

  /// One collection round, System::RunRound's schedule: per site in order,
  /// start a local trace (unless one is in flight) and settle.
  void RunRound();
  void RunRounds(std::size_t n);
  void SettleNetwork();

  // --- Census -----------------------------------------------------------

  /// False when the site is currently unanswerable (down/paused/mid-step
  /// after the settle grace) — chaos callers decide how patient to be.
  [[nodiscard]] bool QuerySite(SiteId site, wire::QueryReplyFrame& out);
  /// Sorted ids of every live object on every answerable site.
  [[nodiscard]] std::vector<ObjectId> SurvivingObjects();
  [[nodiscard]] std::uint64_t TotalObjects();
  [[nodiscard]] std::uint64_t TotalObjectsReclaimed();
  [[nodiscard]] bool ObjectExists(ObjectId id);
  [[nodiscard]] std::uint32_t incarnation(SiteId site) const {
    return transport_->incarnation(site);
  }

  // --- Chaos ------------------------------------------------------------

  /// Schedules the plan on the control scheduler. Network-level faults use
  /// the same Network switches as System; process-level faults deliver real
  /// signals / close real sockets.
  void ArmFaultPlan(const FaultPlan& plan);

  void KillSite(SiteId site) { supervisor_->Kill(site); }
  void PauseSite(SiteId site) { supervisor_->Pause(site); }
  void ResumeSite(SiteId site) { supervisor_->Resume(site); }
  void SeverSite(SiteId site) { transport_->SeverConnection(site); }

 private:
  [[nodiscard]] std::string SnapshotPathFor(SiteId site) const;

  SocketWorldOptions options_;
  std::string state_dir_;
  bool owns_state_dir_ = false;
  Scheduler control_;
  std::unique_ptr<SocketTransport> transport_;
  std::unique_ptr<Supervisor> supervisor_;
};

}  // namespace dgc
