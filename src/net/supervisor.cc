#include "net/supervisor.h"

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dgc {

Supervisor::Supervisor(Options options) : options_(options) {
  // A site process dying mid-write must surface as EPIPE on the socket, not
  // kill the coordinator.
  signal(SIGPIPE, SIG_IGN);
}

Supervisor::~Supervisor() { TerminateAll(); }

SiteId Supervisor::AddSite(SiteSpec spec) {
  DGC_CHECK(spec.run || !spec.exec_argv.empty());
  SiteState state;
  state.spec = std::move(spec);
  sites_.push_back(std::move(state));
  return static_cast<SiteId>(sites_.size() - 1);
}

void Supervisor::Spawn(SiteState& state) {
  const pid_t pid = fork();
  DGC_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    // Child. Default signal dispositions back (the parent ignores SIGPIPE
    // for its own writes; the child's SiteHost does the same for itself).
    if (!state.spec.exec_argv.empty()) {
      std::vector<char*> argv;
      argv.reserve(state.spec.exec_argv.size() + 1);
      for (std::string& arg : state.spec.exec_argv) {
        argv.push_back(arg.data());
      }
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed
    }
    // _exit, not exit: the child must not run the parent's atexit state
    // (gtest teardown, leak checkers) — it is a site process, not a test.
    _exit(state.spec.run());
  }
  state.status.pid = pid;
  state.status.running = true;
  state.status.restart_pending = false;
  state.spawned_at = std::chrono::steady_clock::now();
  ++counters_.spawns;
}

void Supervisor::Start(SiteId site) {
  DGC_CHECK(site < sites_.size());
  SiteState& state = sites_[site];
  DGC_CHECK(!state.status.running);
  state.next_backoff_ms = options_.backoff_initial_ms;
  Spawn(state);
}

void Supervisor::StartAll() {
  for (SiteId site = 0; site < sites_.size(); ++site) {
    if (!sites_[site].status.running) Start(site);
  }
}

bool Supervisor::Poll() {
  bool changed = false;
  const auto now = std::chrono::steady_clock::now();
  for (SiteState& state : sites_) {
    if (state.status.running) {
      int wstatus = 0;
      const pid_t reaped = waitpid(state.status.pid, &wstatus, WNOHANG);
      if (reaped == state.status.pid) {
        state.status.running = false;
        state.status.pid = -1;
        changed = true;
        if (state.terminated) continue;  // expected shutdown
        ++counters_.exits;
        // A long-lived incarnation proves the site was healthy: its death
        // is a fresh incident, not the next step of a crash loop, so the
        // backoff and the give-up budget start over.
        if (options_.healthy_uptime_reset_ms > 0 &&
            now - state.spawned_at >= std::chrono::milliseconds(
                                          options_.healthy_uptime_reset_ms)) {
          state.consecutive_restarts = 0;
          state.next_backoff_ms = options_.backoff_initial_ms;
        }
        if (state.consecutive_restarts >= options_.max_restarts) {
          state.status.gave_up = true;
          state.status.restart_pending = false;  // Kill() may have set it
          ++counters_.gave_up;
          continue;
        }
        state.status.restart_pending = true;
        state.restart_due =
            now + std::chrono::milliseconds(state.next_backoff_ms);
        state.next_backoff_ms =
            std::min(state.next_backoff_ms * 2, options_.backoff_max_ms);
      }
      continue;
    }
    if (state.status.restart_pending && now >= state.restart_due) {
      ++state.status.restarts;
      ++state.consecutive_restarts;
      ++counters_.restarts;
      Spawn(state);
      changed = true;
    }
  }
  return changed;
}

bool Supervisor::AnyRestartPending() const {
  for (const SiteState& state : sites_) {
    if (state.status.restart_pending) return true;
  }
  return false;
}

const Supervisor::SiteStatus& Supervisor::status(SiteId site) const {
  DGC_CHECK(site < sites_.size());
  return sites_[site].status;
}

const Supervisor::Counters& Supervisor::counters() const { return counters_; }

bool Supervisor::Kill(SiteId site) {
  DGC_CHECK(site < sites_.size());
  SiteState& state = sites_[site];
  if (!state.status.running) return false;
  ++counters_.kills;
  if (kill(state.status.pid, SIGKILL) != 0) return false;
  // The death is certain but the reap is asynchronous: flag the restart NOW
  // so AnyRestartPending() keeps Settle patient through the reap + backoff
  // window instead of declaring the world quiescent microseconds after the
  // signal. Poll()'s reap path schedules the actual due time (or withdraws
  // the flag when the budget is exhausted).
  if (!state.terminated &&
      state.consecutive_restarts < options_.max_restarts) {
    state.status.restart_pending = true;
  }
  return true;
}

bool Supervisor::Pause(SiteId site) {
  DGC_CHECK(site < sites_.size());
  SiteState& state = sites_[site];
  if (!state.status.running) return false;
  ++counters_.pauses;
  return kill(state.status.pid, SIGSTOP) == 0;
}

bool Supervisor::Resume(SiteId site) {
  DGC_CHECK(site < sites_.size());
  SiteState& state = sites_[site];
  if (!state.status.running) return false;
  ++counters_.resumes;
  return kill(state.status.pid, SIGCONT) == 0;
}

void Supervisor::Terminate(SiteId site) {
  DGC_CHECK(site < sites_.size());
  SiteState& state = sites_[site];
  state.terminated = true;
  state.status.restart_pending = false;
  if (!state.status.running) return;
  // SIGCONT first: a paused child cannot act on SIGKILL's reap path until
  // resumed (SIGKILL works on stopped processes, but be explicit about the
  // pair so a paused-then-terminated site never lingers).
  kill(state.status.pid, SIGCONT);
  kill(state.status.pid, SIGKILL);
  int wstatus = 0;
  while (waitpid(state.status.pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
  state.status.running = false;
  state.status.pid = -1;
}

void Supervisor::TerminateAll() {
  for (SiteId site = 0; site < sites_.size(); ++site) Terminate(site);
}

}  // namespace dgc
