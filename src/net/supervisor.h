// Process supervisor for socket-transport site processes.
//
// The supervisor owns the fork/exec of every site process, reaps exits with
// waitpid(WNOHANG) at engine boundaries (no SIGCHLD handler — the engine
// polls at well-defined points, so child state never changes under its
// feet), and schedules replacement processes with exponential backoff up to
// a restart budget. It deliberately knows nothing about sockets or the
// protocol: a restarted process dials the coordinator and performs the
// incarnation handshake on its own; the supervisor only guarantees that a
// process is (re)running or that the budget is exhausted.
//
// Two spawn modes:
//   * callback mode (tests): the child runs `spec.run()` after fork and
//     _exit()s with its result — no exec, so gtest children never re-enter
//     the test runner;
//   * exec mode (dgcsim): fork + execv of `spec.exec_argv`, the real
//     separate-binary deployment shape.
//
// Chaos helpers deliver real signals: Kill (SIGKILL — the monitor then
// restarts it like any crash), Pause/Resume (SIGSTOP/SIGCONT).
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"

namespace dgc {

class Supervisor {
 public:
  struct SiteSpec {
    /// Callback mode: runs in the forked child; its return value becomes
    /// the child's exit code. Ignored when exec_argv is non-empty.
    std::function<int()> run;
    /// Exec mode: argv for the replacement process (argv[0] = binary).
    std::vector<std::string> exec_argv;
  };

  struct Options {
    int backoff_initial_ms = 50;
    int backoff_max_ms = 2'000;
    /// Consecutive-failure restarts attempted per site before giving up.
    /// Zero = never restart.
    int max_restarts = 8;
    /// An incarnation that stays up at least this long is healthy: its next
    /// crash restarts with the initial backoff and a fresh max_restarts
    /// budget, so a site that crashes once an hour never marches toward
    /// give-up. Crash loops (every life shorter than the window) still
    /// exhaust the budget. Zero = never reset (every crash over the
    /// process's history counts against one budget).
    int healthy_uptime_reset_ms = 0;
  };

  struct SiteStatus {
    pid_t pid = -1;
    bool running = false;
    /// Replacement processes spawned after an unexpected exit (cumulative
    /// over the site's whole history; the give-up budget counts only
    /// consecutive failures, see Options::healthy_uptime_reset_ms).
    int restarts = 0;
    /// A replacement is scheduled but its backoff has not elapsed yet.
    bool restart_pending = false;
    /// The restart budget ran out; the site stays down for good.
    bool gave_up = false;
  };

  struct Counters {
    std::uint64_t spawns = 0;
    std::uint64_t exits = 0;   // unexpected child exits observed
    std::uint64_t restarts = 0;
    std::uint64_t kills = 0;
    std::uint64_t pauses = 0;
    std::uint64_t resumes = 0;
    std::uint64_t gave_up = 0;
  };

  explicit Supervisor(Options options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Registers a site's spawn recipe. Sites are dense, in registration
  /// order; the returned id matches the protocol SiteId by construction
  /// (callers register sites 0..N-1 in order).
  SiteId AddSite(SiteSpec spec);

  void Start(SiteId site);
  void StartAll();

  /// Reaps dead children and executes due restarts. Call at engine
  /// boundaries; cheap when nothing changed. Returns true when any child
  /// was reaped or respawned.
  bool Poll();

  /// True while any site awaits a scheduled (or due) restart — Settle's
  /// signal that real-time patience may still produce simulated work.
  [[nodiscard]] bool AnyRestartPending() const;

  [[nodiscard]] const SiteStatus& status(SiteId site) const;
  [[nodiscard]] const Counters& counters() const;
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

  // --- Chaos ------------------------------------------------------------

  /// SIGKILL: the monitor observes the death on the next Poll and restarts
  /// with backoff, exactly as for a spontaneous crash.
  bool Kill(SiteId site);
  bool Pause(SiteId site);   // SIGSTOP
  bool Resume(SiteId site);  // SIGCONT

  /// Clean-shutdown kill: the site is expected to exit and is NOT
  /// restarted. Used after the protocol-level Shutdown frame.
  void Terminate(SiteId site);
  void TerminateAll();

 private:
  struct SiteState {
    SiteSpec spec;
    SiteStatus status;
    bool terminated = false;  // clean shutdown requested: never restart
    /// Restarts since the last healthy-uptime reset — the value the
    /// max_restarts give-up check runs against.
    int consecutive_restarts = 0;
    int next_backoff_ms = 0;
    std::chrono::steady_clock::time_point spawned_at;
    std::chrono::steady_clock::time_point restart_due;
  };

  void Spawn(SiteState& state);

  Options options_;
  std::vector<SiteState> sites_;
  Counters counters_;
};

}  // namespace dgc
