#include "net/threaded_transport.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.h"

namespace dgc {

thread_local std::vector<ThreadedTransport::StagedSend>*
    ThreadedTransport::tls_staged_ = nullptr;

ThreadedTransport::ThreadedTransport(std::size_t site_count,
                                     Scheduler& control, NetworkConfig config,
                                     Rng rng)
    : control_(control), network_(control, config, rng) {
  DGC_CHECK(site_count > 0);
  sites_.reserve(site_count);
  for (std::size_t i = 0; i < site_count; ++i) {
    sites_.push_back(
        std::make_unique<SiteState>(config.transport_queue_capacity));
  }
  handlers_.resize(site_count);

  // An explicit transport_threads is honoured verbatim (TSan smokes want
  // more threads than sites); only the hardware default is clamped to the
  // site count, where extra threads could never find work.
  std::size_t threads = config.transport_threads;
  if (threads == 0) {
    threads = std::min<std::size_t>(
        std::max<std::size_t>(1, std::thread::hardware_concurrency()),
        site_count);
  }
  threads_ = std::max<std::size_t>(1, threads);
  serial_replay_ = config.transport_serial_replay;
  // Pool sizing. The coordinator participates in every batch, so site-level
  // stepping needs threads_ - 1 workers (the historical sizing). When the
  // sites fork nested shard batches on this pool (mark_threads > 1, passed
  // down as transport_nested_threads), over-provision for the nested level
  // — capped at max(threads_, hardware_concurrency) total runners, so a
  // round with 8 sites and mark_threads = 8 cannot balloon into 64 kernel
  // threads. An explicit transport_pool_threads is honoured verbatim.
  std::size_t workers = threads_ - 1;
  const std::size_t nested =
      std::max<std::size_t>(1, config.transport_nested_threads);
  if (config.transport_pool_threads > 0) {
    workers = config.transport_pool_threads;
  } else if (nested > 1) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers = std::min(threads_ * nested, std::max(threads_, hw)) - 1;
  }
  pool_ = std::make_unique<WorkerPool>(workers);

  network_.set_dispatcher([this](Envelope&& envelope) {
    // Coordinator thread (all Network processing happens there). Route the
    // finished delivery into the destination's inbox; the site's handler
    // runs on the site's thread in the next parallel phase.
    DGC_CHECK(envelope.to < sites_.size());
    SiteState& state = *sites_[envelope.to];
    state.inbox.Push(std::move(envelope));
    ++state.handoffs;
    ++counters_.handoffs;
  });
}

ThreadedTransport::~ThreadedTransport() = default;

Scheduler& ThreadedTransport::SchedulerFor(SiteId site) {
  DGC_CHECK(site < sites_.size());
  return sites_[site]->scheduler;
}

void ThreadedTransport::RegisterSite(SiteId site, Network::Handler handler) {
  DGC_CHECK(site < handlers_.size());
  // Keep a copy for SiteStep (site threads must not reach into the
  // coordinator-confined Network) and register with the Network as usual so
  // its delivery-path checks keep holding.
  handlers_[site] = handler;
  network_.RegisterSite(site, std::move(handler));
}

void ThreadedTransport::Send(SiteId from, SiteId to, Payload payload) {
  if (tls_staged_ != nullptr) {
    // On a site thread mid-step: stage for coordinator replay.
    tls_staged_->push_back(StagedSend{from, to, std::move(payload)});
    return;
  }
  // Coordinator (or test god-mode between engine calls): the Network is
  // ours to touch directly, matching the simulator's schedule exactly.
  network_.Send(from, to, std::move(payload));
}

SimTime ThreadedTransport::NextEventTime() const {
  SimTime next = control_.next_event_time();
  for (const auto& state : sites_) {
    next = std::min(next, state->scheduler.next_event_time());
  }
  return next;
}

void ThreadedTransport::AdvanceWorldTo(SimTime t) {
  DGC_CHECK(t >= global_now_);
  global_now_ = t;
  ++counters_.timesteps;
  std::uint64_t phases_this_step = 0;
  for (;;) {
    // Control phase: deliveries, retransmit timers, fault-plan hooks — all
    // single-threaded on the coordinator. Deliveries land in inboxes via
    // the dispatcher.
    control_.RunUntil(t);

    involved_.clear();
    for (SiteId s = 0; s < sites_.size(); ++s) {
      const SiteState& state = *sites_[s];
      if (!state.inbox.Empty() || state.scheduler.next_event_time() <= t) {
        involved_.push_back(s);
      }
    }
    if (involved_.empty()) break;  // quiescent at t

    DGC_CHECK_MSG(++phases_this_step <= kMaxPhasesPerTimestep,
                  "transport livelock: " << phases_this_step
                                         << " phases at t=" << t);
    ++counters_.parallel_phases;
    counters_.site_steps += involved_.size();
    for (SiteId s : involved_) ++sites_[s]->steps;

    // Parallel phase: involved sites step concurrently. The RunBatch
    // fork/join barrier orders this against all coordinator work. Capped at
    // threads_ so pool workers past the transport_threads budget stay free
    // to serve the sites' nested shard batches instead of running whole
    // sites.
    pool_->RunBatch(
        involved_.size(),
        [this, t](std::size_t i) { SiteStep(involved_[i], t); },
        threads_);

    // Replay: staged sends enter the Network in site order — a fixed,
    // interleaving-independent order, which is what keeps seeded runs
    // reproducible across thread schedules.
    ReplayAllStaged();
  }
}

void ThreadedTransport::SiteStep(SiteId site, SimTime t) {
  SiteState& state = *sites_[site];
  DGC_CHECK(tls_staged_ == nullptr);
  tls_staged_ = &state.staged;
  for (;;) {
    // Own timers first (they were scheduled before this instant), then the
    // inbox; repeat because a handler may schedule more work at t.
    state.scheduler.RunUntil(t);
    bool handled = false;
    Envelope envelope;
    while (state.inbox.TryPop(envelope)) {
      handled = true;
      DGC_CHECK(envelope.to == site);
      handlers_[site](envelope);
    }
    if (!handled && state.scheduler.next_event_time() > t) break;
  }
  tls_staged_ = nullptr;
}

void ThreadedTransport::ReplayStaged(SiteState& state) {
  for (StagedSend& send : state.staged) {
    ++counters_.staged_sends;
    ++state.staged_sends;
    network_.Send(send.from, send.to, std::move(send.payload));
  }
  state.staged.clear();
}

void ThreadedTransport::ReplayAllStaged() {
  // Parallel prepare pays off only with >= 2 busy senders and real workers;
  // eligibility is re-checked every phase because chaos plans flip the drop
  // override (and with it the RNG-free guarantee) mid-run.
  std::size_t busy_senders = 0;
  for (SiteId s : involved_) {
    if (!sites_[s]->staged.empty()) ++busy_senders;
  }
  const bool parallel = !serial_replay_ && busy_senders >= 2 &&
                        pool_->worker_threads() > 0 &&
                        network_.SupportsParallelReplay();
  if (!parallel) {
    for (SiteId s : involved_) ReplayStaged(*sites_[s]);
    return;
  }

  network_.ReserveSenderShards(sites_.size());
  // Each task prepares exactly one sender's staged list, touching only that
  // sender's FIFO-clamp shard and ReplayShard scratch; the join barrier
  // orders every write before the coordinator's serial commit.
  pool_->RunBatch(
      involved_.size(),
      [this](std::size_t i) {
        SiteState& state = *sites_[involved_[i]];
        for (StagedSend& send : state.staged) {
          network_.PrepareSend(send.from, send.to, std::move(send.payload),
                               state.replay);
        }
      },
      involved_.size());
  ++counters_.parallel_replays;
  for (SiteId s : involved_) {
    SiteState& state = *sites_[s];
    counters_.staged_sends += state.staged.size();
    state.staged_sends += state.staged.size();
    state.staged.clear();
    network_.CommitPrepared(state.replay);
  }
}

void ThreadedTransport::SyncClocksTo(SimTime t) {
  // No scheduler holds an event <= t here, so RunUntil only moves clocks.
  control_.RunUntil(t);
  for (auto& state : sites_) state->scheduler.RunUntil(t);
  global_now_ = t;
}

void ThreadedTransport::RunUntilTime(SimTime t) {
  DGC_CHECK(t >= global_now_);
  for (;;) {
    const SimTime next = NextEventTime();
    if (next > t) break;  // covers kNoPendingEvent
    AdvanceWorldTo(next);
  }
  SyncClocksTo(t);
}

bool ThreadedTransport::StepOne() {
  const SimTime next = NextEventTime();
  if (next == Scheduler::kNoPendingEvent) return false;
  AdvanceWorldTo(std::max(next, global_now_));
  return true;
}

void ThreadedTransport::Settle() {
  for (;;) {
    const SimTime next = NextEventTime();
    if (next == Scheduler::kNoPendingEvent) break;
    AdvanceWorldTo(next);
  }
  SyncClocksTo(global_now_);
}

TransportCounters ThreadedTransport::counters() const {
  TransportCounters total = counters_;
  for (const auto& state : sites_) {
    const auto queue = state->inbox.stats();
    total.inbox_peak_depth = std::max(total.inbox_peak_depth,
                                      queue.peak_depth);
    total.inbox_contention += queue.contention;
    total.inbox_overflows += queue.overflows;
  }
  return total;
}

SiteTransportCounters ThreadedTransport::site_counters(SiteId site) const {
  DGC_CHECK(site < sites_.size());
  const SiteState& state = *sites_[site];
  const auto queue = state.inbox.stats();
  SiteTransportCounters out;
  out.handoffs = state.handoffs;
  out.staged_sends = state.staged_sends;
  out.steps = state.steps;
  out.queue_peak_depth = queue.peak_depth;
  out.queue_contention = queue.contention;
  out.queue_overflows = queue.overflows;
  return out;
}

}  // namespace dgc
