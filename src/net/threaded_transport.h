// ThreadedTransport: each site runs on its own thread under a conservative
// time-stepped parallel discrete-event engine.
//
// Threading model (the invariants docs/ARCHITECTURE.md spells out):
//
//   * ONE coordinator thread — the caller of RunUntilTime/Settle. It owns
//     the control Scheduler and the entire Network object (all PR 4
//     reliable-delivery / incarnation / failure-detector machinery runs
//     unmodified, single-threaded, here).
//   * Per-site state — the site's Scheduler, heap, tables, collector — is
//     confined to whichever thread runs that site's step; steps for one
//     timestep run concurrently across sites on a WorkerPool, separated
//     from coordinator work by the pool's fork/join barrier (which gives
//     the happens-before edges TSan wants).
//   * Cross-site communication flows ONLY through the transport: the
//     Network's dispatcher pushes deliveries into per-site MPSC inboxes
//     (coordinator side), and sends issued on site threads are staged in a
//     thread-local buffer and replayed into the Network by the coordinator,
//     in site order, at the phase boundary. Site threads never touch the
//     Network — with one carve-out: when the configuration is
//     RNG-free/batch-free (Network::SupportsParallelReplay), the replay's
//     per-sender half runs as Network::PrepareSend concurrently across the
//     sender shards (each touching only its own pre-reserved FIFO-clamp
//     shard) and the coordinator commits the prepared shards serially in
//     site order, so the scheduler insertion order — and every seeded
//     verdict — is bit-identical to the serial replay.
//   * The transport owns its own WorkerPool, sized independently of the
//     System pool. Sites fork their nested mark_threads shard batches on
//     this same pool (Transport::site_worker_pool); the caller-participates
//     RunBatch makes the nested fork-from-a-pool-task shape deadlock-free,
//     and the pool is over-provisioned for the nested level (capped at
//     hardware concurrency) so shard batches get real workers instead of
//     degrading to the site thread alone.
//
// Engine: for each global timestep T (the earliest pending instant across
// all schedulers), alternate
//
//     control phase:  run control events <= T (deliveries land in inboxes)
//     parallel phase: every involved site (non-empty inbox or own events
//                     <= T) runs its events <= T and drains its inbox
//     replay:         staged sends enter the Network in site order
//
// until the world is quiescent at T. New work created at T (self-sends,
// zero-latency deliveries) is absorbed by the fixpoint; anything later
// becomes a future timestep. Determinism: site steps touch disjoint state,
// staged sends are replayed in a fixed order, and all RNG draws happen on
// the coordinator — so results are independent of thread interleaving.
//
// Equivalence with SimTransport: with the default jitter-free, drop-free
// network every payload's delivery time is computed identically, so the
// two backends produce the same garbage verdicts and reclaim sets. Under
// jitter/drops the *order of RNG draws* differs (the simulator interleaves
// sends from different sites; the engine replays them site-by-site), so
// individual runs diverge in timing while the protocol outcomes at
// quiescence still agree — the differential tests assert exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/worker_pool.h"
#include "net/mpsc_queue.h"
#include "net/network.h"
#include "net/transport.h"
#include "sim/scheduler.h"

namespace dgc {

class ThreadedTransport final : public Transport {
 public:
  ThreadedTransport(std::size_t site_count, Scheduler& control,
                    NetworkConfig config, Rng rng);
  ~ThreadedTransport() override;

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kThreaded;
  }
  [[nodiscard]] Network& network() override { return network_; }
  [[nodiscard]] const Network& network() const override { return network_; }
  [[nodiscard]] Scheduler& control_scheduler() override { return control_; }
  [[nodiscard]] Scheduler& SchedulerFor(SiteId site) override;

  void RegisterSite(SiteId site, Network::Handler handler) override;
  void Send(SiteId from, SiteId to, Payload payload) override;

  [[nodiscard]] SimTime now() const override { return global_now_; }
  void RunUntilTime(SimTime t) override;
  void Settle() override;
  bool StepOne() override;
  [[nodiscard]] WorkerPool* site_worker_pool() override { return pool_.get(); }

  [[nodiscard]] TransportCounters counters() const override;
  [[nodiscard]] SiteTransportCounters site_counters(
      SiteId site) const override;

  /// Worker threads actually running site steps (including the
  /// participating coordinator).
  [[nodiscard]] std::size_t thread_count() const { return threads_; }

  /// Phase-alternation budget per timestep; exceeding it means two sites
  /// are ping-ponging zero-latency messages forever (a protocol livelock,
  /// the analogue of Scheduler::RunUntilIdle's event budget).
  static constexpr std::uint64_t kMaxPhasesPerTimestep = 1'000'000;

 private:
  struct StagedSend {
    SiteId from;
    SiteId to;
    Payload payload;
  };

  /// All state owned by one site. The scheduler and staged buffer are
  /// confined to the thread running the site's current step; the inbox is
  /// the MPSC handoff point; the counters are coordinator-written.
  struct SiteState {
    explicit SiteState(std::size_t queue_capacity) : inbox(queue_capacity) {}
    Scheduler scheduler;
    MpscQueue<Envelope> inbox;
    std::vector<StagedSend> staged;
    /// Scratch for the sharded parallel replay: written by the thread
    /// preparing this sender's staged sends, consumed by the coordinator's
    /// serial commit (ordered by the RunBatch join barrier).
    Network::ReplayShard replay;
    std::uint64_t handoffs = 0;      // coordinator-written (dispatcher)
    std::uint64_t staged_sends = 0;  // coordinator-written (replay)
    std::uint64_t steps = 0;         // coordinator-written (phase loop)
  };

  /// Earliest pending instant across the control and all site schedulers.
  [[nodiscard]] SimTime NextEventTime() const;

  /// Runs the control/parallel/replay fixpoint for one global timestep.
  void AdvanceWorldTo(SimTime t);

  /// One site's slice of a parallel phase: run own events <= t, drain the
  /// inbox, repeat until quiescent. Runs on a pool (or coordinator) thread
  /// with the thread-local outbox pointing at the site's staged buffer.
  void SiteStep(SiteId site, SimTime t);

  /// Replays a site's staged sends into the Network (coordinator only).
  void ReplayStaged(SiteState& state);

  /// Replays every involved site's staged sends, preparing the per-sender
  /// halves in parallel on the pool when the Network supports it (and
  /// serial replay is not forced), then committing in site order. Falls
  /// back to the serial ReplayStaged loop otherwise. Bit-identical either
  /// way.
  void ReplayAllStaged();

  /// Advances every scheduler's clock to t without running anything past
  /// its pending events (there are none <= t when this is called), so
  /// god-mode reads of a site's scheduler_.now() between engine calls see
  /// the same instant everywhere.
  void SyncClocksTo(SimTime t);

  /// Points at the stepping site's staged buffer while (and only while)
  /// this thread is inside SiteStep; null on the coordinator outside a
  /// parallel phase, so god-mode sends (e.g. System::RunRound's inline
  /// traces) go straight to the Network exactly as under SimTransport.
  static thread_local std::vector<StagedSend>* tls_staged_;

  Scheduler& control_;
  Network network_;
  std::vector<std::unique_ptr<SiteState>> sites_;
  /// Handler copies so SiteStep can invoke destinations without touching
  /// the (coordinator-confined) Network. Written only during registration,
  /// read-only while the engine runs.
  std::vector<Network::Handler> handlers_;
  std::size_t threads_ = 1;
  bool serial_replay_ = false;
  std::unique_ptr<WorkerPool> pool_;
  SimTime global_now_ = 0;
  std::vector<SiteId> involved_;  // scratch for the phase loop
  TransportCounters counters_;
};

}  // namespace dgc
