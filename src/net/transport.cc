#include "net/transport.h"

#include <utility>

#include "common/check.h"
#include "net/threaded_transport.h"

namespace dgc {

std::unique_ptr<Transport> CreateTransport(std::size_t site_count,
                                           Scheduler& control,
                                           NetworkConfig config, Rng rng) {
  switch (config.transport) {
    case TransportKind::kSim:
      return std::make_unique<SimTransport>(control, std::move(config), rng);
    case TransportKind::kThreaded:
      return std::make_unique<ThreadedTransport>(site_count, control,
                                                 std::move(config), rng);
    case TransportKind::kSocket:
      DGC_CHECK_MSG(false,
                    "TransportKind::kSocket runs sites as separate OS "
                    "processes, so System cannot host it; drive it through "
                    "SocketWorld (net/socket_world.h) or `dgcsim --transport "
                    "socket`");
      return nullptr;
  }
  DGC_CHECK_MSG(false, "unknown TransportKind");
  return nullptr;
}

}  // namespace dgc
