// Pluggable transport: the seam between the protocol layer (Site, BackTracer,
// System) and whatever actually moves messages and time forward.
//
// Sites see a small site-facing surface (RegisterSite / Send / the
// failure-detector queries) plus a per-site Scheduler; System sees an engine
// surface (now / RunUntilTime / Settle). Two backends implement it:
//
//   * SimTransport (default) — a zero-cost adapter over the deterministic
//     single-threaded simulator: one shared Scheduler, one Network,
//     everything on the caller's thread. Bit-identical to the pre-seam code.
//
//   * ThreadedTransport (net/threaded_transport.h) — each site owns a thread
//     and a private Scheduler; cross-site messages flow through per-site
//     MPSC inboxes under a conservative time-stepped engine. The whole PR 4
//     reliable-delivery / incarnation / failure-detector machinery is reused
//     verbatim: one Network object, confined to the coordinator thread.
//
// Both backends expose the same Network object (network()) so fault
// injection, stats, and config knobs keep working unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/config.h"
#include "common/rng.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace dgc {

class WorkerPool;

/// Engine-level counters, all zero under SimTransport.
struct TransportCounters {
  std::uint64_t timesteps = 0;        // distinct global instants processed
  std::uint64_t parallel_phases = 0;  // site-step fan-outs (>=1 per timestep)
  std::uint64_t site_steps = 0;       // individual site executions
  std::uint64_t handoffs = 0;         // envelopes routed through an inbox
  std::uint64_t staged_sends = 0;     // sends staged on site threads
  std::uint64_t parallel_replays = 0;  // phases replayed via sharded prepare
  std::uint64_t inbox_peak_depth = 0;     // max over all site inboxes
  std::uint64_t inbox_contention = 0;     // lock waits across all inboxes
  std::uint64_t inbox_overflows = 0;      // pushes past the soft capacity
};

/// Per-site slice of the same accounting (mirrors into SiteStats).
struct SiteTransportCounters {
  std::uint64_t handoffs = 0;
  std::uint64_t staged_sends = 0;
  std::uint64_t steps = 0;
  std::uint64_t queue_peak_depth = 0;
  std::uint64_t queue_contention = 0;
  std::uint64_t queue_overflows = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual TransportKind kind() const = 0;

  /// The one Network instance (fault injection, stats, reliable channels).
  /// Callers outside the engine must touch it only between engine calls —
  /// it is coordinator-confined under ThreadedTransport (see network.h).
  [[nodiscard]] virtual Network& network() = 0;
  [[nodiscard]] virtual const Network& network() const = 0;

  /// The control scheduler: drives the Network's own events (deliveries,
  /// retransmit timers, recovery notifications) and any world-level
  /// scripting. Under SimTransport this is also every site's scheduler.
  [[nodiscard]] virtual Scheduler& control_scheduler() = 0;

  /// The scheduler a site's own timers live on. Events scheduled here run
  /// on the site's thread under ThreadedTransport — handlers must touch
  /// only that site's state plus Send.
  [[nodiscard]] virtual Scheduler& SchedulerFor(SiteId site) = 0;

  // --- Site-facing surface (mirrors Network, so call sites just rename) --

  virtual void RegisterSite(SiteId site, Network::Handler handler) = 0;

  /// Sends a message. On a site thread the send is staged locally and
  /// replayed into the Network by the coordinator at the next phase
  /// boundary, in deterministic site order; anywhere else it goes straight
  /// to Network::Send.
  virtual void Send(SiteId from, SiteId to, Payload payload) = 0;

  // Virtual so a site-process agent (net/site_host.h) can answer them from
  // failure-detector state shipped by the coordinator instead of a local
  // Network. The defaults forward to network(), which both in-process
  // backends share.
  virtual void SetRecoveryListener(SiteId observer,
                                   Network::RecoveryListener l) {
    network().SetRecoveryListener(observer, std::move(l));
  }
  virtual void NoteSiteRestarted(SiteId site) {
    network().NoteSiteRestarted(site);
  }
  [[nodiscard]] virtual bool IsPeerSuspected(SiteId observer,
                                             SiteId peer) const {
    return network().IsPeerSuspected(observer, peer);
  }
  [[nodiscard]] virtual bool failure_detection_enabled() const {
    return network().failure_detection_enabled();
  }

  // --- Engine surface (System-facing) -----------------------------------

  /// Global simulated time. All schedulers agree on it whenever the engine
  /// is idle (RunUntilTime/Settle sync the clocks before returning).
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Runs every event with time <= t (across all schedulers), then advances
  /// all clocks to t.
  virtual void RunUntilTime(SimTime t) = 0;

  /// Runs until no scheduler holds a pending event, then syncs all clocks
  /// to the last processed instant. The transport-agnostic spelling of
  /// "drain the simulation to idle".
  virtual void Settle() = 0;

  /// Runs the smallest unit of forward progress the backend has: one event
  /// under SimTransport, one pending timestep (all phases at the next event
  /// instant) under the engine backends. Returns false when no work is
  /// pending anywhere. The transport-agnostic spelling of "RunOne" that the
  /// mutator pump loops on.
  virtual bool StepOne() = 0;

  /// The pool nested per-site parallelism (mark_threads shard batches)
  /// should fork on. Null means the transport owns no pool and the caller
  /// should fall back to its own (SimTransport: System's shared pool).
  /// Under ThreadedTransport the returned pool is the one the site threads
  /// themselves run batches on — WorkerPool's caller-participates nesting
  /// makes the fork-from-a-pool-task shape deadlock-free.
  [[nodiscard]] virtual WorkerPool* site_worker_pool() { return nullptr; }

  [[nodiscard]] virtual TransportCounters counters() const = 0;
  [[nodiscard]] virtual SiteTransportCounters site_counters(
      SiteId site) const = 0;
};

/// The simulator backend: one shared scheduler, everything inline.
class SimTransport final : public Transport {
 public:
  SimTransport(Scheduler& scheduler, NetworkConfig config, Rng rng)
      : scheduler_(scheduler), network_(scheduler, std::move(config), rng) {}

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kSim;
  }
  [[nodiscard]] Network& network() override { return network_; }
  [[nodiscard]] const Network& network() const override { return network_; }
  [[nodiscard]] Scheduler& control_scheduler() override { return scheduler_; }
  [[nodiscard]] Scheduler& SchedulerFor(SiteId /*site*/) override {
    return scheduler_;
  }

  void RegisterSite(SiteId site, Network::Handler handler) override {
    network_.RegisterSite(site, std::move(handler));
  }
  void Send(SiteId from, SiteId to, Payload payload) override {
    network_.Send(from, to, std::move(payload));
  }

  [[nodiscard]] SimTime now() const override { return scheduler_.now(); }
  void RunUntilTime(SimTime t) override { scheduler_.RunUntil(t); }
  void Settle() override { scheduler_.RunUntilIdle(); }
  bool StepOne() override { return scheduler_.RunOne(); }
  [[nodiscard]] TransportCounters counters() const override { return {}; }
  [[nodiscard]] SiteTransportCounters site_counters(
      SiteId /*site*/) const override {
    return {};
  }

 private:
  Scheduler& scheduler_;
  Network network_;
};

/// Builds the backend selected by config.transport. `control` becomes the
/// control scheduler; `site_count` sizes the threaded backend's per-site
/// state (ignored by SimTransport).
std::unique_ptr<Transport> CreateTransport(std::size_t site_count,
                                           Scheduler& control,
                                           NetworkConfig config, Rng rng);

}  // namespace dgc
