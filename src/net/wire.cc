#include "net/wire.h"

#include <errno.h>
#include <poll.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>
#include <variant>

namespace dgc::wire {

namespace {

// -- Per-payload bodies. Field order here IS the wire format; the round-trip
// tests in net_test cover every alternative, so any drift between these and
// messages.h fails loudly.

void Put(WireWriter& w, const InsertMsg& m) {
  w.object_id(m.ref);
  w.u32(m.new_source);
  w.u32(m.pinned_site);
  w.u32(m.distance);
}
bool Get(WireReader& r, InsertMsg& m) {
  m.ref = r.object_id();
  m.new_source = r.u32();
  m.pinned_site = r.u32();
  m.distance = r.u32();
  return r.ok();
}

void Put(WireWriter& w, const InsertAckMsg& m) {
  w.object_id(m.ref);
  w.u32(m.new_source);
}
bool Get(WireReader& r, InsertAckMsg& m) {
  m.ref = r.object_id();
  m.new_source = r.u32();
  return r.ok();
}

void Put(WireWriter& w, const UpdateMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const UpdateEntry& e : m.entries) {
    w.object_id(e.ref);
    w.boolean(e.removed);
    w.u32(e.distance);
  }
}
bool Get(WireReader& r, UpdateMsg& m) {
  const std::uint32_t n = r.seq_count(17);
  m.entries.resize(n);
  for (UpdateEntry& e : m.entries) {
    e.ref = r.object_id();
    e.removed = r.boolean();
    e.distance = r.u32();
  }
  return r.ok();
}

void Put(WireWriter& w, const BackLocalCallMsg& m) {
  w.trace_id(m.trace);
  w.object_id(m.ref);
  w.frame_id(m.caller);
}
bool Get(WireReader& r, BackLocalCallMsg& m) {
  m.trace = r.trace_id();
  m.ref = r.object_id();
  m.caller = r.frame_id();
  return r.ok();
}

void Put(WireWriter& w, const BackRemoteCallMsg& m) {
  w.trace_id(m.trace);
  w.object_id(m.ref);
  w.frame_id(m.caller);
}
bool Get(WireReader& r, BackRemoteCallMsg& m) {
  m.trace = r.trace_id();
  m.ref = r.object_id();
  m.caller = r.frame_id();
  return r.ok();
}

void Put(WireWriter& w, const BackReplyMsg& m) {
  w.trace_id(m.trace);
  w.frame_id(m.to);
  w.u8(static_cast<std::uint8_t>(m.result));
  w.u32(static_cast<std::uint32_t>(m.participants.size()));
  for (SiteId s : m.participants) w.u32(s);
}
bool Get(WireReader& r, BackReplyMsg& m) {
  m.trace = r.trace_id();
  m.to = r.frame_id();
  const std::uint8_t result = r.u8();
  if (result > 1) r.fail();
  m.result = static_cast<BackResult>(result);
  const std::uint32_t n = r.seq_count(4);
  m.participants.resize(n);
  for (SiteId& s : m.participants) s = r.u32();
  return r.ok();
}

void Put(WireWriter& w, const BackReportMsg& m) {
  w.trace_id(m.trace);
  w.u8(static_cast<std::uint8_t>(m.outcome));
}
bool Get(WireReader& r, BackReportMsg& m) {
  m.trace = r.trace_id();
  const std::uint8_t outcome = r.u8();
  if (outcome > 1) r.fail();
  m.outcome = static_cast<BackResult>(outcome);
  return r.ok();
}

void Put(WireWriter& w, const BackCallBatchMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.calls.size()));
  for (const BackLocalCallMsg& c : m.calls) Put(w, c);
}
bool Get(WireReader& r, BackCallBatchMsg& m) {
  const std::uint32_t n = r.seq_count(32);
  m.calls.resize(n);
  for (BackLocalCallMsg& c : m.calls) {
    if (!Get(r, c)) return false;
  }
  return r.ok();
}

void Put(WireWriter& w, const MutatorReadMsg& m) {
  w.u64(m.session);
  w.object_id(m.target);
  w.u32(m.slot);
}
bool Get(WireReader& r, MutatorReadMsg& m) {
  m.session = r.u64();
  m.target = r.object_id();
  m.slot = r.u32();
  return r.ok();
}

void Put(WireWriter& w, const MutatorReadReplyMsg& m) {
  w.u64(m.session);
  w.object_id(m.value);
}
bool Get(WireReader& r, MutatorReadReplyMsg& m) {
  m.session = r.u64();
  m.value = r.object_id();
  return r.ok();
}

void Put(WireWriter& w, const MutatorWriteMsg& m) {
  w.u64(m.session);
  w.object_id(m.target);
  w.u32(m.slot);
  w.object_id(m.value);
}
bool Get(WireReader& r, MutatorWriteMsg& m) {
  m.session = r.u64();
  m.target = r.object_id();
  m.slot = r.u32();
  m.value = r.object_id();
  return r.ok();
}

void Put(WireWriter& w, const MutatorWriteAckMsg& m) { w.u64(m.session); }
bool Get(WireReader& r, MutatorWriteAckMsg& m) {
  m.session = r.u64();
  return r.ok();
}

void Put(WireWriter& w, const FetchMsg& m) {
  w.u64(m.session);
  w.object_id(m.target);
}
bool Get(WireReader& r, FetchMsg& m) {
  m.session = r.u64();
  m.target = r.object_id();
  return r.ok();
}

void Put(WireWriter& w, const FetchReplyMsg& m) {
  w.u64(m.session);
  w.object_id(m.target);
  w.u32(static_cast<std::uint32_t>(m.slots.size()));
  for (const ObjectId& id : m.slots) w.object_id(id);
}
bool Get(WireReader& r, FetchReplyMsg& m) {
  m.session = r.u64();
  m.target = r.object_id();
  const std::uint32_t n = r.seq_count(12);
  m.slots.resize(n);
  for (ObjectId& id : m.slots) id = r.object_id();
  return r.ok();
}

void Put(WireWriter& w, const CommitMsg& m) {
  w.u64(m.session);
  w.u32(static_cast<std::uint32_t>(m.writes.size()));
  for (const CommitWrite& cw : m.writes) {
    w.object_id(cw.target);
    w.u32(cw.slot);
    w.object_id(cw.value);
  }
}
bool Get(WireReader& r, CommitMsg& m) {
  m.session = r.u64();
  const std::uint32_t n = r.seq_count(28);
  m.writes.resize(n);
  for (CommitWrite& cw : m.writes) {
    cw.target = r.object_id();
    cw.slot = r.u32();
    cw.value = r.object_id();
  }
  return r.ok();
}

void Put(WireWriter& w, const CommitAckMsg& m) { w.u64(m.session); }
bool Get(WireReader& r, CommitAckMsg& m) {
  m.session = r.u64();
  return r.ok();
}

void Put(WireWriter& w, const PinReleaseMsg& m) { w.object_id(m.ref); }
bool Get(WireReader& r, PinReleaseMsg& m) {
  m.ref = r.object_id();
  return r.ok();
}

void Put(WireWriter& w, const GlobalGcControlMsg& m) {
  w.u64(m.epoch);
  w.u8(static_cast<std::uint8_t>(m.phase));
  w.u64(m.value);
}
bool Get(WireReader& r, GlobalGcControlMsg& m) {
  m.epoch = r.u64();
  const std::uint8_t phase = r.u8();
  if (phase > static_cast<std::uint8_t>(GlobalGcControlMsg::Phase::kSweepDone)) {
    r.fail();
  }
  m.phase = static_cast<GlobalGcControlMsg::Phase>(phase);
  m.value = r.u64();
  return r.ok();
}

void Put(WireWriter& w, const GlobalGcGrayMsg& m) {
  w.u64(m.epoch);
  w.u32(static_cast<std::uint32_t>(m.targets.size()));
  for (const ObjectId& id : m.targets) w.object_id(id);
}
bool Get(WireReader& r, GlobalGcGrayMsg& m) {
  m.epoch = r.u64();
  const std::uint32_t n = r.seq_count(12);
  m.targets.resize(n);
  for (ObjectId& id : m.targets) id = r.object_id();
  return r.ok();
}

void Put(WireWriter& w, const TimestampUpdateMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const TimestampUpdateMsg::Entry& e : m.entries) {
    w.object_id(e.ref);
    w.i64(e.stamp);
  }
  w.i64(m.sender_trace_clock);
}
bool Get(WireReader& r, TimestampUpdateMsg& m) {
  const std::uint32_t n = r.seq_count(20);
  m.entries.resize(n);
  for (TimestampUpdateMsg::Entry& e : m.entries) {
    e.ref = r.object_id();
    e.stamp = r.i64();
  }
  m.sender_trace_clock = r.i64();
  return r.ok();
}

void Put(WireWriter& w, const MigrateMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.objects.size()));
  for (const MigrateMsg::MovedObject& o : m.objects) {
    w.object_id(o.id);
    w.u32(static_cast<std::uint32_t>(o.refs.size()));
    for (const ObjectId& id : o.refs) w.object_id(id);
  }
}
bool Get(WireReader& r, MigrateMsg& m) {
  const std::uint32_t n = r.seq_count(16);
  m.objects.resize(n);
  for (MigrateMsg::MovedObject& o : m.objects) {
    o.id = r.object_id();
    const std::uint32_t refs = r.seq_count(12);
    o.refs.resize(refs);
    for (ObjectId& id : o.refs) id = r.object_id();
  }
  return r.ok();
}

void Put(WireWriter& w, const PatchMsg& m) {
  w.object_id(m.old_id);
  w.object_id(m.new_id);
}
bool Get(WireReader& r, PatchMsg& m) {
  m.old_id = r.object_id();
  m.new_id = r.object_id();
  return r.ok();
}

void Put(WireWriter& w, const ReachabilitySummaryMsg& m) {
  w.u64(m.epoch);
  w.u32(static_cast<std::uint32_t>(m.inrefs.size()));
  for (const ReachabilitySummaryMsg::InrefInfo& i : m.inrefs) {
    w.object_id(i.inref);
    w.u32(static_cast<std::uint32_t>(i.outset.size()));
    for (const ObjectId& id : i.outset) w.object_id(id);
  }
  w.u32(static_cast<std::uint32_t>(m.root_reachable_outrefs.size()));
  for (const ObjectId& id : m.root_reachable_outrefs) w.object_id(id);
}
bool Get(WireReader& r, ReachabilitySummaryMsg& m) {
  m.epoch = r.u64();
  const std::uint32_t n = r.seq_count(16);
  m.inrefs.resize(n);
  for (ReachabilitySummaryMsg::InrefInfo& i : m.inrefs) {
    i.inref = r.object_id();
    const std::uint32_t outset = r.seq_count(12);
    i.outset.resize(outset);
    for (ObjectId& id : i.outset) id = r.object_id();
  }
  const std::uint32_t roots = r.seq_count(12);
  m.root_reachable_outrefs.resize(roots);
  for (ObjectId& id : m.root_reachable_outrefs) id = r.object_id();
  return r.ok();
}

void Put(WireWriter& w, const CondemnMsg& m) {
  w.u64(m.epoch);
  w.u32(static_cast<std::uint32_t>(m.inrefs.size()));
  for (const ObjectId& id : m.inrefs) w.object_id(id);
}
bool Get(WireReader& r, CondemnMsg& m) {
  m.epoch = r.u64();
  const std::uint32_t n = r.seq_count(12);
  m.inrefs.resize(n);
  for (ObjectId& id : m.inrefs) id = r.object_id();
  return r.ok();
}

void PutEnvelopeList(WireWriter& w, const std::vector<Envelope>& envs) {
  w.u32(static_cast<std::uint32_t>(envs.size()));
  for (const Envelope& env : envs) EncodeEnvelope(w, env);
}
bool GetEnvelopeList(WireReader& r, std::vector<Envelope>& out) {
  const std::uint32_t n = r.seq_count(9);
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Envelope env;
    if (!DecodeEnvelope(r, env)) return false;
    out.push_back(std::move(env));
  }
  return r.ok();
}

void PutSiteList(WireWriter& w, const std::vector<SiteId>& sites) {
  w.u32(static_cast<std::uint32_t>(sites.size()));
  for (SiteId s : sites) w.u32(s);
}
bool GetSiteList(WireReader& r, std::vector<SiteId>& out) {
  const std::uint32_t n = r.seq_count(4);
  out.resize(n);
  for (SiteId& s : out) s = r.u32();
  return r.ok();
}

}  // namespace

void EncodePayload(WireWriter& w, const Payload& payload) {
  static_assert(kPayloadKinds == 24,
                "new Payload alternative: add a Put/Get pair and a decode "
                "case, and extend the net_test round-trip table");
  w.u8(static_cast<std::uint8_t>(payload.index()));
  std::visit([&w](const auto& m) { Put(w, m); }, payload);
}

bool DecodePayload(WireReader& r, Payload& out) {
  const std::uint8_t index = r.u8();
  if (!r.ok()) return false;
#define DGC_WIRE_CASE(T)                                      \
  {                                                           \
    T m{};                                                    \
    if (!Get(r, m)) return false;                             \
    out = std::move(m);                                       \
    return true;                                              \
  }
  switch (index) {
    case 0: DGC_WIRE_CASE(InsertMsg)
    case 1: DGC_WIRE_CASE(InsertAckMsg)
    case 2: DGC_WIRE_CASE(UpdateMsg)
    case 3: DGC_WIRE_CASE(BackLocalCallMsg)
    case 4: DGC_WIRE_CASE(BackRemoteCallMsg)
    case 5: DGC_WIRE_CASE(BackReplyMsg)
    case 6: DGC_WIRE_CASE(BackReportMsg)
    case 7: DGC_WIRE_CASE(BackCallBatchMsg)
    case 8: DGC_WIRE_CASE(MutatorReadMsg)
    case 9: DGC_WIRE_CASE(MutatorReadReplyMsg)
    case 10: DGC_WIRE_CASE(MutatorWriteMsg)
    case 11: DGC_WIRE_CASE(MutatorWriteAckMsg)
    case 12: DGC_WIRE_CASE(FetchMsg)
    case 13: DGC_WIRE_CASE(FetchReplyMsg)
    case 14: DGC_WIRE_CASE(CommitMsg)
    case 15: DGC_WIRE_CASE(CommitAckMsg)
    case 16: DGC_WIRE_CASE(PinReleaseMsg)
    case 17: DGC_WIRE_CASE(GlobalGcControlMsg)
    case 18: DGC_WIRE_CASE(GlobalGcGrayMsg)
    case 19: DGC_WIRE_CASE(TimestampUpdateMsg)
    case 20: DGC_WIRE_CASE(MigrateMsg)
    case 21: DGC_WIRE_CASE(PatchMsg)
    case 22: DGC_WIRE_CASE(ReachabilitySummaryMsg)
    case 23: DGC_WIRE_CASE(CondemnMsg)
    default:
      r.fail();
      return false;
  }
#undef DGC_WIRE_CASE
}

void EncodeEnvelope(WireWriter& w, const Envelope& env) {
  w.u32(env.from);
  w.u32(env.to);
  EncodePayload(w, env.payload);
}

bool DecodeEnvelope(WireReader& r, Envelope& out) {
  out.from = r.u32();
  out.to = r.u32();
  return DecodePayload(r, out.payload);
}

void EncodeCollectorConfig(WireWriter& w, const CollectorConfig& c) {
  w.u32(c.suspicion_threshold);
  w.u32(c.estimated_cycle_length);
  w.u32(c.back_threshold_increment);
  w.i64(c.local_trace_duration);
  w.i64(c.back_call_timeout);
  w.i64(c.report_timeout);
  w.u64(c.update_refresh_period);
  w.i64(c.source_lease_ttl);
  w.boolean(c.enable_back_tracing);
  w.u8(static_cast<std::uint8_t>(c.insert_mode));
  w.u64(c.trace_threads);
  w.u64(c.mark_threads);
  w.boolean(c.enable_verdict_cache);
  w.boolean(c.coalesce_traces);
  w.boolean(c.batch_back_calls);
  w.boolean(c.incremental_trace);
  w.boolean(c.incremental_differential);
  w.boolean(c.incremental_distance);
  w.boolean(c.incremental_distance_differential);
  w.u64(c.distance_repair_budget);
  w.boolean(c.park_on_suspected_failure);
  w.boolean(c.short_circuit_live_replies);
}

bool DecodeCollectorConfig(WireReader& r, CollectorConfig& c) {
  c.suspicion_threshold = r.u32();
  c.estimated_cycle_length = r.u32();
  c.back_threshold_increment = r.u32();
  c.local_trace_duration = r.i64();
  c.back_call_timeout = r.i64();
  c.report_timeout = r.i64();
  c.update_refresh_period = r.u64();
  c.source_lease_ttl = r.i64();
  c.enable_back_tracing = r.boolean();
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(InsertMode::kDeferred)) r.fail();
  c.insert_mode = static_cast<InsertMode>(mode);
  c.trace_threads = static_cast<std::size_t>(r.u64());
  c.mark_threads = static_cast<std::size_t>(r.u64());
  c.enable_verdict_cache = r.boolean();
  c.coalesce_traces = r.boolean();
  c.batch_back_calls = r.boolean();
  c.incremental_trace = r.boolean();
  c.incremental_differential = r.boolean();
  c.incremental_distance = r.boolean();
  c.incremental_distance_differential = r.boolean();
  c.distance_repair_budget = static_cast<std::size_t>(r.u64());
  c.park_on_suspected_failure = r.boolean();
  c.short_circuit_live_replies = r.boolean();
  return r.ok();
}

// ---------------------------------------------------------------------------
// Framing.

void AppendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 const std::vector<std::uint8_t>& body) {
  const std::uint32_t length = static_cast<std::uint32_t>(1 + body.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
  }
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), body.begin(), body.end());
}

FrameParseStatus ParseFrame(const std::uint8_t* data, std::size_t size,
                            FrameView& out) {
  if (size < kFrameHeaderBytes) return FrameParseStatus::kNeedMore;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  if (length == 0) return FrameParseStatus::kBadFrame;
  if (length > kMaxFrameBytes) return FrameParseStatus::kOversized;
  if (size < kFrameHeaderBytes + length) return FrameParseStatus::kNeedMore;
  const std::uint8_t type = data[kFrameHeaderBytes];
  if (type < kMinFrameType || type > kMaxFrameType) {
    return FrameParseStatus::kBadFrame;
  }
  out.type = static_cast<FrameType>(type);
  out.body = data + kFrameHeaderBytes + 1;
  out.body_size = length - 1;
  out.consumed = kFrameHeaderBytes + length;
  return FrameParseStatus::kOk;
}

namespace {

/// poll() for readability/writability with a whole-operation deadline.
/// Returns 1 ready, 0 timeout, -1 error/hup-without-data.
int WaitFd(int fd, short events, int timeout_ms,
           std::chrono::steady_clock::time_point deadline, bool bounded) {
  (void)timeout_ms;
  while (true) {
    int wait = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      // An elapsed (or zero) budget still gets one non-blocking poll:
      // a zero-timeout read must observe data the kernel already queued,
      // not unconditionally report a timeout.
      wait = left > 0 ? static_cast<int>(left) : 0;
    }
    struct pollfd pfd = {fd, events, 0};
    const int rc = poll(&pfd, 1, wait);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;
    return 1;
  }
}

}  // namespace

IoStatus WriteFrame(int fd, FrameType type,
                    const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + 1 + body.size());
  AppendFrame(frame, type, body);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = write(fd, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto deadline = std::chrono::steady_clock::now();
      if (WaitFd(fd, POLLOUT, -1, deadline, /*bounded=*/false) < 0) {
        return IoStatus::kError;
      }
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kClosed;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus WriteFrameV(int fd, FrameType type,
                     const std::vector<std::uint8_t>& body) {
  std::uint8_t header[kFrameHeaderBytes + 1];
  const std::uint32_t length = static_cast<std::uint32_t>(1 + body.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(length >> (8 * i));
  }
  header[kFrameHeaderBytes] = static_cast<std::uint8_t>(type);
  const std::size_t header_bytes = sizeof header;
  const std::size_t total = header_bytes + body.size();
  std::size_t off = 0;
  while (off < total) {
    struct iovec iov[2];
    int iovcnt = 0;
    if (off < header_bytes) {
      iov[iovcnt].iov_base = header + off;
      iov[iovcnt].iov_len = header_bytes - off;
      ++iovcnt;
      if (!body.empty()) {
        iov[iovcnt].iov_base = const_cast<std::uint8_t*>(body.data());
        iov[iovcnt].iov_len = body.size();
        ++iovcnt;
      }
    } else {
      const std::size_t body_off = off - header_bytes;
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(body.data()) + body_off;
      iov[iovcnt].iov_len = body.size() - body_off;
      ++iovcnt;
    }
    const ssize_t n = writev(fd, iov, iovcnt);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto deadline = std::chrono::steady_clock::now();
      if (WaitFd(fd, POLLOUT, -1, deadline, /*bounded=*/false) < 0) {
        return IoStatus::kError;
      }
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kClosed;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus ReadFrameBuffered(int fd, int timeout_ms,
                           std::vector<std::uint8_t>& carry, FrameType& type,
                           std::vector<std::uint8_t>& body) {
  const bool bounded = timeout_ms >= 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    FrameView view;
    switch (ParseFrame(carry.data(), carry.size(), view)) {
      case FrameParseStatus::kOk:
        type = view.type;
        body.assign(view.body, view.body + view.body_size);
        carry.erase(carry.begin(),
                    carry.begin() + static_cast<std::ptrdiff_t>(view.consumed));
        return IoStatus::kOk;
      case FrameParseStatus::kOversized:
      case FrameParseStatus::kBadFrame:
        return IoStatus::kError;
      case FrameParseStatus::kNeedMore:
        break;
    }
    const int ready = WaitFd(fd, POLLIN, timeout_ms, deadline, bounded);
    // A timeout keeps the partial frame in `carry` — the caller retries
    // later and no bytes are lost (a paused site may resume mid-frame).
    if (ready == 0) return IoStatus::kTimeout;
    if (ready < 0) return IoStatus::kError;
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n == 0) return IoStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == ECONNRESET) return IoStatus::kClosed;
      return IoStatus::kError;
    }
    carry.insert(carry.end(), chunk, chunk + n);
  }
}

IoStatus ReadFrame(int fd, int timeout_ms, FrameType& type,
                   std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> carry;
  return ReadFrameBuffered(fd, timeout_ms, carry, type, body);
}

// ---------------------------------------------------------------------------
// Handshake.

const char* HandshakeVerdictName(HandshakeVerdict v) {
  switch (v) {
    case HandshakeVerdict::kAcceptNew: return "accept-new";
    case HandshakeVerdict::kAcceptReconnect: return "accept-reconnect";
    case HandshakeVerdict::kAcceptRestart: return "accept-restart";
    case HandshakeVerdict::kRejectBadMagic: return "reject-bad-magic";
    case HandshakeVerdict::kRejectVersion: return "reject-version";
    case HandshakeVerdict::kRejectUnknownSite: return "reject-unknown-site";
    case HandshakeVerdict::kRejectStale: return "reject-stale";
  }
  return "unknown";
}

HandshakeVerdict EvaluateHandshake(const HelloFrame& hello,
                                   std::size_t site_count,
                                   std::uint32_t expected_incarnation,
                                   bool seen_before) {
  if (hello.magic != kWireMagic) return HandshakeVerdict::kRejectBadMagic;
  if (hello.version != kWireVersion) return HandshakeVerdict::kRejectVersion;
  if (hello.site >= site_count) return HandshakeVerdict::kRejectUnknownSite;
  if (hello.incarnation == expected_incarnation) {
    return seen_before ? HandshakeVerdict::kAcceptReconnect
                       : HandshakeVerdict::kAcceptNew;
  }
  if (hello.incarnation == expected_incarnation + 1 && seen_before) {
    return HandshakeVerdict::kAcceptRestart;
  }
  return HandshakeVerdict::kRejectStale;
}

void EncodeHello(WireWriter& w, const HelloFrame& hello) {
  w.u32(hello.magic);
  w.u16(hello.version);
  w.u32(hello.site);
  w.u32(hello.incarnation);
}

bool DecodeHello(WireReader& r, HelloFrame& out) {
  out.magic = r.u32();
  out.version = r.u16();
  out.site = r.u32();
  out.incarnation = r.u32();
  return r.ok();
}

void EncodeHelloAck(WireWriter& w, const HelloAckFrame& ack) {
  w.u8(static_cast<std::uint8_t>(ack.verdict));
  w.u32(ack.site_count);
  w.i64(ack.now);
  w.boolean(ack.failure_detection_enabled);
  EncodeCollectorConfig(w, ack.config);
}

bool DecodeHelloAck(WireReader& r, HelloAckFrame& out) {
  const std::uint8_t verdict = r.u8();
  if (verdict > static_cast<std::uint8_t>(HandshakeVerdict::kRejectStale)) {
    r.fail();
  }
  out.verdict = static_cast<HandshakeVerdict>(verdict);
  out.site_count = r.u32();
  out.now = r.i64();
  out.failure_detection_enabled = r.boolean();
  return DecodeCollectorConfig(r, out.config) && r.ok();
}

// ---------------------------------------------------------------------------
// Engine frames.

void EncodeStepRequest(WireWriter& w, const StepRequestFrame& f) {
  w.u64(f.seq);
  w.i64(f.target_time);
  PutSiteList(w, f.suspected);
  PutSiteList(w, f.recovered);
  PutSiteList(w, f.restarted);
  PutEnvelopeList(w, f.envelopes);
}

bool DecodeStepRequest(WireReader& r, StepRequestFrame& out) {
  out.seq = r.u64();
  out.target_time = r.i64();
  return GetSiteList(r, out.suspected) && GetSiteList(r, out.recovered) &&
         GetSiteList(r, out.restarted) && GetEnvelopeList(r, out.envelopes);
}

void EncodeStepReply(WireWriter& w, const StepReplyFrame& f) {
  w.u64(f.seq);
  w.i64(f.next_event_time);
  w.u64(f.handled);
  PutEnvelopeList(w, f.staged);
}

bool DecodeStepReply(WireReader& r, StepReplyFrame& out) {
  out.seq = r.u64();
  out.next_event_time = r.i64();
  out.handled = r.u64();
  return GetEnvelopeList(r, out.staged);
}

void EncodeBuildOp(WireWriter& w, const BuildOpFrame& f) {
  w.u64(f.seq);
  w.i64(f.time);
  w.u8(static_cast<std::uint8_t>(f.op));
  w.object_id(f.a);
  w.object_id(f.b);
  w.u32(f.slot);
  w.u64(f.n);
}

bool DecodeBuildOp(WireReader& r, BuildOpFrame& out) {
  out.seq = r.u64();
  out.time = r.i64();
  const std::uint8_t op = r.u8();
  if (op > kMaxBuildOpKind) r.fail();
  out.op = static_cast<BuildOpKind>(op);
  out.a = r.object_id();
  out.b = r.object_id();
  out.slot = r.u32();
  out.n = r.u64();
  return r.ok();
}

void EncodeBuildReply(WireWriter& w, const BuildReplyFrame& f) {
  w.u64(f.seq);
  w.object_id(f.result);
  w.i64(f.next_event_time);
  PutEnvelopeList(w, f.staged);
}

bool DecodeBuildReply(WireReader& r, BuildReplyFrame& out) {
  out.seq = r.u64();
  out.result = r.object_id();
  out.next_event_time = r.i64();
  return GetEnvelopeList(r, out.staged);
}

void EncodeQuery(WireWriter& w, const QueryFrame& f) {
  w.u64(f.seq);
  w.i64(f.time);
}

bool DecodeQuery(WireReader& r, QueryFrame& out) {
  out.seq = r.u64();
  out.time = r.i64();
  return r.ok();
}

void EncodeQueryReply(WireWriter& w, const QueryReplyFrame& f) {
  w.u64(f.seq);
  w.u64(f.objects);
  w.u64(f.reclaimed);
  w.u64(f.traces_started);
  w.u64(f.traces_garbage);
  w.u64(f.traces_live);
  w.boolean(f.trace_in_flight);
  w.u32(f.incarnation);
  w.u32(static_cast<std::uint32_t>(f.survivors.size()));
  for (const ObjectId& id : f.survivors) w.object_id(id);
}

bool DecodeQueryReply(WireReader& r, QueryReplyFrame& out) {
  out.seq = r.u64();
  out.objects = r.u64();
  out.reclaimed = r.u64();
  out.traces_started = r.u64();
  out.traces_garbage = r.u64();
  out.traces_live = r.u64();
  out.trace_in_flight = r.boolean();
  out.incarnation = r.u32();
  const std::uint32_t n = r.seq_count(12);
  out.survivors.resize(n);
  for (ObjectId& id : out.survivors) id = r.object_id();
  return r.ok();
}

}  // namespace dgc::wire
