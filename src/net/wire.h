// Length-prefixed wire codec for the socket transport.
//
// Every frame on a coordinator<->site connection is
//
//   [u32 length][u8 frame-type][body ...]
//
// with `length` counting the type byte plus the body, little-endian, and
// bounded by kMaxFrameBytes so a corrupt peer cannot make the reader allocate
// the moon. The body is a flat fixed-width little-endian encoding written by
// WireWriter and read back by WireReader; the reader never trusts the peer —
// every get is bounds-checked and flips a sticky ok() flag instead of
// reading past the end, so truncated, oversized, and garbage frames are
// rejected, not UB.
//
// The same codec serializes the full Payload vocabulary (messages.h), the
// CollectorConfig shipped to site processes at handshake, and the engine's
// step/build/query frames. Site snapshots (net/site_host.h) reuse
// WireWriter/WireReader for their on-disk image.
//
// Addressing is Unix-domain today but nothing here assumes it: frames are a
// plain byte stream, TCP-ready.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.h"
#include "common/ids.h"
#include "net/messages.h"

namespace dgc::wire {

/// Hard ceiling on one frame's length field. Generous for any real payload
/// batch; small enough that a garbage header cannot demand a huge buffer.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Bytes of frame header preceding the type byte.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Protocol magic ("DGC1") and version carried by every Hello.
inline constexpr std::uint32_t kWireMagic = 0x44474331;
inline constexpr std::uint16_t kWireVersion = 1;

// ---------------------------------------------------------------------------
// Flat little-endian writer / bounds-checked reader.

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { PutLe(v, 2); }
  void u32(std::uint32_t v) { PutLe(v, 4); }
  void u64(std::uint64_t v) { PutLe(v, 8); }
  void i64(std::int64_t v) { PutLe(static_cast<std::uint64_t>(v), 8); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void object_id(const ObjectId& id) {
    u32(id.site);
    u64(id.index);
  }
  void trace_id(const TraceId& id) {
    u32(id.initiator);
    u32(id.seq);
  }
  void frame_id(const FrameId& id) {
    u32(id.site);
    u64(id.frame);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void PutLe(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Reads the writer's encoding back. Any underrun (or failed validation in a
/// higher-level decoder) sets ok() false, and every subsequent get returns
/// zero — decoders can read a whole struct and check ok() once at the end.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] bool ok() const { return ok_; }
  void fail() { ok_ = false; }
  [[nodiscard]] std::size_t remaining() const { return size_ - off_; }
  /// True when the reader consumed every byte without error — decoders use
  /// it to reject frames with trailing garbage.
  [[nodiscard]] bool exhausted() const { return ok_ && off_ == size_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(GetLe(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(GetLe(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(GetLe(4)); }
  std::uint64_t u64() { return GetLe(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(GetLe(8)); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail();
    return v == 1;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > remaining()) {
      fail();
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_ + off_), n);
    off_ += n;
    return out;
  }
  ObjectId object_id() {
    ObjectId id;
    id.site = u32();
    id.index = u64();
    return id;
  }
  TraceId trace_id() {
    TraceId id;
    id.initiator = u32();
    id.seq = u32();
    return id;
  }
  FrameId frame_id() {
    FrameId id;
    id.site = u32();
    id.frame = u64();
    return id;
  }

  /// Element count of a variable-length sequence whose elements occupy at
  /// least `min_element_bytes` each. Rejecting counts the remaining bytes
  /// cannot possibly hold stops a garbage length from driving a huge
  /// reserve/loop before the per-element reads would catch it.
  std::uint32_t seq_count(std::size_t min_element_bytes) {
    const std::uint32_t n = u32();
    if (min_element_bytes > 0 &&
        static_cast<std::uint64_t>(n) * min_element_bytes > remaining()) {
      fail();
      return 0;
    }
    return n;
  }

 private:
  std::uint64_t GetLe(int bytes) {
    if (!ok_ || remaining() < static_cast<std::size_t>(bytes)) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(data_[off_ + i]) << (8 * i);
    }
    off_ += bytes;
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Frames.

enum class FrameType : std::uint8_t {
  kHello = 1,        // site -> coordinator: magic, version, site, incarnation
  kHelloAck,         // coordinator -> site: verdict + config + clock
  kStepRequest,      // coordinator -> site: advance to t, deliver envelopes
  kStepReply,        // site -> coordinator: staged sends + next event time
  kBuildOp,          // coordinator -> site: god-mode heap/table operation
  kBuildReply,       // site -> coordinator: op result + staged sends
  kQuery,            // coordinator -> site: report state
  kQueryReply,       // site -> coordinator: census + counters
  kShutdown,         // coordinator -> site: exit cleanly
  kShutdownAck,      // site -> coordinator: about to exit
};

inline constexpr std::uint8_t kMinFrameType =
    static_cast<std::uint8_t>(FrameType::kHello);
inline constexpr std::uint8_t kMaxFrameType =
    static_cast<std::uint8_t>(FrameType::kShutdownAck);

/// Appends one framed message (header + type + body) to `out`.
void AppendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 const std::vector<std::uint8_t>& body);

enum class FrameParseStatus : std::uint8_t {
  kOk,         // a complete, well-typed frame was parsed
  kNeedMore,   // the buffer holds only a prefix of the frame (truncated)
  kOversized,  // length field exceeds kMaxFrameBytes
  kBadFrame,   // zero length or unknown frame type: garbage
};

struct FrameView {
  FrameType type = FrameType::kHello;
  const std::uint8_t* body = nullptr;
  std::size_t body_size = 0;
  std::size_t consumed = 0;  // header + length bytes eaten from the buffer
};

/// Parses the first frame out of a byte buffer (pure; the fd readers below
/// and the codec tests share it).
FrameParseStatus ParseFrame(const std::uint8_t* data, std::size_t size,
                            FrameView& out);

/// Blocking fd I/O with timeouts, EINTR-safe, short-read/short-write safe.
enum class IoStatus : std::uint8_t {
  kOk,
  kTimeout,  // no complete frame within timeout_ms
  kClosed,   // orderly EOF or broken pipe
  kError,    // oversized/garbage frame or unrecoverable errno
};

/// Writes one frame. Returns kOk, kClosed (EPIPE/ECONNRESET), or kError.
IoStatus WriteFrame(int fd, FrameType type,
                    const std::vector<std::uint8_t>& body);

/// WriteFrame without the concatenation copy: gathers the 5-byte header and
/// the body into one writev(2), so a large StepRequest body never gets
/// memcpy'd into a temporary frame buffer. Identical return contract.
IoStatus WriteFrameV(int fd, FrameType type,
                     const std::vector<std::uint8_t>& body);

/// Reads one complete frame. timeout_ms < 0 blocks indefinitely; 0 polls.
/// The timeout covers the whole frame, not each byte. A timeout discards
/// any partial bytes read — use the buffered variant when the connection
/// must survive the timeout.
IoStatus ReadFrame(int fd, int timeout_ms, FrameType& type,
                   std::vector<std::uint8_t>& body);

/// ReadFrame with an explicit carry buffer: bytes of an incomplete frame
/// stay in `carry` across a kTimeout, so polling a slow (e.g. SIGSTOPped)
/// peer never corrupts the stream. `carry` must persist per connection.
IoStatus ReadFrameBuffered(int fd, int timeout_ms,
                           std::vector<std::uint8_t>& carry, FrameType& type,
                           std::vector<std::uint8_t>& body);

// ---------------------------------------------------------------------------
// Payload / envelope codec.

void EncodePayload(WireWriter& w, const Payload& payload);
[[nodiscard]] bool DecodePayload(WireReader& r, Payload& out);

void EncodeEnvelope(WireWriter& w, const Envelope& env);
[[nodiscard]] bool DecodeEnvelope(WireReader& r, Envelope& out);

void EncodeCollectorConfig(WireWriter& w, const CollectorConfig& config);
[[nodiscard]] bool DecodeCollectorConfig(WireReader& r, CollectorConfig& out);

// ---------------------------------------------------------------------------
// Handshake.

struct HelloFrame {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  SiteId site = kInvalidSite;
  /// The incarnation this process will run as: 0 for a fresh site, the
  /// coordinator's current incarnation for a socket-sever reconnect, and
  /// snapshot-incarnation + 1 for a supervised restart after a crash.
  std::uint32_t incarnation = 0;
};

enum class HandshakeVerdict : std::uint8_t {
  kAcceptNew,        // first connection of this site at incarnation 0
  kAcceptReconnect,  // same incarnation: the socket dropped, the process not
  kAcceptRestart,    // incarnation + 1: a replacement process after a crash
  kRejectBadMagic,
  kRejectVersion,
  kRejectUnknownSite,
  kRejectStale,  // an old incarnation (or a skip ahead) — zombie traffic
};

[[nodiscard]] const char* HandshakeVerdictName(HandshakeVerdict v);
[[nodiscard]] inline bool HandshakeAccepted(HandshakeVerdict v) {
  return v == HandshakeVerdict::kAcceptNew ||
         v == HandshakeVerdict::kAcceptReconnect ||
         v == HandshakeVerdict::kAcceptRestart;
}

/// Pure handshake classification: compares a Hello against the coordinator's
/// view (`expected_incarnation` = the incarnation currently registered for
/// the site, `seen_before` = whether the site has ever completed a
/// handshake). Exactly one incarnation step is accepted per handshake —
/// PR 4's NoteSiteRestarted bumps by one, so a larger skip means the peer
/// and coordinator disagree about history and the traffic cannot be trusted.
[[nodiscard]] HandshakeVerdict EvaluateHandshake(
    const HelloFrame& hello, std::size_t site_count,
    std::uint32_t expected_incarnation, bool seen_before);

void EncodeHello(WireWriter& w, const HelloFrame& hello);
[[nodiscard]] bool DecodeHello(WireReader& r, HelloFrame& out);

struct HelloAckFrame {
  HandshakeVerdict verdict = HandshakeVerdict::kRejectStale;
  std::uint32_t site_count = 0;
  SimTime now = 0;
  bool failure_detection_enabled = false;
  CollectorConfig config;
};

void EncodeHelloAck(WireWriter& w, const HelloAckFrame& ack);
[[nodiscard]] bool DecodeHelloAck(WireReader& r, HelloAckFrame& out);

// ---------------------------------------------------------------------------
// Engine frames. The coordinator's conservative time-stepped engine sends a
// StepRequest for every (site, instant) with work; the site advances its own
// scheduler to the instant, absorbs the delivered envelopes, and replies
// with the sends it staged plus its next pending event time.

struct StepRequestFrame {
  std::uint64_t seq = 0;
  SimTime target_time = 0;
  /// Failure-detector state, shipped because the site process has no
  /// Network: the peers this site currently suspects, and the peers whose
  /// recovery it should be notified of before this step runs.
  std::vector<SiteId> suspected;
  std::vector<SiteId> recovered;
  /// Peers that rejoined as a *new incarnation* since this site's last step
  /// (restart handshake accepted by the coordinator): the site scrubs back
  /// traces the dead incarnation initiated before resuming parked calls.
  std::vector<SiteId> restarted;
  std::vector<Envelope> envelopes;
};

struct StepReplyFrame {
  std::uint64_t seq = 0;
  SimTime next_event_time = 0;  // Scheduler::kNoPendingEvent when idle
  std::uint64_t handled = 0;    // envelopes + timer events processed
  std::vector<Envelope> staged;
};

/// God-mode operations the coordinator (SocketWorld) applies to a site's
/// heap/tables, mirroring System's build surface. Cross-site Wire splits
/// into the two half-ops WireSlotTo performs on each side.
enum class BuildOpKind : std::uint8_t {
  kNewObject,    // n = slot count; reply carries the new id
  kSetRoot,      // a = object to make a persistent root
  kWireLocal,    // a[slot] = b where b is local (or invalid): plain SetSlot
  kWireSource,   // source side of a cross-site wire: a[slot] = b + outref
  kWireTarget,   // target side: register inref b with source site a.site
  kUnwire,       // a[slot] = invalid
  kStartTrace,   // start a local trace unless one is in flight
};

inline constexpr std::uint8_t kMaxBuildOpKind =
    static_cast<std::uint8_t>(BuildOpKind::kStartTrace);

struct BuildOpFrame {
  std::uint64_t seq = 0;
  SimTime time = 0;  // site catches its clock up before applying
  BuildOpKind op = BuildOpKind::kNewObject;
  ObjectId a;
  ObjectId b;
  std::uint32_t slot = 0;
  std::uint64_t n = 0;
};

struct BuildReplyFrame {
  std::uint64_t seq = 0;
  ObjectId result;  // kNewObject's allocation; invalid otherwise
  SimTime next_event_time = 0;
  std::vector<Envelope> staged;
};

struct QueryFrame {
  std::uint64_t seq = 0;
  SimTime time = 0;
};

struct QueryReplyFrame {
  std::uint64_t seq = 0;
  std::uint64_t objects = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t traces_started = 0;
  std::uint64_t traces_garbage = 0;
  std::uint64_t traces_live = 0;
  bool trace_in_flight = false;
  std::uint32_t incarnation = 0;
  std::vector<ObjectId> survivors;  // live object ids, sorted
};

void EncodeStepRequest(WireWriter& w, const StepRequestFrame& f);
[[nodiscard]] bool DecodeStepRequest(WireReader& r, StepRequestFrame& out);
void EncodeStepReply(WireWriter& w, const StepReplyFrame& f);
[[nodiscard]] bool DecodeStepReply(WireReader& r, StepReplyFrame& out);
void EncodeBuildOp(WireWriter& w, const BuildOpFrame& f);
[[nodiscard]] bool DecodeBuildOp(WireReader& r, BuildOpFrame& out);
void EncodeBuildReply(WireWriter& w, const BuildReplyFrame& f);
[[nodiscard]] bool DecodeBuildReply(WireReader& r, BuildReplyFrame& out);
void EncodeQuery(WireWriter& w, const QueryFrame& f);
[[nodiscard]] bool DecodeQuery(WireReader& r, QueryFrame& out);
void EncodeQueryReply(WireWriter& w, const QueryReplyFrame& f);
[[nodiscard]] bool DecodeQueryReply(WireReader& r, QueryReplyFrame& out);

}  // namespace dgc::wire
