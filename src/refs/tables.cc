#include "refs/tables.h"

namespace dgc {

InrefEntry* RefTables::FindInref(ObjectId local_ref) {
  const auto it = inrefs_.find(local_ref);
  return it == inrefs_.end() ? nullptr : &it->second;
}

const InrefEntry* RefTables::FindInref(ObjectId local_ref) const {
  const auto it = inrefs_.find(local_ref);
  return it == inrefs_.end() ? nullptr : &it->second;
}

InrefEntry& RefTables::EnsureInref(ObjectId local_ref) {
  DGC_CHECK_MSG(local_ref.site == site_,
                "inref must name a local object: " << local_ref << " on site "
                                                   << site_);
  auto [it, created] = inrefs_.try_emplace(local_ref);
  if (created) {
    it->second.back_threshold = config_.initial_back_threshold();
    ++mutation_count_;
  }
  return it->second;
}

InrefEntry& RefTables::AddInrefSource(ObjectId local_ref, SiteId source,
                                      Distance distance, SimTime now) {
  DGC_CHECK_MSG(source != site_, "a site cannot be its own inref source");
  InrefEntry& entry = EnsureInref(local_ref);
  entry.sources[source] = SourceInfo{distance, now};
  ++mutation_count_;
  return entry;
}

bool RefTables::RemoveInrefSource(ObjectId local_ref, SiteId source) {
  InrefEntry* entry = FindInref(local_ref);
  if (entry == nullptr) return false;
  if (entry->sources.erase(source) != 0) ++mutation_count_;
  if (entry->sources.empty()) {
    inrefs_.erase(local_ref);
    return true;
  }
  return false;
}

void RefTables::RemoveInref(ObjectId local_ref) {
  if (inrefs_.erase(local_ref) != 0) ++mutation_count_;
}

OutrefEntry* RefTables::FindOutref(ObjectId remote_ref) {
  const auto it = outrefs_.find(remote_ref);
  return it == outrefs_.end() ? nullptr : &it->second;
}

const OutrefEntry* RefTables::FindOutref(ObjectId remote_ref) const {
  const auto it = outrefs_.find(remote_ref);
  return it == outrefs_.end() ? nullptr : &it->second;
}

std::pair<OutrefEntry*, bool> RefTables::EnsureOutref(ObjectId remote_ref) {
  DGC_CHECK_MSG(remote_ref.site != site_,
                "outref must name a remote object: " << remote_ref);
  auto [it, created] = outrefs_.try_emplace(remote_ref);
  if (created) {
    it->second.back_threshold = config_.initial_back_threshold();
    ++mutation_count_;
  }
  return {&it->second, created};
}

void RefTables::RemoveOutref(ObjectId remote_ref) {
  const auto it = outrefs_.find(remote_ref);
  DGC_CHECK_MSG(it != outrefs_.end(), "no outref " << remote_ref);
  DGC_CHECK_MSG(it->second.pin_count == 0,
                "removing pinned outref " << remote_ref);
  outrefs_.erase(it);
  ++mutation_count_;
}

}  // namespace dgc
