// Inref/outref tables: the inter-site reference-listing substrate (Section 2)
// extended with the per-ioref state the paper's cycle collector needs —
// per-source distance estimates (Section 3), visited marks and back
// thresholds (Section 4), and the clean overrides applied by the transfer and
// insert barriers (Section 6).
//
// The tables are passive data plus pure operations; protocol logic (insert /
// update messages, barriers) lives in core::Site, and the trace that fills in
// distances lives in localgc.
#pragma once

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/config.h"
#include "common/distance.h"
#include "common/flat_map.h"
#include "common/ids.h"

namespace dgc {

enum class IorefKind : std::uint8_t { kInref, kOutref };

/// What an inref knows about one source site holding the reference.
struct SourceInfo {
  /// Distance last reported by this source's update messages (Section 3).
  Distance distance = 1;
  /// When this source last confirmed it still holds the reference (insert
  /// or update message); drives the optional source-lease expiry.
  SimTime refreshed_at = 0;
};

/// An entry in the table of incoming inter-site references. Keyed by the
/// local object it designates. Persistent and application roots are *not*
/// inref entries; they enter the local trace directly as distance-0 roots
/// (the paper models them as permanent inrefs — same semantics).
struct InrefEntry {
  /// Source sites known to contain the reference. Sorted flat map: iteration
  /// stays deterministic (site order) and the handful of sources per inref
  /// fit one cache line instead of a node apiece.
  FlatMap<SiteId, SourceInfo> sources;

  /// Set when a back trace confirmed this inref garbage (Section 4.5). A
  /// flagged inref is no longer used as a root by the local trace; the entry
  /// itself is removed later by regular update messages, preserving
  /// referential integrity.
  bool garbage_flagged = false;

  /// Set by the transfer barrier (Section 6.1.1); cleared when the next
  /// local trace's results are applied.
  bool clean_override = false;

  /// Back traces that have visited this inref and not yet reported.
  std::vector<TraceId> visited;

  /// Distance that must be exceeded before a back trace may start here;
  /// bumped on every back-trace visit (Section 4.3).
  Distance back_threshold = 0;

  /// Estimated distance: minimum over sources, infinity if none.
  [[nodiscard]] Distance distance() const {
    Distance d = kDistanceInfinity;
    for (const auto& [site, info] : sources) d = std::min(d, info.distance);
    return d;
  }

  /// Clean iorefs terminate back traces with Live (Section 4.2).
  [[nodiscard]] bool clean(Distance suspicion_threshold) const {
    if (garbage_flagged) return false;
    return clean_override || distance() <= suspicion_threshold;
  }

  [[nodiscard]] bool IsVisitedBy(TraceId trace) const {
    return std::find(visited.begin(), visited.end(), trace) != visited.end();
  }
  void MarkVisited(TraceId trace) {
    DGC_DCHECK(!IsVisitedBy(trace));
    visited.push_back(trace);
  }
  void ClearVisited(TraceId trace) {
    visited.erase(std::remove(visited.begin(), visited.end(), trace),
                  visited.end());
  }
};

/// An entry in the table of outgoing inter-site references. Keyed by the
/// remote object it designates.
struct OutrefEntry {
  /// Estimated distance: one plus the distance of the cleanest inref (or
  /// root) it was traced from at the last local trace (Section 3).
  Distance distance = kDistanceInfinity;

  /// True when the last local trace reached this outref from a persistent /
  /// application root or a clean inref ("objects and outrefs traced from
  /// them are said to be clean").
  bool traced_clean = false;

  /// Set by the transfer barrier or on fresh creation by a reference
  /// transfer (Section 6.1); cleared when the next trace's results apply.
  bool clean_override = false;

  /// Insert-barrier and application-root pins: while positive, the outref is
  /// forcibly clean and may not be trimmed (Section 6.1.2).
  int pin_count = 0;

  /// Distance last reported to the target site in an update message, used to
  /// decide whether a new update is owed.
  Distance last_reported = kDistanceInfinity;

  std::vector<TraceId> visited;
  Distance back_threshold = 0;

  [[nodiscard]] bool clean() const {
    return pin_count > 0 || clean_override || traced_clean;
  }

  [[nodiscard]] bool IsVisitedBy(TraceId trace) const {
    return std::find(visited.begin(), visited.end(), trace) != visited.end();
  }
  void MarkVisited(TraceId trace) {
    DGC_DCHECK(!IsVisitedBy(trace));
    visited.push_back(trace);
  }
  void ClearVisited(TraceId trace) {
    visited.erase(std::remove(visited.begin(), visited.end(), trace),
                  visited.end());
  }
};

/// Both tables of one site. Sorted flat maps keep every iteration
/// deterministic (the same key order std::map gave) while lookups stay
/// cache-resident at 10^6-object scale.
///
/// Pointer discipline: Find*/Ensure* return pointers/references that any
/// later structural mutation of the same table (entry insert or remove)
/// invalidates. Callers use an entry pointer only within one handler and
/// never across an insertion — the discipline the call sites were audited
/// for when the tables moved off std::map.
class RefTables {
 public:
  using InrefMap = FlatMap<ObjectId, InrefEntry>;
  using OutrefMap = FlatMap<ObjectId, OutrefEntry>;

  explicit RefTables(SiteId site, const CollectorConfig& config)
      : site_(site), config_(config) {}

  RefTables(const RefTables&) = delete;
  RefTables& operator=(const RefTables&) = delete;

  [[nodiscard]] SiteId site() const { return site_; }

  // --- inrefs ---------------------------------------------------------

  /// Finds the inref for a local object, or nullptr.
  [[nodiscard]] InrefEntry* FindInref(ObjectId local_ref);
  [[nodiscard]] const InrefEntry* FindInref(ObjectId local_ref) const;

  /// Creates the inref if absent (with the configured initial back
  /// threshold) and returns it.
  InrefEntry& EnsureInref(ObjectId local_ref);

  /// Adds/updates a source site's distance (refreshing its lease). Creates
  /// the inref if needed.
  InrefEntry& AddInrefSource(ObjectId local_ref, SiteId source,
                             Distance distance, SimTime now = 0);

  /// Removes a source; removes the whole entry when the source list empties.
  /// Returns true if the entry was removed.
  bool RemoveInrefSource(ObjectId local_ref, SiteId source);

  void RemoveInref(ObjectId local_ref);

  [[nodiscard]] const InrefMap& inrefs() const { return inrefs_; }
  [[nodiscard]] InrefMap& inrefs() { return inrefs_; }

  // --- outrefs --------------------------------------------------------

  [[nodiscard]] OutrefEntry* FindOutref(ObjectId remote_ref);
  [[nodiscard]] const OutrefEntry* FindOutref(ObjectId remote_ref) const;

  /// Creates the outref if absent and returns (entry, created).
  std::pair<OutrefEntry*, bool> EnsureOutref(ObjectId remote_ref);

  void RemoveOutref(ObjectId remote_ref);

  [[nodiscard]] const OutrefMap& outrefs() const { return outrefs_; }
  [[nodiscard]] OutrefMap& outrefs() { return outrefs_; }

  [[nodiscard]] const CollectorConfig& config() const { return config_; }

  /// Advisory mutation counter bumped by the structural operations above
  /// (entry add/remove, source add/remove). Advisory only: callers holding a
  /// Find* pointer mutate entry fields without going through RefTables, so
  /// an unchanged count does NOT prove quiescence — the incremental
  /// collector's authoritative check is its exact ioref input snapshot. The
  /// counter exists for cheap instrumentation ("did the table churn?").
  [[nodiscard]] std::uint64_t mutation_count() const {
    return mutation_count_;
  }

  // --- Flat-table occupancy / reuse observability ----------------------
  //
  // The maps never shrink their backing vectors, so sustained churn should
  // be absorbed by spare capacity rather than fresh allocations. These feed
  // SiteStats, the metrics CSV, and inspect so a scale run can watch the
  // tables stop allocating (reuses climbing, grows flat).

  /// Inserts (across both tables) absorbed by spare vector capacity.
  [[nodiscard]] std::uint64_t slot_reuses() const {
    return inrefs_.stats().reuses + outrefs_.stats().reuses;
  }
  /// Inserts (across both tables) that reallocated a backing vector.
  [[nodiscard]] std::uint64_t slot_grows() const {
    return inrefs_.stats().grows + outrefs_.stats().grows;
  }
  /// Allocated entry slots across both tables (vector capacities).
  [[nodiscard]] std::size_t slot_capacity() const {
    return inrefs_.capacity() + outrefs_.capacity();
  }
  /// Live entries over allocated slots; 1.0 for empty tables.
  [[nodiscard]] double occupancy() const {
    const std::size_t capacity = slot_capacity();
    if (capacity == 0) return 1.0;
    return static_cast<double>(inrefs_.size() + outrefs_.size()) /
           static_cast<double>(capacity);
  }

 private:
  SiteId site_;
  const CollectorConfig& config_;
  InrefMap inrefs_;
  OutrefMap outrefs_;
  std::uint64_t mutation_count_ = 0;
};

}  // namespace dgc
