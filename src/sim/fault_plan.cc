#include "sim/fault_plan.h"

#include <algorithm>
#include <memory>

#include "common/check.h"

namespace dgc {

FaultPlan& FaultPlan::SiteOutage(SimTime at, SiteId site, SimTime duration,
                                 bool crash_restart) {
  DGC_CHECK(at >= 0 && duration > 0);
  Event event;
  event.kind = Kind::kSiteOutage;
  event.at = at;
  event.duration = duration;
  event.site = site;
  event.crash_restart = crash_restart;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::LinkFlap(SimTime at, SiteId a, SiteId b,
                               SimTime duration) {
  DGC_CHECK(at >= 0 && duration > 0);
  DGC_CHECK(a != b);
  Event event;
  event.kind = Kind::kLinkFlap;
  event.at = at;
  event.duration = duration;
  event.site = a;
  event.peer = b;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::DropBurst(SimTime at, SimTime duration,
                                double drop_probability) {
  DGC_CHECK(at >= 0 && duration > 0);
  DGC_CHECK(drop_probability >= 0.0 && drop_probability <= 1.0);
  Event event;
  event.kind = Kind::kDropBurst;
  event.at = at;
  event.duration = duration;
  event.drop_probability = drop_probability;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::LatencySpike(SimTime at, SimTime duration,
                                   SimTime extra_latency) {
  DGC_CHECK(at >= 0 && duration > 0);
  DGC_CHECK(extra_latency > 0);
  Event event;
  event.kind = Kind::kLatencySpike;
  event.at = at;
  event.duration = duration;
  event.extra_latency = extra_latency;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::KillProcess(SimTime at, SiteId site) {
  DGC_CHECK(at >= 0);
  Event event;
  event.kind = Kind::kKillProcess;
  event.at = at;
  event.site = site;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::PauseProcess(SimTime at, SiteId site, SimTime duration) {
  DGC_CHECK(at >= 0 && duration > 0);
  Event event;
  event.kind = Kind::kPauseProcess;
  event.at = at;
  event.duration = duration;
  event.site = site;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::SeverSocket(SimTime at, SiteId site) {
  DGC_CHECK(at >= 0);
  Event event;
  event.kind = Kind::kSeverSocket;
  event.at = at;
  event.site = site;
  events_.push_back(event);
  return *this;
}

SimTime FaultPlan::horizon() const {
  SimTime horizon = 0;
  for (const Event& event : events_) {
    horizon = std::max(horizon, event.at + event.duration);
  }
  return horizon;
}

void FaultPlan::Schedule(Scheduler& scheduler, FaultHooks hooks) const {
  // Hooks are shared by every scheduled closure (the begin/end pair of a
  // burst must see the same state the System hooks close over).
  const auto shared = std::make_shared<FaultHooks>(std::move(hooks));
  for (const Event& event : events_) {
    switch (event.kind) {
      case Kind::kSiteOutage:
        scheduler.At(event.at, [shared, site = event.site] {
          if (shared->set_site_down) shared->set_site_down(site, true);
        });
        scheduler.At(event.at + event.duration,
                     [shared, site = event.site, crash = event.crash_restart] {
                       // Restore connectivity before the restart: the
                       // restarted site immediately re-registers its outrefs
                       // with their owners, which a still-down network would
                       // swallow.
                       if (shared->set_site_down) {
                         shared->set_site_down(site, false);
                       }
                       if (crash && shared->crash_restart) {
                         shared->crash_restart(site);
                       }
                     });
        break;
      case Kind::kLinkFlap:
        scheduler.At(event.at, [shared, a = event.site, b = event.peer] {
          if (shared->set_link_down) shared->set_link_down(a, b, true);
        });
        scheduler.At(event.at + event.duration,
                     [shared, a = event.site, b = event.peer] {
                       if (shared->set_link_down) {
                         shared->set_link_down(a, b, false);
                       }
                     });
        break;
      case Kind::kDropBurst:
        scheduler.At(event.at, [shared, p = event.drop_probability] {
          if (shared->begin_drop_burst) shared->begin_drop_burst(p);
        });
        scheduler.At(event.at + event.duration, [shared] {
          if (shared->end_drop_burst) shared->end_drop_burst();
        });
        break;
      case Kind::kLatencySpike:
        scheduler.At(event.at, [shared, extra = event.extra_latency] {
          if (shared->begin_latency_spike) shared->begin_latency_spike(extra);
        });
        scheduler.At(event.at + event.duration, [shared] {
          if (shared->end_latency_spike) shared->end_latency_spike();
        });
        break;
      case Kind::kKillProcess:
        scheduler.At(event.at, [shared, site = event.site] {
          if (shared->kill_process) shared->kill_process(site);
        });
        break;
      case Kind::kPauseProcess:
        scheduler.At(event.at, [shared, site = event.site] {
          if (shared->pause_process) shared->pause_process(site);
        });
        scheduler.At(event.at + event.duration, [shared, site = event.site] {
          if (shared->resume_process) shared->resume_process(site);
        });
        break;
      case Kind::kSeverSocket:
        scheduler.At(event.at, [shared, site = event.site] {
          if (shared->sever_socket) shared->sever_socket(site);
        });
        break;
    }
  }
}

FaultPlan FaultPlan::Random(Rng& rng, const RandomSpec& spec) {
  DGC_CHECK(spec.sites >= 2);
  DGC_CHECK(spec.horizon > spec.max_duration);
  DGC_CHECK(spec.min_duration > 0 && spec.min_duration <= spec.max_duration);
  FaultPlan plan;
  const auto draw_start = [&] {
    return static_cast<SimTime>(rng.NextBelow(
        static_cast<std::uint64_t>(spec.horizon - spec.max_duration) + 1));
  };
  const auto draw_duration = [&] {
    return static_cast<SimTime>(
        rng.NextInRange(static_cast<std::uint64_t>(spec.min_duration),
                        static_cast<std::uint64_t>(spec.max_duration)));
  };
  for (std::size_t i = 0; i < spec.site_outages; ++i) {
    const SiteId site = static_cast<SiteId>(rng.NextBelow(spec.sites));
    const bool crash = spec.allow_crash_restarts && rng.NextBool(0.5);
    plan.SiteOutage(draw_start(), site, draw_duration(), crash);
  }
  for (std::size_t i = 0; i < spec.link_flaps; ++i) {
    const SiteId a = static_cast<SiteId>(rng.NextBelow(spec.sites));
    SiteId b = static_cast<SiteId>(rng.NextBelow(spec.sites - 1));
    if (b >= a) ++b;  // uniform over the other sites
    plan.LinkFlap(draw_start(), a, b, draw_duration());
  }
  for (std::size_t i = 0; i < spec.drop_bursts; ++i) {
    plan.DropBurst(draw_start(), draw_duration(),
                   spec.burst_drop_probability);
  }
  for (std::size_t i = 0; i < spec.latency_spikes; ++i) {
    plan.LatencySpike(draw_start(), draw_duration(),
                      spec.spike_extra_latency);
  }
  return plan;
}

}  // namespace dgc
