// Scriptable chaos injection: a FaultPlan is a deterministic schedule of
// faults — site outages (optionally ending in a crash-restart), link flaps,
// drop bursts and latency spikes — that the chaos harness arms against a
// running system. The plan itself only knows *when* faults begin and end;
// the hooks supplied at Schedule time decide *how* each fault is applied
// (System::ArmFaultPlan wires them to Network fault switches and
// Site::CrashRestart, with reference counting so overlapping bursts/spikes
// restore cleanly).
//
// Plans are plain data: build one by hand for a scripted scenario, or with
// FaultPlan::Random for seeded chaos soaks. Scheduling is pure — the same
// plan armed against the same world and seed replays bit for bit.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.h"
#include "common/ids.h"
#include "common/rng.h"
#include "sim/scheduler.h"

namespace dgc {

/// How a scheduled fault is applied/undone; every hook may be empty (the
/// corresponding fault kind is then skipped).
struct FaultHooks {
  std::function<void(SiteId, bool)> set_site_down;
  std::function<void(SiteId, SiteId, bool)> set_link_down;
  /// Invoked at the end of an outage scheduled with crash_restart = true,
  /// after connectivity is restored (a restart's re-registrations would
  /// otherwise be lost to the still-severed network).
  std::function<void(SiteId)> crash_restart;
  std::function<void(double)> begin_drop_burst;
  std::function<void()> end_drop_burst;
  std::function<void(SimTime)> begin_latency_spike;
  std::function<void()> end_latency_spike;
  // Process-level faults (socket transport only; System leaves these empty
  // and the events are skipped). kill_process sends SIGKILL — the supervisor
  // then restarts the site with backoff and it rejoins via the incarnation
  // handshake. pause/resume bracket a SIGSTOP window. sever_socket closes
  // the coordinator's end of the site's connection mid-run; the site redials
  // and reconnects at the same incarnation.
  std::function<void(SiteId)> kill_process;
  std::function<void(SiteId)> pause_process;
  std::function<void(SiteId)> resume_process;
  std::function<void(SiteId)> sever_socket;
};

class FaultPlan {
 public:
  enum class Kind : std::uint8_t {
    kSiteOutage,
    kLinkFlap,
    kDropBurst,
    kLatencySpike,
    kKillProcess,    // SIGKILL the site's process at `at`
    kPauseProcess,   // SIGSTOP at `at`, SIGCONT at `at + duration`
    kSeverSocket,    // close the site's connection at `at`
  };

  struct Event {
    Kind kind = Kind::kSiteOutage;
    SimTime at = 0;
    SimTime duration = 0;
    SiteId site = kInvalidSite;  // outage / crash target
    SiteId peer = kInvalidSite;  // second endpoint of a link flap
    double drop_probability = 0.0;
    SimTime extra_latency = 0;
    bool crash_restart = false;  // outage ends with a crash-restart
  };

  /// Site `site` is unreachable during [at, at + duration); when
  /// crash_restart is set, it additionally loses its volatile state at heal
  /// time (the outage was a crash, not a partition).
  FaultPlan& SiteOutage(SimTime at, SiteId site, SimTime duration,
                        bool crash_restart = false);
  /// The a--b link is severed during [at, at + duration).
  FaultPlan& LinkFlap(SimTime at, SiteId a, SiteId b, SimTime duration);
  /// Every transmission drops with probability p during [at, at + duration).
  FaultPlan& DropBurst(SimTime at, SimTime duration, double drop_probability);
  /// Every transmission takes extra_latency longer during [at, at+duration).
  FaultPlan& LatencySpike(SimTime at, SimTime duration, SimTime extra_latency);

  // Process-level chaos (effective only under hooks that arm them — the
  // socket transport's; in-process transports skip these events).

  /// kill -9 the site's process at `at`. Recovery is the supervisor's job.
  FaultPlan& KillProcess(SimTime at, SiteId site);
  /// SIGSTOP the site's process during [at, at + duration).
  FaultPlan& PauseProcess(SimTime at, SiteId site, SimTime duration);
  /// Sever the site's socket at `at` (the process survives and redials).
  FaultPlan& SeverSocket(SimTime at, SiteId site);

  /// Arms every event against the scheduler. The hooks are copied into the
  /// scheduled closures; the plan itself need not outlive the call.
  void Schedule(Scheduler& scheduler, FaultHooks hooks) const;

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  /// Time by which every scheduled fault has begun and ended.
  [[nodiscard]] SimTime horizon() const;

  /// Knobs for Random. Fault windows are drawn uniformly inside
  /// [0, horizon - max_duration]; counts of each kind are exact.
  struct RandomSpec {
    std::size_t sites = 4;
    SimTime horizon = 4000;
    std::size_t site_outages = 2;
    std::size_t link_flaps = 2;
    std::size_t drop_bursts = 2;
    std::size_t latency_spikes = 1;
    SimTime min_duration = 100;
    SimTime max_duration = 600;
    double burst_drop_probability = 0.6;
    SimTime spike_extra_latency = 40;
    /// Site outages become crash-restarts with probability 1/2.
    bool allow_crash_restarts = true;
  };
  static FaultPlan Random(Rng& rng, const RandomSpec& spec);

 private:
  std::vector<Event> events_;
};

}  // namespace dgc
