#include "sim/scheduler.h"

#include <utility>

namespace dgc {

void Scheduler::At(SimTime t, Action action) {
  DGC_CHECK_MSG(t >= now_, "cannot schedule in the past: t=" << t
                                                             << " now=" << now_);
  DGC_CHECK(action != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

bool Scheduler::RunOne() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the action must be moved out, so copy
  // the event before popping. Actions are small closures; this is cheap
  // relative to what they do.
  Event event = queue_.top();
  queue_.pop();
  DGC_CHECK(event.time >= now_);
  now_ = event.time;
  ++executed_;
  event.action();
  return true;
}

bool Scheduler::RunUntilIdle(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!RunOne()) return true;
  }
  DGC_CHECK_MSG(queue_.empty(),
                "event budget exhausted with " << queue_.size()
                                               << " events pending");
  return true;
}

void Scheduler::RunUntil(SimTime t) {
  DGC_CHECK(t >= now_);
  while (!queue_.empty() && queue_.top().time <= t) {
    RunOne();
  }
  now_ = t;
}

}  // namespace dgc
