// Discrete-event scheduler: the simulated world's single clock.
//
// Every activity — mutator steps, message deliveries, local traces,
// back-trace steps, timeouts — is an event at a simulated instant. Events at
// equal instants run in scheduling order (a monotone sequence number breaks
// ties), so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/config.h"

namespace dgc {

class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Advances only as events execute.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules an action at absolute simulated time t (>= now).
  void At(SimTime t, Action action);

  /// Schedules an action delay ticks from now (delay >= 0).
  void After(SimTime delay, Action action) { At(now_ + delay, std::move(action)); }

  /// Executes the earliest pending event. Returns false if none is pending.
  bool RunOne();

  /// Runs events until the queue drains or the event budget is exhausted.
  /// Returns true if the queue drained. The budget guards against livelock
  /// in buggy protocols; hitting it is an invariant violation.
  bool RunUntilIdle(std::uint64_t max_events = 100'000'000);

  /// Runs events with time <= t, then advances the clock to t.
  void RunUntil(SimTime t);

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Sentinel returned by next_event_time() when the queue is empty — larger
  /// than any schedulable instant, so min() folds across schedulers ignore
  /// idle ones.
  static constexpr SimTime kNoPendingEvent =
      std::numeric_limits<SimTime>::max();

  /// Instant of the earliest pending event, or kNoPendingEvent when idle.
  /// The conservative time-stepped transport engine uses this to pick the
  /// next global timestep across many schedulers.
  [[nodiscard]] SimTime next_event_time() const {
    return queue_.empty() ? kNoPendingEvent : queue_.top().time;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dgc
